package battsched_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"battsched"
)

// buildVideoPipeline builds a small realistic task graph through the public
// API: a decode -> {scale, audio} -> mux pipeline with a 40 ms period.
func buildVideoPipeline() *battsched.Graph {
	g := battsched.NewGraph("video", 0.040)
	decode := g.AddNode("decode", 8e6)
	scale := g.AddNode("scale", 6e6)
	audio := g.AddNode("audio", 3e6)
	mux := g.AddNode("mux", 2e6)
	g.AddEdge(decode, scale)
	g.AddEdge(decode, audio)
	g.AddEdge(scale, mux)
	g.AddEdge(audio, mux)
	return g
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := battsched.NewSystem(buildVideoPipeline())
	res, err := battsched.Run(battsched.Config{
		System:       sys,
		Processor:    battsched.DefaultProcessor(),
		DVS:          battsched.NewLAEDF(),
		Priority:     battsched.NewPUBS(),
		ReadyPolicy:  battsched.AllReleased,
		Execution:    battsched.NewUniformExecution(0.2, 1.0, 1),
		Hyperperiods: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("deadline misses = %d", res.DeadlineMisses)
	}
	if res.JobsCompleted != 10 {
		t.Fatalf("jobs completed = %d, want 10", res.JobsCompleted)
	}
	for _, m := range []battsched.BatteryModel{
		battsched.NewKiBaM(), battsched.NewDiffusionBattery(),
		battsched.NewStochasticBattery(), battsched.NewPeukertBattery(),
	} {
		life, err := battsched.BatteryLifetimeOpts(m, res.Profile, battsched.BatterySimulateOptions{MaxTime: 72 * 3600, MaxStep: 5})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if life.LifetimeMinutes() <= 0 || life.DeliveredMAh() <= 0 || life.DeliveredMAh() > 2001 {
			t.Fatalf("%s: implausible result %+v", m.Name(), life)
		}
	}
}

func TestPublicAPISchemes(t *testing.T) {
	schemes := battsched.PaperSchemes()
	if len(schemes) != 5 {
		t.Fatalf("schemes = %d, want 5", len(schemes))
	}
	if battsched.BAS1().Name != "BAS-1" || battsched.BAS2().Name != "BAS-2" {
		t.Fatal("BAS1/BAS2 names wrong")
	}
	if battsched.BAS2().ReadyPolicy != battsched.AllReleased {
		t.Fatal("BAS-2 must use the all-released ready list")
	}
	sys := battsched.NewSystem(buildVideoPipeline())
	for _, s := range schemes {
		res, err := battsched.Run(battsched.Config{
			System:        sys.Clone(),
			DVS:           s.DVS,
			Priority:      s.Priority,
			ReadyPolicy:   s.ReadyPolicy,
			FrequencyMode: battsched.DiscreteFrequency,
			Execution:     battsched.NewUniformExecution(0.2, 1.0, 2),
			Hyperperiods:  5,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.DeadlineMisses != 0 {
			t.Fatalf("%s: %d deadline misses", s.Name, res.DeadlineMisses)
		}
	}
}

func TestPublicAPIGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys, err := battsched.GenerateSystem(battsched.DefaultGeneratorConfig(), 4, 0.7, battsched.DefaultProcessor().FMax(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Utilization(battsched.DefaultProcessor().FMax()); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("utilisation = %v", got)
	}
	g, err := battsched.GenerateGraph(battsched.DefaultGeneratorConfig(), "g", 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
}

func TestPublicAPIOrderingAnalysis(t *testing.T) {
	g := battsched.NewGraph("fig4", 10)
	g.AddNode("task1", 4e9)
	g.AddNode("task2", 6e9)
	params := battsched.OrderingParams{Deadline: 10, FMax: 1e9, Actuals: []float64{0.4 * 4e9, 0.6 * 6e9}}
	opt, err := battsched.OptimalOrder(g, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := battsched.GreedyOrder(g, battsched.NewPUBS(), params, params.Actuals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pubs.Energy < opt.Best.Energy-1e-6 {
		t.Fatal("greedy beat the optimum")
	}
	ev, err := battsched.EvaluateOrder(g, []battsched.NodeID{0, 1}, params)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("order infeasible")
	}
}

func TestPublicAPIConversions(t *testing.T) {
	if battsched.Coulombs(1000) != 3600 || battsched.MAh(3600) != 1000 {
		t.Fatal("unit conversions wrong")
	}
	if battsched.DefaultProcessor().FMax() != 1e9 {
		t.Fatal("default processor fmax wrong")
	}
}

func TestPublicAPICapacityCurve(t *testing.T) {
	pts, err := battsched.DeliveredCapacityCurve(battsched.NewKiBaM(), []float64{0.5, 2.0}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].DeliveredMAh > pts[0].DeliveredMAh+1 {
		t.Fatalf("curve wrong: %+v", pts)
	}
}

// TestPublicAPIParallelMap checks the exported job-grid runner: ordered
// results, per-job seed derivation, and worker-count independence.
func TestPublicAPIParallelMap(t *testing.T) {
	job := func(_ context.Context, i int) (float64, error) {
		return battsched.SeededRNG(3, int64(i)).Float64(), nil
	}
	seq, err := battsched.ParallelMap(context.Background(), 16, battsched.RunnerOptions{Parallelism: 1}, job)
	if err != nil {
		t.Fatal(err)
	}
	par, err := battsched.ParallelMap(context.Background(), 16, battsched.RunnerOptions{Parallelism: 8}, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("job %d differs across worker counts", i)
		}
	}
	if battsched.DeriveSeed(1, 2) == battsched.DeriveSeed(1, 3) {
		t.Fatal("DeriveSeed collision")
	}
	g := battsched.NewJobGrid(2, 3)
	if g.Size() != 6 || g.Index(1, 2) != 5 {
		t.Fatalf("JobGrid wrong: size=%d idx=%d", g.Size(), g.Index(1, 2))
	}
}

// TestPublicAPIScenarioGrid runs a minimal scenario-grid sweep through the
// root facade.
func TestPublicAPIScenarioGrid(t *testing.T) {
	cfg := battsched.DefaultScenarioGridConfig()
	cfg.Utilizations = []float64{0.7}
	cfg.Batteries = []string{"peukert"}
	cfg.Schemes = []string{"BAS-2"}
	cfg.Sets = 2
	cfg.GraphsPerSet = 2
	cfg.Hyperperiods = 1
	rows, err := battsched.RunScenarioGrid(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Scheme != "BAS-2" || rows[0].Charge.N != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if out := battsched.FormatScenarioGrid(rows); !strings.Contains(out, "BAS-2") {
		t.Fatalf("format output unexpected:\n%s", out)
	}
}

// TestPublicAPIExperimentRegistry exercises the unified experiment surface:
// registry dispatch, report rendering, shard/merge and the JSON artifact, all
// through the root facade.
func TestPublicAPIExperimentRegistry(t *testing.T) {
	names := battsched.ExperimentNames()
	if len(names) != 6 {
		t.Fatalf("ExperimentNames() = %v", names)
	}
	if _, err := battsched.LookupExperiment("bogus"); err == nil {
		t.Fatal("expected lookup error")
	}

	ctx := context.Background()
	spec := battsched.ExperimentSpec{Quick: true, Battery: "kibam"}
	full, err := battsched.RunExperiment(ctx, "table2", spec)
	if err != nil {
		t.Fatal(err)
	}
	fullText, err := battsched.FormatExperimentReport(full)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fullText, "BAS-2") || !strings.Contains(fullText, "kibam") {
		t.Fatalf("report rendering unexpected:\n%s", fullText)
	}
	if battsched.ExperimentFooter(full, 0) == "" {
		t.Fatal("empty footer")
	}

	// Shard the run two ways and merge the partials through an artifact
	// round-trip: the merged report renders byte-identically.
	var parts []*battsched.ExperimentReport
	for i := 0; i < 2; i++ {
		s := spec
		var err error
		s.Shard, err = battsched.ParseExperimentShard(fmt.Sprintf("%d/2", i))
		if err != nil {
			t.Fatal(err)
		}
		part, err := battsched.RunExperiment(ctx, "table2", s)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, part)
	}
	var buf bytes.Buffer
	if err := battsched.WriteExperimentReports(&buf, parts); err != nil {
		t.Fatal(err)
	}
	back, err := battsched.ReadExperimentReports(&buf)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := battsched.MergeExperimentReports(back)
	if err != nil {
		t.Fatal(err)
	}
	mergedText, err := battsched.FormatExperimentReport(merged)
	if err != nil {
		t.Fatal(err)
	}
	if mergedText != fullText {
		t.Fatalf("merged shards render differently:\n%s\n---\n%s", mergedText, fullText)
	}
}

// TestPublicAPIBatteryRegistry exercises the battery model registry facade.
func TestPublicAPIBatteryRegistry(t *testing.T) {
	names := battsched.BatteryModelNames()
	if len(names) < 4 {
		t.Fatalf("BatteryModelNames() = %v", names)
	}
	for _, name := range names {
		m, err := battsched.NewBatteryModel(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("NewBatteryModel(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := battsched.NewBatteryModel("bogus"); err == nil || !strings.Contains(err.Error(), "kibam") {
		t.Fatalf("unknown model error should list names, got %v", err)
	}
}

// TestPublicAPIStatsState exercises the accumulator state facade.
func TestPublicAPIStatsState(t *testing.T) {
	var a battsched.StatsAccumulator
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(x)
	}
	b := battsched.StatsFromState(a.State())
	if b.N() != 4 || b.Mean() != a.Mean() || b.StdDev() != a.StdDev() {
		t.Fatalf("StatsFromState mismatch: %+v vs %+v", b.Summary(), a.Summary())
	}
}

// TestPublicAPIExperimentService embeds the experiment daemon through the
// facade: submit a quick Table 2 job in-process over HTTP, wait for it, and
// check that the fetched artifact matches the local registry run and that a
// resubmission is served from the content-addressed cache.
func TestPublicAPIExperimentService(t *testing.T) {
	srv, err := battsched.NewExperimentService(battsched.ExperimentServiceConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := battsched.ExperimentSpec{Quick: true, Battery: "kibam"}
	hash := battsched.ExperimentSpecHash("table2", spec)
	if len(hash) != 64 {
		t.Fatalf("spec hash = %q", hash)
	}
	if enc := battsched.CanonicalExperimentSpec("table2", spec); !strings.Contains(enc, `battery="kibam"`) {
		t.Fatalf("canonical encoding = %q", enc)
	}

	ctx := context.Background()
	c := battsched.NewExperimentServiceClient(ts.URL)
	st, err := c.Submit(ctx, battsched.ServiceJobRequest{
		Experiment: "table2", Spec: battsched.ServiceSpecRequestFrom(spec),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hash != hash {
		t.Fatalf("daemon hash %s, facade hash %s", st.Hash, hash)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond, nil)
	if err != nil || st.State != "done" {
		t.Fatalf("wait: %v (state %s: %s)", err, st.State, st.Error)
	}
	reports, err := c.Reports(ctx, st.ID)
	if err != nil || len(reports) != 1 {
		t.Fatalf("reports: %v (%d)", err, len(reports))
	}
	local, err := battsched.RunExperiment(ctx, "table2", spec)
	if err != nil {
		t.Fatal(err)
	}
	servedText, err := battsched.FormatExperimentReport(reports[0])
	if err != nil {
		t.Fatal(err)
	}
	localText, err := battsched.FormatExperimentReport(local)
	if err != nil {
		t.Fatal(err)
	}
	if servedText != localText {
		t.Fatalf("served table differs from local run:\n%s\n---\n%s", servedText, localText)
	}

	st2, err := c.Submit(ctx, battsched.ServiceJobRequest{
		Experiment: "table2", Spec: battsched.ServiceSpecRequestFrom(spec),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("resubmission not served from cache")
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
}

// TestPublicAPIShardCoverageValidation checks the facade's coverage guard.
func TestPublicAPIShardCoverageValidation(t *testing.T) {
	partial := func(i, n int) *battsched.ExperimentReport {
		return &battsched.ExperimentReport{
			Version:    1,
			Experiment: "table2",
			Shard:      &battsched.ExperimentShardInfo{Index: i, Count: n},
		}
	}
	if err := battsched.ValidateExperimentShardCoverage(
		[]*battsched.ExperimentReport{partial(0, 3), partial(2, 3)},
	); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gap validation err = %v", err)
	}
	if err := battsched.ValidateExperimentShardCoverage(
		[]*battsched.ExperimentReport{partial(0, 2), partial(1, 2)},
	); err != nil {
		t.Fatalf("complete partition rejected: %v", err)
	}
}
