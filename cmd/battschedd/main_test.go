package main

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"battsched/internal/federation"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

// TestServeLifecycle boots the daemon on an ephemeral port, checks /healthz
// through the typed client, and shuts it down through context cancellation.
func TestServeLifecycle(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln, time.Second) }()

	c := client.New("http://" + ln.Addr().String())
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.Health(context.Background())
		if err == nil {
			if h.Status != "ok" {
				t.Fatalf("health = %+v", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestServeCoordinatorLifecycle boots serve() around a federation
// coordinator fronting one in-process worker, runs a sharded job end to end
// through the typed client, and drains through context cancellation —
// proving *federation.Coordinator satisfies the daemon interface exactly
// like *service.Server.
func TestServeCoordinatorLifecycle(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	co, err := federation.New(federation.Config{
		Workers:           []string{ts.URL},
		HeartbeatInterval: 200 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, co, ln, time.Second) }()

	c := client.New("http://" + ln.Addr().String())
	st, err := c.Submit(context.Background(), service.JobRequest{
		Experiment: "table2",
		Spec:       service.SpecRequest{Quick: true, Sets: 8},
		Shards:     2,
	})
	if err != nil {
		t.Fatalf("federated submit through serve(): %v", err)
	}
	st, err = c.Wait(context.Background(), st.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("federated wait through serve(): %v", err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job state = %s, want done", st.State)
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Fleet == nil || h.Fleet.Workers != 1 {
		t.Fatalf("health fleet = %+v, want 1 worker", h.Fleet)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}

// TestRunFlagErrors covers the flag error paths.
func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"trailing"}); err == nil {
		t.Fatal("expected positional-argument error")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999"}); err == nil {
		t.Fatal("expected listen error")
	}
}
