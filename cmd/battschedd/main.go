// Command battschedd is the experiment service daemon: a long-running HTTP
// server exposing the experiment registry as an asynchronous job API with
// server-side shard fan-out and a content-addressed report cache.
//
//	battschedd -addr :8344 -workers 2 -cache-dir /var/cache/battsched
//
// API (see internal/service):
//
//	POST /v1/jobs              submit {"experiment": ..., "spec": {...}, "shards": n}
//	GET  /v1/jobs/{id}         job state and per-shard progress
//	GET  /v1/jobs/{id}/report  the versioned JSON report artifact
//	                           (?format=table renders the plain-text tables)
//	GET  /v1/experiments       the experiment registry
//	GET  /v1/batteries         the battery model registry
//	GET  /healthz              queue depth, in-flight units, cache stats
//	GET  /metrics              Prometheus text exposition (same counters)
//
// Submitted specs are content-addressed by their canonical hash: a spec whose
// complete report artifact is already cached — computed by any earlier job,
// sharded or not, even before a restart when -cache-dir is set — is answered
// immediately with "cached": true. Fetched artifacts are byte-identical to
// the files the equivalent local `cmd/experiments run -o` writes.
//
// Concurrent submissions of one spec coalesce onto a single in-flight
// computation ("coalesced": true followers). With -cache-dir set, accepted
// jobs are also journaled (journal.jsonl) and a restarted daemon resumes
// accepted-but-unfinished work under the original job IDs. A full queue
// answers 429 with a Retry-After estimate; SIGINT/SIGTERM drains gracefully
// (-drain-timeout bounds the wait for in-flight units).
//
// With -coordinator, battschedd becomes a federation coordinator instead
// (see internal/federation): it executes nothing itself but keeps a registry
// of remote battschedd workers (-fleet, plus POST /v1/workers at runtime),
// heartbeats their /healthz, splits each job into shard units and dispatches
// the units under time-bounded leases, re-dispatching units whose leases
// expire (dead workers) and speculatively duplicating stragglers — first
// completion wins. The coordinator serves the same /v1 API, so
// `cmd/experiments submit` works unchanged against either mode.
//
// Both modes serve GET /metrics and, with -cache-dir, append structured
// span records to events.jsonl there; every submission's X-Trace-Id threads
// the logs fleet-wide. -debug-addr opens a second listener with
// net/http/pprof. See EXPERIMENTS.md ("Observability").
//
// `cmd/experiments submit` drives a daemon with the same flags as local
// `run`; see EXPERIMENTS.md ("Serving", "Federation") for walkthroughs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"battsched/internal/federation"
	"battsched/internal/profutil"
	"battsched/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "battschedd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("battschedd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8344", "HTTP listen address")
		workers      = fs.Int("workers", 2, "concurrent shard units (the worker-pool size)")
		queue        = fs.Int("queue", 64, "FIFO queue bound in shard units")
		parallel     = fs.Int("parallel", 0, "job-grid worker count inside each unit's run (0: all cores)")
		cacheDir     = fs.String("cache-dir", "", "on-disk content-addressed report store and job journal (default: memory-only, no journal)")
		cacheEntries = fs.Int("cache-entries", 64, "in-memory report cache LRU size")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight units before cancelling them")
		// The journal is process-kill durable by default (records ride the OS
		// page cache). -journal-fsync adds power-loss durability by syncing
		// every record before the append returns, at ~180x the append cost:
		// an accept+done record pair measures ~4.5us unsynced vs ~820us
		// fsynced on the dev container's disk (BenchmarkAppend vs
		// BenchmarkAppendFsync in internal/service/journal).
		journalFsync = fs.Bool("journal-fsync", false, "fsync every journal record (power-loss durability; ~180x slower appends)")

		debugAddr   = fs.String("debug-addr", "", "optional second listener serving net/http/pprof under /debug/pprof/ (e.g. 127.0.0.1:6060); empty disables it")
		coordinator = fs.Bool("coordinator", false, "run as a federation coordinator dispatching to -fleet workers instead of executing locally")
		fleet       = fs.String("fleet", "", "comma-separated worker base URLs for -coordinator (e.g. http://h1:8344,http://h2:8344); more can register over POST /v1/workers")
		lease       = fs.Duration("lease", 15*time.Second, "coordinator: unit lease duration (renewed by successful status polls)")
		heartbeat   = fs.Duration("heartbeat", time.Second, "coordinator: worker /healthz probe interval")
		straggler   = fs.Float64("straggler-factor", 3, "coordinator: speculative re-dispatch once a unit runs this multiple of the fleet mean unit time")
		maxAttempts = fs.Int("max-attempts", 3, "coordinator: dispatch attempts per unit before the job fails")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if dln, err := profutil.DebugServer(*debugAddr); err != nil {
		return fmt.Errorf("debug listener: %w", err)
	} else if dln != nil {
		log.Printf("battschedd: pprof debug endpoints on http://%s/debug/pprof/", dln.Addr())
	}

	var daemon interface {
		Handler() http.Handler
		Shutdown(context.Context) error
		Close()
	}
	if *coordinator {
		var urls []string
		for _, u := range strings.Split(*fleet, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		co, err := federation.New(federation.Config{
			Workers:           urls,
			HeartbeatInterval: *heartbeat,
			LeaseDuration:     *lease,
			StragglerFactor:   *straggler,
			MaxAttempts:       *maxAttempts,
			CacheDir:          *cacheDir,
			CacheEntries:      *cacheEntries,
			JournalFsync:      *journalFsync,
			QueueCapacity:     *queue,
		})
		if err != nil {
			return err
		}
		daemon = co
	} else {
		srv, err := service.New(service.Config{
			Workers:       *workers,
			QueueCapacity: *queue,
			Parallel:      *parallel,
			CacheDir:      *cacheDir,
			CacheEntries:  *cacheEntries,
			JournalFsync:  *journalFsync,
		})
		if err != nil {
			return err
		}
		daemon = srv
	}
	defer daemon.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, daemon, ln, *drainTimeout)
}

// daemon is the common surface of the worker server and the federation
// coordinator that serve() drives.
type daemon interface {
	Handler() http.Handler
	Shutdown(context.Context) error
}

// serve runs the HTTP server on ln until ctx is cancelled, then shuts down
// gracefully: the daemon first drains (admissions answer 503, /healthz turns
// "draining", in-flight work gets drainTimeout to finish, pending jobs stay
// journaled for the next start), then the HTTP server closes. Split from run
// so tests can drive it on an ephemeral port.
func serve(ctx context.Context, d daemon, ln net.Listener, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: d.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("battschedd: serving on %s", ln.Addr())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("battschedd: draining (up to %s for in-flight work)", drainTimeout)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := d.Shutdown(drainCtx); err != nil {
		log.Printf("battschedd: drain: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
