// Command engbench measures the scheduling engine's hot path and writes the
// result as JSON (BENCH_engine.json in CI): ns/op, allocs/op and bytes/op of
// one BAS-2 hyperperiod under each observer sink — full profile+trace
// recording (the default, what the interactive CLIs use), profile-only, and
// the no-op sink experiment sweeps use. alloc_ratio and speedup_ns compare
// the recorded sink against the no-op sink, i.e. the cost of recording in
// the current engine; CI tracks them to catch recording-cost regressions.
//
// (The pre-refactor engine, which recorded unconditionally and allocated on
// every scheduling decision, measured ~1152 allocs/op on this workload; the
// refactored engine measures ~90 with the no-op sink — that before/after
// comparison is pinned in CHANGES.md, not re-measurable here since the old
// engine is gone.)
//
// Usage:
//
//	engbench            # JSON on stdout
//	engbench -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"battsched/internal/core"
	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// measurement is one benchmarked sink variant.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// report is the emitted JSON document.
type report struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	// Recorded is the run with full profile+trace recording (the default
	// sink, as the interactive CLIs use).
	Recorded measurement `json:"recorded"`
	// Profile is the profile-only recording run.
	Profile measurement `json:"profile"`
	// Discard is the no-op sink run (the experiment-sweep hot path).
	Discard measurement `json:"discard"`
	// AllocRatio is Recorded.AllocsPerOp / Discard.AllocsPerOp: the
	// allocation cost of full recording relative to the bare engine.
	AllocRatio float64 `json:"alloc_ratio"`
	// SpeedupNs is Recorded.NsPerOp / Discard.NsPerOp.
	SpeedupNs float64 `json:"speedup_ns"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	graphs := flag.Int("graphs", 5, "task graphs in the benchmark workload")
	flag.Parse()

	rng := rand.New(rand.NewSource(99))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), *graphs, 0.7, 1e9, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}

	run := func(sink func() core.SegmentSink) measurement {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					System:        sys,
					DVS:           dvs.NewLAEDF(),
					Priority:      priority.NewPUBS(),
					ReadyPolicy:   core.AllReleased,
					FrequencyMode: core.DiscreteFrequency,
					Execution:     taskgraph.NewUniformExecution(0.2, 1.0, int64(i)),
					Hyperperiods:  1,
					Seed:          int64(i),
					Observer:      sink(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.DeadlineMisses != 0 {
					b.Fatal("deadline miss")
				}
			}
		})
		return measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	rep := report{
		Benchmark: "EngineRun/BAS-2/1-hyperperiod",
		Workload:  fmt.Sprintf("%d random task graphs, utilisation 0.7, discrete frequencies", *graphs),
		Recorded:  run(func() core.SegmentSink { return core.NewRecorder() }),
		Profile:   run(func() core.SegmentSink { return core.NewProfileRecorder() }),
		Discard:   run(func() core.SegmentSink { return core.Discard }),
	}
	if rep.Discard.AllocsPerOp > 0 {
		rep.AllocRatio = float64(rep.Recorded.AllocsPerOp) / float64(rep.Discard.AllocsPerOp)
	}
	if rep.Discard.NsPerOp > 0 {
		rep.SpeedupNs = rep.Recorded.NsPerOp / rep.Discard.NsPerOp
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
}
