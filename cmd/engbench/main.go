// Command engbench measures the simulator's two hot paths and writes the
// results as JSON artifacts for CI.
//
// The engine report (BENCH_engine.json): ns/op, allocs/op and bytes/op of
// one BAS-2 hyperperiod under each observer sink — full profile+trace
// recording (the default, what the interactive CLIs use), profile-only, and
// the no-op sink experiment sweeps use. alloc_ratio and speedup_ns compare
// the recorded sink against the no-op sink, i.e. the cost of recording in
// the current engine; CI tracks them to catch recording-cost regressions.
//
// (The pre-refactor engine, which recorded unconditionally and allocated on
// every scheduling decision, measured ~1152 allocs/op on this workload; the
// refactored engine measures ~90 with the no-op sink — that before/after
// comparison is pinned in CHANGES.md, not re-measurable here since the old
// engine is gone.)
//
// The battery report (BENCH_battery.json, -battery-o): ns/op of a full 72 h
// lifetime simulation per battery model on a representative periodic load,
// comparing the MaxStep-2 uniform-stepping path against the analytic path
// (whole segments + per-repetition transfer operators + exhaustion
// root-finding) — since the stochastic geometric-recovery fast path, every
// model has one in its default mode. The report also carries batch rows
// comparing one SimulateBatch pass over N models against N sequential scalar
// passes (fresh instance per pass, the pre-batch driver behaviour); engbench
// exits nonzero if a batch pass is slower than the scalar passes it replaces
// (beyond a 1.10 noise factor), so CI catches batch regressions directly.
//
// The service report (BENCH_service.json, -service-o): BenchmarkServiceSubmit
// — end-to-end latency of submitting a quick Table 2 spec to an in-process
// experiment daemon (internal/service behind a real HTTP listener, driven
// through the typed client), comparing the cold path (full compute through
// the job queue) against the content-addressed cache hit of resubmitting the
// identical spec. CI tracks the hit latency and the speedup to catch cache
// and queue-path regressions.
//
// Usage:
//
//	engbench                              # engine JSON on stdout
//	engbench -o BENCH_engine.json
//	engbench -engine=false -battery-o BENCH_battery.json
//	engbench -engine=false -service-o BENCH_service.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/peukert"
	"battsched/internal/battery/stochastic"
	"battsched/internal/core"
	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/profile"
	"battsched/internal/service"
	"battsched/internal/service/client"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// measurement is one benchmarked sink variant.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// report is the emitted JSON document.
type report struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	// Recorded is the run with full profile+trace recording (the default
	// sink, as the interactive CLIs use).
	Recorded measurement `json:"recorded"`
	// Profile is the profile-only recording run.
	Profile measurement `json:"profile"`
	// Discard is the no-op sink run (the experiment-sweep hot path).
	Discard measurement `json:"discard"`
	// AllocRatio is Recorded.AllocsPerOp / Discard.AllocsPerOp: the
	// allocation cost of full recording relative to the bare engine.
	AllocRatio float64 `json:"alloc_ratio"`
	// SpeedupNs is Recorded.NsPerOp / Discard.NsPerOp.
	SpeedupNs float64 `json:"speedup_ns"`
}

// batteryMeasurement is one battery model's stepped-versus-analytic lifetime
// simulation comparison.
type batteryMeasurement struct {
	Model string `json:"model"`
	// SteppedNsPerOp is the MaxStep-2 uniform-stepping path (the
	// pre-analytic experiment configuration).
	SteppedNsPerOp float64 `json:"stepped_ns_per_op"`
	// AnalyticNsPerOp is the analytic fast path (since the stochastic
	// geometric-recovery fast path, every model has one in its default mode).
	AnalyticNsPerOp float64 `json:"analytic_ns_per_op,omitempty"`
	// Speedup is SteppedNsPerOp / AnalyticNsPerOp.
	Speedup float64 `json:"speedup,omitempty"`
	// SteppedLifetimeMin and AnalyticLifetimeMin are the simulated lifetimes
	// of the two paths — the sanity anchor that both benchmark columns
	// simulate the same physics.
	SteppedLifetimeMin  float64 `json:"stepped_lifetime_min"`
	AnalyticLifetimeMin float64 `json:"analytic_lifetime_min,omitempty"`
}

// batchMeasurement compares evaluating N models on one profile through the
// batch API against N sequential scalar passes. Scalar columns use a fresh
// instance per simulation (the pre-batch driver behaviour); the batch column
// reuses its instances across iterations (the new driver behaviour), so the
// alloc columns also record the instance-reuse win.
type batchMeasurement struct {
	// Models is the batch size (models cycle through the four families).
	Models int `json:"models"`
	// BatchNsPerOp and BatchAllocsPerOp are one SimulateBatch pass.
	BatchNsPerOp     float64 `json:"batch_ns_per_op"`
	BatchAllocsPerOp int64   `json:"batch_allocs_per_op"`
	// ScalarNsPerOp and ScalarAllocsPerOp are N sequential default-dispatch
	// SimulateUntilExhausted calls on fresh instances.
	ScalarNsPerOp     float64 `json:"scalar_ns_per_op"`
	ScalarAllocsPerOp int64   `json:"scalar_allocs_per_op"`
	// SteppedScalarNsPerOp is N sequential MaxStep-2 stepped-path calls (the
	// pre-analytic configuration — the baseline of the headline speedup).
	SteppedScalarNsPerOp float64 `json:"stepped_scalar_ns_per_op"`
	// SpeedupVsScalar is ScalarNsPerOp / BatchNsPerOp; SpeedupVsStepped is
	// SteppedScalarNsPerOp / BatchNsPerOp.
	SpeedupVsScalar  float64 `json:"speedup_vs_scalar,omitempty"`
	SpeedupVsStepped float64 `json:"speedup_vs_stepped,omitempty"`
}

// batteryReport is the emitted BENCH_battery.json document.
type batteryReport struct {
	Benchmark string               `json:"benchmark"`
	Profile   string               `json:"profile"`
	Models    []batteryMeasurement `json:"models"`
	Batch     []batchMeasurement   `json:"batch"`
}

// benchBattery measures full 72 h lifetime simulations of every battery
// model on a representative periodic load, stepped versus analytic.
func benchBattery() batteryReport {
	p := profile.New()
	p.Append(33.4, 1.2)
	p.Append(21.7, 0.4)
	p.Append(5.1, 0.01)

	measure := func(model func() battery.Model, opts battery.SimulateOptions) (float64, float64) {
		opts.MaxTime = 72 * 3600
		var life float64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := battery.SimulateUntilExhausted(model(), p, opts)
				if err != nil {
					b.Fatal(err)
				}
				life = res.LifetimeMinutes()
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N), life
	}

	models := []struct {
		name     string
		factory  func() battery.Model
		analytic bool
	}{
		{"kibam", func() battery.Model { return kibam.Default() }, true},
		{"diffusion", func() battery.Model { return diffusion.Default() }, true},
		{"peukert", func() battery.Model { return peukert.Default() }, true},
		{"stochastic", func() battery.Model { return stochastic.Default() }, true},
	}
	rep := batteryReport{
		Benchmark: "BatteryLifetime/72h-horizon",
		Profile:   "periodic 60.2 s load: 33.4 s @ 1.2 A, 21.7 s @ 0.4 A, 5.1 s @ 0.01 A",
	}
	for _, m := range models {
		var meas batteryMeasurement
		meas.Model = m.name
		meas.SteppedNsPerOp, meas.SteppedLifetimeMin = measure(m.factory, battery.SimulateOptions{MaxStep: 2})
		if m.analytic {
			meas.AnalyticNsPerOp, meas.AnalyticLifetimeMin = measure(m.factory, battery.SimulateOptions{})
			if meas.AnalyticNsPerOp > 0 {
				meas.Speedup = meas.SteppedNsPerOp / meas.AnalyticNsPerOp
			}
		}
		rep.Models = append(rep.Models, meas)
	}

	// Batch rows: N models (cycling the four families) drained against the
	// same profile, one SimulateBatch pass versus N sequential scalar passes.
	measureBatch := func(n int) batchMeasurement {
		bm := batchMeasurement{Models: n}
		opts := battery.SimulateOptions{MaxTime: 72 * 3600}
		instances := make([]battery.Model, n)
		for i := range instances {
			instances[i] = models[i%len(models)].factory()
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := battery.SimulateBatch(instances, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		bm.BatchNsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		bm.BatchAllocsPerOp = r.AllocsPerOp()

		scalar := func(o battery.SimulateOptions) (float64, int64) {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j := 0; j < n; j++ {
						if _, err := battery.SimulateUntilExhausted(models[j%len(models)].factory(), p, o); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			return float64(r.T.Nanoseconds()) / float64(r.N), r.AllocsPerOp()
		}
		bm.ScalarNsPerOp, bm.ScalarAllocsPerOp = scalar(opts)
		stepped := opts
		stepped.MaxStep = 2
		bm.SteppedScalarNsPerOp, _ = scalar(stepped)
		if bm.BatchNsPerOp > 0 {
			bm.SpeedupVsScalar = bm.ScalarNsPerOp / bm.BatchNsPerOp
			bm.SpeedupVsStepped = bm.SteppedScalarNsPerOp / bm.BatchNsPerOp
		}
		return bm
	}
	rep.Batch = []batchMeasurement{measureBatch(4), measureBatch(16)}
	return rep
}

// serviceReport is the emitted BENCH_service.json document.
type serviceReport struct {
	Benchmark string `json:"benchmark"`
	Spec      string `json:"spec"`
	// ColdMs is the end-to-end latency of the first submission: queue wait,
	// full experiment compute, merge, artifact render and fetch.
	ColdMs float64 `json:"cold_ms"`
	// CacheHitMs is the mean end-to-end latency of resubmitting the identical
	// spec: HTTP round-trips plus the content-addressed cache lookup.
	CacheHitMs float64 `json:"cache_hit_ms"`
	// CacheHitOps is the number of measured cache-hit submissions.
	CacheHitOps int `json:"cache_hit_ops"`
	// Speedup is ColdMs / CacheHitMs.
	Speedup float64 `json:"speedup"`
}

// benchService is BenchmarkServiceSubmit: cold versus cache-hit latency of
// one quick Table 2 spec submitted to an in-process experiment daemon over
// real HTTP.
func benchService() serviceReport {
	srv, err := service.New(service.Config{Workers: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cli := client.New(ts.URL)
	ctx := context.Background()
	req := service.JobRequest{
		Experiment: "table2",
		Spec:       service.SpecRequest{Quick: true, Battery: "kibam"},
	}

	submit := func() {
		st, err := cli.Submit(ctx, req)
		if err == nil {
			st, err = cli.Wait(ctx, st.ID, 5*time.Millisecond, nil)
		}
		if err == nil && st.State != service.StateDone {
			err = fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		if err == nil {
			_, err = cli.ReportArtifact(ctx, st.ID)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "engbench:", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	submit() // cold: computes and populates the cache
	cold := time.Since(start)

	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			submit() // every further submission is a cache hit
		}
	})
	hit := float64(r.T.Nanoseconds()) / float64(r.N) / 1e6
	rep := serviceReport{
		Benchmark:   "ServiceSubmit/quick-table2-kibam",
		Spec:        `{"experiment":"table2","spec":{"quick":true,"battery":"kibam"}}`,
		ColdMs:      float64(cold.Nanoseconds()) / 1e6,
		CacheHitMs:  hit,
		CacheHitOps: r.N,
	}
	if hit > 0 {
		rep.Speedup = rep.ColdMs / hit
	}
	return rep
}

// writeJSON marshals doc and writes it to path ("" selects stdout).
func writeJSON(doc any, path string) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if path == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
}

func main() {
	out := flag.String("o", "", "write the engine JSON report to this file (default stdout)")
	engine := flag.Bool("engine", true, "run the engine benchmark")
	batteryOut := flag.String("battery-o", "", "also run the battery lifetime benchmark and write its JSON report to this file (\"-\" selects stdout)")
	serviceOut := flag.String("service-o", "", "also run BenchmarkServiceSubmit (cold vs cache-hit daemon latency) and write its JSON report to this file (\"-\" selects stdout)")
	graphs := flag.Int("graphs", 5, "task graphs in the benchmark workload")
	flag.Parse()

	if *batteryOut != "" {
		path := *batteryOut
		if path == "-" {
			path = ""
		}
		brep := benchBattery()
		writeJSON(brep, path)
		// Regression gate: a batch pass must never be slower than the N
		// sequential scalar passes it replaces. The 1.10 factor absorbs
		// benchmark noise on shared CI runners; a genuine regression (batch
		// overhead outgrowing its shared-clock win) blows well past it.
		for _, bm := range brep.Batch {
			if bm.BatchNsPerOp > bm.ScalarNsPerOp*1.10 {
				fmt.Fprintf(os.Stderr,
					"engbench: batch regression: SimulateBatch of %d models took %.0f ns/op vs %.0f ns/op for %d sequential scalar passes (>1.10x)\n",
					bm.Models, bm.BatchNsPerOp, bm.ScalarNsPerOp, bm.Models)
				os.Exit(1)
			}
		}
	}
	if *serviceOut != "" {
		path := *serviceOut
		if path == "-" {
			path = ""
		}
		writeJSON(benchService(), path)
	}
	if !*engine {
		return
	}

	rng := rand.New(rand.NewSource(99))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), *graphs, 0.7, 1e9, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}

	run := func(sink func() core.SegmentSink) measurement {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					System:        sys,
					DVS:           dvs.NewLAEDF(),
					Priority:      priority.NewPUBS(),
					ReadyPolicy:   core.AllReleased,
					FrequencyMode: core.DiscreteFrequency,
					Execution:     taskgraph.NewUniformExecution(0.2, 1.0, int64(i)),
					Hyperperiods:  1,
					Seed:          int64(i),
					Observer:      sink(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.DeadlineMisses != 0 {
					b.Fatal("deadline miss")
				}
			}
		})
		return measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	rep := report{
		Benchmark: "EngineRun/BAS-2/1-hyperperiod",
		Workload:  fmt.Sprintf("%d random task graphs, utilisation 0.7, discrete frequencies", *graphs),
		Recorded:  run(func() core.SegmentSink { return core.NewRecorder() }),
		Profile:   run(func() core.SegmentSink { return core.NewProfileRecorder() }),
		Discard:   run(func() core.SegmentSink { return core.Discard }),
	}
	if rep.Discard.AllocsPerOp > 0 {
		rep.AllocRatio = float64(rep.Recorded.AllocsPerOp) / float64(rep.Discard.AllocsPerOp)
	}
	if rep.Discard.NsPerOp > 0 {
		rep.SpeedupNs = rep.Recorded.NsPerOp / rep.Discard.NsPerOp
	}

	writeJSON(rep, *out)
}
