// Command engbench measures the simulator's two hot paths and writes the
// results as JSON artifacts for CI.
//
// The engine report (BENCH_engine.json): ns/op, allocs/op and bytes/op of
// one BAS-2 hyperperiod under each observer sink — full profile+trace
// recording (the default, what the interactive CLIs use), profile-only, and
// the no-op sink experiment sweeps use — plus the reused row: the same
// profile-only run on one reused core.Engine + ProfileRecorder Reset per
// iteration, the experiment drivers' steady state since the reusable engine.
// alloc_ratio and speedup_ns compare the recorded sink against the no-op
// sink, i.e. the cost of recording in the current engine; CI tracks them to
// catch recording-cost regressions.
//
// The engine report also carries the grid row: the scheduling sweep of a
// quick scenario-grid pass (sets × all five Table 2 schemes, load profiles
// recorded) through the chunked driver loop — each task set generated once,
// scheme 0 recording the execution realisation and the other schemes
// replaying it on one reused engine and recorder — timed against the
// pre-refactor driver shape, which regenerated the system and ran a fresh
// one-shot core.Run with a fresh recorder and execution model per
// (set, scheme). Both loops are checked to produce bit-identical energy
// totals before timing; sets/sec, ns/set and allocs/set quantify the reuse
// win and CI gates the speedup. (Battery lifetime evaluation is excluded:
// both shapes do identical battery work, which BENCH_battery.json tracks.)
//
// (The pre-refactor engine, which recorded unconditionally and allocated on
// every scheduling decision, measured ~1152 allocs/op on this workload; the
// refactored one-shot engine measures ~90 with the no-op sink, and the
// reused engine ~1 — the one-shot before/after comparison is pinned in
// CHANGES.md, not re-measurable here since the old engine is gone.)
//
// With -baseline pointing at the committed BENCH_engine.json, engbench diffs
// the fresh measurements against it and exits nonzero when any tracked
// allocs/op figure regresses past a 1.10 noise factor (allocation counts are
// runner-independent); ns/op drift past the factor is reported on stderr but
// does not gate, because wall-clock varies with runner speed across machines.
// The hard wall-clock gates are same-run ratios, where machine speed cancels:
// independent of any baseline, engbench exits nonzero unless the reused row
// stays at <= 10 allocs/op, the grid row's speedup over the pre-refactor
// driver shape stays >= 1.5 with at least a 3x allocation win, and the
// 4-model battery batch pass stays at <= 10 allocs/op without allocating
// more than the scalar passes it replaces.
//
// The battery report (BENCH_battery.json, -battery-o): ns/op of a full 72 h
// lifetime simulation per battery model on a representative periodic load,
// comparing the MaxStep-2 uniform-stepping path against the analytic path
// (whole segments + per-repetition transfer operators + exhaustion
// root-finding) — since the stochastic geometric-recovery fast path, every
// model has one in its default mode. The report also carries batch rows
// comparing one SimulateBatch pass over N models against N sequential scalar
// passes (fresh instance per pass, the pre-batch driver behaviour); engbench
// exits nonzero if a batch pass is slower than the scalar passes it replaces
// (beyond a 1.10 noise factor) or allocates more than they did.
//
// The service submit report (BENCH_submit.json in CI, -service-o; the
// broader BENCH_service.json load report is cmd/loadgen's): BenchmarkServiceSubmit
// — end-to-end latency of submitting a quick Table 2 spec to an in-process
// experiment daemon (internal/service behind a real HTTP listener, driven
// through the typed client), comparing the cold path (full compute through
// the job queue) against the content-addressed cache hit of resubmitting the
// identical spec. CI tracks the hit latency and the speedup to catch cache
// and queue-path regressions.
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the whole
// benchmark run for `go tool pprof`.
//
// Usage:
//
//	engbench                              # engine JSON on stdout
//	engbench -o BENCH_engine.json
//	engbench -o BENCH_engine.json.new -baseline BENCH_engine.json
//	engbench -engine=false -battery-o BENCH_battery.json
//	engbench -engine=false -service-o BENCH_submit.json
//	engbench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/peukert"
	"battsched/internal/battery/stochastic"
	"battsched/internal/core"
	"battsched/internal/dvs"
	"battsched/internal/obs"
	"battsched/internal/priority"
	"battsched/internal/profile"
	"battsched/internal/profutil"
	"battsched/internal/service"
	"battsched/internal/service/client"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// measurement is one benchmarked sink variant.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// gridMeasurement is the quick-grid throughput comparison: the chunked
// cross-scheme driver loop against the pre-refactor per-(set, scheme) shape.
type gridMeasurement struct {
	// Sets, Graphs and Schemes describe the workload: Sets task-graph sets
	// of Graphs graphs each (the quick grid's GraphsPerSet), each scheduled
	// under every scheme with its load profile recorded. Battery lifetime
	// evaluation is excluded — it is identical work in both driver shapes
	// and is tracked by BENCH_battery.json instead.
	Sets    int `json:"sets"`
	Graphs  int `json:"graphs"`
	Schemes int `json:"schemes"`
	// NsPerSet and AllocsPerSet are the reused driver loop (one system +
	// recorded execution realisation + one reused engine and profile
	// recorder shared across all schemes of a set), per task set.
	NsPerSet     float64 `json:"ns_per_set"`
	AllocsPerSet int64   `json:"allocs_per_set"`
	// SetsPerSec is the reused loop's throughput in task sets per second.
	SetsPerSec float64 `json:"sets_per_sec"`
	// FreshNsPerSet and FreshAllocsPerSet are the pre-refactor driver shape:
	// per (set, scheme), regenerate the system and run a fresh one-shot
	// core.Run with a fresh profile recorder, execution model and battery
	// instances.
	FreshNsPerSet     float64 `json:"fresh_ns_per_set"`
	FreshAllocsPerSet int64   `json:"fresh_allocs_per_set"`
	// Speedup is FreshNsPerSet / NsPerSet — the wall-clock win of the
	// engine-reuse restructure on a grid-shaped workload.
	Speedup float64 `json:"speedup"`
}

// report is the emitted JSON document.
type report struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	// Recorded is the run with full profile+trace recording (the default
	// sink, as the interactive CLIs use).
	Recorded measurement `json:"recorded"`
	// Profile is the profile-only recording run.
	Profile measurement `json:"profile"`
	// Discard is the no-op sink run (the experiment-sweep hot path).
	Discard measurement `json:"discard"`
	// Reused is the profile-only run on one reused Engine + ProfileRecorder
	// (Reset per iteration instead of a fresh one-shot Run) — the experiment
	// drivers' steady state. Scratch state, free list, estimator history and
	// profile storage survive across iterations, so allocations collapse to
	// the per-run Result header; CI gates this at <= 10 allocs/op.
	Reused measurement `json:"reused"`
	// Grid is the quick-grid throughput row; CI gates Speedup >= 1.5.
	Grid gridMeasurement `json:"grid"`
	// AllocRatio is Recorded.AllocsPerOp / Discard.AllocsPerOp: the
	// allocation cost of full recording relative to the bare engine.
	AllocRatio float64 `json:"alloc_ratio"`
	// SpeedupNs is Recorded.NsPerOp / Discard.NsPerOp.
	SpeedupNs float64 `json:"speedup_ns"`
	// Sim is the delta of the process-wide obs.Sim counters over the whole
	// engine benchmark — how many engine runs and battery simulations (by
	// dispatch path) the rows above actually executed. Doubles as a check
	// that the hot-path counters tick: an engine benchmark reporting zero
	// engine runs means the instrumentation broke.
	Sim obs.SimSnapshot `json:"sim"`
}

// batteryMeasurement is one battery model's stepped-versus-analytic lifetime
// simulation comparison.
type batteryMeasurement struct {
	Model string `json:"model"`
	// SteppedNsPerOp is the MaxStep-2 uniform-stepping path (the
	// pre-analytic experiment configuration).
	SteppedNsPerOp float64 `json:"stepped_ns_per_op"`
	// AnalyticNsPerOp is the analytic fast path (since the stochastic
	// geometric-recovery fast path, every model has one in its default mode).
	AnalyticNsPerOp float64 `json:"analytic_ns_per_op,omitempty"`
	// Speedup is SteppedNsPerOp / AnalyticNsPerOp.
	Speedup float64 `json:"speedup,omitempty"`
	// SteppedLifetimeMin and AnalyticLifetimeMin are the simulated lifetimes
	// of the two paths — the sanity anchor that both benchmark columns
	// simulate the same physics.
	SteppedLifetimeMin  float64 `json:"stepped_lifetime_min"`
	AnalyticLifetimeMin float64 `json:"analytic_lifetime_min,omitempty"`
}

// batchMeasurement compares evaluating N models on one profile through the
// batch API against N sequential scalar passes. Scalar columns use a fresh
// instance per simulation (the pre-batch driver behaviour); the batch column
// reuses its instances across iterations (the new driver behaviour), so the
// alloc columns also record the instance-reuse win.
type batchMeasurement struct {
	// Models is the batch size (models cycle through the four families).
	Models int `json:"models"`
	// BatchNsPerOp and BatchAllocsPerOp are one SimulateBatch pass.
	BatchNsPerOp     float64 `json:"batch_ns_per_op"`
	BatchAllocsPerOp int64   `json:"batch_allocs_per_op"`
	// ScalarNsPerOp and ScalarAllocsPerOp are N sequential default-dispatch
	// SimulateUntilExhausted calls on fresh instances.
	ScalarNsPerOp     float64 `json:"scalar_ns_per_op"`
	ScalarAllocsPerOp int64   `json:"scalar_allocs_per_op"`
	// SteppedScalarNsPerOp is N sequential MaxStep-2 stepped-path calls (the
	// pre-analytic configuration — the baseline of the headline speedup).
	SteppedScalarNsPerOp float64 `json:"stepped_scalar_ns_per_op"`
	// SpeedupVsScalar is ScalarNsPerOp / BatchNsPerOp; SpeedupVsStepped is
	// SteppedScalarNsPerOp / BatchNsPerOp.
	SpeedupVsScalar  float64 `json:"speedup_vs_scalar,omitempty"`
	SpeedupVsStepped float64 `json:"speedup_vs_stepped,omitempty"`
}

// batteryReport is the emitted BENCH_battery.json document.
type batteryReport struct {
	Benchmark string               `json:"benchmark"`
	Profile   string               `json:"profile"`
	Models    []batteryMeasurement `json:"models"`
	Batch     []batchMeasurement   `json:"batch"`
}

// batteryFactories returns the four model families in their default modes.
func batteryFactories() []func() battery.Model {
	return []func() battery.Model{
		func() battery.Model { return kibam.Default() },
		func() battery.Model { return diffusion.Default() },
		func() battery.Model { return peukert.Default() },
		func() battery.Model { return stochastic.Default() },
	}
}

// benchBattery measures full 72 h lifetime simulations of every battery
// model on a representative periodic load, stepped versus analytic.
func benchBattery() batteryReport {
	p := profile.New()
	p.Append(33.4, 1.2)
	p.Append(21.7, 0.4)
	p.Append(5.1, 0.01)

	measure := func(model func() battery.Model, opts battery.SimulateOptions) (float64, float64) {
		opts.MaxTime = 72 * 3600
		var life float64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := battery.SimulateUntilExhausted(model(), p, opts)
				if err != nil {
					b.Fatal(err)
				}
				life = res.LifetimeMinutes()
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N), life
	}

	factories := batteryFactories()
	names := []string{"kibam", "diffusion", "peukert", "stochastic"}
	rep := batteryReport{
		Benchmark: "BatteryLifetime/72h-horizon",
		Profile:   "periodic 60.2 s load: 33.4 s @ 1.2 A, 21.7 s @ 0.4 A, 5.1 s @ 0.01 A",
	}
	for i, factory := range factories {
		var meas batteryMeasurement
		meas.Model = names[i]
		meas.SteppedNsPerOp, meas.SteppedLifetimeMin = measure(factory, battery.SimulateOptions{MaxStep: 2})
		meas.AnalyticNsPerOp, meas.AnalyticLifetimeMin = measure(factory, battery.SimulateOptions{})
		if meas.AnalyticNsPerOp > 0 {
			meas.Speedup = meas.SteppedNsPerOp / meas.AnalyticNsPerOp
		}
		rep.Models = append(rep.Models, meas)
	}

	// Batch rows: N models (cycling the four families) drained against the
	// same profile, one SimulateBatch pass versus N sequential scalar passes.
	measureBatch := func(n int) batchMeasurement {
		bm := batchMeasurement{Models: n}
		opts := battery.SimulateOptions{MaxTime: 72 * 3600}
		instances := make([]battery.Model, n)
		for i := range instances {
			instances[i] = factories[i%len(factories)]()
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := battery.SimulateBatch(instances, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		bm.BatchNsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		bm.BatchAllocsPerOp = r.AllocsPerOp()

		scalar := func(o battery.SimulateOptions) (float64, int64) {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j := 0; j < n; j++ {
						if _, err := battery.SimulateUntilExhausted(factories[j%len(factories)](), p, o); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			return float64(r.T.Nanoseconds()) / float64(r.N), r.AllocsPerOp()
		}
		bm.ScalarNsPerOp, bm.ScalarAllocsPerOp = scalar(opts)
		stepped := opts
		stepped.MaxStep = 2
		bm.SteppedScalarNsPerOp, _ = scalar(stepped)
		if bm.BatchNsPerOp > 0 {
			bm.SpeedupVsScalar = bm.ScalarNsPerOp / bm.BatchNsPerOp
			bm.SpeedupVsStepped = bm.SteppedScalarNsPerOp / bm.BatchNsPerOp
		}
		return bm
	}
	rep.Batch = []batchMeasurement{measureBatch(4), measureBatch(16)}
	return rep
}

// gridScheme is one Table 2 scheme of the quick-grid workload (a local copy
// of the experiment drivers' scheme table; fresh DVS/priority instances per
// run mirror the driver loops exactly).
type gridScheme struct {
	name   string
	alg    func() dvs.Algorithm
	prio   func() priority.Function
	policy core.ReadyPolicy
}

func gridSchemes() []gridScheme {
	random := func() priority.Function { return priority.NewRandom() }
	pubs := func() priority.Function { return priority.NewPUBS() }
	return []gridScheme{
		{"EDF", func() dvs.Algorithm { return dvs.NewNoDVS() }, random, core.MostImminentOnly},
		{"ccEDF", func() dvs.Algorithm { return dvs.NewCCEDF() }, random, core.MostImminentOnly},
		{"laEDF", func() dvs.Algorithm { return dvs.NewLAEDF() }, random, core.MostImminentOnly},
		{"BAS-1", func() dvs.Algorithm { return dvs.NewLAEDF() }, pubs, core.MostImminentOnly},
		{"BAS-2", func() dvs.Algorithm { return dvs.NewLAEDF() }, pubs, core.AllReleased},
	}
}

// benchGrid times the scheduling sweep of a quick scenario-grid pass (sets ×
// all five Table 2 schemes, profiles recorded for the battery stage) through
// the chunked cross-scheme driver loop and through the pre-refactor
// per-(set, scheme) shape, after checking that both produce bit-identical
// energy totals. Battery lifetime evaluation is deliberately excluded: it is
// identical work in both shapes (the restructure shares scheduling, not
// battery physics) and has its own report and gates in BENCH_battery.json —
// including it would only dilute the engine-throughput signal it exists to
// track.
func benchGrid() gridMeasurement {
	// The quick scenario grid's workload shape: small 3-graph sets, where the
	// per-run costs the reusable engine amortises (system generation,
	// validation, allocation) are a meaningful share of each run.
	const (
		sets   = 8
		graphs = 3
	)
	schemes := gridSchemes()
	cfgFor := func(sys *taskgraph.System, s gridScheme, exec taskgraph.ExecutionModel, sink core.SegmentSink, seed int64) core.Config {
		return core.Config{
			System:        sys,
			DVS:           s.alg(),
			Priority:      s.prio(),
			ReadyPolicy:   s.policy,
			FrequencyMode: core.DiscreteFrequency,
			Execution:     exec,
			Hyperperiods:  1,
			Seed:          seed,
			Observer:      sink,
		}
	}
	seedFor := func(set int) int64 { return int64(1000 + set) }

	// reusedPass is the chunked driver loop of the experiments package: each
	// set's system and execution realisation are produced once; every scheme
	// replays them on one reused engine and profile recorder.
	reusedPass := func() (float64, error) {
		var sum float64
		eng := core.NewEngine()
		rec := core.NewProfileRecorder()
		uni := taskgraph.NewUniformExecution(0.2, 1.0, 0)
		exec := taskgraph.NewRecordedExecution(uni)
		for set := 0; set < sets; set++ {
			seed := seedFor(set)
			sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), graphs, 0.7, 1e9, rand.New(rand.NewSource(seed)))
			if err != nil {
				return 0, err
			}
			uni.Reseed(seed)
			exec.Restart(uni)
			for si, s := range schemes {
				if si > 0 {
					exec.Replay()
				}
				rec.Reset()
				if err := eng.Reset(cfgFor(sys, s, exec, rec, seed)); err != nil {
					return 0, err
				}
				res, err := eng.Run()
				if err != nil {
					return 0, err
				}
				sum += res.EnergyBattery + res.Profile.AverageCurrent()
			}
		}
		return sum, nil
	}

	// freshPass is the pre-refactor driver shape: jobs were (scheme, chunk)
	// cells, so every (set, scheme) pair regenerated the task system and ran
	// a fresh one-shot core.Run with a fresh profile recorder and execution
	// model.
	freshPass := func() (float64, error) {
		var sum float64
		for set := 0; set < sets; set++ {
			seed := seedFor(set)
			for _, s := range schemes {
				sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), graphs, 0.7, 1e9, rand.New(rand.NewSource(seed)))
				if err != nil {
					return 0, err
				}
				res, err := core.Run(cfgFor(sys, s, taskgraph.NewUniformExecution(0.2, 1.0, seed), core.NewProfileRecorder(), seed))
				if err != nil {
					return 0, err
				}
				sum += res.EnergyBattery + res.Profile.AverageCurrent()
			}
		}
		return sum, nil
	}

	// Both loops must simulate the same physics: the recorded realisation
	// replayed for schemes 1..N equals the fresh per-scheme draws bit-exactly
	// (the comparability contract pinned by the core reuse tests).
	reusedSum, err := reusedPass()
	if err == nil {
		var freshSum float64
		freshSum, err = freshPass()
		if err == nil && math.Float64bits(reusedSum) != math.Float64bits(freshSum) {
			err = fmt.Errorf("grid comparator mismatch: reused loop lifetime total %v != fresh loop %v", reusedSum, freshSum)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}

	measure := func(pass func() (float64, error)) (float64, int64) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pass(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N) / sets, r.AllocsPerOp() / sets
	}

	// Alternating min-of-3 rounds: the speedup is a gated ratio, and a single
	// pair of ~1 s measurements is exposed to GC pauses and CPU-load drift
	// between the two loops; the minimum of interleaved rounds approximates
	// each loop's true cost, so the ratio stays stable across runs.
	gm := gridMeasurement{Sets: sets, Graphs: graphs, Schemes: len(schemes), NsPerSet: math.Inf(1), FreshNsPerSet: math.Inf(1)}
	for round := 0; round < 3; round++ {
		ns, al := measure(reusedPass)
		gm.NsPerSet = math.Min(gm.NsPerSet, ns)
		gm.AllocsPerSet = al
		ns, al = measure(freshPass)
		gm.FreshNsPerSet = math.Min(gm.FreshNsPerSet, ns)
		gm.FreshAllocsPerSet = al
	}
	if gm.NsPerSet > 0 {
		gm.SetsPerSec = 1e9 / gm.NsPerSet
		gm.Speedup = gm.FreshNsPerSet / gm.NsPerSet
	}
	return gm
}

// benchEngine measures one BAS-2 hyperperiod under each observer sink plus
// the reused-engine row and the quick-grid throughput row.
func benchEngine(graphs int) report {
	simBefore := obs.Sim.Snapshot()
	rng := rand.New(rand.NewSource(99))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), graphs, 0.7, 1e9, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}

	run := func(sink func() core.SegmentSink) measurement {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					System:        sys,
					DVS:           dvs.NewLAEDF(),
					Priority:      priority.NewPUBS(),
					ReadyPolicy:   core.AllReleased,
					FrequencyMode: core.DiscreteFrequency,
					Execution:     taskgraph.NewUniformExecution(0.2, 1.0, int64(i)),
					Hyperperiods:  1,
					Seed:          int64(i),
					Observer:      sink(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.DeadlineMisses != 0 {
					b.Fatal("deadline miss")
				}
			}
		})
		return measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	// runReused is the same workload on one reused Engine + ProfileRecorder,
	// Reset per iteration (Config.Execution stays nil, so the engine-owned
	// execution model is reseeded with cfg.Seed — exactly what the one-shot
	// rows' fresh NewUniformExecution(0.2, 1.0, seed) draws).
	runReused := func() measurement {
		eng := core.NewEngine()
		rec := core.NewProfileRecorder()
		cfg := core.Config{
			System:        sys,
			DVS:           dvs.NewLAEDF(),
			Priority:      priority.NewPUBS(),
			ReadyPolicy:   core.AllReleased,
			FrequencyMode: core.DiscreteFrequency,
			Hyperperiods:  1,
			Observer:      rec,
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec.Reset()
				cfg.Seed = int64(i)
				if err := eng.Reset(cfg); err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.DeadlineMisses != 0 {
					b.Fatal("deadline miss")
				}
			}
		})
		return measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	rep := report{
		Benchmark: "EngineRun/BAS-2/1-hyperperiod",
		Workload:  fmt.Sprintf("%d random task graphs, utilisation 0.7, discrete frequencies", graphs),
		Recorded:  run(func() core.SegmentSink { return core.NewRecorder() }),
		Profile:   run(func() core.SegmentSink { return core.NewProfileRecorder() }),
		Discard:   run(func() core.SegmentSink { return core.Discard }),
		Reused:    runReused(),
		Grid:      benchGrid(),
	}
	if rep.Discard.AllocsPerOp > 0 {
		rep.AllocRatio = float64(rep.Recorded.AllocsPerOp) / float64(rep.Discard.AllocsPerOp)
	}
	if rep.Discard.NsPerOp > 0 {
		rep.SpeedupNs = rep.Recorded.NsPerOp / rep.Discard.NsPerOp
	}
	rep.Sim = obs.Sim.Snapshot().Sub(simBefore)
	return rep
}

// engineGates checks the structural invariants of a fresh engine report and
// returns a violation message per breach. These hold regardless of any
// committed baseline: the reused driver path must stay allocation-free
// (modulo the Result header) and must stay well ahead of the pre-refactor
// per-(set, scheme) driver shape.
func engineGates(rep report) []string {
	var v []string
	if rep.Reused.AllocsPerOp > 10 {
		v = append(v, fmt.Sprintf("reused engine allocates %d allocs/op (> 10): Reset no longer preserves scratch capacity", rep.Reused.AllocsPerOp))
	}
	if rep.Grid.Speedup < 1.5 {
		v = append(v, fmt.Sprintf("quick-grid speedup %.2fx over the pre-refactor driver shape (< 1.5x)", rep.Grid.Speedup))
	}
	// The alloc collapse is the robust signature of the restructure (ns
	// ratios wobble with runner noise; allocation counts do not): the
	// per-(set, scheme) fresh shape must allocate at least 3x what the
	// reused loop does.
	if rep.Grid.AllocsPerSet*3 > rep.Grid.FreshAllocsPerSet {
		v = append(v, fmt.Sprintf("quick-grid reused loop allocates %d allocs/set vs %d fresh (< 3x win)", rep.Grid.AllocsPerSet, rep.Grid.FreshAllocsPerSet))
	}
	return v
}

// batteryGates checks the batch-API invariants of a fresh battery report.
func batteryGates(rep batteryReport) []string {
	var v []string
	for _, bm := range rep.Batch {
		// A batch pass must never be slower than the N sequential scalar
		// passes it replaces. The 1.10 factor absorbs benchmark noise on
		// shared CI runners; a genuine regression (batch overhead outgrowing
		// its shared-clock win) blows well past it.
		if bm.BatchNsPerOp > bm.ScalarNsPerOp*1.10 {
			v = append(v, fmt.Sprintf("batch regression: SimulateBatch of %d models took %.0f ns/op vs %.0f ns/op for %d sequential scalar passes (>1.10x)",
				bm.Models, bm.BatchNsPerOp, bm.ScalarNsPerOp, bm.Models))
		}
		// Instance reuse means a batch pass allocates strictly less than the
		// fresh-instance scalar passes it replaces.
		if bm.BatchAllocsPerOp > bm.ScalarAllocsPerOp {
			v = append(v, fmt.Sprintf("batch regression: SimulateBatch of %d models allocates %d allocs/op vs %d for the scalar passes",
				bm.Models, bm.BatchAllocsPerOp, bm.ScalarAllocsPerOp))
		}
		// The 4-model pass is the experiment drivers' shape; its 10-alloc
		// budget (result slice + per-model result headers) is pinned in CI.
		if bm.Models == 4 && bm.BatchAllocsPerOp > 10 {
			v = append(v, fmt.Sprintf("batch regression: 4-model SimulateBatch pass allocates %d allocs/op (> 10)", bm.BatchAllocsPerOp))
		}
	}
	return v
}

// compareBaseline diffs a fresh engine report against the committed baseline
// and returns one violation message per allocation figure that regressed past
// the 1.10 noise factor (with an absolute slack of one alloc, so tiny counts
// like the reused row's single Result allocation don't trip on integer
// jitter). Allocation counts are runner-independent, so they gate hard;
// wall-clock figures vary with runner speed and load across machines, so ns
// drift past the noise factor is only reported on stderr — the hard
// wall-clock gates are the same-run ratios in engineGates, where machine
// speed cancels.
func compareBaseline(cur report, path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	const noise = 1.10
	var regs []string
	ns := func(name string, cur, base float64) {
		if base > 0 && cur > base*noise {
			fmt.Fprintf(os.Stderr, "engbench: note: %s: %.0f ns vs baseline %.0f (>%.2fx; informational — runner speed varies)\n", name, cur, base, noise)
		}
	}
	allocs := func(name string, cur, base int64) {
		if base >= 0 && cur > base+1 && float64(cur) > float64(base)*noise {
			regs = append(regs, fmt.Sprintf("%s: %d allocs vs baseline %d (>%.2fx)", name, cur, base, noise))
		}
	}
	ns("recorded ns/op", cur.Recorded.NsPerOp, base.Recorded.NsPerOp)
	ns("profile ns/op", cur.Profile.NsPerOp, base.Profile.NsPerOp)
	ns("discard ns/op", cur.Discard.NsPerOp, base.Discard.NsPerOp)
	ns("reused ns/op", cur.Reused.NsPerOp, base.Reused.NsPerOp)
	ns("grid ns/set", cur.Grid.NsPerSet, base.Grid.NsPerSet)
	allocs("recorded allocs/op", cur.Recorded.AllocsPerOp, base.Recorded.AllocsPerOp)
	allocs("profile allocs/op", cur.Profile.AllocsPerOp, base.Profile.AllocsPerOp)
	allocs("discard allocs/op", cur.Discard.AllocsPerOp, base.Discard.AllocsPerOp)
	allocs("reused allocs/op", cur.Reused.AllocsPerOp, base.Reused.AllocsPerOp)
	allocs("grid allocs/set", cur.Grid.AllocsPerSet, base.Grid.AllocsPerSet)
	return regs, nil
}

// serviceReport is the emitted submit-latency document (-service-o).
type serviceReport struct {
	Benchmark string `json:"benchmark"`
	Spec      string `json:"spec"`
	// ColdMs is the end-to-end latency of the first submission: queue wait,
	// full experiment compute, merge, artifact render and fetch.
	ColdMs float64 `json:"cold_ms"`
	// CacheHitMs is the mean end-to-end latency of resubmitting the identical
	// spec: HTTP round-trips plus the content-addressed cache lookup.
	CacheHitMs float64 `json:"cache_hit_ms"`
	// CacheHitOps is the number of measured cache-hit submissions.
	CacheHitOps int `json:"cache_hit_ops"`
	// Speedup is ColdMs / CacheHitMs.
	Speedup float64 `json:"speedup"`
}

// benchService is BenchmarkServiceSubmit: cold versus cache-hit latency of
// one quick Table 2 spec submitted to an in-process experiment daemon over
// real HTTP.
func benchService() serviceReport {
	srv, err := service.New(service.Config{Workers: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cli := client.New(ts.URL)
	ctx := context.Background()
	req := service.JobRequest{
		Experiment: "table2",
		Spec:       service.SpecRequest{Quick: true, Battery: "kibam"},
	}

	submit := func() {
		st, err := cli.Submit(ctx, req)
		if err == nil {
			st, err = cli.Wait(ctx, st.ID, 5*time.Millisecond, nil)
		}
		if err == nil && st.State != service.StateDone {
			err = fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		if err == nil {
			_, err = cli.ReportArtifact(ctx, st.ID)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "engbench:", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	submit() // cold: computes and populates the cache
	cold := time.Since(start)

	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			submit() // every further submission is a cache hit
		}
	})
	hit := float64(r.T.Nanoseconds()) / float64(r.N) / 1e6
	rep := serviceReport{
		Benchmark:   "ServiceSubmit/quick-table2-kibam",
		Spec:        `{"experiment":"table2","spec":{"quick":true,"battery":"kibam"}}`,
		ColdMs:      float64(cold.Nanoseconds()) / 1e6,
		CacheHitMs:  hit,
		CacheHitOps: r.N,
	}
	if hit > 0 {
		rep.Speedup = rep.ColdMs / hit
	}
	return rep
}

// writeJSON marshals doc and writes it to path ("" selects stdout).
func writeJSON(doc any, path string) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if path == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
}

func main() {
	out := flag.String("o", "", "write the engine JSON report to this file (default stdout)")
	engine := flag.Bool("engine", true, "run the engine benchmark")
	baseline := flag.String("baseline", "", "compare the engine report against this committed BENCH_engine.json and exit nonzero on a >1.10x ns/op or allocs/op regression")
	batteryOut := flag.String("battery-o", "", "also run the battery lifetime benchmark and write its JSON report to this file (\"-\" selects stdout)")
	serviceOut := flag.String("service-o", "", "also run BenchmarkServiceSubmit (cold vs cache-hit daemon latency) and write its JSON report to this file (\"-\" selects stdout)")
	graphs := flag.Int("graphs", 5, "task graphs in the benchmark workload")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the benchmark run to this file")
	flag.Parse()
	stopProfiles := profutil.MustStart(*cpuProfile, *memProfile)

	var violations []string
	if *batteryOut != "" {
		path := *batteryOut
		if path == "-" {
			path = ""
		}
		brep := benchBattery()
		writeJSON(brep, path)
		violations = append(violations, batteryGates(brep)...)
	}
	if *serviceOut != "" {
		path := *serviceOut
		if path == "-" {
			path = ""
		}
		writeJSON(benchService(), path)
	}
	if *engine {
		rep := benchEngine(*graphs)
		writeJSON(rep, *out)
		violations = append(violations, engineGates(rep)...)
		if *baseline != "" {
			regs, err := compareBaseline(rep, *baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "engbench:", err)
				os.Exit(1)
			}
			violations = append(violations, regs...)
		}
	}

	stopProfiles()
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "engbench: regression:", v)
		}
		os.Exit(1)
	}
}
