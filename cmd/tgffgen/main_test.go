package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"battsched"
)

func TestRunWritesValidWorkloadToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graphs", "3", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	sys := &battsched.System{}
	if err := sys.UnmarshalJSON(buf.Bytes()); err != nil {
		t.Fatalf("output is not a valid system: %v", err)
	}
	if sys.NumGraphs() != 3 {
		t.Fatalf("graphs = %d, want 3", sys.NumGraphs())
	}
	if err := sys.Validate(battsched.DefaultProcessor().FMax()); err != nil {
		t.Fatalf("generated system invalid: %v", err)
	}
}

func TestRunWritesToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.json")
	var buf bytes.Buffer
	if err := run([]string{"-graphs", "2", "-utilization", "0.5", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graphs") {
		t.Fatalf("file content unexpected: %s", data)
	}
	if buf.Len() != 0 {
		t.Fatalf("stdout should be empty when -o is used, got %q", buf.String())
	}
}

func TestRunWritesDOT(t *testing.T) {
	dotPath := filepath.Join(t.TempDir(), "wl.dot")
	var buf bytes.Buffer
	if err := run([]string{"-graphs", "2", "-dot", dotPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatalf("DOT file content unexpected: %s", data)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-graphs", "2", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graphs", "2", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different workloads")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graphs", "0"}, &buf); err == nil {
		t.Fatal("expected error for zero graphs")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("expected flag parse error")
	}
}
