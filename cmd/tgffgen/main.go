// Command tgffgen generates random periodic task-graph systems in the JSON
// format consumed by cmd/basched. It is the in-repo substitute for the TGFF
// generator used by the paper: random DAGs with 5–15 nodes, uniform WCETs and
// random dependencies, scaled to a target worst-case utilisation.
//
// Usage:
//
//	tgffgen -graphs 5 -utilization 0.7 -seed 42 -o workload.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"battsched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tgffgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tgffgen", flag.ContinueOnError)
	var (
		graphs      = fs.Int("graphs", 5, "number of task graphs to generate")
		minNodes    = fs.Int("min-nodes", 5, "minimum nodes per graph")
		maxNodes    = fs.Int("max-nodes", 15, "maximum nodes per graph")
		utilization = fs.Float64("utilization", 0.7, "worst-case utilisation at fmax (0 disables scaling)")
		edgeProb    = fs.Float64("edge-prob", 0.4, "probability of a precedence edge between adjacent layers")
		seed        = fs.Int64("seed", 1, "random seed")
		out         = fs.String("o", "", "output file (default: stdout)")
		dotOut      = fs.String("dot", "", "also write the graphs in Graphviz DOT format to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := battsched.DefaultGeneratorConfig()
	cfg.MinNodes = *minNodes
	cfg.MaxNodes = *maxNodes
	cfg.EdgeProbability = *edgeProb

	rng := rand.New(rand.NewSource(*seed))
	proc := battsched.DefaultProcessor()
	sys, err := battsched.GenerateSystem(cfg, *graphs, *utilization, proc.FMax(), rng)
	if err != nil {
		return err
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := sys.WriteJSON(w); err != nil {
		return err
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.WriteDOT(f); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d graphs, %d nodes, utilisation %.3f, hyperperiod %.3gs\n",
		sys.NumGraphs(), sys.TotalNodes(), sys.Utilization(proc.FMax()), sys.Hyperperiod())
	return nil
}
