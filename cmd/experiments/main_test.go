package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"battsched/internal/experiments"
)

func TestRunQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-all", "-quick", "-battery", "kibam"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 6", "Table 2", "delivered capacity", "BAS-2", "pUBS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleExperimentSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-curve", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Table 1") || !strings.Contains(out, "delivered capacity") {
		t.Fatalf("selection not honoured:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-table2", "-quick", "-battery", "bogus"}, &buf); err == nil {
		t.Fatal("expected battery model error")
	}
}

// stripTimings removes the "(... 0.3s)" timing lines, the only part of the
// output that may legitimately differ between runs.
func stripTimings(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "(") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestParallelByteIdenticalOutput is the CLI-level determinism guarantee:
// the same seed emits byte-identical tables at any -parallel value.
func TestParallelByteIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep skipped in -short mode")
	}
	args := []string{"-table2", "-grid", "-quick", "-battery", "kibam", "-seed", "7"}
	var seq bytes.Buffer
	if err := run(append([]string{"-parallel", "1"}, args...), &seq); err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []string{"4", "13"} {
		var par bytes.Buffer
		if err := run(append([]string{"-parallel", parallel}, args...), &par); err != nil {
			t.Fatal(err)
		}
		if stripTimings(seq.String()) != stripTimings(par.String()) {
			t.Fatalf("-parallel %s output differs from -parallel 1:\n%s\n---\n%s", parallel, seq.String(), par.String())
		}
	}
}

// TestRunSubcommandMatchesLegacy checks that the registry-dispatched run
// subcommand emits exactly the bytes of the historical flag interface.
func TestRunSubcommandMatchesLegacy(t *testing.T) {
	var legacy, sub bytes.Buffer
	if err := run([]string{"-table2", "-curve", "-quick", "-battery", "kibam"}, &legacy); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "table2", "curve", "-quick", "-battery", "kibam"}, &sub); err != nil {
		t.Fatal(err)
	}
	if stripTimings(legacy.String()) != stripTimings(sub.String()) {
		t.Fatalf("run subcommand differs from legacy flags:\n%s\n---\n%s", sub.String(), legacy.String())
	}
}

// TestListCommand checks that list names every registered experiment.
func TestListCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range experiments.Names() {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("list output missing %q:\n%s", name, buf.String())
		}
	}
}

// TestRunSubcommandErrors covers the dispatch error paths.
func TestRunSubcommandErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run"}, &buf); err == nil {
		t.Fatal("expected error for run without names")
	}
	if err := run([]string{"run", "bogus", "-quick"}, &buf); err == nil || !strings.Contains(err.Error(), "table2") {
		t.Fatalf("unknown experiment error should list registered names, got %v", err)
	}
	if err := run([]string{"run", "table2", "-quick", "trailing"}, &buf); err == nil {
		t.Fatal("expected error for names after flags")
	}
	if err := run([]string{"run", "table2", "-quick", "-shard", "2/2"}, &buf); err == nil {
		t.Fatal("expected error for out-of-range shard")
	}
	if err := run([]string{"run", "curve", "-quick", "-shard", "0/2"}, &buf); err == nil {
		t.Fatal("expected error for sharding the deterministic curve")
	}
	// The non-shardable selection must fail before any experiment runs, even
	// when the curve is not the first name in the list.
	if err := run([]string{"run", "table2", "curve", "-quick", "-shard", "0/2"}, &buf); err == nil || !strings.Contains(err.Error(), "curve") {
		t.Fatalf("sharded run containing the curve should fail fast, got %v", err)
	}
	if err := run([]string{"bogus-command"}, &buf); err == nil {
		t.Fatal("expected error for unknown subcommand-looking flag")
	}
	if err := run([]string{"merge"}, &buf); err == nil {
		t.Fatal("expected error for merge without files")
	}
	if err := run([]string{"merge", filepath.Join(t.TempDir(), "missing.json")}, &buf); err == nil {
		t.Fatal("expected error for missing artifact")
	}
}

// shardMergeOutputs runs the unsharded reference and the 2-way shard + merge
// pipeline for the given extra flags, returning both stripped outputs.
func shardMergeOutputs(t *testing.T, extra ...string) (unsharded, merged string) {
	t.Helper()
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	s0 := filepath.Join(dir, "s0.json")
	s1 := filepath.Join(dir, "s1.json")

	base := append([]string{"run", "table2", "grid", "-quick", "-battery", "kibam"}, extra...)
	var fullOut bytes.Buffer
	if err := run(append(base, "-o", full), &fullOut); err != nil {
		t.Fatal(err)
	}
	var shardOut bytes.Buffer
	if err := run(append(base, "-shard", "0/2", "-o", s0), &shardOut); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-shard", "1/2", "-o", s1), &shardOut); err != nil {
		t.Fatal(err)
	}
	var mergeOut bytes.Buffer
	if err := run([]string{"merge", "-o", filepath.Join(dir, "merged.json"), s0, s1}, &mergeOut); err != nil {
		t.Fatal(err)
	}
	return stripTimings(fullOut.String()), stripTimings(mergeOut.String())
}

// TestShardMergeGolden is the CLI-level shard/merge guarantee: running the
// quick Table 2 and scenario grid as two shards and merging the partial
// report artifacts emits byte-identical formatted output to the unsharded
// run — with fixed set counts and with -ci adaptive set counts (capped by
// -max-sets so every shard executes the same absolute batch grid).
func TestShardMergeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shard/merge sweep skipped in -short mode")
	}
	unsharded, merged := shardMergeOutputs(t)
	if unsharded != merged {
		t.Fatalf("fixed-count shard+merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", unsharded, merged)
	}
	unsharded, merged = shardMergeOutputs(t, "-ci", "1e-12", "-max-sets", "8")
	if unsharded != merged {
		t.Fatalf("adaptive shard+merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", unsharded, merged)
	}
}

// TestReportArtifact checks the -o JSON artifact: it round-trips through
// ReadArtifact and holds one report per experiment run.
func TestReportArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	if err := run([]string{"run", "table2", "curve", "-quick", "-battery", "kibam", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	reports, err := experiments.ReadArtifact(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Experiment != "table2" || reports[1].Experiment != "curve" {
		t.Fatalf("artifact reports = %+v", reports)
	}
	if reports[0].Version != experiments.ReportVersion {
		t.Fatalf("report version = %d", reports[0].Version)
	}
}

// TestTimeoutFlag checks that an absurdly small -timeout aborts the run with
// a context error instead of hanging.
func TestTimeoutFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-table2", "-quick", "-timeout", "1ns"}, &buf)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
