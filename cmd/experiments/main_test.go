package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-all", "-quick", "-battery", "kibam"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 6", "Table 2", "delivered capacity", "BAS-2", "pUBS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleExperimentSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-curve", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Table 1") || !strings.Contains(out, "delivered capacity") {
		t.Fatalf("selection not honoured:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-table2", "-quick", "-battery", "bogus"}, &buf); err == nil {
		t.Fatal("expected battery model error")
	}
}

// stripTimings removes the "(... 0.3s)" timing lines, the only part of the
// output that may legitimately differ between runs.
func stripTimings(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "(") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestParallelByteIdenticalOutput is the CLI-level determinism guarantee:
// the same seed emits byte-identical tables at any -parallel value.
func TestParallelByteIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep skipped in -short mode")
	}
	args := []string{"-table2", "-grid", "-quick", "-battery", "kibam", "-seed", "7"}
	var seq bytes.Buffer
	if err := run(append([]string{"-parallel", "1"}, args...), &seq); err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []string{"4", "13"} {
		var par bytes.Buffer
		if err := run(append([]string{"-parallel", parallel}, args...), &par); err != nil {
			t.Fatal(err)
		}
		if stripTimings(seq.String()) != stripTimings(par.String()) {
			t.Fatalf("-parallel %s output differs from -parallel 1:\n%s\n---\n%s", parallel, seq.String(), par.String())
		}
	}
}

// TestTimeoutFlag checks that an absurdly small -timeout aborts the run with
// a context error instead of hanging.
func TestTimeoutFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-table2", "-quick", "-timeout", "1ns"}, &buf)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
