package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"battsched/internal/experiments"
	"battsched/internal/service"
)

func TestRunQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-all", "-quick", "-battery", "kibam"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 6", "Table 2", "delivered capacity", "BAS-2", "pUBS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleExperimentSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-curve", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Table 1") || !strings.Contains(out, "delivered capacity") {
		t.Fatalf("selection not honoured:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-table2", "-quick", "-battery", "bogus"}, &buf); err == nil {
		t.Fatal("expected battery model error")
	}
}

// stripTimings removes the "(... 0.3s)" timing lines, the only part of the
// output that may legitimately differ between runs.
func stripTimings(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "(") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestParallelByteIdenticalOutput is the CLI-level determinism guarantee:
// the same seed emits byte-identical tables at any -parallel value.
func TestParallelByteIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep skipped in -short mode")
	}
	args := []string{"-table2", "-grid", "-quick", "-battery", "kibam", "-seed", "7"}
	var seq bytes.Buffer
	if err := run(append([]string{"-parallel", "1"}, args...), &seq); err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []string{"4", "13"} {
		var par bytes.Buffer
		if err := run(append([]string{"-parallel", parallel}, args...), &par); err != nil {
			t.Fatal(err)
		}
		if stripTimings(seq.String()) != stripTimings(par.String()) {
			t.Fatalf("-parallel %s output differs from -parallel 1:\n%s\n---\n%s", parallel, seq.String(), par.String())
		}
	}
}

// TestRunSubcommandMatchesLegacy checks that the registry-dispatched run
// subcommand emits exactly the bytes of the historical flag interface.
func TestRunSubcommandMatchesLegacy(t *testing.T) {
	var legacy, sub bytes.Buffer
	if err := run([]string{"-table2", "-curve", "-quick", "-battery", "kibam"}, &legacy); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "table2", "curve", "-quick", "-battery", "kibam"}, &sub); err != nil {
		t.Fatal(err)
	}
	if stripTimings(legacy.String()) != stripTimings(sub.String()) {
		t.Fatalf("run subcommand differs from legacy flags:\n%s\n---\n%s", sub.String(), legacy.String())
	}
}

// TestListCommand checks that list names every registered experiment.
func TestListCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range experiments.Names() {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("list output missing %q:\n%s", name, buf.String())
		}
	}
}

// TestRunSubcommandErrors covers the dispatch error paths.
func TestRunSubcommandErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run"}, &buf); err == nil {
		t.Fatal("expected error for run without names")
	}
	if err := run([]string{"run", "bogus", "-quick"}, &buf); err == nil || !strings.Contains(err.Error(), "table2") {
		t.Fatalf("unknown experiment error should list registered names, got %v", err)
	}
	if err := run([]string{"run", "table2", "-quick", "trailing"}, &buf); err == nil {
		t.Fatal("expected error for names after flags")
	}
	if err := run([]string{"run", "table2", "-quick", "-shard", "2/2"}, &buf); err == nil {
		t.Fatal("expected error for out-of-range shard")
	}
	if err := run([]string{"run", "curve", "-quick", "-shard", "0/2"}, &buf); err == nil {
		t.Fatal("expected error for sharding the deterministic curve")
	}
	// The non-shardable selection must fail before any experiment runs, even
	// when the curve is not the first name in the list.
	if err := run([]string{"run", "table2", "curve", "-quick", "-shard", "0/2"}, &buf); err == nil || !strings.Contains(err.Error(), "curve") {
		t.Fatalf("sharded run containing the curve should fail fast, got %v", err)
	}
	if err := run([]string{"bogus-command"}, &buf); err == nil {
		t.Fatal("expected error for unknown subcommand-looking flag")
	}
	if err := run([]string{"merge"}, &buf); err == nil {
		t.Fatal("expected error for merge without files")
	}
	if err := run([]string{"merge", filepath.Join(t.TempDir(), "missing.json")}, &buf); err == nil {
		t.Fatal("expected error for missing artifact")
	}
}

// shardMergeOutputs runs the unsharded reference and the 2-way shard + merge
// pipeline for the given extra flags, returning both stripped outputs.
func shardMergeOutputs(t *testing.T, extra ...string) (unsharded, merged string) {
	t.Helper()
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	s0 := filepath.Join(dir, "s0.json")
	s1 := filepath.Join(dir, "s1.json")

	base := append([]string{"run", "table2", "grid", "-quick", "-battery", "kibam"}, extra...)
	var fullOut bytes.Buffer
	if err := run(append(base, "-o", full), &fullOut); err != nil {
		t.Fatal(err)
	}
	var shardOut bytes.Buffer
	if err := run(append(base, "-shard", "0/2", "-o", s0), &shardOut); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-shard", "1/2", "-o", s1), &shardOut); err != nil {
		t.Fatal(err)
	}
	var mergeOut bytes.Buffer
	if err := run([]string{"merge", "-o", filepath.Join(dir, "merged.json"), s0, s1}, &mergeOut); err != nil {
		t.Fatal(err)
	}
	return stripTimings(fullOut.String()), stripTimings(mergeOut.String())
}

// TestShardMergeGolden is the CLI-level shard/merge guarantee: running the
// quick Table 2 and scenario grid as two shards and merging the partial
// report artifacts emits byte-identical formatted output to the unsharded
// run — with fixed set counts and with -ci adaptive set counts (capped by
// -max-sets so every shard executes the same absolute batch grid).
func TestShardMergeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shard/merge sweep skipped in -short mode")
	}
	unsharded, merged := shardMergeOutputs(t)
	if unsharded != merged {
		t.Fatalf("fixed-count shard+merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", unsharded, merged)
	}
	unsharded, merged = shardMergeOutputs(t, "-ci", "1e-12", "-max-sets", "8")
	if unsharded != merged {
		t.Fatalf("adaptive shard+merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", unsharded, merged)
	}
}

// TestReportArtifact checks the -o JSON artifact: it round-trips through
// ReadArtifact and holds one report per experiment run.
func TestReportArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	if err := run([]string{"run", "table2", "curve", "-quick", "-battery", "kibam", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	reports, err := experiments.ReadArtifact(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Experiment != "table2" || reports[1].Experiment != "curve" {
		t.Fatalf("artifact reports = %+v", reports)
	}
	if reports[0].Version != experiments.ReportVersion {
		t.Fatalf("report version = %d", reports[0].Version)
	}
}

// TestTimeoutFlag checks that an absurdly small -timeout aborts the run with
// a context error instead of hanging.
func TestTimeoutFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-table2", "-quick", "-timeout", "1ns"}, &buf)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// fakeShardArtifact writes an artifact holding one minimal shard partial
// (coverage validation runs before any cell is touched).
func fakeShardArtifact(t *testing.T, dir, name string, index, count int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	rep := &experiments.Report{
		Version:    experiments.ReportVersion,
		Experiment: "table2",
		Shard:      &experiments.ShardInfo{Index: index, Count: count},
	}
	if err := experiments.WriteArtifact(file, []*experiments.Report{rep}); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeRejectsGapAndDuplicate is the CLI guarantee behind shard fleets:
// merging with a forgotten partial (gap) or the same partial twice
// (duplicate) fails loudly, naming the shard, instead of silently averaging
// wrong tables.
func TestMergeRejectsGapAndDuplicate(t *testing.T) {
	dir := t.TempDir()
	s0 := fakeShardArtifact(t, dir, "s0.json", 0, 3)
	s2 := fakeShardArtifact(t, dir, "s2.json", 2, 3)

	var buf bytes.Buffer
	err := run([]string{"merge", s0, s2}, &buf)
	if err == nil || !strings.Contains(err.Error(), "missing partial(s) 1/3") {
		t.Fatalf("gap merge err = %v, want missing-shard error", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("gap merge printed output before failing:\n%s", buf.String())
	}

	a0 := fakeShardArtifact(t, dir, "a0.json", 0, 2)
	b0 := fakeShardArtifact(t, dir, "b0.json", 0, 2)
	err = run([]string{"merge", a0, b0}, &buf)
	if err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("duplicate merge err = %v, want overlapping-shard error", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("duplicate merge printed output before failing:\n%s", buf.String())
	}
}

// startTestDaemon spins an in-process experiment daemon for submit tests.
func startTestDaemon(t *testing.T) string {
	t.Helper()
	srv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

// TestSubmitMatchesLocalRun is the CLI end of the serving contract: submit
// against a daemon — unsharded and with -shards 2 — prints the same tables
// as local run and writes a byte-identical -o artifact.
func TestSubmitMatchesLocalRun(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round-trips skipped in -short mode")
	}
	url := startTestDaemon(t)
	dir := t.TempDir()

	localOut := filepath.Join(dir, "local.json")
	var local bytes.Buffer
	if err := run([]string{"run", "table2", "-quick", "-battery", "kibam", "-o", localOut}, &local); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}

	for i, extra := range [][]string{nil, {"-shards", "2"}} {
		servedOut := filepath.Join(dir, "served.json")
		args := append([]string{"submit", "table2", "-quick", "-battery", "kibam",
			"-server", url, "-poll", "10ms", "-o", servedOut}, extra...)
		var served bytes.Buffer
		if err := run(args, &served); err != nil {
			t.Fatal(err)
		}
		if stripTimings(local.String()) != stripTimings(served.String()) {
			t.Fatalf("case %d: submit tables differ from local run:\n--- local ---\n%s\n--- served ---\n%s",
				i, local.String(), served.String())
		}
		got, err := os.ReadFile(servedOut)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d: submit -o artifact differs from local run -o", i)
		}
	}
}

// TestSubmitErrors covers the submit flag and validation error paths without
// needing a daemon.
func TestSubmitErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"submit"}, &buf); err == nil {
		t.Fatal("expected error for submit without names")
	}
	if err := run([]string{"submit", "bogus"}, &buf); err == nil || !strings.Contains(err.Error(), "table2") {
		t.Fatalf("unknown experiment error should list registered names, got %v", err)
	}
	if err := run([]string{"submit", "table2", "-shard", "0/2"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "-shards") {
		t.Fatalf("submit -shard should point at -shards, got %v", err)
	}
	if err := run([]string{"submit", "table2", "-parallel", "4"}, &buf); err == nil {
		t.Fatal("expected error for daemon-owned -parallel")
	}
	if err := run([]string{"submit", "curve", "-shards", "2"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "curve") {
		t.Fatalf("sharded submit of the curve should fail fast, got %v", err)
	}
	// Unreachable daemon: the transport error must surface.
	if err := run([]string{"submit", "table2", "-quick", "-server", "http://127.0.0.1:1", "-poll", "1ms"}, &buf); err == nil {
		t.Fatal("expected transport error for unreachable daemon")
	}
}
