package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"-all", "-quick", "-battery", "kibam"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 6", "Table 2", "delivered capacity", "BAS-2", "pUBS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleExperimentSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-curve", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Table 1") || !strings.Contains(out, "delivered capacity") {
		t.Fatalf("selection not honoured:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-table2", "-quick", "-battery", "bogus"}, &buf); err == nil {
		t.Fatal("expected battery model error")
	}
}
