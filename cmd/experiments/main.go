// Command experiments regenerates the tables and figures of the paper's
// evaluation section:
//
//	-table1   Table 1  — ordering heuristics vs the optimal order (single DAGs)
//	-figure6  Figure 6 — ordering schemes vs a near-optimal baseline
//	-table2   Table 2  — charge delivered and battery lifetime per scheme
//	-curve    load vs delivered-capacity battery characterisation curve
//	-all      everything above
//
// The -quick flag runs reduced versions (the same configurations the
// benchmark harness uses); the full versions match the parameters recorded in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"battsched/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		table1   = fs.Bool("table1", false, "regenerate Table 1")
		figure6  = fs.Bool("figure6", false, "regenerate Figure 6")
		table2   = fs.Bool("table2", false, "regenerate Table 2")
		curve    = fs.Bool("curve", false, "regenerate the load vs delivered-capacity curve")
		ablation = fs.Bool("ablation", false, "run the estimate-quality ablation (not in the paper)")
		all      = fs.Bool("all", false, "regenerate everything")
		quick    = fs.Bool("quick", false, "use the reduced (benchmark) configurations")
		seed     = fs.Int64("seed", 1, "random seed")
		sets     = fs.Int("sets", 0, "override the number of task-graph sets (Table 2)")
		util     = fs.Float64("utilization", 0, "override the utilisation (Figure 6 and Table 2)")
		battery  = fs.String("battery", "stochastic", "battery model for Table 2: stochastic, kibam, diffusion, peukert")
		ccFig6   = fs.Bool("figure6-ccedf", false, "use ccEDF instead of laEDF for Figure 6 frequency setting")
		oracle   = fs.Bool("oracle", false, "give pUBS perfect estimates of actual requirements (Table 2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*table1 && !*figure6 && !*table2 && !*curve && !*ablation {
		*all = true
	}
	if *all {
		*table1, *figure6, *table2, *curve = true, true, true, true
	}

	if *table1 {
		cfg := experiments.DefaultTable1Config()
		if *quick {
			cfg = experiments.QuickTable1Config()
		}
		cfg.Seed = *seed
		start := time.Now()
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatTable1(rows))
		fmt.Fprintf(stdout, "(%d DAGs per row, %.1fs)\n\n", cfg.GraphsPerCount, time.Since(start).Seconds())
	}

	if *figure6 {
		cfg := experiments.DefaultFigure6Config()
		if *quick {
			cfg = experiments.QuickFigure6Config()
		}
		cfg.Seed = *seed
		cfg.UseCCEDF = *ccFig6
		if *util > 0 {
			cfg.Utilization = *util
		}
		start := time.Now()
		rows, err := experiments.RunFigure6(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatFigure6(rows))
		alg := "laEDF"
		if cfg.UseCCEDF {
			alg = "ccEDF"
		}
		fmt.Fprintf(stdout, "(%d sets per point, %s frequency setting, utilisation %.2f, %.1fs)\n\n",
			cfg.SetsPerCount, alg, cfg.Utilization, time.Since(start).Seconds())
	}

	if *table2 {
		cfg := experiments.DefaultTable2Config()
		if *quick {
			cfg = experiments.QuickTable2Config()
		}
		cfg.Seed = *seed
		cfg.BatteryName = *battery
		cfg.Battery = nil
		cfg.OracleEstimates = *oracle
		if *sets > 0 {
			cfg.Sets = *sets
		}
		if *util > 0 {
			cfg.Utilization = *util
		}
		start := time.Now()
		rows, err := experiments.RunTable2(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatTable2(rows, cfg.BatteryName, cfg.Utilization))
		fmt.Fprintf(stdout, "(%d task-graph sets, %.1fs)\n\n", cfg.Sets, time.Since(start).Seconds())
	}

	if *curve {
		cfg := experiments.DefaultCurveConfig()
		if *quick {
			cfg = experiments.QuickCurveConfig()
		}
		start := time.Now()
		series, err := experiments.RunLoadCapacityCurve(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatCurve(series))
		fmt.Fprintf(stdout, "(%.1fs)\n", time.Since(start).Seconds())
	}

	if *ablation {
		cfg := experiments.DefaultEstimateAblationConfig()
		if *quick {
			cfg = experiments.QuickEstimateAblationConfig()
		}
		cfg.Seed = *seed
		if *util > 0 {
			cfg.Utilization = *util
		}
		start := time.Now()
		rows, err := experiments.RunEstimateAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatEstimateAblation(rows))
		fmt.Fprintf(stdout, "(%d sets, %.1fs)\n", cfg.Sets, time.Since(start).Seconds())
	}
	return nil
}
