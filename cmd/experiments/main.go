// Command experiments regenerates the tables and figures of the paper's
// evaluation section through the experiment registry:
//
//	experiments list                     show every registered experiment
//	experiments run <name>... [flags]    run experiments by registry name
//	experiments submit <name>... -server URL [flags]
//	                                     run experiments on a remote
//	                                     battschedd daemon (-shards n fans
//	                                     each job out server-side)
//	experiments merge [-o out] a.json b.json...
//	                                     merge shard partials and render the
//	                                     combined tables
//
// Registered experiments: table1, figure6, table2, curve, ablation, grid
// (see EXPERIMENTS.md for each experiment's paper provenance and knobs);
// "run all" expands to the paper's own artifacts (table1 figure6 table2
// curve). The historical flag interface (-table2 -quick ...) keeps working
// and dispatches through the same registry.
//
// Every experiment runs on the parallel job-grid harness; -parallel selects
// the worker count (default: all cores) and the emitted tables are
// byte-identical for any worker count with the same seed. -timeout bounds the
// whole run, -progress reports per-job completion on stderr (a rewriting
// status line on a terminal, plain newline lines when redirected).
//
// -ci enables adaptive set counts: each stochastic experiment keeps running
// batches of task-graph sets until the relative Student-t CI95 half-width of
// its key metric (battery lifetime for Table 2 and the grid, normalised
// energy otherwise) drops below the target, bounded by -max-sets. The
// samples/sets columns of the emitted tables report the counts actually run.
//
// -o report.json writes the run's structured Reports (accumulator-backed
// metric cells) as a versioned JSON artifact. -shard i/n restricts a run to
// its shard of the absolute set indices and emits a partial report; the merge
// subcommand combines the partials of all n shards into exactly the tables
// the unsharded run prints:
//
//	experiments run table2 -quick -shard 0/2 -o s0.json
//	experiments run table2 -quick -shard 1/2 -o s1.json
//	experiments merge -o merged.json s0.json s1.json
//
// The -quick flag runs reduced versions (the same configurations the
// benchmark harness uses); the full versions match the parameters recorded in
// EXPERIMENTS.md.
//
// -cpuprofile and -memprofile write runtime/pprof profiles of a local run
// (run or the legacy flag interface) for `go tool pprof`; submit rejects
// them because its compute happens on the daemon.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/profutil"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// stderrIsTerminal reports whether stderr is a character device, so carriage
// returns and ANSI erases will actually rewrite a status line instead of
// littering a redirected log.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// progressPrinter returns a RunOptions.Progress callback and a done function
// that finishes the output. On a terminal it rewrites one stderr status line
// and clears it; on a redirected stream it falls back to a plain newline per
// decile of completed jobs, so logs stay readable.
func progressPrinter(name string, enabled bool) (func(done, total int), func()) {
	if !enabled {
		return nil, func() {}
	}
	if stderrIsTerminal() {
		return func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d jobs", name, done, total)
			}, func() {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
	}
	last := -1
	return func(done, total int) {
		if total <= 0 {
			return
		}
		if decile := done * 10 / total; decile != last {
			last = decile
			fmt.Fprintf(os.Stderr, "%s: %d/%d jobs\n", name, done, total)
		}
	}, func() {}
}

// runnerFlags carries the execution and selection flags shared by every
// experiment run (both the run subcommand and the legacy flag interface).
type runnerFlags struct {
	quick    bool
	seed     int64
	sets     int
	util     float64
	battery  string
	oracle   bool
	ccFig6   bool
	maxstep  float64
	parallel int
	timeout  time.Duration
	progress bool
	targetCI float64
	maxSets  int
	shard    string
	out      string
	cpuProf  string
	memProf  string
}

// register wires the shared flags into a FlagSet.
func (f *runnerFlags) register(fs *flag.FlagSet) {
	fs.BoolVar(&f.quick, "quick", false, "use the reduced (benchmark) configurations")
	fs.Int64Var(&f.seed, "seed", 1, "random seed (0 selects the default seed 1)")
	fs.IntVar(&f.sets, "sets", 0, "override the per-row set/graph count of the stochastic experiments")
	fs.Float64Var(&f.util, "utilization", 0, "override the worst-case utilisation (table1, figure6, table2, ablation)")
	fs.StringVar(&f.battery, "battery", "", "battery model by registry name for table2, grid and curve (default: each driver's default; unknown names list the registered models)")
	fs.BoolVar(&f.oracle, "oracle", false, "give pUBS perfect estimates of actual requirements (table2, grid)")
	fs.BoolVar(&f.ccFig6, "figure6-ccedf", false, "use ccEDF instead of laEDF for Figure 6 frequency setting")
	fs.Float64Var(&f.maxstep, "maxstep", 0, "force uniform battery stepping with this substep for the curve (0: analytic fast path)")
	fs.IntVar(&f.parallel, "parallel", 0, "worker count for the job-grid runner (<= 0: all cores, 1: sequential)")
	fs.DurationVar(&f.timeout, "timeout", 0, "abort the whole run after this duration (0: no limit)")
	fs.BoolVar(&f.progress, "progress", false, "report per-job progress on stderr")
	fs.Float64Var(&f.targetCI, "ci", 0, "adaptive set counts: run batches of sets until the relative CI95 half-width of each experiment's key metric drops below this target (0: fixed set counts)")
	fs.IntVar(&f.maxSets, "max-sets", 0, "hard cap on adaptively grown set counts (0: 8x the configured count; only with -ci)")
	fs.StringVar(&f.shard, "shard", "", "run only shard i of n (\"i/n\") of the absolute set indices and emit a partial report; combine with the merge subcommand")
	fs.StringVar(&f.out, "o", "", "write the run's structured reports to this JSON artifact")
	fs.StringVar(&f.cpuProf, "cpuprofile", "", "write a runtime/pprof CPU profile of the local run to this file")
	fs.StringVar(&f.memProf, "memprofile", "", "write a runtime/pprof allocation profile of the local run to this file")
}

// spec builds the experiment Spec the flags describe.
func (f *runnerFlags) spec() (experiments.Spec, error) {
	shard, err := experiments.ParseShard(f.shard)
	if err != nil {
		return experiments.Spec{}, err
	}
	return experiments.Spec{
		Quick:       f.quick,
		Seed:        f.seed,
		Sets:        f.sets,
		Utilization: f.util,
		Battery:     f.battery,
		Oracle:      f.oracle,
		CCEDF:       f.ccFig6,
		MaxStep:     f.maxstep,
		RunOptions: experiments.RunOptions{
			Parallel: f.parallel,
			TargetCI: f.targetCI,
			MaxSets:  f.maxSets,
			Shard:    shard,
		},
	}, nil
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return cmdRun(args[1:], stdout)
		case "submit":
			return cmdSubmit(args[1:], stdout)
		case "merge":
			return cmdMerge(args[1:], stdout)
		case "list":
			return cmdList(stdout)
		case "help", "-h", "-help", "--help":
			return cmdList(stdout)
		}
	}
	// Historical flag interface: experiment selection by boolean flags.
	return cmdLegacy(args, stdout)
}

// cmdList prints the registered experiments.
func cmdList(stdout io.Writer) error {
	fmt.Fprintln(stdout, "usage: experiments run <name>... [flags] | experiments submit <name>... -server URL [flags] | experiments merge [-o out] shard.json... | experiments list")
	fmt.Fprintln(stdout, "\nregistered experiments (run \"all\" selects the paper set: table1 figure6 table2 curve):")
	for _, name := range experiments.Names() {
		d, err := experiments.Lookup(name)
		if err != nil {
			return err
		}
		shard := ""
		if d.Shardable {
			shard = " [shardable]"
		}
		fmt.Fprintf(stdout, "  %-9s %s%s\n", d.Name, d.Title, shard)
	}
	fmt.Fprintln(stdout, "\nsee EXPERIMENTS.md for per-experiment provenance, knobs and the shard/merge workflow")
	return nil
}

// cmdRun executes `run <name>... [flags]`: experiment names are the leading
// non-flag arguments and dispatch data-driven through the registry.
func cmdRun(args []string, stdout io.Writer) error {
	names, args := leadingNames(args)
	if len(names) == 0 {
		return fmt.Errorf("run: no experiments named (try \"experiments list\")")
	}
	fs := flag.NewFlagSet("experiments run", flag.ContinueOnError)
	var f runnerFlags
	f.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("run: experiment names must precede the flags (unexpected %q)", fs.Arg(0))
	}
	expanded, err := expandNames(names)
	if err != nil {
		return err
	}
	return execute(expanded, f, stdout)
}

// expandNames expands "all" to the paper set, validates every name against
// the registry and drops duplicates, preserving order.
func expandNames(names []string) ([]string, error) {
	var expanded []string
	seen := map[string]bool{}
	for _, name := range names {
		group := []string{name}
		if name == "all" {
			group = experiments.PaperExperiments()
		}
		for _, n := range group {
			if _, err := experiments.Lookup(n); err != nil {
				return nil, err
			}
			if !seen[n] {
				seen[n] = true
				expanded = append(expanded, n)
			}
		}
	}
	return expanded, nil
}

// leadingNames splits the leading non-flag arguments (experiment names) off
// args.
func leadingNames(args []string) ([]string, []string) {
	var names []string
	for len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		names = append(names, args[0])
		args = args[1:]
	}
	return names, args
}

// cmdSubmit drives a remote experiment daemon (cmd/battschedd) with the same
// selection and spec flags as local run: each named experiment is submitted
// as one job (-shards n fans it out over n server-side shard units), polled
// to completion, rendered like run renders local reports, and written with
// -o as a report artifact. A single-experiment -o file is the daemon's
// artifact byte-for-byte — identical to the file the equivalent local
// `run -o` writes.
func cmdSubmit(args []string, stdout io.Writer) error {
	names, args := leadingNames(args)
	if len(names) == 0 {
		return fmt.Errorf("submit: no experiments named (try \"experiments list\")")
	}
	fs := flag.NewFlagSet("experiments submit", flag.ContinueOnError)
	var f runnerFlags
	f.register(fs)
	server := fs.String("server", "http://127.0.0.1:8344", "experiment service base URL")
	shards := fs.Int("shards", 0, "fan each job out over this many server-side shard units (0 or 1: unsharded)")
	poll := fs.Duration("poll", 200*time.Millisecond, "job status poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("submit: experiment names must precede the flags (unexpected %q)", fs.Arg(0))
	}
	if f.shard != "" {
		return fmt.Errorf("submit: -shard selects a local shard slice; use -shards n to fan out on the service")
	}
	if f.parallel != 0 {
		return fmt.Errorf("submit: -parallel is daemon-owned (start battschedd with -parallel)")
	}
	if f.cpuProf != "" || f.memProf != "" {
		return fmt.Errorf("submit: -cpuprofile/-memprofile profile local runs; the compute happens on the daemon")
	}
	spec, err := f.spec()
	if err != nil {
		return err
	}
	expanded, err := expandNames(names)
	if err != nil {
		return err
	}
	// Fail fast on a non-shardable selection before submitting anything.
	for _, name := range expanded {
		d, err := experiments.Lookup(name)
		if err != nil {
			return err
		}
		if *shards > 1 && !d.Shardable {
			return fmt.Errorf("submit: experiment %q is deterministic and does not shard (drop it or -shards)", name)
		}
	}

	ctx := context.Background()
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	cli := client.New(*server)
	reqSpec := service.SpecRequestFrom(spec)
	// Submit every job up front — the daemon's queue is asynchronous, so a
	// multi-experiment submission runs concurrently on its worker pool — then
	// poll and render in submission order to keep the output deterministic.
	type submission struct {
		name  string
		id    string
		start time.Time
	}
	subs := make([]submission, 0, len(expanded))
	for _, name := range expanded {
		st, err := cli.Submit(ctx, service.JobRequest{Experiment: name, Spec: reqSpec, Shards: *shards})
		if err != nil {
			return err
		}
		// The trace id threads this submission through the fleet's JSONL event
		// logs (grep it in <cache-dir>/events.jsonl on the daemon and workers).
		fmt.Fprintf(os.Stderr, "experiments: %s submitted as %s trace=%s\n", name, st.ID, st.TraceID)
		subs = append(subs, submission{name: name, id: st.ID, start: time.Now()})
	}
	var (
		artifacts [][]byte
		all       []*experiments.Report
	)
	for _, sub := range subs {
		name := sub.name
		cb, clear := progressPrinter(name, f.progress)
		st, err := cli.Wait(ctx, sub.id, *poll, func(s service.JobStatus) {
			if cb == nil {
				return
			}
			done, total := 0, 0
			for _, sh := range s.Shards {
				done += sh.Done
				total += sh.Total
			}
			if total > 0 {
				cb(done, total)
			}
		})
		clear()
		if err != nil {
			return err
		}
		if st.State == service.StateFailed {
			return fmt.Errorf("submit: job %s (%s) failed: %s", st.ID, name, st.Error)
		}
		if st.Cached {
			fmt.Fprintf(os.Stderr, "experiments: %s served from cache (%.12s)\n", name, st.Hash)
		}
		raw, err := cli.ReportArtifact(ctx, st.ID)
		if err != nil {
			return err
		}
		reports, err := experiments.ReadArtifact(bytes.NewReader(raw))
		if err != nil {
			return err
		}
		for _, rep := range reports {
			out, err := experiments.FormatReport(rep)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, out)
			fmt.Fprint(stdout, experiments.Footer(rep, time.Since(sub.start)))
		}
		artifacts = append(artifacts, raw)
		all = append(all, reports...)
	}
	if f.out == "" {
		return nil
	}
	if len(artifacts) == 1 {
		// One job: keep the daemon's artifact bytes verbatim (the
		// byte-identity contract with the local run -o file).
		return os.WriteFile(f.out, artifacts[0], 0o644)
	}
	return writeArtifactFile(f.out, all)
}

// execute runs the named experiments in order, prints each rendered table and
// writes the artifact when requested. -cpuprofile/-memprofile profile the
// whole run (runtime/pprof), profiles flushed after the last experiment.
func execute(names []string, f runnerFlags, stdout io.Writer) error {
	stop, err := profutil.Start(f.cpuProf, f.memProf)
	if err != nil {
		return err
	}
	err = executeAll(names, f, stdout)
	if serr := stop(); err == nil {
		err = serr
	}
	return err
}

// executeAll is execute without the profiling envelope.
func executeAll(names []string, f runnerFlags, stdout io.Writer) error {
	ctx := context.Background()
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	spec, err := f.spec()
	if err != nil {
		return err
	}
	// Fail fast on a non-shardable selection before any experiment runs:
	// a sharded fleet must not lose hours of completed work to a late
	// dispatch error on the next name in the list.
	for _, name := range names {
		d, err := experiments.Lookup(name)
		if err != nil {
			return err
		}
		if spec.Shard.Enabled() && !d.Shardable {
			return fmt.Errorf("run: experiment %q is deterministic and does not shard (drop it from the sharded run)", name)
		}
	}
	var reports []*experiments.Report
	for _, name := range names {
		s := spec
		cb, clear := progressPrinter(name, f.progress)
		s.Progress = cb
		start := time.Now()
		rep, err := experiments.Run(ctx, name, s)
		clear()
		if err != nil {
			return err
		}
		out, err := experiments.FormatReport(rep)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
		fmt.Fprint(stdout, experiments.Footer(rep, time.Since(start)))
		reports = append(reports, rep)
	}
	return writeArtifactFile(f.out, reports)
}

// writeArtifactFile writes reports to path as a JSON artifact (no-op for "").
func writeArtifactFile(path string, reports []*experiments.Report) error {
	if path == "" {
		return nil
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteArtifact(file, reports); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// cmdMerge combines the shard partials of one or more experiments: every
// artifact must hold the same experiments, each run with -shard i/n for a
// complete 0..n-1 partition. The merged tables render exactly like the
// unsharded run's; -o writes the merged reports as an artifact.
func cmdMerge(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments merge", flag.ContinueOnError)
	out := fs.String("o", "", "write the merged reports to this JSON artifact")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("merge: no report artifacts named")
	}
	byFile := make([][]*experiments.Report, len(files))
	for i, path := range files {
		file, err := os.Open(path)
		if err != nil {
			return err
		}
		reports, err := experiments.ReadArtifact(file)
		file.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if len(reports) == 0 {
			return fmt.Errorf("%s: empty report artifact", path)
		}
		byFile[i] = reports
	}
	// The first artifact fixes the experiment order; every artifact must
	// contribute exactly one partial per experiment.
	groups := make([][]*experiments.Report, len(byFile[0]))
	for ri, first := range byFile[0] {
		parts := make([]*experiments.Report, 0, len(byFile))
		for fi, reports := range byFile {
			if ri >= len(reports) || reports[ri].Experiment != first.Experiment {
				return fmt.Errorf("%s: expected a %q report at position %d (all artifacts must run the same experiments)",
					files[fi], first.Experiment, ri)
			}
			parts = append(parts, reports[ri])
		}
		groups[ri] = parts
	}
	// Validate shard coverage of every experiment up front — a missing or
	// duplicated partial anywhere must fail the whole merge before any table
	// is printed, not after experiment 1's output already scrolled by.
	for _, parts := range groups {
		if err := experiments.ValidateShardCoverage(parts); err != nil {
			return err
		}
	}
	var merged []*experiments.Report
	for _, parts := range groups {
		start := time.Now()
		rep, err := experiments.MergeReports(parts)
		if err != nil {
			return err
		}
		text, err := experiments.FormatReport(rep)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, text)
		fmt.Fprint(stdout, experiments.Footer(rep, time.Since(start)))
		merged = append(merged, rep)
	}
	return writeArtifactFile(*out, merged)
}

// cmdLegacy keeps the historical boolean-flag interface working, translating
// it onto the registry dispatch. Default invocations emit the same bytes as
// before; the one deliberate extension is that an explicit -battery now also
// reaches the grid and curve drivers (it used to apply to Table 2 only).
func cmdLegacy(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		table1   = fs.Bool("table1", false, "regenerate Table 1")
		figure6  = fs.Bool("figure6", false, "regenerate Figure 6")
		table2   = fs.Bool("table2", false, "regenerate Table 2")
		curve    = fs.Bool("curve", false, "regenerate the load vs delivered-capacity curve")
		ablation = fs.Bool("ablation", false, "run the estimate-quality ablation (not in the paper)")
		grid     = fs.Bool("grid", false, "run the scenario-grid sweep (utilisation x battery x scheme, not in the paper)")
		all      = fs.Bool("all", false, "regenerate every paper experiment")
	)
	var f runnerFlags
	f.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (subcommands are: run, merge, list)", fs.Arg(0))
	}
	if !*table1 && !*figure6 && !*table2 && !*curve && !*ablation && !*grid {
		*all = true
	}
	if *all {
		*table1, *figure6, *table2, *curve = true, true, true, true
	}
	var names []string
	for _, sel := range []struct {
		on   bool
		name string
	}{
		{*table1, "table1"}, {*figure6, "figure6"}, {*table2, "table2"},
		{*curve, "curve"}, {*ablation, "ablation"}, {*grid, "grid"},
	} {
		if sel.on {
			names = append(names, sel.name)
		}
	}
	return execute(names, f, stdout)
}
