// Command experiments regenerates the tables and figures of the paper's
// evaluation section:
//
//	-table1   Table 1  — ordering heuristics vs the optimal order (single DAGs)
//	-figure6  Figure 6 — ordering schemes vs a near-optimal baseline
//	-table2   Table 2  — charge delivered and battery lifetime per scheme
//	-curve    load vs delivered-capacity battery characterisation curve
//	-grid     scenario grid: utilisation × battery model × scheme sweep
//	-all      every paper experiment above
//
// Every experiment runs on the parallel job-grid harness; -parallel selects
// the worker count (default: all cores) and the emitted tables are
// byte-identical for any worker count with the same seed. -timeout bounds the
// whole run, -progress reports per-job completion on stderr.
//
// -ci enables adaptive set counts: each stochastic experiment keeps running
// batches of task-graph sets until the relative Student-t CI95 half-width of
// its key metric (battery lifetime for Table 2 and the grid, normalised
// energy otherwise) drops below the target, bounded by -max-sets. The
// samples/sets columns of the emitted tables report the counts actually run.
//
// The -quick flag runs reduced versions (the same configurations the
// benchmark harness uses); the full versions match the parameters recorded in
// EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"battsched/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// progressPrinter returns a RunOptions.Progress callback that rewrites one
// stderr status line, and a done function that clears it.
func progressPrinter(name string, enabled bool) (func(done, total int), func()) {
	if !enabled {
		return nil, func() {}
	}
	return func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d jobs", name, done, total)
		}, func() {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
}

// runnerFlags carries the shared execution flags of every experiment.
type runnerFlags struct {
	parallel int
	progress bool
	targetCI float64
	maxSets  int
}

// apply wires the shared flags into an experiment's RunOptions and returns
// the function that clears the progress line once the experiment finishes.
func (f runnerFlags) apply(opts *experiments.RunOptions, name string) func() {
	opts.Parallel = f.parallel
	opts.TargetCI = f.targetCI
	opts.MaxSets = f.maxSets
	cb, clear := progressPrinter(name, f.progress)
	opts.Progress = cb
	return clear
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		table1   = fs.Bool("table1", false, "regenerate Table 1")
		figure6  = fs.Bool("figure6", false, "regenerate Figure 6")
		table2   = fs.Bool("table2", false, "regenerate Table 2")
		curve    = fs.Bool("curve", false, "regenerate the load vs delivered-capacity curve")
		ablation = fs.Bool("ablation", false, "run the estimate-quality ablation (not in the paper)")
		grid     = fs.Bool("grid", false, "run the scenario-grid sweep (utilisation x battery x scheme, not in the paper)")
		all      = fs.Bool("all", false, "regenerate every paper experiment")
		quick    = fs.Bool("quick", false, "use the reduced (benchmark) configurations")
		seed     = fs.Int64("seed", 1, "random seed")
		sets     = fs.Int("sets", 0, "override the number of task-graph sets (Table 2 and grid)")
		util     = fs.Float64("utilization", 0, "override the utilisation (Figure 6 and Table 2)")
		battery  = fs.String("battery", "stochastic", "battery model for Table 2: stochastic, kibam, diffusion, peukert")
		ccFig6   = fs.Bool("figure6-ccedf", false, "use ccEDF instead of laEDF for Figure 6 frequency setting")
		oracle   = fs.Bool("oracle", false, "give pUBS perfect estimates of actual requirements (Table 2)")
		parallel = fs.Int("parallel", 0, "worker count for the job-grid runner (<= 0: all cores, 1: sequential)")
		timeout  = fs.Duration("timeout", 0, "abort the whole run after this duration (0: no limit)")
		progress = fs.Bool("progress", false, "report per-job progress on stderr")
		targetCI = fs.Float64("ci", 0, "adaptive set counts: run batches of sets until the relative CI95 half-width of each experiment's key metric drops below this target (0: fixed set counts)")
		maxSets  = fs.Int("max-sets", 0, "hard cap on adaptively grown set counts (0: 8x the configured count; only with -ci)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rf := runnerFlags{parallel: *parallel, progress: *progress, targetCI: *targetCI, maxSets: *maxSets}
	if !*table1 && !*figure6 && !*table2 && !*curve && !*ablation && !*grid {
		*all = true
	}
	if *all {
		*table1, *figure6, *table2, *curve = true, true, true, true
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *table1 {
		cfg := experiments.DefaultTable1Config()
		if *quick {
			cfg = experiments.QuickTable1Config()
		}
		cfg.Seed = *seed
		clear := rf.apply(&cfg.RunOptions, "table1")
		start := time.Now()
		rows, err := experiments.RunTable1(ctx, cfg)
		clear()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatTable1(rows))
		perRow := cfg.GraphsPerCount
		if len(rows) > 0 {
			perRow = rows[0].Samples // reports the adaptively grown count
		}
		fmt.Fprintf(stdout, "(%d DAGs per row, %.1fs)\n\n", perRow, time.Since(start).Seconds())
	}

	if *figure6 {
		cfg := experiments.DefaultFigure6Config()
		if *quick {
			cfg = experiments.QuickFigure6Config()
		}
		cfg.Seed = *seed
		cfg.UseCCEDF = *ccFig6
		clear := rf.apply(&cfg.RunOptions, "figure6")
		if *util > 0 {
			cfg.Utilization = *util
		}
		start := time.Now()
		rows, err := experiments.RunFigure6(ctx, cfg)
		clear()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatFigure6(rows))
		alg := "laEDF"
		if cfg.UseCCEDF {
			alg = "ccEDF"
		}
		perPoint := cfg.SetsPerCount
		if len(rows) > 0 {
			perPoint = rows[0].Samples // reports the adaptively grown count
		}
		fmt.Fprintf(stdout, "(%d sets per point, %s frequency setting, utilisation %.2f, %.1fs)\n\n",
			perPoint, alg, cfg.Utilization, time.Since(start).Seconds())
	}

	if *table2 {
		cfg := experiments.DefaultTable2Config()
		if *quick {
			cfg = experiments.QuickTable2Config()
		}
		cfg.Seed = *seed
		cfg.BatteryName = *battery
		cfg.Battery = nil
		cfg.OracleEstimates = *oracle
		clear := rf.apply(&cfg.RunOptions, "table2")
		if *sets > 0 {
			cfg.Sets = *sets
		}
		if *util > 0 {
			cfg.Utilization = *util
		}
		start := time.Now()
		rows, err := experiments.RunTable2(ctx, cfg)
		clear()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatTable2(rows, cfg.BatteryName, cfg.Utilization))
		ranSets := cfg.Sets
		if len(rows) > 0 {
			ranSets = rows[0].Sets // reports the adaptively grown count
		}
		fmt.Fprintf(stdout, "(%d task-graph sets, %.1fs)\n\n", ranSets, time.Since(start).Seconds())
	}

	if *curve {
		cfg := experiments.DefaultCurveConfig()
		if *quick {
			cfg = experiments.QuickCurveConfig()
		}
		clear := rf.apply(&cfg.RunOptions, "curve")
		start := time.Now()
		series, err := experiments.RunLoadCapacityCurve(ctx, cfg)
		clear()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatCurve(series))
		fmt.Fprintf(stdout, "(%.1fs)\n", time.Since(start).Seconds())
	}

	if *ablation {
		cfg := experiments.DefaultEstimateAblationConfig()
		if *quick {
			cfg = experiments.QuickEstimateAblationConfig()
		}
		cfg.Seed = *seed
		clear := rf.apply(&cfg.RunOptions, "ablation")
		if *util > 0 {
			cfg.Utilization = *util
		}
		start := time.Now()
		rows, err := experiments.RunEstimateAblation(ctx, cfg)
		clear()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatEstimateAblation(rows))
		ranSets := cfg.Sets
		if len(rows) > 0 {
			ranSets = rows[0].Samples // reports the adaptively grown count
		}
		fmt.Fprintf(stdout, "(%d sets, %.1fs)\n", ranSets, time.Since(start).Seconds())
	}

	if *grid {
		cfg := experiments.DefaultScenarioGridConfig()
		if *quick {
			cfg = experiments.QuickScenarioGridConfig()
		}
		cfg.Seed = *seed
		clear := rf.apply(&cfg.RunOptions, "grid")
		if *sets > 0 {
			cfg.Sets = *sets
		}
		start := time.Now()
		rows, err := experiments.RunScenarioGrid(ctx, cfg)
		clear()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatScenarioGrid(rows))
		perCell := cfg.Sets
		if len(rows) > 0 {
			perCell = rows[0].Charge.N // reports the adaptively grown count
		}
		fmt.Fprintf(stdout, "(%d sets per cell, %.1fs)\n", perCell, time.Since(start).Seconds())
	}
	return nil
}
