package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSelfHostedBurst runs a small self-hosted burst end to end and checks
// the report invariants: every job classified, duplicates deduplicated, and
// the baseline gate accepting the run against its own report.
func TestSelfHostedBurst(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	args := []string{"-n", "40", "-c", "8", "-dup", "0.8", "-workers", "2", "-o", out}
	if err := run(args, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 40 || rep.UniqueSpecs != 8 {
		t.Fatalf("workload = %d jobs / %d unique, want 40/8", rep.Jobs, rep.UniqueSpecs)
	}
	if got := rep.Computed + rep.Coalesced + rep.CacheHits + rep.Failures; got != rep.Jobs {
		t.Fatalf("classified %d of %d jobs", got, rep.Jobs)
	}
	if rep.Failures != 0 {
		t.Fatalf("%d jobs failed", rep.Failures)
	}
	if rep.Coalesced+rep.CacheHits == 0 {
		t.Fatal("dup=0.8 burst produced no coalesce or cache hits")
	}
	if rep.Computed < rep.UniqueSpecs {
		t.Fatalf("computed %d < %d unique specs", rep.Computed, rep.UniqueSpecs)
	}
	if rep.ThroughputJobsPerSec <= 0 || rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("implausible timing stats: %+v", rep)
	}

	// The same report is an acceptable baseline for itself.
	if err := run([]string{"-n", "40", "-c", "8", "-dup", "0.8", "-workers", "2",
		"-o", filepath.Join(dir, "fresh.json"), "-baseline", out, "-noise", "100"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestFleetBurst runs a sharded burst through a self-hosted coordinator
// fronting two in-process workers and checks the report carries the fleet
// dimensions and health section.
func TestFleetBurst(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	args := []string{"-n", "20", "-c", "4", "-dup", "0.8", "-fleet", "2", "-shards", "2", "-workers", "2", "-o", out}
	if err := run(args, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.FleetWorkers != 2 || rep.Shards != 2 {
		t.Fatalf("fleet dims = %d workers / %d shards, want 2/2", rep.FleetWorkers, rep.Shards)
	}
	if rep.Failures != 0 {
		t.Fatalf("%d jobs failed", rep.Failures)
	}
	if rep.Coalesced+rep.CacheHits == 0 {
		t.Fatal("dup=0.8 fleet burst produced no coalesce or cache hits")
	}
	if rep.Health.Fleet == nil {
		t.Fatal("report health is missing the fleet section")
	}
	if rep.Health.Fleet.Workers != 2 || rep.Health.Fleet.LiveWorkers != 2 {
		t.Fatalf("fleet health = %+v, want 2 live of 2", rep.Health.Fleet)
	}
}

// TestFlagValidation covers the argument error paths.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"positional"},
		{"-n", "0"},
		{"-dup", "1.5"},
		{"-fleet", "-1"},
		{"-shards", "-2"},
		{"-server", "http://127.0.0.1:1", "-n", "1"}, // nothing listening
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
