// Command loadgen is the experiment service load harness: it hammers a
// daemon with concurrent mixed submissions and reports latency percentiles,
// saturation throughput and the hardening counters (coalesce hits, cache
// hits, 429 rejections absorbed by client retries) as a JSON document —
// BENCH_service.json at the repo root is its committed baseline.
//
//	loadgen                               # self-hosted in-process daemon
//	loadgen -server http://127.0.0.1:8344 # against a running battschedd
//	loadgen -o BENCH_service.json.new -baseline BENCH_service.json
//	loadgen -fleet 2 -shards 2            # self-hosted coordinator + 2 workers
//
// With -fleet n the self-hosted daemon is a federation coordinator fronting
// n in-process workers (internal/federation), -shards fans each job across
// the fleet, and the report's health snapshot carries the fleet section —
// live workers, expired-lease re-dispatches, speculative dispatches, the
// mean unit time. BENCH_federation.json is the committed fleet baseline;
// -server pointed at a running coordinator works the same way.
//
// The workload is n jobs over max(1, n·(1-dup)) unique specs (quick Table 2
// at distinct seeds), submitted by c concurrent clients in consecutive
// blocks per spec — so a spec's duplicates mostly arrive while its leader is
// still in flight and exercise singleflight coalescing, with stragglers
// hitting the finished-report cache. Every client retries 429 backpressure rejections with the typed
// client's jittered backoff (honouring Retry-After), and a job's latency is
// submission through terminal state.
//
// After the burst loadgen scrapes GET /metrics and folds the observability
// surface into the report (queue depth peak, the unit-duration p99
// interpolated from histogram buckets, total jobs by admission); an
// unreachable or empty /metrics endpoint exits nonzero.
//
// loadgen exits nonzero when the run itself disproves the hardening
// contract: any job failed, or a duplicate-heavy workload (dup >= 0.5,
// n >= 50) produced no coalesce/cache hits. With -baseline it additionally
// exits nonzero when saturation throughput regressed more than the noise
// factor below the committed baseline (latency percentiles are reported but
// informational — runner speed varies more than contract behaviour).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"battsched/internal/federation"
	"battsched/internal/obs"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

// report is the emitted BENCH_service.json document.
type report struct {
	Benchmark  string `json:"benchmark"`
	Experiment string `json:"experiment"`
	// Jobs, Concurrency, DuplicateRatio and UniqueSpecs describe the
	// workload: Jobs submissions over UniqueSpecs distinct specs from
	// Concurrency concurrent clients.
	Jobs           int     `json:"jobs"`
	Concurrency    int     `json:"concurrency"`
	DuplicateRatio float64 `json:"duplicate_ratio"`
	UniqueSpecs    int     `json:"unique_specs"`
	// FleetWorkers and Shards describe federation runs (-fleet/-shards):
	// the self-hosted worker count behind the coordinator and the per-job
	// shard fan-out. Both zero for direct-daemon runs, keeping
	// BENCH_service.json rows unchanged; the re-dispatch counters live in
	// Health.Fleet.
	FleetWorkers int `json:"fleet_workers,omitempty"`
	Shards       int `json:"shards,omitempty"`
	// WallMs is the whole run's wall time; ThroughputJobsPerSec is
	// Jobs / wall — the saturation throughput the baseline gate tracks.
	WallMs               float64 `json:"wall_ms"`
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// P50Ms, P99Ms and MaxMs are per-job submit-to-terminal latency
	// percentiles (informational: runner speed varies).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// Computed, Coalesced and CacheHits classify every job by its admission:
	// fresh compute, follower of an in-flight leader, or report-cache hit.
	Computed  int `json:"computed"`
	Coalesced int `json:"coalesced"`
	CacheHits int `json:"cache_hits"`
	// Retries429 counts 429 backpressure rejections absorbed by client
	// retries; Failures counts jobs that ended failed or errored out.
	Retries429 int `json:"retries_429"`
	Failures   int `json:"failures"`
	// Health is the daemon's snapshot after the run (queue drained,
	// lifetime coalesce and cache counters).
	Health service.Health `json:"health"`
	// Metrics is the post-burst GET /metrics scrape. An unreachable or empty
	// /metrics endpoint fails the run — the observability surface is part of
	// the serving contract.
	Metrics metricsSummary `json:"metrics"`
}

// metricsSummary condenses the daemon's Prometheus text into the quantities
// the load report tracks.
type metricsSummary struct {
	// QueueDepthPeak is battsched_queue_depth_peak: the deepest the unit
	// queue got during the burst.
	QueueDepthPeak float64 `json:"queue_depth_peak"`
	// UnitP99Ms interpolates the 99th percentile unit duration from the
	// battsched_unit_duration_seconds histogram buckets (milliseconds).
	UnitP99Ms float64 `json:"unit_p99_ms"`
	// UnitCount is the histogram's _count: units executed (worker) or
	// delivered (coordinator).
	UnitCount float64 `json:"unit_count"`
	// JobsTotal sums battsched_jobs_total across admission labels.
	JobsTotal float64 `json:"jobs_total"`
	// Samples counts every parsed sample line — a coarse "the endpoint
	// renders" signal.
	Samples int `json:"samples"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		server     = fs.String("server", "", "daemon base URL (default: self-host an in-process daemon)")
		n          = fs.Int("n", 300, "total job submissions")
		c          = fs.Int("c", 32, "concurrent submitting clients")
		dup        = fs.Float64("dup", 0.9, "duplicate ratio in [0,1): fraction of submissions repeating an earlier spec")
		experiment = fs.String("experiment", "table2", "experiment to submit (quick spec at distinct seeds)")
		battery    = fs.String("battery", "kibam", "battery model for the submitted specs")
		workers    = fs.Int("workers", 4, "self-hosted daemon worker-pool size (ignored with -server)")
		queue      = fs.Int("queue", 64, "self-hosted daemon queue bound in units (ignored with -server)")
		fleetN     = fs.Int("fleet", 0, "self-host a federation coordinator fronting this many in-process workers (ignored with -server)")
		shards     = fs.Int("shards", 0, "per-job shard fan-out (0: unsharded)")
		maxRetries = fs.Int("max-retries", 8, "client retries per 429-rejected submission")
		out        = fs.String("o", "", "write the JSON report to this file (default stdout)")
		baseline   = fs.String("baseline", "", "compare against this committed BENCH_service.json and exit nonzero when throughput regresses beyond -noise")
		noise      = fs.Float64("noise", 1.10, "allowed throughput regression factor for the -baseline gate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *n <= 0 || *c <= 0 || *dup < 0 || *dup >= 1 {
		return fmt.Errorf("need -n > 0, -c > 0 and -dup in [0,1)")
	}
	if *fleetN < 0 || *shards < 0 {
		return fmt.Errorf("need -fleet >= 0 and -shards >= 0")
	}

	base := *server
	if base == "" && *fleetN == 0 {
		srv, err := service.New(service.Config{Workers: *workers, QueueCapacity: *queue})
		if err != nil {
			return err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
	} else if base == "" {
		// -fleet n: an in-process federation — n worker daemons behind a
		// coordinator, all over real HTTP so the dispatch, lease and poll
		// paths are the ones a distributed deployment exercises.
		var urls []string
		for i := 0; i < *fleetN; i++ {
			srv, err := service.New(service.Config{Workers: *workers, QueueCapacity: *queue})
			if err != nil {
				return err
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			urls = append(urls, ts.URL)
		}
		co, err := federation.New(federation.Config{
			Workers:           urls,
			HeartbeatInterval: 200 * time.Millisecond,
			PollInterval:      10 * time.Millisecond,
			QueueCapacity:     *queue,
		})
		if err != nil {
			return err
		}
		defer co.Close()
		ts := httptest.NewServer(co.Handler())
		defer ts.Close()
		base = ts.URL
	}

	rep, err := hammer(base, *experiment, *battery, *n, *c, *dup, *shards, *maxRetries)
	if err != nil {
		return err
	}
	rep.FleetWorkers = *fleetN

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" && *out != "-" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	} else {
		stdout.Write(data)
	}

	if rep.Failures > 0 {
		return fmt.Errorf("%d of %d jobs failed", rep.Failures, rep.Jobs)
	}
	if *dup >= 0.5 && *n >= 50 && rep.Coalesced+rep.CacheHits == 0 {
		return fmt.Errorf("duplicate-heavy workload (dup=%.2f) produced no coalesce or cache hits: dedup is broken", *dup)
	}
	if *baseline != "" {
		return compareBaseline(rep, *baseline, *noise)
	}
	return nil
}

// hammer drives the full workload against the daemon at base and collects
// the run report.
func hammer(base, experiment, battery string, n, c int, dup float64, shards, maxRetries int) (report, error) {
	unique := int(math.Round(float64(n) * (1 - dup)))
	if unique < 1 {
		unique = 1
	}
	ctx := context.Background()
	probe := client.New(base)
	if _, err := probe.Health(ctx); err != nil {
		return report{}, fmt.Errorf("daemon at %s not healthy: %w", base, err)
	}

	var (
		next       atomic.Int64
		retries429 atomic.Int64
		mu         sync.Mutex
		latencies  []float64
		rep        report
	)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(base)
			cl.MaxRetries = maxRetries
			cl.RetryBaseDelay = 50 * time.Millisecond
			cl.OnRetry = func(status, attempt int, delay time.Duration) { retries429.Add(1) }
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Submissions of one seed form a consecutive block, so a
				// spec's duplicates are in flight together: the concurrent
				// clients submit them while the leader still computes, which
				// is the coalescing path; stragglers hit the report cache.
				req := service.JobRequest{
					Experiment: experiment,
					Spec:       service.SpecRequest{Quick: true, Battery: battery, Seed: 1 + int64(i*unique/n)},
					Shards:     shards,
				}
				jobStart := time.Now()
				st, err := cl.Submit(ctx, req)
				if err == nil && st.State != service.StateDone && st.State != service.StateFailed {
					st, err = cl.Wait(ctx, st.ID, 10*time.Millisecond, nil)
				}
				lat := float64(time.Since(jobStart)) / 1e6
				mu.Lock()
				latencies = append(latencies, lat)
				switch {
				case err != nil || st.State == service.StateFailed:
					rep.Failures++
				case st.Cached:
					rep.CacheHits++
				case st.Coalesced:
					rep.Coalesced++
				default:
					rep.Computed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	h, err := probe.Health(ctx)
	if err != nil {
		return report{}, fmt.Errorf("post-run health: %w", err)
	}
	ms, err := scrapeMetrics(base)
	if err != nil {
		return report{}, fmt.Errorf("post-run /metrics scrape: %w", err)
	}
	sort.Float64s(latencies)
	rep.Benchmark = "loadgen"
	rep.Experiment = experiment
	rep.Jobs = n
	rep.Concurrency = c
	rep.DuplicateRatio = dup
	rep.UniqueSpecs = unique
	rep.Shards = shards
	rep.WallMs = float64(wall) / 1e6
	rep.ThroughputJobsPerSec = float64(n) / wall.Seconds()
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P99Ms = percentile(latencies, 0.99)
	rep.MaxMs = latencies[len(latencies)-1]
	rep.Retries429 = int(retries429.Load())
	rep.Health = h
	rep.Metrics = ms
	return rep, nil
}

// scrapeMetrics fetches and condenses the daemon's /metrics endpoint. Any
// failure — unreachable endpoint, non-200, unparseable or empty text — is an
// error, which run() turns into a nonzero exit: a daemon that cannot be
// scraped is a regression even when the jobs all passed.
func scrapeMetrics(base string) (metricsSummary, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return metricsSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return metricsSummary{}, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return metricsSummary{}, err
	}
	samples, err := obs.ParseText(text)
	if err != nil {
		return metricsSummary{}, err
	}
	if len(samples) == 0 {
		return metricsSummary{}, fmt.Errorf("GET /metrics returned no samples")
	}
	ms := metricsSummary{Samples: len(samples)}
	if s, ok := obs.Find(samples, "battsched_queue_depth_peak"); ok {
		ms.QueueDepthPeak = s.Value
	}
	if q, ok := obs.BucketQuantile(samples, "battsched_unit_duration_seconds", 0.99); ok {
		ms.UnitP99Ms = q * 1e3
	}
	if s, ok := obs.Find(samples, "battsched_unit_duration_seconds_count"); ok {
		ms.UnitCount = s.Value
	}
	for _, s := range samples {
		if s.Name == "battsched_jobs_total" {
			ms.JobsTotal += s.Value
		}
	}
	return ms, nil
}

// percentile returns the p-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// compareBaseline gates saturation throughput against the committed
// baseline: a fresh run more than the noise factor slower exits nonzero
// (latency percentile drift is reported but informational).
func compareBaseline(cur report, path string, noise float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.ThroughputJobsPerSec <= 0 {
		return fmt.Errorf("baseline %s has no throughput", path)
	}
	if cur.P99Ms > base.P99Ms*noise {
		fmt.Fprintf(os.Stderr, "loadgen: note: p99 %.1f ms vs baseline %.1f ms (>%.2fx; informational — runner speed varies)\n",
			cur.P99Ms, base.P99Ms, noise)
	}
	if cur.ThroughputJobsPerSec*noise < base.ThroughputJobsPerSec {
		return fmt.Errorf("throughput regression: %.1f jobs/s vs baseline %.1f (>%.2fx)",
			cur.ThroughputJobsPerSec, base.ThroughputJobsPerSec, noise)
	}
	return nil
}
