// Command batsim evaluates battery models: it either plays a load-current
// profile (CSV produced by cmd/basched) or a constant load against a chosen
// battery model and reports lifetime and delivered charge, or sweeps constant
// loads to produce the load versus delivered-capacity characterisation curve
// referenced in Section 5 of the paper.
//
// Examples:
//
//	batsim -profile profile.csv -battery kibam
//	batsim -current 1.2 -battery stochastic
//	batsim -current 1.2 -battery stochastic,kibam,diffusion,peukert
//	batsim -curve
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"battsched"
	"battsched/internal/experiments"
	"battsched/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "batsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("batsim", flag.ContinueOnError)
	var (
		profilePath = fs.String("profile", "", "load profile CSV (start_s,duration_s,current_a)")
		current     = fs.Float64("current", 0, "constant load current in amperes (used when no profile is given)")
		duration    = fs.Float64("duration", 60, "duration of the constant-load segment in seconds")
		batteryName = fs.String("battery", "stochastic", "comma-separated battery models (stochastic, kibam, diffusion, peukert), all evaluated in one batch pass")
		curve       = fs.Bool("curve", false, "sweep constant loads and print the delivered-capacity curve for all models")
		maxHours    = fs.Float64("max-hours", 72, "simulation horizon in hours")
		maxStep     = fs.Float64("maxstep", 0, "substep in seconds forcing the uniform-stepping path; 0 selects the analytic fast path for closed-form models (the stochastic model then steps at 1 s)")
		parallel    = fs.Int("parallel", 0, "worker count for the -curve sweep (<= 0: all cores, 1: sequential)")
		timeout     = fs.Duration("timeout", 0, "abort the -curve sweep after this duration (0: no limit; single -profile/-current runs are bounded by -max-hours instead)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *curve {
		cfg := experiments.DefaultCurveConfig()
		cfg.MaxHours = *maxHours
		cfg.MaxStep = *maxStep
		cfg.Parallel = *parallel
		series, err := experiments.RunLoadCapacityCurve(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatCurve(series))
		return nil
	}

	var p *battsched.Profile
	switch {
	case *profilePath != "":
		f, err := os.Open(*profilePath)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err = profile.ReadCSV(f)
		if err != nil {
			return err
		}
	case *current > 0:
		p = profile.Constant(*current, *duration)
	default:
		return fmt.Errorf("either -profile, -current or -curve is required")
	}

	// -battery accepts a comma list; all models are evaluated against the one
	// profile in a single batch pass.
	var models []battsched.BatteryModel
	for _, name := range strings.Split(*batteryName, ",") {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" {
			continue
		}
		factory, err := experiments.NamedBatteryFactory(name)
		if err != nil {
			return err
		}
		models = append(models, factory())
	}
	if len(models) == 0 {
		return fmt.Errorf("-battery lists no model names")
	}
	results, err := battsched.BatteryLifetimeBatch(models, p, battsched.BatterySimulateOptions{MaxTime: *maxHours * 3600, MaxStep: *maxStep})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "profile:  duration=%.4gs avg current=%.4g A peak=%.4g A charge/cycle=%.4g mAh\n",
		p.Duration(), p.AverageCurrent(), p.PeakCurrent(), p.ChargeMAh())
	for i, m := range models {
		res := results[i]
		fmt.Fprintf(stdout, "battery:  %s (max capacity %.0f mAh)\n", m.Name(), battsched.MAh(m.MaxCapacity()))
		fmt.Fprintf(stdout, "result:   lifetime=%.1f min  delivered=%.0f mAh  exhausted=%v  repetitions=%d\n",
			res.LifetimeMinutes(), res.DeliveredMAh(), res.Exhausted, res.Repetitions)
	}
	return nil
}
