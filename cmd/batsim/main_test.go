package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunConstantLoad(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-current", "1.5", "-battery", "kibam"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kibam") || !strings.Contains(out, "lifetime=") {
		t.Fatalf("output unexpected:\n%s", out)
	}
}

func TestRunMaxStepForcesSteppedPath(t *testing.T) {
	var analytic, stepped bytes.Buffer
	if err := run([]string{"-current", "1.5", "-battery", "kibam"}, &analytic); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-current", "1.5", "-battery", "kibam", "-maxstep", "2"}, &stepped); err != nil {
		t.Fatal(err)
	}
	// Both paths simulate the same physics: the one-decimal lifetime report
	// must agree.
	if analytic.String() != stepped.String() {
		t.Fatalf("analytic and stepped reports differ:\n%s\nvs\n%s", analytic.String(), stepped.String())
	}
}

func TestRunProfileCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.csv")
	csv := "start_s,duration_s,current_a\n0,30,1.2\n30,30,0.2\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-profile", path, "-battery", "stochastic"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "delivered=") {
		t.Fatalf("output unexpected:\n%s", buf.String())
	}
}

func TestRunCurve(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-curve", "-max-hours", "40"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kibam", "diffusion", "stochastic", "peukert"} {
		if !strings.Contains(out, want) {
			t.Fatalf("curve output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{}, // neither profile nor current nor curve
		{"-current", "1", "-battery", "bogus"},
		{"-profile", "/nonexistent.csv"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}
