// Command basched runs one battery-aware scheduling simulation: it reads (or
// generates) a periodic task-graph workload, schedules it with the selected
// DVS algorithm, priority function and ready-list policy, prints the
// scheduling statistics, optionally renders the execution trace as an ASCII
// Gantt chart, writes the load-current profile as CSV and evaluates the
// profile on a battery model.
//
// Recording is configurable: by default the full execution trace and load
// profile are kept; -notrace records the profile only, and -noprofile skips
// recording entirely (scheduling statistics and energy totals are always
// computed by the engine itself).
//
// Examples:
//
//	basched -random 5 -utilization 0.7 -dvs laEDF -priority pubs -ready all -battery stochastic
//	basched -workload workload.json -dvs ccEDF -priority fifo -trace
//	basched -random 8 -noprofile -battery none
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"battsched"
	"battsched/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "basched:", err)
		os.Exit(1)
	}
}

// parseDVS maps a flag value to a DVS algorithm.
func parseDVS(name string) (battsched.DVSAlgorithm, error) {
	switch strings.ToLower(name) {
	case "nodvs", "none", "edf":
		return battsched.NewNoDVS(), nil
	case "static":
		return battsched.NewStaticEDF(), nil
	case "ccedf", "cc":
		return battsched.NewCCEDF(), nil
	case "laedf", "la":
		return battsched.NewLAEDF(), nil
	default:
		return nil, fmt.Errorf("unknown DVS algorithm %q (want noDVS, static, ccEDF or laEDF)", name)
	}
}

// parsePriority maps a flag value to a priority function.
func parsePriority(name string) (battsched.PriorityFunction, error) {
	switch strings.ToLower(name) {
	case "pubs":
		return battsched.NewPUBS(), nil
	case "ltf":
		return battsched.NewLTF(), nil
	case "stf":
		return battsched.NewSTF(), nil
	case "random":
		return battsched.NewRandomOrder(), nil
	case "fifo", "edf":
		return battsched.NewFIFO(), nil
	default:
		return nil, fmt.Errorf("unknown priority function %q (want pubs, ltf, stf, random or fifo)", name)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("basched", flag.ContinueOnError)
	var (
		workload     = fs.String("workload", "", "JSON workload file (see cmd/tgffgen); empty generates a random one")
		randomGraphs = fs.Int("random", 5, "number of random graphs when no workload file is given")
		utilization  = fs.Float64("utilization", 0.7, "worst-case utilisation for generated workloads")
		dvsName      = fs.String("dvs", "laEDF", "DVS algorithm: noDVS, static, ccEDF, laEDF")
		prioName     = fs.String("priority", "pubs", "priority function: pubs, ltf, stf, random, fifo")
		ready        = fs.String("ready", "all", "ready-list policy: imminent (BAS-1) or all (BAS-2)")
		mode         = fs.String("mode", "discrete", "frequency realisation: continuous or discrete")
		hyperperiods = fs.Int("hyperperiods", 4, "number of hyperperiods to simulate")
		seed         = fs.Int64("seed", 1, "random seed")
		batteryName  = fs.String("battery", "stochastic", "battery model: stochastic, kibam, diffusion, peukert or none")
		maxStep      = fs.Float64("maxstep", 0, "battery-simulation substep in seconds forcing the uniform-stepping path; 0 selects the analytic fast path for closed-form models (the stochastic model then steps at 1 s)")
		showTrace    = fs.Bool("trace", false, "render the execution trace as an ASCII Gantt chart")
		profileOut   = fs.String("profile-out", "", "write the load-current profile as CSV to this file")
		noTrace      = fs.Bool("notrace", false, "skip execution-trace recording (profile and statistics only)")
		noProfile    = fs.Bool("noprofile", false, "skip profile and trace recording entirely (statistics and energy only; implies -notrace, disables -profile-out and the battery evaluation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showTrace && (*noTrace || *noProfile) {
		return errors.New("-trace is incompatible with -notrace/-noprofile")
	}
	if *profileOut != "" && *noProfile {
		return errors.New("-profile-out is incompatible with -noprofile")
	}

	proc := battsched.DefaultProcessor()
	var sys *battsched.System
	if *workload != "" {
		f, err := os.Open(*workload)
		if err != nil {
			return err
		}
		defer f.Close()
		sys = &battsched.System{}
		if err := readSystem(f, sys); err != nil {
			return err
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		var err error
		sys, err = battsched.GenerateSystem(battsched.DefaultGeneratorConfig(), *randomGraphs, *utilization, proc.FMax(), rng)
		if err != nil {
			return err
		}
	}

	alg, err := parseDVS(*dvsName)
	if err != nil {
		return err
	}
	prio, err := parsePriority(*prioName)
	if err != nil {
		return err
	}
	policy := battsched.AllReleased
	switch strings.ToLower(*ready) {
	case "all", "all-released":
		policy = battsched.AllReleased
	case "imminent", "most-imminent":
		policy = battsched.MostImminentOnly
	default:
		return fmt.Errorf("unknown ready-list policy %q (want imminent or all)", *ready)
	}
	fmode := battsched.DiscreteFrequency
	switch strings.ToLower(*mode) {
	case "discrete":
		fmode = battsched.DiscreteFrequency
	case "continuous", "ideal":
		fmode = battsched.ContinuousFrequency
	default:
		return fmt.Errorf("unknown frequency mode %q (want continuous or discrete)", *mode)
	}

	// The observer selects how much execution history is recorded: full
	// profile + trace by default, profile-only with -notrace, aggregates
	// only with -noprofile (the engine computes energy totals regardless).
	var observer battsched.SegmentSink
	switch {
	case *noProfile:
		observer = battsched.DiscardSegments
	case *noTrace:
		observer = battsched.NewSimProfileRecorder()
	}
	res, err := battsched.Run(battsched.Config{
		System:        sys,
		Processor:     proc,
		DVS:           alg,
		Priority:      prio,
		ReadyPolicy:   policy,
		FrequencyMode: fmode,
		Execution:     battsched.NewUniformExecution(0.2, 1.0, *seed),
		Hyperperiods:  *hyperperiods,
		Seed:          *seed,
		Observer:      observer,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "workload: %d graphs, %d nodes, utilisation %.3f, hyperperiod %.4gs\n",
		sys.NumGraphs(), sys.TotalNodes(), sys.Utilization(proc.FMax()), sys.Hyperperiod())
	fmt.Fprintf(stdout, "scheme:   dvs=%s priority=%s ready=%s mode=%s\n", alg.Name(), prio.Name(), policy, fmode)
	fmt.Fprintf(stdout, "horizon:  %.4gs  busy=%.4gs idle=%.4gs  avg frequency=%.3g Hz\n",
		res.Horizon, res.BusyTime, res.IdleTime, res.AverageFrequency)
	fmt.Fprintf(stdout, "jobs:     released=%d completed=%d nodes=%d deadline misses=%d preemptions=%d out-of-order=%d\n",
		res.JobsReleased, res.JobsCompleted, res.NodesCompleted, res.DeadlineMisses, res.Preemptions, res.OutOfOrderExecutions)
	avgCurrent := 0.0
	if res.Profile != nil {
		avgCurrent = res.Profile.AverageCurrent()
	} else if proc.BatteryVoltage > 0 && res.Horizon > 0 {
		// No profile recorded: derive the average current from the energy
		// total the engine accumulates regardless of the observer.
		avgCurrent = res.EnergyBattery / (proc.BatteryVoltage * res.Horizon)
	}
	fmt.Fprintf(stdout, "energy:   battery=%.4g J  processor=%.4g J  avg power=%.4g W  avg current=%.4g A\n",
		res.EnergyBattery, res.EnergyProcessor, res.AveragePower(), avgCurrent)

	if *showTrace {
		fmt.Fprintln(stdout)
		if err := res.Trace.Render(stdout, battsched.GanttOptions{Width: 100, ShowFrequency: true}); err != nil {
			return err
		}
	}
	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Profile.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "profile:  %d segments written to %s\n", len(res.Profile.Segments), *profileOut)
	}

	if *noProfile {
		if strings.ToLower(*batteryName) != "none" {
			fmt.Fprintln(stdout, "battery:  skipped (-noprofile records no load profile)")
		}
		return nil
	}
	if strings.ToLower(*batteryName) != "none" {
		factory, err := experiments.NamedBatteryFactory(strings.ToLower(*batteryName))
		if err != nil {
			return err
		}
		life, err := battsched.BatteryLifetimeOpts(factory(), res.Profile, battsched.BatterySimulateOptions{MaxTime: 72 * 3600, MaxStep: *maxStep})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "battery:  model=%s lifetime=%.1f min  charge delivered=%.0f mAh (exhausted=%v)\n",
			*batteryName, life.LifetimeMinutes(), life.DeliveredMAh(), life.Exhausted)
	}
	return nil
}

// readSystem decodes a workload file into sys.
func readSystem(r io.Reader, sys *battsched.System) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if err := sys.UnmarshalJSON(data); err != nil {
		return err
	}
	if sys.NumGraphs() == 0 {
		return errors.New("workload contains no graphs")
	}
	return sys.Validate(battsched.DefaultProcessor().FMax())
}
