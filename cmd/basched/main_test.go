package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"battsched"
)

func TestParseDVS(t *testing.T) {
	cases := map[string]string{
		"noDVS": "noDVS", "none": "noDVS", "edf": "noDVS",
		"static": "staticEDF",
		"ccEDF":  "ccEDF", "cc": "ccEDF",
		"laEDF": "laEDF", "la": "laEDF",
	}
	for in, want := range cases {
		alg, err := parseDVS(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if alg.Name() != want {
			t.Fatalf("%q -> %q, want %q", in, alg.Name(), want)
		}
	}
	if _, err := parseDVS("bogus"); err == nil {
		t.Fatal("expected error for unknown DVS name")
	}
}

func TestParsePriority(t *testing.T) {
	cases := map[string]string{
		"pubs": "pUBS", "ltf": "LTF", "stf": "STF", "random": "Random", "fifo": "FIFO", "edf": "FIFO",
	}
	for in, want := range cases {
		p, err := parsePriority(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if p.Name() != want {
			t.Fatalf("%q -> %q, want %q", in, p.Name(), want)
		}
	}
	if _, err := parsePriority("bogus"); err == nil {
		t.Fatal("expected error for unknown priority name")
	}
}

func TestRunWithGeneratedWorkload(t *testing.T) {
	var buf bytes.Buffer
	profilePath := filepath.Join(t.TempDir(), "profile.csv")
	err := run([]string{
		"-random", "3", "-hyperperiods", "2", "-seed", "3",
		"-dvs", "ccEDF", "-priority", "pubs", "-ready", "all",
		"-battery", "kibam", "-trace", "-profile-out", profilePath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"deadline misses=0", "battery:", "idle", "energy:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(profilePath); err != nil {
		t.Fatalf("profile CSV not written: %v", err)
	}
}

func TestRunWithWorkloadFile(t *testing.T) {
	g := battsched.NewGraph("T1", 0.05)
	g.AddNode("a", 10e6)
	g.AddNode("b", 5e6)
	g.AddEdge(0, 1)
	sys := battsched.NewSystem(g)
	path := filepath.Join(t.TempDir(), "wl.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"-workload", path, "-battery", "none", "-mode", "continuous", "-priority", "fifo", "-ready", "imminent"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workload: 1 graphs") {
		t.Fatalf("output unexpected:\n%s", buf.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-dvs", "bogus"},
		{"-priority", "bogus"},
		{"-ready", "bogus"},
		{"-mode", "bogus"},
		{"-battery", "bogus", "-random", "1", "-hyperperiods", "1"},
		{"-workload", "/nonexistent/file.json"},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

// TestRunNoTraceNoProfile checks the recording flags: statistics and energy
// are identical across recording modes, the flags reject contradictory
// combinations, and -noprofile skips the battery evaluation.
func TestRunNoTraceNoProfile(t *testing.T) {
	base := []string{"-random", "3", "-hyperperiods", "2", "-seed", "3", "-battery", "none"}
	outputs := make([]string, 0, 3)
	for _, extra := range [][]string{nil, {"-notrace"}, {"-noprofile"}} {
		var buf bytes.Buffer
		if err := run(append(append([]string{}, base...), extra...), &buf); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		outputs = append(outputs, buf.String())
	}
	// All three runs print identical statistics (the engine's accounting
	// does not depend on the recording mode).
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatalf("recording modes changed the report:\nfull:\n%s\nnotrace:\n%s\nnoprofile:\n%s",
			outputs[0], outputs[1], outputs[2])
	}

	var buf bytes.Buffer
	if err := run([]string{"-random", "2", "-noprofile", "-battery", "kibam"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "battery:  skipped") {
		t.Fatalf("battery evaluation not skipped under -noprofile:\n%s", buf.String())
	}

	for _, args := range [][]string{
		{"-trace", "-notrace"},
		{"-trace", "-noprofile"},
		{"-noprofile", "-profile-out", "x.csv"},
	} {
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}
