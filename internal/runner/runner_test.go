package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Run(context.Background(), 37, Options{Parallelism: workers}, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	got, err := Run(context.Background(), 0, Options{}, func(_ context.Context, i int) (int, error) {
		t.Fatal("job called")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := Run(context.Background(), -1, Options{}, func(_ context.Context, i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative job count accepted")
	}
}

// TestRunDeterministicAcrossWorkerCounts is the runner's core contract: a job
// function that derives all randomness from its own index produces identical
// results at any parallelism.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	job := func(_ context.Context, i int) (float64, error) {
		rng := RNG(42, int64(i))
		s := 0.0
		for k := 0; k < 100; k++ {
			s += rng.Float64()
		}
		return s, nil
	}
	base, err := Run(context.Background(), 64, Options{Parallelism: 1}, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Run(context.Background(), 64, Options{Parallelism: workers}, job)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: results differ from sequential run", workers)
		}
	}
}

func TestRunErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Run(context.Background(), 1000, Options{Parallelism: 4}, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("job %d: %w", i, boom)
		}
		// Give cancellation time to win the race against the remaining
		// near-instant jobs; without this the pool can legitimately drain
		// all 1000 before the error propagates.
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("error did not cancel remaining jobs")
	}
}

func TestRunPanicCapture(t *testing.T) {
	_, err := Run(context.Background(), 8, Options{Parallelism: 2}, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != 5 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := Run(ctx, 1000, Options{Parallelism: 2}, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n == 1000 {
		t.Fatal("cancellation did not stop the feed")
	}
	// An already-cancelled context must not run any job.
	ran := false
	if _, err := Run(ctx, 10, Options{}, func(_ context.Context, i int) (int, error) {
		ran = true
		return i, nil
	}); !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("pre-cancelled ctx: err = %v ran = %v", err, ran)
	}
}

func TestRunProgress(t *testing.T) {
	var calls []int
	_, err := Run(context.Background(), 20, Options{Parallelism: 4, Progress: func(done, total int) {
		if total != 20 {
			t.Errorf("total = %d", total)
		}
		calls = append(calls, done)
	}}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 20 {
		t.Fatalf("progress calls = %d, want 20", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress out of order: %v", calls)
		}
	}
}

func TestOptionsWorkers(t *testing.T) {
	if w := (Options{Parallelism: 8}).Workers(3); w != 3 {
		t.Fatalf("workers capped = %d", w)
	}
	if w := (Options{Parallelism: 2}).Workers(100); w != 2 {
		t.Fatalf("workers = %d", w)
	}
	if w := (Options{}).Workers(100); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
}

func TestSeedFor(t *testing.T) {
	if SeedFor(1, 2, 3) != SeedFor(1, 2, 3) {
		t.Fatal("SeedFor not deterministic")
	}
	// Distinct coordinates and distinct bases give distinct seeds, including
	// the adjacent values typical of loop indices.
	seen := map[int64][]int64{}
	for base := int64(0); base < 4; base++ {
		for a := int64(0); a < 8; a++ {
			for b := int64(0); b < 8; b++ {
				s := SeedFor(base, a, b)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v", base, a, b, prev)
				}
				seen[s] = []int64{base, a, b}
			}
		}
	}
	// Coordinate order matters.
	if SeedFor(1, 2, 3) == SeedFor(1, 3, 2) {
		t.Fatal("SeedFor ignores coordinate order")
	}
	// Arity matters: (1) and (1,0) must differ.
	if SeedFor(7, 1) == SeedFor(7, 1, 0) {
		t.Fatal("SeedFor ignores arity")
	}
}

func TestRNGIndependentStreams(t *testing.T) {
	a, b := RNG(1, 0), RNG(1, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("adjacent streams overlap in %d of 64 draws", same)
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := NewGrid(3, 4, 5)
	if g.Size() != 60 {
		t.Fatalf("size = %d", g.Size())
	}
	for idx := 0; idx < g.Size(); idx++ {
		c := g.Coords(idx)
		if got := g.Index(c[0], c[1], c[2]); got != idx {
			t.Fatalf("round trip %d -> %v -> %d", idx, c, got)
		}
	}
	// Row-major: last dimension fastest.
	if c := g.Coords(1); !reflect.DeepEqual(c, []int{0, 0, 1}) {
		t.Fatalf("coords(1) = %v", c)
	}
	if NewGrid().Size() != 1 {
		t.Fatalf("empty grid size = %d", NewGrid().Size())
	}
	for _, f := range []func(){
		func() { NewGrid(0) },
		func() { g.Coords(60) },
		func() { g.Index(1, 2) },
		func() { g.Index(3, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestRunRealErrorNotMaskedByCancellation: a job that honours the pool's own
// cancellation (returning ctx.Err()) must not displace the root-cause error,
// even from a lower job index.
func TestRunRealErrorNotMaskedByCancellation(t *testing.T) {
	boom := errors.New("root cause")
	block := make(chan struct{})
	_, err := Run(context.Background(), 8, Options{Parallelism: 2}, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			// Wait for the failure, then return the context error like a
			// well-behaved cancellation-aware job.
			<-block
			<-ctx.Done()
			return 0, ctx.Err()
		}
		defer close(block)
		return 0, fmt.Errorf("job %d: %w", i, boom)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the root-cause error", err)
	}
}

func TestRunStreamInOrderDelivery(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var got []int
		err := RunStream(context.Background(), 37, Options{Parallelism: workers}, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		}, func(i, v int) error {
			got = append(got, v)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d (out of order?)", workers, i, v, i*i)
			}
		}
	}
}

// TestRunStreamBoundedWindow checks the memory contract: workers never run
// more than the reorder window ahead of the next undelivered result, even
// when the very first job is the slowest.
func TestRunStreamBoundedWindow(t *testing.T) {
	const n, workers = 200, 4
	release := make(chan struct{})
	var started atomic.Int64
	go func() {
		// Let the pool run as far ahead as it will, then unblock job 0.
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	emitted := 0
	err := RunStream(context.Background(), n, Options{Parallelism: workers}, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			<-release // job 0 finishes last
		}
		return i, nil
	}, func(i, v int) error {
		if emitted == 0 {
			// Job 0 just completed. While it blocked, the feeder may only
			// hand out indices below next+window = 2*workers, so no more
			// than that many jobs can ever have started.
			if s := started.Load(); s > 2*workers {
				t.Fatalf("%d jobs started while job 0 blocked (window breached)", s)
			}
		}
		emitted++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != n {
		t.Fatalf("emitted %d of %d", emitted, n)
	}
}

func TestRunStreamEmitErrorAborts(t *testing.T) {
	wantErr := errors.New("emit failed")
	var ran atomic.Int64
	err := RunStream(context.Background(), 100, Options{Parallelism: 4}, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	}, func(i, v int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if r := ran.Load(); r == 100 {
		t.Fatal("emit error did not cancel remaining jobs")
	}
}

func TestRunStreamJobErrorLowestIndexWins(t *testing.T) {
	errA := errors.New("job 5 failed")
	errB := errors.New("job 30 failed")
	err := RunStream(context.Background(), 64, Options{Parallelism: 8}, func(_ context.Context, i int) (int, error) {
		switch i {
		case 5:
			time.Sleep(10 * time.Millisecond)
			return 0, errA
		case 30:
			return 0, errB
		}
		return i, nil
	}, func(i, v int) error { return nil })
	if err == nil {
		t.Fatal("no error")
	}
	// Both errors may race, but the lowest-index one must win whenever both
	// were observed; at minimum one of them is reported verbatim.
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunStreamContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunStream(ctx, 1000, Options{Parallelism: 2}, func(ctx context.Context, i int) (int, error) {
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
			}
			return i, nil
		}, func(i, v int) error {
			emitted.Add(1)
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunStream did not return after cancellation")
	}
	if emitted.Load() == 1000 {
		t.Fatal("cancellation had no effect")
	}
}

func TestRunStreamPanicCapture(t *testing.T) {
	err := RunStream(context.Background(), 16, Options{Parallelism: 4}, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			panic("boom")
		}
		return i, nil
	}, func(i, v int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != 7 || fmt.Sprint(pe.Value) != "boom" {
		t.Fatalf("panic error = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestRunStreamZeroAndNegative(t *testing.T) {
	if err := RunStream(context.Background(), 0, Options{}, func(_ context.Context, i int) (int, error) {
		t.Fatal("job called")
		return 0, nil
	}, func(i, v int) error {
		t.Fatal("emit called")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := RunStream(context.Background(), -3, Options{}, func(_ context.Context, i int) (int, error) { return 0, nil },
		func(i, v int) error { return nil }); err == nil {
		t.Fatal("negative job count accepted")
	}
}

// TestRunStreamCancelAfterKResults pins the mid-stream cancellation contract
// precisely: cancelling the context from inside the emit callback after K
// delivered results stops the stream at exactly K — no further callback ever
// fires (even for results already buffered in the reorder window), every
// worker drains before RunStream returns, the sweep never runs the remaining
// jobs, and the returned error is ctx.Err().
func TestRunStreamCancelAfterKResults(t *testing.T) {
	const n, k = 500, 9
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var inFlight, started, emitted atomic.Int64
	err := RunStream(ctx, n, Options{Parallelism: 4}, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		inFlight.Add(1)
		defer inFlight.Add(-1)
		return i * i, nil
	}, func(i, v int) error {
		if ctx.Err() != nil {
			t.Errorf("emit(%d) fired after cancellation", i)
		}
		if v != i*i {
			t.Errorf("emit(%d) = %d, want %d", i, v, i*i)
		}
		if emitted.Add(1) == k {
			cancel()
		}
		return nil
	})
	if err == nil || err != ctx.Err() {
		t.Fatalf("err = %v, want ctx.Err() (%v)", err, ctx.Err())
	}
	if got := emitted.Load(); got != k {
		t.Fatalf("emitted %d results after cancelling at %d", got, k)
	}
	if inFlight.Load() != 0 {
		t.Fatal("workers did not drain before RunStream returned")
	}
	if got := started.Load(); got >= n {
		t.Fatalf("cancellation did not stop the sweep (all %d jobs started)", got)
	}
}
