// Package runner is the generic job-grid harness behind the parallel
// experiment drivers: every experiment of internal/experiments enumerates its
// (set × scheme × sweep-point) grid as a flat list of independent jobs, and
// Run executes those jobs on a bounded worker pool.
//
// Determinism is the central contract. Each job derives its own random stream
// from the experiment seed and the job's grid coordinates (SeedFor, a
// SplitMix64-style mixer), never from shared generator state, so the value a
// job computes is independent of scheduling. Run returns results indexed by
// job, and callers fold them in job order; together these make every
// experiment byte-identical at any worker count.
package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
)

// Options tune one Run call.
type Options struct {
	// Parallelism is the worker-pool size; values <= 0 select
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// Progress, when non-nil, is called after each job completes with the
	// number of completed jobs and the total. Calls are serialised, but they
	// happen on worker goroutines and delay job completion, so the callback
	// must be fast.
	Progress func(done, total int)
}

// Workers resolves the effective worker count for n jobs.
func (o Options) Workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError reports a job that panicked; the worker pool converts panics
// into errors so one bad job cannot take down the whole sweep unannounced.
type PanicError struct {
	// Job is the flat index of the panicking job.
	Job int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// Run executes jobs 0..n-1 on a bounded worker pool and returns their results
// in job-index order. The first job error (lowest job index among the errors
// observed) cancels the remaining jobs and is returned; a cancelled or
// timed-out ctx aborts the sweep with ctx's error. Panics inside jobs are
// captured as *PanicError.
func Run[T any](ctx context.Context, n int, opts Options, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
		firstIdx int
	)
	fail := func(i int, err error) {
		mu.Lock()
		// Keep the lowest-index error, but never let a context error (a job
		// honouring the cancellation this pool itself triggered) displace the
		// real root-cause error.
		ctxErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		firstCtxErr := errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded)
		switch {
		case firstErr == nil,
			firstCtxErr && !ctxErr,
			firstCtxErr == ctxErr && i < firstIdx:
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	runOne := func(i int) (t T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Job: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return job(ctx, i)
	}

	jobs := make(chan int)
	for w := opts.Workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: the sweep is already aborting
				}
				t, err := runOne(i)
				if err != nil {
					fail(i, err)
					continue
				}
				results[i] = t
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// splitmix64 is the output mixer of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators").
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SeedFor derives a well-mixed deterministic seed for the job at the given
// grid coordinates from a base experiment seed. Nearby coordinates yield
// statistically independent seeds, so experiments may use raw loop indices or
// semantic values (task count, set number) as coordinates.
func SeedFor(base int64, coords ...int64) int64 {
	h := splitmix64(uint64(base))
	for _, c := range coords {
		// Rehash the chaining value before folding in the coordinate so the
		// combination is not commutative (base and coordinates must not be
		// interchangeable).
		h = splitmix64(splitmix64(h) ^ uint64(c))
	}
	return int64(h)
}

// RNG returns a fresh generator seeded with SeedFor(base, coords...). Each
// job must own its generator; sharing one across jobs reintroduces
// schedule-dependent results.
func RNG(base int64, coords ...int64) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(base, coords...)))
}

// Grid maps a multi-dimensional experiment grid onto flat job indices in
// row-major order (the last dimension varies fastest).
type Grid struct {
	dims []int
}

// NewGrid returns the grid with the given dimension sizes. Dimensions must be
// positive; a grid with no dimensions has size 1.
func NewGrid(dims ...int) Grid {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("runner: non-positive grid dimension %d in %v", d, dims))
		}
	}
	return Grid{dims: append([]int(nil), dims...)}
}

// Size returns the total number of grid cells.
func (g Grid) Size() int {
	n := 1
	for _, d := range g.dims {
		n *= d
	}
	return n
}

// Coords returns the multi-dimensional coordinates of flat index idx.
func (g Grid) Coords(idx int) []int {
	if idx < 0 || idx >= g.Size() {
		panic(fmt.Sprintf("runner: grid index %d out of range for %v", idx, g.dims))
	}
	c := make([]int, len(g.dims))
	for i := len(g.dims) - 1; i >= 0; i-- {
		c[i] = idx % g.dims[i]
		idx /= g.dims[i]
	}
	return c
}

// Index returns the flat index of the given coordinates (the inverse of
// Coords).
func (g Grid) Index(coords ...int) int {
	if len(coords) != len(g.dims) {
		panic(fmt.Sprintf("runner: %d coordinates for %d-dimensional grid", len(coords), len(g.dims)))
	}
	idx := 0
	for i, c := range coords {
		if c < 0 || c >= g.dims[i] {
			panic(fmt.Sprintf("runner: coordinate %d out of range for dimension %d (size %d)", c, i, g.dims[i]))
		}
		idx = idx*g.dims[i] + c
	}
	return idx
}
