// Package runner is the generic job-grid harness behind the parallel
// experiment drivers: every experiment of internal/experiments enumerates its
// (set × scheme × sweep-point) grid as a flat list of independent jobs, and
// Run executes those jobs on a bounded worker pool.
//
// Determinism is the central contract. Each job derives its own random stream
// from the experiment seed and the job's grid coordinates (SeedFor, a
// SplitMix64-style mixer), never from shared generator state, so the value a
// job computes is independent of scheduling. Run returns results indexed by
// job, and callers fold them in job order; together these make every
// experiment byte-identical at any worker count.
//
// RunStream is the streaming variant: results are delivered to a callback in
// strictly increasing job order as soon as they (and all lower-indexed jobs)
// complete, with memory bounded by a small reorder window instead of the
// whole grid. Run is implemented on top of it. Experiment drivers fold
// streamed rows into accumulators, which is what lets sweeps grow to sizes
// whose full result grid would not fit in memory.
package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
)

// Options tune one Run call.
type Options struct {
	// Parallelism is the worker-pool size; values <= 0 select
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// Progress, when non-nil, is called after each job completes with the
	// number of completed jobs and the total. Calls are serialised, but they
	// happen on worker goroutines and delay job completion, so the callback
	// must be fast.
	Progress func(done, total int)
}

// Workers resolves the effective worker count for n jobs.
func (o Options) Workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError reports a job that panicked; the worker pool converts panics
// into errors so one bad job cannot take down the whole sweep unannounced.
type PanicError struct {
	// Job is the flat index of the panicking job.
	Job int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// errTracker keeps the lowest-index root-cause error of a sweep: the lowest
// job index wins, but a context error (a job honouring the cancellation the
// pool itself triggered) never displaces a real error. Callers must hold
// their pool mutex around record.
type errTracker struct {
	err error
	idx int
}

func (t *errTracker) record(i int, err error) {
	ctxErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	firstCtxErr := errors.Is(t.err, context.Canceled) || errors.Is(t.err, context.DeadlineExceeded)
	switch {
	case t.err == nil,
		firstCtxErr && !ctxErr,
		firstCtxErr == ctxErr && i < t.idx:
		t.err, t.idx = err, i
	}
}

// runJob invokes one job, converting panics into *PanicError.
func runJob[T any](ctx context.Context, i int, job func(ctx context.Context, i int) (T, error)) (t T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return job(ctx, i)
}

// Run executes jobs 0..n-1 on a bounded worker pool and returns their results
// in job-index order. The first job error (lowest job index among the errors
// observed) cancels the remaining jobs and is returned; a cancelled or
// timed-out ctx aborts the sweep with ctx's error. Panics inside jobs are
// captured as *PanicError.
//
// Run materialises the whole result grid (workers write their slots
// directly, with no reorder buffering or throttling); sweeps that fold
// results as they arrive should use RunStream instead.
func Run[T any](ctx context.Context, n int, opts Options, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		tr   errTracker
	)
	fail := func(i int, err error) {
		mu.Lock()
		tr.record(i, err)
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	for w := opts.Workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: the sweep is already aborting
				}
				t, err := runJob(ctx, i, job)
				if err != nil {
					fail(i, err)
					continue
				}
				results[i] = t
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if tr.err != nil {
		return nil, tr.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RunStream executes jobs 0..n-1 on a bounded worker pool and delivers each
// result to emit in strictly increasing job order, as soon as the job and
// every lower-indexed job have completed. emit always runs on the goroutine
// that called RunStream, so callers fold results into local state without
// locking; because delivery order is deterministic, folds are byte-identical
// at any worker count, exactly like iterating Run's result slice.
//
// Unlike Run, RunStream does not materialise the grid: at most a small
// reorder window of results (proportional to the worker count) is buffered
// while an earlier job is still running; workers stall rather than run
// further ahead. An error returned by emit aborts the sweep like a job error
// at that index. Job errors, panics and ctx cancellation behave as in Run.
func RunStream[T any](ctx context.Context, n int, opts Options, job func(ctx context.Context, i int) (T, error), emit func(i int, t T) error) error {
	if n < 0 {
		return fmt.Errorf("runner: negative job count %d", n)
	}
	if n == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := opts.Workers(n)
	// The reorder window bounds how far completed jobs may run ahead of the
	// next undelivered one, and hence how many results are buffered.
	window := 2 * workers
	if window < 2 {
		window = 2
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		pending = make(map[int]T, window)
		next    int // next job index to emit (written only by this goroutine)
		done    int
		aborted bool
		tr      errTracker
	)
	fail := func(i int, err error) {
		mu.Lock()
		tr.record(i, err)
		aborted = true
		mu.Unlock()
		cond.Broadcast()
		cancel()
	}

	// Wake the emit loop when the (possibly external) context is cancelled:
	// jobs skipped by draining workers would otherwise never arrive.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			mu.Lock()
			aborted = true
			mu.Unlock()
			cond.Broadcast()
		case <-watchDone:
		}
	}()
	defer close(watchDone)

	jobs := make(chan int)
	for w := workers; w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: the sweep is already aborting
				}
				t, err := runJob(ctx, i, job)
				if err != nil {
					fail(i, err)
					continue
				}
				mu.Lock()
				pending[i] = t
				done++
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				mu.Unlock()
				cond.Broadcast()
			}
		}()
	}

	// Feeder: hands out job indices, never running the pool more than the
	// reorder window ahead of the next undelivered result.
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			mu.Lock()
			for i >= next+window && !aborted {
				cond.Wait()
			}
			stop := aborted
			mu.Unlock()
			if stop {
				return
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Emit loop (on the caller's goroutine): deliver results in job order.
	// ctx is consulted directly (not only through the watcher goroutine's
	// aborted flag) so a cancellation triggered from inside emit is observed
	// before the next delivery: no callback ever fires after ctx is
	// cancelled, even for results already buffered in the reorder window.
	for next < n {
		var t T
		mu.Lock()
		for {
			if aborted || ctx.Err() != nil {
				mu.Unlock()
				goto drained
			}
			if v, ok := pending[next]; ok {
				delete(pending, next)
				t = v
				break
			}
			cond.Wait()
		}
		i := next
		mu.Unlock()
		if err := emit(i, t); err != nil {
			fail(i, err)
			break
		}
		mu.Lock()
		next++
		mu.Unlock()
		cond.Broadcast()
	}
drained:
	wg.Wait()
	if tr.err != nil {
		return tr.err
	}
	return ctx.Err()
}

// splitmix64 is the output mixer of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators").
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SeedFor derives a well-mixed deterministic seed for the job at the given
// grid coordinates from a base experiment seed. Nearby coordinates yield
// statistically independent seeds, so experiments may use raw loop indices or
// semantic values (task count, set number) as coordinates.
func SeedFor(base int64, coords ...int64) int64 {
	h := splitmix64(uint64(base))
	for _, c := range coords {
		// Rehash the chaining value before folding in the coordinate so the
		// combination is not commutative (base and coordinates must not be
		// interchangeable).
		h = splitmix64(splitmix64(h) ^ uint64(c))
	}
	return int64(h)
}

// RNG returns a fresh generator seeded with SeedFor(base, coords...). Each
// job must own its generator; sharing one across jobs reintroduces
// schedule-dependent results.
func RNG(base int64, coords ...int64) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(base, coords...)))
}

// Grid maps a multi-dimensional experiment grid onto flat job indices in
// row-major order (the last dimension varies fastest).
type Grid struct {
	dims []int
}

// NewGrid returns the grid with the given dimension sizes. Dimensions must be
// positive; a grid with no dimensions has size 1.
func NewGrid(dims ...int) Grid {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("runner: non-positive grid dimension %d in %v", d, dims))
		}
	}
	return Grid{dims: append([]int(nil), dims...)}
}

// Size returns the total number of grid cells.
func (g Grid) Size() int {
	n := 1
	for _, d := range g.dims {
		n *= d
	}
	return n
}

// Coords returns the multi-dimensional coordinates of flat index idx.
func (g Grid) Coords(idx int) []int {
	if idx < 0 || idx >= g.Size() {
		panic(fmt.Sprintf("runner: grid index %d out of range for %v", idx, g.dims))
	}
	c := make([]int, len(g.dims))
	for i := len(g.dims) - 1; i >= 0; i-- {
		c[i] = idx % g.dims[i]
		idx /= g.dims[i]
	}
	return c
}

// Index returns the flat index of the given coordinates (the inverse of
// Coords).
func (g Grid) Index(coords ...int) int {
	if len(coords) != len(g.dims) {
		panic(fmt.Sprintf("runner: %d coordinates for %d-dimensional grid", len(coords), len(g.dims)))
	}
	idx := 0
	for i, c := range coords {
		if c < 0 || c >= g.dims[i] {
			panic(fmt.Sprintf("runner: coordinate %d out of range for dimension %d (size %d)", c, i, g.dims[i]))
		}
		idx = idx*g.dims[i] + c
	}
	return idx
}
