// Package journal implements the experiment daemon's durable job journal: an
// append-only JSONL write-ahead log of accepted jobs in the daemon's cache
// directory. Every admitted job appends one "accept" record (id, experiment,
// wire-form spec, shard count) before its units enqueue; finalising a job
// appends a matching "done" record. On daemon start, Open replays the log and
// returns the accepted-but-unfinished records in admission order so the
// server resumes them instead of dropping the queue a restart (or crash)
// interrupted.
//
// The file is compacted — rewritten with only the live accept records, via
// temp file + atomic rename — on Open, on Close, and after every
// compactEvery runtime completions, so it stays proportional to the backlog
// rather than the daemon's lifetime job count. A crash can truncate at most
// the final line; replay tolerates a malformed tail and the next compaction
// drops it. Writes go through the OS page cache without fsync: the journal
// survives process kills and restarts (the failure mode it exists for), not
// power loss.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// compactEvery is the number of runtime "done" records after which the log is
// rewritten without its finished entries.
const compactEvery = 256

// Accept is one accepted job as journaled: enough to re-admit it after a
// restart under its original ID.
type Accept struct {
	// ID is the job ID the daemon issued ("job-000042").
	ID string `json:"id"`
	// Experiment is the registry name the job runs.
	Experiment string `json:"experiment"`
	// Spec is the job's wire-form spec (service.SpecRequest), kept opaque
	// here so the journal does not depend on the service package.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Shards is the requested shard fan-out (0 or 1 runs unsharded).
	Shards int `json:"shards,omitempty"`
	// Hash is the canonical spec hash at admission time — informational:
	// replay recomputes it, so a ResultsVersion bump between restarts is
	// honoured instead of trusted from disk.
	Hash string `json:"hash,omitempty"`
	// Created is the job's admission time.
	Created time.Time `json:"created,omitzero"`
}

// record is one JSONL line: an Accept tagged "accept", or a bare "done" ID.
type record struct {
	Op string `json:"op"`
	Accept
}

// Journal is an open job journal. Construct with Open; all methods are safe
// for concurrent use.
type Journal struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	live  map[string]Accept // accepted, not yet done
	order []string          // admission order of live (may hold stale IDs)
	dones int               // runtime completions since the last compaction
}

// Open opens (creating if missing) the journal at path, replays it, compacts
// it down to its live records, and returns the accepted-but-unfinished
// records in admission order.
func Open(path string) (*Journal, []Accept, error) {
	j := &Journal{path: path, live: make(map[string]Accept)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A crash-truncated tail: everything before it is intact, so
			// stop here and let the compaction below drop the partial line.
			break
		}
		switch rec.Op {
		case "accept":
			if rec.ID == "" {
				continue
			}
			if _, dup := j.live[rec.ID]; !dup {
				j.order = append(j.order, rec.ID)
			}
			j.live[rec.ID] = rec.Accept
		case "done":
			delete(j.live, rec.ID)
		}
	}
	backlog := j.liveInOrder()
	if err := j.compactLocked(); err != nil {
		return nil, nil, err
	}
	return j, backlog, nil
}

// Accept appends one accepted job. It must be called before the job's units
// enqueue, so a crash between admission and execution still replays the job.
func (j *Journal) Accept(rec Accept) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.live[rec.ID]; !dup {
		j.order = append(j.order, rec.ID)
	}
	j.live[rec.ID] = rec
	return j.appendLocked(record{Op: "accept", Accept: rec})
}

// Done marks one journaled job finished. Unknown IDs are a no-op (cached
// submissions are never journaled). Every compactEvery completions the log is
// rewritten without its finished entries.
func (j *Journal) Done(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.live[id]; !ok {
		return nil
	}
	delete(j.live, id)
	if err := j.appendLocked(record{Op: "done", Accept: Accept{ID: id}}); err != nil {
		return err
	}
	j.dones++
	if j.dones >= compactEvery {
		return j.compactLocked()
	}
	return nil
}

// Len returns the number of live (accepted, unfinished) records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.live)
}

// Close compacts the journal down to its live records — retaining jobs a
// shutdown abandoned, which is what lets the next daemon resume them — and
// releases the file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.compactLocked()
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	return err
}

// liveInOrder returns the live records in admission order.
func (j *Journal) liveInOrder() []Accept {
	var out []Accept
	for _, id := range j.order {
		if rec, ok := j.live[id]; ok {
			out = append(out, rec)
		}
	}
	return out
}

// appendLocked writes one record line. Callers hold j.mu.
func (j *Journal) appendLocked(rec record) error {
	if j.f == nil {
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.f = f
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// compactLocked rewrites the log with only the live accept records (temp file
// + rename, so a crash mid-compaction loses nothing). Callers hold j.mu.
func (j *Journal) compactLocked() error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	keep := j.liveInOrder()
	ok := true
	for _, rec := range keep {
		line, err := json.Marshal(record{Op: "accept", Accept: rec})
		if err == nil {
			_, err = w.Write(append(line, '\n'))
		}
		if err != nil {
			ok = false
			break
		}
	}
	if ok {
		ok = w.Flush() == nil && tmp.Close() == nil
	} else {
		tmp.Close()
	}
	if !ok {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compacting %s failed", j.path)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	// The append handle points at the unlinked pre-compaction file; reopen
	// lazily on the next append.
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.order = make([]string, 0, len(keep))
	for _, rec := range keep {
		j.order = append(j.order, rec.ID)
	}
	j.dones = 0
	return nil
}
