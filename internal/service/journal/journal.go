// Package journal implements the experiment daemon's durable job journal: an
// append-only JSONL write-ahead log of accepted jobs in the daemon's cache
// directory. Every admitted job appends one "accept" record (id, experiment,
// wire-form spec, shard count) before its units enqueue; finalising a job
// appends a matching "done" record. On daemon start, Open replays the log and
// returns the accepted-but-unfinished records in admission order so the
// server resumes them instead of dropping the queue a restart (or crash)
// interrupted.
//
// The federation coordinator additionally journals unit leases: an op "lease"
// record per dispatch naming the job, the shard unit, the worker it went to
// and the remote job ID. Replay attaches the latest lease per unit to its
// Accept, so a restarted coordinator re-dispatches each unfinished unit to
// the worker that may still be computing it — the worker's singleflight
// coalescing and content-addressed cache then dedupe instead of re-running.
//
// The file is compacted — rewritten with only the live accept records (and
// their latest leases), via temp file + atomic rename — on Open, on Close,
// and after every compactEvery runtime completions, so it stays proportional
// to the backlog rather than the daemon's lifetime job count. A crash can
// truncate at most the final line; replay tolerates a malformed tail and the
// next compaction drops it.
//
// By default writes go through the OS page cache without fsync: the journal
// survives process kills and restarts (the failure mode it exists for), not
// power loss. Opening with fsync enabled additionally syncs every record to
// stable storage before the append returns (and syncs compactions before the
// rename plus the directory after it), making accept/done/lease records
// power-loss durable at the cost of one fdatasync per record.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrCompaction tags compaction failures in errors returned by Done and
// Close, so callers can mirror them on a metrics registry separately from
// plain append failures (errors.Is unwraps it).
var ErrCompaction = errors.New("journal: compaction failed")

// compactEvery is the number of runtime "done" records after which the log is
// rewritten without its finished entries.
const compactEvery = 256

// Accept is one accepted job as journaled: enough to re-admit it after a
// restart under its original ID.
type Accept struct {
	// ID is the job ID the daemon issued ("job-000042").
	ID string `json:"id"`
	// Experiment is the registry name the job runs.
	Experiment string `json:"experiment"`
	// Spec is the job's wire-form spec (service.SpecRequest), kept opaque
	// here so the journal does not depend on the service package.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Shards is the requested shard fan-out (0 or 1 runs unsharded).
	Shards int `json:"shards,omitempty"`
	// Shard is the single shard slice of a unit-level job ("2/4"; "" for a
	// complete run). Set by workers executing one federated shard unit,
	// mutually exclusive with Shards > 1.
	Shard string `json:"shard,omitempty"`
	// Hash is the canonical spec hash at admission time — informational:
	// replay recomputes it, so a ResultsVersion bump between restarts is
	// honoured instead of trusted from disk.
	Hash string `json:"hash,omitempty"`
	// Created is the job's admission time.
	Created time.Time `json:"created,omitzero"`
	// Trace is the submission's trace id (obs.TraceHeader), retained so a
	// restarted daemon's resumed work stays attributable to the original
	// fleet-wide trace.
	Trace string `json:"trace,omitempty"`
	// Leases holds the latest journaled lease per still-leased unit of the
	// job. It is populated by Open during replay, never serialised with the
	// accept record itself (leases are separate records).
	Leases []Lease `json:"-"`
}

// Lease is one journaled unit dispatch of the federation coordinator.
type Lease struct {
	// Unit is the shard unit in CLI form ("2/4"; "" for the single unit of
	// an unsharded job).
	Unit string `json:"unit,omitempty"`
	// Worker is the base URL of the worker the unit was dispatched to.
	Worker string `json:"worker"`
	// Remote is the job ID the worker issued for the unit ("" until known).
	Remote string `json:"remote,omitempty"`
	// Expires is the lease deadline at journaling time — informational on
	// replay (a restarted coordinator re-leases), kept for inspection.
	Expires time.Time `json:"expires,omitzero"`
}

// record is one JSONL line: an Accept tagged "accept", a bare "done" ID, or a
// "lease" carrying the job ID plus the lease fields.
type record struct {
	Op string `json:"op"`
	Accept
	Lease *Lease `json:"lease,omitempty"`
}

// Journal is an open job journal. Construct with Open; all methods are safe
// for concurrent use.
type Journal struct {
	mu     sync.Mutex
	path   string
	fsync  bool
	f      *os.File
	live   map[string]Accept           // accepted, not yet done
	leases map[string]map[string]Lease // job ID -> unit -> latest lease
	order  []string                    // admission order of live (may hold stale IDs)
	dones  int                         // runtime completions since the last compaction
}

// Open opens (creating if missing) the journal at path, replays it, compacts
// it down to its live records, and returns the accepted-but-unfinished
// records in admission order, each with the latest journaled lease per unit
// attached. With fsync set, every subsequent append is synced to stable
// storage before it returns (power-loss durability); otherwise records ride
// the OS page cache (process-kill durability only).
func Open(path string, fsync bool) (*Journal, []Accept, error) {
	j := &Journal{
		path:   path,
		fsync:  fsync,
		live:   make(map[string]Accept),
		leases: make(map[string]map[string]Lease),
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A crash-truncated tail: everything before it is intact, so
			// stop here and let the compaction below drop the partial line.
			break
		}
		switch rec.Op {
		case "accept":
			if rec.ID == "" {
				continue
			}
			if _, dup := j.live[rec.ID]; !dup {
				j.order = append(j.order, rec.ID)
			}
			j.live[rec.ID] = rec.Accept
		case "done":
			delete(j.live, rec.ID)
			delete(j.leases, rec.ID)
		case "lease":
			if rec.Lease == nil || rec.ID == "" {
				continue
			}
			if _, ok := j.live[rec.ID]; !ok {
				continue // lease of a finished or unknown job
			}
			j.setLeaseLocked(rec.ID, *rec.Lease)
		}
	}
	backlog := j.liveInOrder()
	if err := j.compactLocked(); err != nil {
		return nil, nil, err
	}
	return j, backlog, nil
}

// Accept appends one accepted job. It must be called before the job's units
// enqueue, so a crash between admission and execution still replays the job.
func (j *Journal) Accept(rec Accept) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Leases = nil
	if _, dup := j.live[rec.ID]; !dup {
		j.order = append(j.order, rec.ID)
	}
	j.live[rec.ID] = rec
	return j.appendLocked(record{Op: "accept", Accept: rec})
}

// Lease appends one unit dispatch of a live job; the latest lease per unit
// wins on replay. Leases of jobs the journal does not hold live (finished,
// never accepted) are a no-op.
func (j *Journal) Lease(jobID string, l Lease) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.live[jobID]; !ok {
		return nil
	}
	j.setLeaseLocked(jobID, l)
	return j.appendLocked(record{Op: "lease", Accept: Accept{ID: jobID}, Lease: &l})
}

// setLeaseLocked records the latest lease of one (job, unit). Callers hold
// j.mu (or run during single-threaded replay).
func (j *Journal) setLeaseLocked(jobID string, l Lease) {
	m, ok := j.leases[jobID]
	if !ok {
		m = make(map[string]Lease)
		j.leases[jobID] = m
	}
	m[l.Unit] = l
}

// Done marks one journaled job finished. Unknown IDs are a no-op (cached
// submissions are never journaled). Every compactEvery completions the log is
// rewritten without its finished entries.
func (j *Journal) Done(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.live[id]; !ok {
		return nil
	}
	delete(j.live, id)
	delete(j.leases, id)
	if err := j.appendLocked(record{Op: "done", Accept: Accept{ID: id}}); err != nil {
		return err
	}
	j.dones++
	if j.dones >= compactEvery {
		return j.compactLocked()
	}
	return nil
}

// Len returns the number of live (accepted, unfinished) records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.live)
}

// Close compacts the journal down to its live records — retaining jobs a
// shutdown abandoned, which is what lets the next daemon resume them — and
// releases the file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.compactLocked()
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	return err
}

// liveInOrder returns the live records in admission order, leases attached
// (sorted by unit for determinism).
func (j *Journal) liveInOrder() []Accept {
	var out []Accept
	for _, id := range j.order {
		rec, ok := j.live[id]
		if !ok {
			continue
		}
		rec.Leases = j.jobLeases(id)
		out = append(out, rec)
	}
	return out
}

// jobLeases returns one job's latest leases sorted by unit.
func (j *Journal) jobLeases(id string) []Lease {
	m := j.leases[id]
	if len(m) == 0 {
		return nil
	}
	units := make([]string, 0, len(m))
	for unit := range m {
		units = append(units, unit)
	}
	sort.Strings(units)
	out := make([]Lease, 0, len(units))
	for _, unit := range units {
		out = append(out, m[unit])
	}
	return out
}

// appendLocked writes one record line, syncing it when the journal was opened
// with fsync. Callers hold j.mu.
func (j *Journal) appendLocked(rec record) error {
	if j.f == nil {
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.f = f
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// compactLocked rewrites the log with only the live accept records and their
// latest leases (temp file + rename, so a crash mid-compaction loses
// nothing). With fsync, the temp file is synced before the rename and the
// directory after it, so the compacted log is power-loss durable too.
// Failures carry ErrCompaction. Callers hold j.mu.
func (j *Journal) compactLocked() error {
	if err := j.doCompactLocked(); err != nil {
		return fmt.Errorf("%w: %v", ErrCompaction, err)
	}
	return nil
}

func (j *Journal) doCompactLocked() error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	keep := j.liveInOrder()
	ok := true
	for _, rec := range keep {
		leases := rec.Leases
		rec.Leases = nil
		recs := []record{{Op: "accept", Accept: rec}}
		for _, l := range leases {
			recs = append(recs, record{Op: "lease", Accept: Accept{ID: rec.ID}, Lease: &l})
		}
		for _, r := range recs {
			line, err := json.Marshal(r)
			if err == nil {
				_, err = w.Write(append(line, '\n'))
			}
			if err != nil {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
	}
	if ok {
		ok = w.Flush() == nil
		if ok && j.fsync {
			ok = tmp.Sync() == nil
		}
		ok = tmp.Close() == nil && ok
	} else {
		tmp.Close()
	}
	if !ok {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compacting %s failed", j.path)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if j.fsync {
		// Sync the directory so the rename itself survives power loss.
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	// The append handle points at the unlinked pre-compaction file; reopen
	// lazily on the next append.
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.order = make([]string, 0, len(keep))
	for _, rec := range keep {
		j.order = append(j.order, rec.ID)
	}
	j.dones = 0
	return nil
}
