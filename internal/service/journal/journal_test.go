package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func openT(t *testing.T, path string) (*Journal, []Accept) {
	t.Helper()
	j, backlog, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	return j, backlog
}

func accept(id string) Accept {
	return Accept{ID: id, Experiment: "table2", Spec: json.RawMessage(`{"quick":true}`), Shards: 2}
}

// TestAcceptDoneReplay pins the core WAL contract: accepted jobs replay on
// reopen until marked done, in admission order, with their payload intact.
func TestAcceptDoneReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, backlog := openT(t, path)
	if len(backlog) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(backlog))
	}
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		if err := j.Accept(accept(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Done("job-000002"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, backlog := openT(t, path)
	defer j2.Close()
	if len(backlog) != 2 || backlog[0].ID != "job-000001" || backlog[1].ID != "job-000003" {
		t.Fatalf("replay = %+v, want jobs 1 and 3 in order", backlog)
	}
	if backlog[0].Experiment != "table2" || backlog[0].Shards != 2 || string(backlog[0].Spec) != `{"quick":true}` {
		t.Fatalf("replayed record lost payload: %+v", backlog[0])
	}
}

// TestCompactionDropsFinished checks that Close compacts the file down to
// live accept records only.
func TestCompactionDropsFinished(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := openT(t, path)
	for _, id := range []string{"job-000001", "job-000002"} {
		if err := j.Accept(accept(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Done("job-000001"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if strings.Contains(text, "job-000001") || strings.Contains(text, `"done"`) {
		t.Fatalf("compacted journal still holds finished records:\n%s", text)
	}
	if !strings.Contains(text, "job-000002") {
		t.Fatalf("compacted journal lost the live record:\n%s", text)
	}
}

// TestTruncatedTailTolerated simulates a crash mid-append: a malformed final
// line must not poison replay of the intact prefix.
func TestTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := openT(t, path)
	if err := j.Accept(accept("job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","id":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, backlog := openT(t, path)
	defer j2.Close()
	if len(backlog) != 1 || backlog[0].ID != "job-000001" {
		t.Fatalf("replay after truncated tail = %+v", backlog)
	}
}

// TestDoneUnknownIDNoop pins that Done of a never-journaled ID (cached
// submissions) is a no-op.
func TestDoneUnknownIDNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := openT(t, path)
	defer j.Close()
	if err := j.Done("job-999999"); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("Len = %d", j.Len())
	}
}

// TestRuntimeCompactionThreshold drives past compactEvery completions and
// checks the file stays bounded by the live set.
func TestRuntimeCompactionThreshold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := openT(t, path)
	defer j.Close()
	for i := 0; i < compactEvery+8; i++ {
		id := Accept{ID: string(rune('a'+i%26)) + "-job", Experiment: "table2"}
		id.ID = "job-" + strings.Repeat("0", 3) + string(rune('a'+i%26)) + string(rune('0'+i%10))
		if err := j.Accept(id); err != nil {
			t.Fatal(err)
		}
		if err := j.Done(id.ID); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines > compactEvery {
		t.Fatalf("journal grew to %d lines despite compaction", lines)
	}
}

// TestLeaseReplay pins the coordinator-facing lease contract: the latest lease
// per (job, unit) replays attached to its Accept in unit order, Done clears a
// job's leases, leases of unknown jobs are a no-op, and compaction (Close)
// preserves live leases.
func TestLeaseReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := openT(t, path)
	if err := j.Accept(accept("job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept(accept("job-000002")); err != nil {
		t.Fatal(err)
	}
	// Two leases of the same unit: the later one wins on replay.
	if err := j.Lease("job-000001", Lease{Unit: "1/2", Worker: "http://a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Lease("job-000001", Lease{Unit: "0/2", Worker: "http://a", Remote: "job-000007"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Lease("job-000001", Lease{Unit: "1/2", Worker: "http://b", Remote: "job-000003"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Lease("job-000002", Lease{Unit: "0/2", Worker: "http://b"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Lease("job-999999", Lease{Unit: "0/2", Worker: "http://c"}); err != nil {
		t.Fatal(err) // unknown job: no-op, no error
	}
	if err := j.Done("job-000002"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, backlog := openT(t, path)
	defer j2.Close()
	if len(backlog) != 1 || backlog[0].ID != "job-000001" {
		t.Fatalf("replay = %+v, want job-000001 only", backlog)
	}
	leases := backlog[0].Leases
	if len(leases) != 2 {
		t.Fatalf("replayed %d leases, want 2: %+v", len(leases), leases)
	}
	if leases[0].Unit != "0/2" || leases[0].Worker != "http://a" || leases[0].Remote != "job-000007" {
		t.Fatalf("lease 0 = %+v", leases[0])
	}
	if leases[1].Unit != "1/2" || leases[1].Worker != "http://b" || leases[1].Remote != "job-000003" {
		t.Fatalf("lease 1 = %+v, want the later http://b lease to win", leases[1])
	}
}

// TestShardFieldRoundTrips pins that a unit-level job's shard slice survives
// replay (workers journal federated shard units with Shard set).
func TestShardFieldRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := openT(t, path)
	rec := accept("job-000001")
	rec.Shards = 0
	rec.Shard = "2/4"
	if err := j.Accept(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, backlog := openT(t, path)
	defer j2.Close()
	if len(backlog) != 1 || backlog[0].Shard != "2/4" {
		t.Fatalf("replay = %+v, want Shard 2/4", backlog)
	}
}

// TestFsyncModeRoundTrips checks the fsync journal behaves identically at the
// API level (append, lease, replay, compaction) — the mode only changes
// durability, never content.
func TestFsyncModeRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept(accept("job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := j.Lease("job-000001", Lease{Unit: "0/2", Worker: "http://a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, backlog, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(backlog) != 1 || len(backlog[0].Leases) != 1 {
		t.Fatalf("fsync replay = %+v", backlog)
	}
}

// benchAppend measures the per-record append cost in the given durability
// mode; the numbers feed the -journal-fsync flag documentation.
func benchAppend(b *testing.B, fsync bool) {
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	j, _, err := Open(path, fsync)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := accept("job-000001")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.ID = "job-" + strconv.Itoa(i)
		if err := j.Accept(rec); err != nil {
			b.Fatal(err)
		}
		if err := j.Done(rec.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppend(b *testing.B)      { benchAppend(b, false) }
func BenchmarkAppendFsync(b *testing.B) { benchAppend(b, true) }
