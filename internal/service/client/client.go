// Package client is the typed Go client of the experiment service daemon
// (internal/service, cmd/battschedd). It speaks the /v1 JSON API and returns
// the same structured Reports the local experiment registry produces, so a
// program can switch between in-process runs and a remote daemon without
// changing its result handling. `cmd/experiments submit` is built on it; the
// battsched facade re-exports it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/obs"
	"battsched/internal/service"
)

// Client talks to one experiment daemon. The zero retry configuration fails
// fast; set MaxRetries to make the client absorb transient rejections — 429
// queue-full backpressure, 503 draining (a rolling restart), and refused
// connections (the daemon is down between restarts) — with jittered
// exponential backoff.
type Client struct {
	base string
	hc   *http.Client

	// MaxRetries is the number of times a transiently-failed request — HTTP
	// 429 (queue full), HTTP 503 (daemon draining) or a refused connection
	// (daemon restarting) — is retried before the APIError (or transport
	// error) is returned; 0 disables retries. Each attempt waits the larger
	// of the daemon's Retry-After hint and a jittered exponential backoff
	// from RetryBaseDelay.
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (<= 0 selects 100 ms);
	// attempt n waits base·2ⁿ scaled by a random factor in [0.5, 1.5),
	// capped at 30 s — unless Retry-After asks for longer.
	RetryBaseDelay time.Duration
	// OnRetry, when non-nil, observes every backoff: the HTTP status that
	// caused it (0 for a refused connection), the 1-based attempt number,
	// and the chosen delay.
	OnRetry func(status, attempt int, delay time.Duration)
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8344"). A trailing slash is stripped. The underlying
// transport keeps enough idle connections per host for load-generation
// concurrency.
func New(baseURL string) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{Transport: tr}}
}

// APIError is a non-2xx daemon response.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the daemon's error message.
	Message string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("experiment service: %s (HTTP %d)", e.Message, e.Status)
}

// do performs one JSON request, retrying transient rejections (429, 503,
// refused connections) up to MaxRetries times. A non-2xx response decodes
// into *APIError; out may be nil to discard the body, or *[]byte to capture
// it verbatim. A non-empty trace is sent as the X-Trace-Id header on every
// attempt, so retries stay attributable to one submission.
func (c *Client) do(ctx context.Context, method, path, trace string, in, out any) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = data
	}
	for attempt := 0; ; attempt++ {
		data, status, retryAfter, err := c.once(ctx, method, path, trace, payload)
		if err != nil {
			// A refused connection means no daemon is listening right now —
			// the restart gap of a rolling deploy. Same backoff as 429/503,
			// no Retry-After hint to honour. Anything else (DNS, ctx
			// cancellation, a reset mid-response) fails fast: the request
			// may have reached the daemon, so blind replay is not safe for
			// non-idempotent calls.
			if errors.Is(err, syscall.ECONNREFUSED) && ctx.Err() == nil && attempt < c.MaxRetries {
				delay := c.backoff(attempt, 0)
				if c.OnRetry != nil {
					c.OnRetry(0, attempt+1, delay)
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(delay):
				}
				continue
			}
			return err
		}
		if (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) && attempt < c.MaxRetries {
			delay := c.backoff(attempt, retryAfter)
			if c.OnRetry != nil {
				c.OnRetry(status, attempt+1, delay)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			continue
		}
		if status < 200 || status > 299 {
			var ae struct {
				Error string `json:"error"`
			}
			msg := strings.TrimSpace(string(data))
			if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
				msg = ae.Error
			}
			return &APIError{Status: status, Message: msg}
		}
		switch out := out.(type) {
		case nil:
			return nil
		case *[]byte:
			*out = data
			return nil
		default:
			return json.Unmarshal(data, out)
		}
	}
}

// once performs a single HTTP attempt, returning the body, status, and the
// parsed Retry-After hint (0 when absent).
func (c *Client) once(ctx context.Context, method, path, trace string, payload []byte) ([]byte, int, time.Duration, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, 0, 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return data, resp.StatusCode, retryAfter, nil
}

// backoff picks the wait before retry attempt+1: jittered exponential from
// RetryBaseDelay, capped at 30 s, but never shorter than the daemon's
// Retry-After hint.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > 30*time.Second || d <= 0 {
		d = 30 * time.Second
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// Submit posts one job and returns its initial status — State done with
// Cached set when the daemon answered from the report cache, queued
// otherwise. Every submission carries an X-Trace-Id header: req.TraceID when
// set, a fresh obs.NewTraceID otherwise — read it back from the returned
// status (TraceID) to correlate the job across the fleet's event logs.
func (c *Client) Submit(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	if req.TraceID == "" {
		req.TraceID = obs.NewTraceID()
	}
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req.TraceID, req, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, "", nil, &st)
	return st, err
}

// Wait polls the job every poll interval (<= 0 selects 200 ms) until it
// reaches a terminal state (done or failed) and returns that status; observe,
// when non-nil, receives every intermediate snapshot (for progress display).
// The error is non-nil only for transport failures or ctx
// cancellation — inspect the returned State for job failure.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, observe func(service.JobStatus)) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if observe != nil {
			observe(st)
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// ReportArtifact fetches a finished job's report artifact verbatim: exactly
// the bytes the equivalent local `cmd/experiments run -o` writes.
func (c *Client) ReportArtifact(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/report", "", nil, &raw)
	return raw, err
}

// Reports fetches and decodes a finished job's reports.
func (c *Client) Reports(ctx context.Context, id string) ([]*experiments.Report, error) {
	raw, err := c.ReportArtifact(ctx, id)
	if err != nil {
		return nil, err
	}
	return experiments.ReadArtifact(bytes.NewReader(raw))
}

// ReportTable fetches a finished job's report rendered as the experiment's
// plain-text table (?format=table).
func (c *Client) ReportTable(ctx context.Context, id string) (string, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/report?format=table", "", nil, &raw)
	return string(raw), err
}

// Experiments lists the daemon's experiment registry.
func (c *Client) Experiments(ctx context.Context) ([]service.ExperimentInfo, error) {
	var infos []service.ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", "", nil, &infos)
	return infos, err
}

// Batteries lists the daemon's battery model registry.
func (c *Client) Batteries(ctx context.Context) ([]string, error) {
	var names []string
	err := c.do(ctx, http.MethodGet, "/v1/batteries", "", nil, &names)
	return names, err
}

// Health fetches the daemon's health snapshot.
func (c *Client) Health(ctx context.Context) (service.Health, error) {
	var h service.Health
	err := c.do(ctx, http.MethodGet, "/healthz", "", nil, &h)
	return h, err
}
