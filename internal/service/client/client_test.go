package client

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetriesDrainingAndQueueFull pins the transient-status retry set: 503
// (draining) and 429 (queue full) back off and retry up to MaxRetries,
// honouring Retry-After, while a 400 fails immediately.
func TestRetriesDrainingAndQueueFull(t *testing.T) {
	for _, status := range []int{http.StatusServiceUnavailable, http.StatusTooManyRequests} {
		var calls atomic.Int32
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 2 {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(status)
				w.Write([]byte(`{"error":"transient"}`))
				return
			}
			w.Write([]byte(`{"status":"ok"}`))
		}))
		defer ts.Close()

		c := New(ts.URL)
		c.MaxRetries = 3
		c.RetryBaseDelay = time.Millisecond
		var retries []int
		c.OnRetry = func(st, attempt int, _ time.Duration) { retries = append(retries, st) }
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatalf("status %d: err after retries: %v", status, err)
		}
		if calls.Load() != 3 {
			t.Fatalf("status %d: %d calls, want 3", status, calls.Load())
		}
		if len(retries) != 2 || retries[0] != status || retries[1] != status {
			t.Fatalf("status %d: OnRetry saw %v", status, retries)
		}
	}
}

// TestNoRetryOnPermanentError pins that a 400 is returned immediately even
// with retries configured.
func TestNoRetryOnPermanentError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad spec"}`))
	}))
	defer ts.Close()
	c := New(ts.URL)
	c.MaxRetries = 3
	c.RetryBaseDelay = time.Millisecond
	_, err := c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls, want 1 (no retry on 400)", calls.Load())
	}
}

// TestRetriesConnectionRefused pins the restart-gap behaviour: a refused
// connection retries with the same backoff (OnRetry status 0) and succeeds
// once a daemon starts listening again on the address.
func TestRetriesConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens: connections are refused

	c := New("http://" + addr)
	c.MaxRetries = 50
	c.RetryBaseDelay = 5 * time.Millisecond
	var transportRetries atomic.Int32
	started := make(chan struct{})
	c.OnRetry = func(st, attempt int, _ time.Duration) {
		if st != 0 {
			t.Errorf("OnRetry status = %d, want 0 for refused connection", st)
		}
		if transportRetries.Add(1) == 2 {
			close(started) // bring the daemon up after two refusals
		}
	}
	go func() {
		<-started
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the test will report the retry error
		}
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"status":"ok"}`))
		})}
		go srv.Serve(ln2)
	}()
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health after restart gap: %v (retries %d)", err, transportRetries.Load())
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	if transportRetries.Load() < 2 {
		t.Fatalf("only %d transport retries observed", transportRetries.Load())
	}
}

// TestZeroRetriesFailsFast pins that the zero configuration keeps failing
// fast on refused connections.
func TestZeroRetriesFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := New("http://" + addr)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("refused connection succeeded with MaxRetries 0")
	}
}
