package service_test

// Hardening pins for the serving layer: singleflight coalescing, the durable
// job journal (kill-and-restart resume), graceful drain, 429/Retry-After
// backpressure with client backoff, surfaced cache write failures, and the
// queue-full + MaxJobs eviction paths under concurrent submitters. All tests
// drive nondeterminism out through Config.FaultHook gates.

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

// gateHook returns a fault hook that blocks every unit until gate closes (or
// the daemon context ends), making in-flight and queued states controllable.
func gateHook(gate chan struct{}) func(context.Context, string, experiments.Shard) error {
	return func(ctx context.Context, _ string, _ experiments.Shard) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// waitState polls the server directly until the job reaches want.
func waitState(t *testing.T, srv *service.Server, id, want string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := srv.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			t.Fatalf("job %s reached %s (%s), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalescedSubmissionsExecuteOnce is the singleflight acceptance pin: N
// concurrent submissions of one spec execute the experiment exactly once —
// one leader, N-1 followers marked Coalesced — and every job resolves with
// the byte-identical artifact.
func TestCoalescedSubmissionsExecuteOnce(t *testing.T) {
	const n = 6
	gate := make(chan struct{})
	var units atomic.Int32
	srv, err := service.New(service.Config{
		Workers: 2,
		FaultHook: func(ctx context.Context, _ string, _ experiments.Shard) error {
			units.Add(1)
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	req := service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(spec)}
	var wg sync.WaitGroup
	ids := make([]string, n)
	coalesced := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := srv.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i], coalesced[i] = st.ID, st.Coalesced
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	close(gate)

	want := localArtifact(t, "table2", spec)
	leaders := 0
	for i, id := range ids {
		st := waitState(t, srv, id, service.StateDone)
		if !st.Coalesced {
			leaders++
		}
		if st.Coalesced != coalesced[i] {
			t.Fatalf("job %s flipped Coalesced from %v to %v", id, coalesced[i], st.Coalesced)
		}
		got, err := srv.Artifact(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %s artifact differs from local run", id)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leader jobs, want exactly 1", leaders)
	}
	if got := units.Load(); got != 1 {
		t.Fatalf("experiment executed %d times, want exactly once", got)
	}
	if h := srv.Health(); h.CoalescedJobs != n-1 {
		t.Fatalf("Health.CoalescedJobs = %d, want %d", h.CoalescedJobs, n-1)
	}
}

// TestJournalKillRestartResumes is the durability acceptance pin: a daemon
// killed with one unit in flight and one job still queued is relaunched over
// the same directory, resumes both jobs under their original IDs, and serves
// artifacts byte-identical to an uninterrupted run's.
func TestJournalKillRestartResumes(t *testing.T) {
	dir := t.TempDir()
	specA := experiments.Spec{Quick: true, Battery: "kibam"}
	specB := experiments.Spec{Quick: true, Battery: "kibam", Seed: 7}

	srv1, err := service.New(service.Config{
		Workers: 1, CacheDir: dir,
		FaultHook: func(ctx context.Context, _ string, _ experiments.Shard) error {
			<-ctx.Done() // wedge until the kill
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := srv1.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(specA), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv1.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(specB)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv1, a.ID, service.StateRunning)
	srv1.Close() // the kill: abandons the in-flight unit and the queued job

	for _, id := range []string{a.ID, b.ID} {
		st, err := srv1.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateFailed || !strings.Contains(st.Error, "shut down") {
			t.Fatalf("after kill, job %s = %s (%q), want failed with shutdown message", id, st.State, st.Error)
		}
	}

	// Relaunch over the same directory: both jobs replay under their
	// original IDs and run to completion.
	srv2, err := service.New(service.Config{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for _, tc := range []struct {
		id   string
		spec experiments.Spec
	}{{a.ID, specA}, {b.ID, specB}} {
		st := waitState(t, srv2, tc.id, service.StateDone)
		if st.Cached {
			t.Fatalf("replayed job %s reported cached; it never finished before the kill", tc.id)
		}
		got, err := srv2.Artifact(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if want := localArtifact(t, "table2", tc.spec); !bytes.Equal(got, want) {
			t.Fatalf("resumed job %s artifact differs from uninterrupted run", tc.id)
		}
	}

	// New submissions continue the ID sequence past the replayed jobs.
	c, err := srv2.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(specA)})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID <= b.ID {
		t.Fatalf("post-restart ID %s does not continue past %s", c.ID, b.ID)
	}
	if !c.Cached {
		t.Fatal("post-restart resubmission of a finished spec should hit the cache")
	}
}

// TestGracefulDrain pins Shutdown: admissions stop (health turns "draining"
// and /healthz answers 503), the in-flight unit finishes and its job
// completes normally, and the still-queued job is terminal-marked failed
// with the shutdown message.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	srv, err := service.New(service.Config{Workers: 1, FaultHook: gateHook(gate)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specA := experiments.Spec{Quick: true, Battery: "kibam"}
	a, err := srv.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(specA)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam", Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, a.ID, service.StateRunning)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Shutdown(context.Background())
	}()
	for srv.Health().Status != "draining" {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining = %d, want 503", resp.StatusCode)
	}
	if _, err := srv.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequest{Quick: true}}); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("submit while draining err = %v, want ErrDraining", err)
	}

	close(gate) // let the in-flight unit finish; drain then completes
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not complete after the in-flight unit finished")
	}

	stA, err := srv.Job(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stA.State != service.StateDone {
		t.Fatalf("in-flight job after drain = %s (%s), want done", stA.State, stA.Error)
	}
	got, err := srv.Artifact(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := localArtifact(t, "table2", specA); !bytes.Equal(got, want) {
		t.Fatal("drained job's artifact differs from local run")
	}
	stB, err := srv.Job(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stB.State != service.StateFailed || !strings.Contains(stB.Error, "shut down") {
		t.Fatalf("queued job after drain = %s (%q), want failed with shutdown message", stB.State, stB.Error)
	}
}

// TestCloseMarksQueuedFailed pins the zombie fix: after Close, no job is
// left in state queued or running — all are terminal with a distinct
// shutdown message.
func TestCloseMarksQueuedFailed(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 1, FaultHook: gateHook(nil)})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		st, err := srv.Submit(service.JobRequest{
			Experiment: "table2",
			Spec:       service.SpecRequest{Quick: true, Battery: "kibam", Seed: seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	srv.Close()
	for _, id := range ids {
		st, err := srv.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateFailed || !strings.Contains(st.Error, "shut down") {
			t.Fatalf("job %s after Close = %s (%q), want failed with shutdown message", id, st.State, st.Error)
		}
	}
}

// TestRetryAfterAndClientBackoff pins the backpressure contract end to end:
// a full queue answers 429 with a positive whole-second Retry-After header,
// and a client with MaxRetries set absorbs the rejection and lands the job
// once capacity frees up.
func TestRetryAfterAndClientBackoff(t *testing.T) {
	gate := make(chan struct{})
	srv, err := service.New(service.Config{Workers: 1, QueueCapacity: 1, FaultHook: gateHook(gate)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fill the daemon: one unit wedged in flight, one unit queued.
	a, err := srv.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, a.ID, service.StateRunning)
	if _, err := srv.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam", Seed: 2}}); err != nil {
		t.Fatal(err)
	}

	// Raw overflow submission: 429 plus a usable Retry-After header.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"table2","spec":{"quick":true,"battery":"kibam","seed":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive whole-second value", resp.Header.Get("Retry-After"))
	}

	// Typed client with retries: the first attempt is rejected (queue still
	// full), the rejection's backoff opens the gate, and a later attempt
	// succeeds against the drained queue.
	c := client.New(ts.URL)
	c.MaxRetries = 8
	c.RetryBaseDelay = 10 * time.Millisecond
	var retries atomic.Int32
	var open sync.Once
	c.OnRetry = func(status, attempt int, delay time.Duration) {
		if status != http.StatusTooManyRequests {
			t.Errorf("OnRetry status = %d", status)
		}
		retries.Add(1)
		open.Do(func() { close(gate) })
	}
	st, err := c.Submit(context.Background(), service.JobRequest{
		Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam", Seed: 4},
	})
	if err != nil {
		t.Fatalf("retried submit failed: %v", err)
	}
	if retries.Load() == 0 {
		t.Fatal("client accepted without observing a 429 retry")
	}
	final, err := c.Wait(context.Background(), st.ID, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("retried job state = %s: %s", final.State, final.Error)
	}
}

// TestCacheWriteErrorSurfaced pins the swallowed-error fix: when the report
// cache cannot persist an artifact, the job still completes from memory and
// Health counts the failure.
func TestCacheWriteErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	srv, err := service.New(service.Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Break the cache directory out from under the daemon: writes now fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := srv.Submit(service.JobRequest{Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, st.ID, service.StateDone)
	if _, err := srv.Artifact(st.ID); err != nil {
		t.Fatalf("job with failed cache write lost its artifact: %v", err)
	}
	if h := srv.Health(); h.CacheWriteErrors < 1 {
		t.Fatalf("Health.CacheWriteErrors = %d, want >= 1", h.CacheWriteErrors)
	}
}

// TestConcurrentSubmitQueueFullAndEviction fills a wedged daemon to its
// queue bound, then hammers it with concurrent submitters (race-enabled):
// duplicates of pending specs coalesce past the full queue, novel specs are
// rejected with ErrQueueFull, every accepted job reaches a terminal state
// after release (no lost wakeups, no double-finalize under the race
// detector), evicted IDs answer ErrUnknownJob, and artifacts stay
// cache-resolvable after eviction.
func TestConcurrentSubmitQueueFullAndEviction(t *testing.T) {
	const (
		submitters = 8
		perWorker  = 6
		maxJobs    = 6
	)
	gate := make(chan struct{})
	srv, err := service.New(service.Config{
		Workers: 2, QueueCapacity: 3, MaxJobs: maxJobs,
		FaultHook: gateHook(gate),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	submit := func(seed int64) (service.JobStatus, error) {
		return srv.Submit(service.JobRequest{
			Experiment: "table2",
			Spec:       service.SpecRequest{Quick: true, Battery: "kibam", Seed: seed},
		})
	}

	// Fill: submit novel specs until the queue bound rejects one. With the
	// workers wedged, between 5 and 7 land (2 in flight + 3 queued, plus
	// dequeue timing).
	var accepted []string
	var pending int64
	for {
		st, err := submit(pending + 1)
		if errors.Is(err, service.ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pending++
		accepted = append(accepted, st.ID)
		if pending > 20 {
			t.Fatal("queue never reported full")
		}
	}

	// Hammer the full daemon concurrently. Seeds <= pending coalesce onto
	// the wedged leaders (bypassing queue capacity); novel seeds keep
	// hitting the bound.
	var mu sync.Mutex
	var rejected, coalesced int
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := int64(1 + (w*perWorker+i)%int(pending+3))
				st, err := submit(seed)
				switch {
				case errors.Is(err, service.ErrQueueFull):
					if seed <= pending {
						t.Errorf("seed %d should have coalesced, got queue-full", seed)
						return
					}
					mu.Lock()
					rejected++
					mu.Unlock()
				case err != nil:
					t.Errorf("submitter %d: %v", w, err)
					return
				default:
					mu.Lock()
					accepted = append(accepted, st.ID)
					if st.Coalesced {
						coalesced++
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if rejected == 0 || coalesced == 0 {
		t.Fatalf("rejected=%d coalesced=%d; the test needs both paths exercised", rejected, coalesced)
	}
	close(gate)

	// Every accepted job must reach done or be evicted as terminal — a job
	// stuck queued/running forever is a lost wakeup.
	deadline := time.Now().Add(30 * time.Second)
	evicted := 0
	for _, id := range accepted {
		for {
			st, err := srv.Job(id)
			if errors.Is(err, service.ErrUnknownJob) {
				evicted++ // only terminal jobs enter the eviction queue
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if st.State == service.StateDone {
				break
			}
			if st.State == service.StateFailed {
				t.Fatalf("job %s failed: %s", id, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never reached a terminal state (stuck %s)", id, st.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Resubmitting every computed seed answers from the report cache even
	// for evicted job IDs, and the cache-hit submissions trigger eviction
	// down to the bound.
	for seed := int64(1); seed <= pending; seed++ {
		st, err := submit(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Cached {
			t.Fatalf("seed %d not cache-resolvable after eviction", seed)
		}
	}
	if h := srv.Health(); h.Jobs > maxJobs {
		t.Fatalf("job map holds %d jobs, bound is %d", h.Jobs, maxJobs)
	}
	for _, id := range accepted {
		if _, err := srv.Job(id); errors.Is(err, service.ErrUnknownJob) {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("no job was evicted despite exceeding MaxJobs")
	}
}
