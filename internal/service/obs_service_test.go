package service_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"battsched/internal/experiments"
	"battsched/internal/obs"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

// scrape fetches url/metrics and parses the exposition.
func scrape(t *testing.T, base string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(body)
	if err != nil {
		t.Fatalf("parse /metrics: %v\n%s", err, body)
	}
	return samples
}

// mustFind fails the test when the sample is absent.
func mustFind(t *testing.T, samples []obs.Sample, name string, labels ...string) float64 {
	t.Helper()
	s, ok := obs.Find(samples, name, labels...)
	if !ok {
		t.Fatalf("metric %s%v not exposed", name, labels)
	}
	return s.Value
}

// TestHealthMatchesMetrics pins the observability contract between the two
// daemon endpoints: every counter and gauge /healthz reports must equal the
// corresponding /metrics series, because both read the same registry-backed
// source. Drives all three admission paths (computed, coalesced, cached)
// so the shared counters are nonzero.
func TestHealthMatchesMetrics(t *testing.T) {
	gate := make(chan struct{})
	srv, err := service.New(service.Config{
		Workers: 2,
		FaultHook: func(ctx context.Context, _ string, _ experiments.Shard) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	req := service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(spec)}

	// Leader + coalesced follower while the gate holds the unit.
	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := srv.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	close(gate)
	for _, id := range ids {
		waitState(t, srv, id, service.StateDone)
	}
	// Third submission of the same spec: served from the cache.
	st, err := srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || !st.Cached {
		t.Fatalf("resubmission state=%s cached=%v, want cached done", st.State, st.Cached)
	}

	h := srv.Health()
	samples := scrape(t, ts.URL)

	if h.CoalescedJobs != 1 {
		t.Fatalf("Health.CoalescedJobs = %d, want 1", h.CoalescedJobs)
	}
	if got := mustFind(t, samples, "battsched_jobs_total", "admission", "computed"); got != 1 {
		t.Errorf("jobs_total{computed} = %v, want 1", got)
	}
	if got := mustFind(t, samples, "battsched_jobs_total", "admission", "coalesced"); got != float64(h.CoalescedJobs) {
		t.Errorf("jobs_total{coalesced} = %v, Health says %d", got, h.CoalescedJobs)
	}
	if got := mustFind(t, samples, "battsched_jobs_total", "admission", "cached"); got != 1 {
		t.Errorf("jobs_total{cached} = %v, want 1", got)
	}
	if h.CacheHits < 1 {
		t.Fatalf("Health.CacheHits = %d, want >= 1", h.CacheHits)
	}
	for _, pin := range []struct {
		metric string
		labels []string
		health int
	}{
		{"battsched_cache_hits_total", nil, h.CacheHits},
		{"battsched_cache_misses_total", nil, h.CacheMisses},
		{"battsched_cache_write_errors_total", nil, h.CacheWriteErrors},
		{"battsched_queue_depth", nil, h.QueueDepth},
		{"battsched_queue_capacity", nil, h.QueueCapacity},
		{"battsched_in_flight", nil, h.InFlight},
		{"battsched_workers", nil, h.Workers},
		{"battsched_jobs_tracked", nil, h.Jobs},
		{"battsched_cache_entries", nil, h.CacheEntries},
	} {
		if got := mustFind(t, samples, pin.metric, pin.labels...); got != float64(pin.health) {
			t.Errorf("%s = %v, /healthz says %d", pin.metric, got, pin.health)
		}
	}
	if got := mustFind(t, samples, "battsched_unit_duration_seconds_count"); got < 1 {
		t.Errorf("unit_duration_seconds_count = %v, want >= 1 after a computed job", got)
	}
	if got := mustFind(t, samples, "battsched_unit_duration_seconds_bucket", "le", "+Inf"); got < 1 {
		t.Errorf("unit_duration_seconds_bucket{+Inf} = %v, want >= 1", got)
	}
	// The compute-core counters ride on the same registry: the computed job
	// ran the scheduler engine in-process.
	if got := mustFind(t, samples, "battsched_engine_runs_total"); got < 1 {
		t.Errorf("engine_runs_total = %v, want >= 1", got)
	}
}

// TestServiceTraceEvents pins the single-daemon half of the tracing story:
// a submission's client-chosen trace id threads every event-log record of
// the job's lifecycle, so one ReadEvents filter reconstructs it.
func TestServiceTraceEvents(t *testing.T) {
	dir := t.TempDir()
	_, c := startDaemon(t, service.Config{Workers: 2, CacheDir: dir})

	const trace = "feedfacefeedfacefeedfacefeedface"
	req := service.JobRequest{
		Experiment: "table2",
		Spec:       service.SpecRequestFrom(experiments.Spec{Quick: true, Battery: "kibam"}),
		TraceID:    trace,
		Shards:     2,
	}
	st := submitAndWait(t, c, req)
	if st.TraceID != trace {
		t.Fatalf("status TraceID = %q, want %q (header did not round-trip)", st.TraceID, trace)
	}

	events, err := obs.ReadEvents(filepath.Join(dir, "events.jsonl"), trace)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Event]++
		if e.Job != st.ID {
			t.Errorf("event %s carries job %q, want %q", e.Event, e.Job, st.ID)
		}
	}
	if counts[obs.EventJobAccepted] != 1 {
		t.Errorf("job_accepted count = %d, want 1", counts[obs.EventJobAccepted])
	}
	if counts[obs.EventUnitStarted] != 2 || counts[obs.EventUnitFinished] != 2 {
		t.Errorf("unit events = %d started / %d finished, want 2/2 (2 shards)",
			counts[obs.EventUnitStarted], counts[obs.EventUnitFinished])
	}
	if counts[obs.EventMerge] != 1 {
		t.Errorf("merge count = %d, want 1", counts[obs.EventMerge])
	}
	if counts[obs.EventJobDone] != 1 {
		t.Errorf("job_done count = %d, want 1", counts[obs.EventJobDone])
	}
	// Lifecycle ordering: admission precedes execution precedes completion.
	// (The cache lookup — and its cache_miss event — happens before
	// admission, so job_accepted is not necessarily the very first record.)
	idx := func(name string) int {
		for i, e := range events {
			if e.Event == name {
				return i
			}
		}
		return -1
	}
	if len(events) == 0 || events[len(events)-1].Event != obs.EventJobDone {
		t.Errorf("last event = %v, want job_done", events)
	} else if a, u := idx(obs.EventJobAccepted), idx(obs.EventUnitStarted); a > u {
		t.Errorf("job_accepted at index %d after unit_started at %d", a, u)
	}

	// An unrelated trace id filters to nothing: the log is per-trace clean.
	other, err := obs.ReadEvents(filepath.Join(dir, "events.jsonl"), "0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != 0 {
		t.Errorf("unrelated trace matched %d events", len(other))
	}
}

// TestClientTraceHeader pins that the typed client stamps X-Trace-Id on
// submissions and the daemon adopts it (rather than minting its own).
func TestClientTraceHeader(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	srv, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			mu.Lock()
			seen = append(seen, obs.TraceFromRequest(r))
			mu.Unlock()
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := client.New(ts.URL)

	st, err := c.Submit(context.Background(), service.JobRequest{
		Experiment: "table2",
		Spec:       service.SpecRequestFrom(experiments.Spec{Quick: true, Battery: "kibam"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || len(seen[0]) != 32 {
		t.Fatalf("X-Trace-Id headers seen: %q, want one 32-hex id", seen)
	}
	if st.TraceID != seen[0] {
		t.Fatalf("status TraceID %q != header %q", st.TraceID, seen[0])
	}
}
