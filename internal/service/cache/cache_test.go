package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestMemoryOnlyRoundTrip(t *testing.T) {
	c, err := New("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("ab12"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("ab12", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("ab12"); !ok || string(got) != "one" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

// TestLRUEviction checks the recency bound: with capacity 2, touching "a"
// keeps it resident while the untouched "b" is evicted by a third insert. A
// memory-only cache loses the evicted entry; a disk-backed cache re-admits it
// from the store.
func TestLRUEviction(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		c, err := New(dir, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"aa", "bb"} {
			if err := c.Put(k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		c.Get("aa") // refresh
		if err := c.Put("cc", []byte("cc")); err != nil {
			t.Fatal(err)
		}
		if c.Len() != 2 {
			t.Fatalf("dir=%q: len = %d, want 2", dir, c.Len())
		}
		if _, ok := c.Get("aa"); !ok {
			t.Fatalf("dir=%q: recently used entry evicted", dir)
		}
		_, ok := c.Get("bb")
		if disk := dir != ""; ok != disk {
			t.Fatalf("dir=%q: evicted entry present=%v, want %v", dir, ok, disk)
		}
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"version":1}`)
	if err := c.Put("deadbeef", data); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.json")); err != nil {
		t.Fatalf("artifact file missing: %v", err)
	}
	// A fresh cache over the same directory serves the artifact from disk.
	c2, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef")
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
	if c2.Len() != 1 {
		t.Fatalf("disk hit not admitted to memory (len %d)", c2.Len())
	}
}

// TestInvalidKeys pins the path-safety rule: anything but bounded lowercase
// hex is rejected by both Get and Put.
func TestInvalidKeys(t *testing.T) {
	c, err := New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	long := fmt.Sprintf("%0200d", 0)
	for _, bad := range []string{"", "../etc/passwd", "ABCD", "xyz!", "a/b", long} {
		if err := c.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", bad)
		}
		if _, ok := c.Get(bad); ok {
			t.Fatalf("Get(%q) hit", bad)
		}
	}
}
