// Package cache implements the content-addressed report cache of the
// experiment service: finished report artifacts keyed by the canonical spec
// hash (experiments.SpecHash), held in a bounded in-memory LRU in front of an
// optional on-disk store.
//
// Keys are content addresses, so entries are immutable: a key is only ever
// associated with one artifact, and Put of an existing key is a no-op
// overwrite with identical bytes. That makes the two tiers trivially
// coherent — the LRU is purely a recency window over the disk store, and
// eviction never loses data when a directory is configured. The disk store
// is one file per artifact (<key>.json, written atomically via rename), so a
// cache directory survives daemon restarts and can be inspected, rsynced or
// garbage-collected with ordinary file tools.
package cache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a two-tier content-addressed artifact store. The zero value is
// not usable; construct with New.
type Cache struct {
	dir string
	max int

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   int
	misses int
}

// entry is one resident artifact.
type entry struct {
	key  string
	data []byte
}

// New returns a cache holding at most maxEntries artifacts in memory
// (<= 0 selects 64). dir selects the on-disk store; "" keeps the cache
// memory-only (evicted entries are then gone for good). The directory is
// created if missing.
func New(dir string, maxEntries int) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating %s: %w", dir, err)
		}
	}
	return &Cache{
		dir:   dir,
		max:   maxEntries,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}, nil
}

// validKey reports whether key is a plausible content address: non-empty
// lowercase hex of bounded length. Rejecting anything else keeps disk paths
// safe by construction (a key can never name a path component).
func validKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the artifact stored under key. A memory miss falls through to
// the disk store and re-admits the artifact to the LRU. The returned bytes
// are shared and must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		data := el.Value.(*entry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(key)); err == nil {
			c.mu.Lock()
			c.admit(key, data)
			c.hits++
			c.mu.Unlock()
			return data, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the artifact under key in the LRU and, when a directory is
// configured, on disk (temp file + rename, so a crash never leaves a partial
// artifact under a valid content address).
func (c *Cache) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("cache: invalid content address %q", key)
	}
	if c.dir != "" {
		tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
		if err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("cache: %w", err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("cache: %w", err)
		}
		if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("cache: %w", err)
		}
	}
	c.mu.Lock()
	c.admit(key, data)
	c.mu.Unlock()
	return nil
}

// admit inserts or refreshes a memory entry and evicts beyond the bound.
// Callers hold c.mu.
func (c *Cache) admit(key string, data []byte) {
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).data = data
		return
	}
	c.byKey[key] = c.ll.PushFront(&entry{key: key, data: data})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*entry).key)
	}
}

// path returns the disk path of a validated key.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Len returns the number of artifacts resident in memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
