package service

import (
	"time"

	"battsched/internal/experiments"
)

// Job states, in lifecycle order. A job is terminal in StateDone or
// StateFailed; cached submissions are born StateDone.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// SpecRequest is the JSON wire form of an experiment Spec: exactly the
// output-determining fields of experiments.Spec (the canonical-hash fields),
// without the execution-only knobs the daemon owns (worker-pool size,
// progress callbacks, shard selection — sharding is requested per job via
// JobRequest.Shards and fanned out server-side).
type SpecRequest struct {
	// Quick selects the reduced (benchmark) configuration.
	Quick bool `json:"quick,omitempty"`
	// Seed overrides the experiment seed; 0 keeps the default (1).
	Seed int64 `json:"seed,omitempty"`
	// Sets overrides the per-row set/graph count; 0 keeps the default.
	Sets int `json:"sets,omitempty"`
	// Utilization overrides the worst-case utilisation; 0 keeps the default.
	Utilization float64 `json:"utilization,omitempty"`
	// Battery selects the battery model by registry name; "" keeps each
	// driver's default.
	Battery string `json:"battery,omitempty"`
	// Oracle feeds pUBS the true actual requirements (table2, grid).
	Oracle bool `json:"oracle,omitempty"`
	// CCEDF selects ccEDF instead of laEDF for Figure 6 frequency setting.
	CCEDF bool `json:"ccedf,omitempty"`
	// MaxStep forces uniform-stepping battery simulation for the curve; 0
	// selects the analytic fast path.
	MaxStep float64 `json:"maxstep,omitempty"`
	// TargetCI enables adaptive set counts (see experiments.RunOptions).
	TargetCI float64 `json:"target_ci,omitempty"`
	// MaxSets caps adaptively grown set counts (only with TargetCI).
	MaxSets int `json:"max_sets,omitempty"`
}

// Spec converts the wire form into the experiment Spec the registry runs.
func (r SpecRequest) Spec() experiments.Spec {
	return experiments.Spec{
		Quick:       r.Quick,
		Seed:        r.Seed,
		Sets:        r.Sets,
		Utilization: r.Utilization,
		Battery:     r.Battery,
		Oracle:      r.Oracle,
		CCEDF:       r.CCEDF,
		MaxStep:     r.MaxStep,
		RunOptions: experiments.RunOptions{
			TargetCI: r.TargetCI,
			MaxSets:  r.MaxSets,
		},
	}
}

// SpecRequestFrom converts an experiment Spec into its wire form, dropping
// the execution-only knobs (Parallel, Progress, Shard) the daemon owns.
func SpecRequestFrom(spec experiments.Spec) SpecRequest {
	return SpecRequest{
		Quick:       spec.Quick,
		Seed:        spec.Seed,
		Sets:        spec.Sets,
		Utilization: spec.Utilization,
		Battery:     spec.Battery,
		Oracle:      spec.Oracle,
		CCEDF:       spec.CCEDF,
		MaxStep:     spec.MaxStep,
		TargetCI:    spec.TargetCI,
		MaxSets:     spec.MaxSets,
	}
}

// JobRequest is the POST /v1/jobs payload: one registered experiment, its
// spec, and the number of shards to fan the run out over.
type JobRequest struct {
	// Experiment is the registry name ("table2", "grid", ...).
	Experiment string `json:"experiment"`
	// Spec configures the run; the zero value selects the paper defaults.
	Spec SpecRequest `json:"spec"`
	// Shards fans the run out over this many independent shard units
	// (RunOptions.Shard), auto-merged on completion; 0 or 1 runs unsharded.
	// Requires a shardable experiment when > 1.
	Shards int `json:"shards,omitempty"`
	// Shard, when set ("2/4"), runs exactly that one shard slice as a
	// single-unit job whose artifact is the shard's partial report — the unit
	// of work a federation coordinator dispatches to workers. The job is
	// content-addressed by the partial's hash (experiments.ShardSpecHash), so
	// duplicate dispatches of the same unit coalesce or hit the cache.
	// Mutually exclusive with Shards > 1; requires a shardable experiment.
	Shard string `json:"shard,omitempty"`
	// TraceID is the submission's fleet-wide trace id. It travels as the
	// X-Trace-Id header (obs.TraceHeader), not in the JSON body — the typed
	// client stamps it on every POST and the HTTP layer folds it back into
	// the decoded request — so the wire body (and therefore nothing
	// output-determining) is unchanged. Empty means the server issues one.
	TraceID string `json:"-"`
}

// ShardStatus reports one shard unit's progress.
type ShardStatus struct {
	// Shard is the CLI form of the unit's shard ("0/2"; "" when the job runs
	// unsharded as a single unit).
	Shard string `json:"shard,omitempty"`
	// State is the unit's state (queued, running, done, failed).
	State string `json:"state"`
	// Done and Total are the unit's completed and total set-level job counts,
	// fed from the experiment driver's progress callbacks. Total is 0 until
	// the first callback fires; under adaptive set counts the pair restarts
	// for each batch.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobStatus is the GET /v1/jobs/{id} payload (and the POST response).
type JobStatus struct {
	// ID identifies the job on this daemon.
	ID string `json:"id"`
	// Experiment is the registry name the job runs.
	Experiment string `json:"experiment"`
	// TraceID is the fleet-wide trace id threading this job's records
	// through the JSONL event logs (client-issued, or server-issued for
	// untraced submissions).
	TraceID string `json:"trace_id,omitempty"`
	// Hash is the canonical spec hash (experiments.SpecHash) — the content
	// address of the job's report artifact in the cache.
	Hash string `json:"hash"`
	// State is the job state (queued, running, done, failed).
	State string `json:"state"`
	// Cached reports that the job was served from the content-addressed
	// report cache without recomputation.
	Cached bool `json:"cached"`
	// Coalesced reports that the job attached as a follower to an in-flight
	// job of the same spec hash instead of computing: it resolves — with the
	// identical artifact, or the same failure — when its leader finalises.
	Coalesced bool `json:"coalesced,omitempty"`
	// Shards reports per-unit progress, in shard order.
	Shards []ShardStatus `json:"shards,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Created, Started and Finished timestamp the job's lifecycle (zero when
	// the phase has not been reached).
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// ExperimentInfo is one entry of GET /v1/experiments.
type ExperimentInfo struct {
	Name      string `json:"name"`
	Title     string `json:"title"`
	Paper     string `json:"paper,omitempty"`
	Shardable bool   `json:"shardable"`
}

// Health is the GET /healthz payload.
type Health struct {
	// Status is "ok" while the daemon accepts jobs, "draining" once Shutdown
	// has begun (the endpoint then answers 503, so load balancers stop
	// routing here).
	Status string `json:"status"`
	// QueueDepth is the number of shard units waiting in the FIFO queue.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the queue bound (units, not jobs).
	QueueCapacity int `json:"queue_capacity"`
	// InFlight is the number of shard units currently executing.
	InFlight int `json:"in_flight"`
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// Jobs is the number of jobs currently tracked (the oldest terminal jobs
	// are evicted beyond Config.MaxJobs).
	Jobs int `json:"jobs"`
	// CoalescedJobs counts submissions that attached to an in-flight job of
	// the same spec instead of computing, over the daemon's lifetime.
	CoalescedJobs int `json:"coalesced_jobs"`
	// CacheEntries, CacheHits and CacheMisses describe the report cache's
	// in-memory tier.
	CacheEntries int `json:"cache_entries"`
	CacheHits    int `json:"cache_hits"`
	CacheMisses  int `json:"cache_misses"`
	// CacheWriteErrors counts report cache write failures (disk full,
	// permissions); the affected jobs still completed from memory.
	CacheWriteErrors int `json:"cache_write_errors,omitempty"`
	// MeanUnitMs is the recent mean shard-unit execution time (EWMA,
	// milliseconds) — the quantity behind Retry-After estimates. 0 until the
	// first unit completes.
	MeanUnitMs float64 `json:"mean_unit_ms,omitempty"`
	// Fleet carries the federation coordinator's fleet view; nil on plain
	// worker daemons.
	Fleet *FleetHealth `json:"fleet,omitempty"`
}

// FleetHealth is the federation coordinator's view of its worker fleet,
// embedded in Health.
type FleetHealth struct {
	// Workers and LiveWorkers count registered and currently-live (heartbeat
	// passing) workers.
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	// Slots is the fleet's total execution slots across live workers (each
	// worker's pool size), and FreeSlots the portion not holding a lease.
	Slots     int `json:"slots"`
	FreeSlots int `json:"free_slots"`
	// QueuedUnits and LeasedUnits count shard units waiting for a slot and
	// units currently under a worker lease.
	QueuedUnits int `json:"queued_units"`
	LeasedUnits int `json:"leased_units"`
	// Redispatches counts units re-dispatched over the coordinator's
	// lifetime, split by cause: leases that expired (dead or unreachable
	// workers) and speculative duplicates of stragglers.
	ExpiredRedispatches   int `json:"expired_redispatches"`
	SpeculativeDispatches int `json:"speculative_dispatches"`
	// MeanUnitMs is the fleet-wide EWMA of unit completion time
	// (dispatch-to-delivery, milliseconds) — the straggler detection
	// baseline. 0 until the first unit completes.
	MeanUnitMs float64 `json:"mean_unit_ms,omitempty"`
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}
