package service_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"battsched/internal/experiments"
	"battsched/internal/service"
)

// localShardArtifact renders one shard slice's partial artifact locally: the
// bytes `cmd/experiments run -shard i/n -o` writes.
func localShardArtifact(t *testing.T, name string, spec experiments.Spec, shard experiments.Shard) []byte {
	t.Helper()
	spec.Shard = shard
	return localArtifact(t, name, spec)
}

// TestShardUnitJob pins the unit-of-federation contract: a JobRequest with
// Shard "i/n" runs exactly that slice as a single-unit job whose artifact is
// byte-identical to the local partial run, content-addressed by the partial's
// hash — so a duplicate dispatch of the same unit is a cache hit, which is
// what makes the coordinator's speculative re-dispatch and restart replay
// idempotent on workers.
func TestShardUnitJob(t *testing.T) {
	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	shard := experiments.Shard{Index: 1, Count: 3}
	want := localShardArtifact(t, "table2", spec, shard)

	_, c := startDaemon(t, service.Config{Workers: 2})
	req := service.JobRequest{
		Experiment: "table2",
		Spec:       service.SpecRequestFrom(spec),
		Shard:      "1/3",
	}
	st := submitAndWait(t, c, req)
	if st.Cached {
		t.Fatal("first shard-unit submission reported cached")
	}
	if wantHash := experiments.ShardSpecHash("table2", spec, shard); st.Hash != wantHash {
		t.Fatalf("shard-unit job hash = %s, want ShardSpecHash %s", st.Hash, wantHash)
	}
	if len(st.Shards) != 1 || st.Shards[0].Shard != "1/3" {
		t.Fatalf("shard-unit status = %+v, want one 1/3 unit", st.Shards)
	}
	got, err := c.ReportArtifact(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("shard-unit artifact differs from local -shard 1/3 run:\n--- served ---\n%s\n--- local ---\n%s", got, want)
	}

	// A duplicate dispatch of the same unit is served from the cache.
	st2 := submitAndWait(t, c, req)
	if !st2.Cached {
		t.Fatal("duplicate shard-unit submission not served from cache")
	}
	got2, err := c.ReportArtifact(context.Background(), st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("cached shard-unit artifact differs")
	}

	// A different slice of the same spec is a distinct address, not a hit.
	req03 := req
	req03.Shard = "0/3"
	st3 := submitAndWait(t, c, req03)
	if st3.Cached {
		t.Fatal("different shard slice hit the cache")
	}
	if st3.Hash == st.Hash {
		t.Fatal("shards 0/3 and 1/3 share a content address")
	}
}

// TestShardUnitValidation pins shard-unit admission errors: malformed shard
// strings, mixing Shard with Shards, and non-shardable experiments all fail
// with ErrBadConfig at submission.
func TestShardUnitValidation(t *testing.T) {
	srv, _ := startDaemon(t, service.Config{Workers: 1})
	cases := []struct {
		name string
		req  service.JobRequest
		want string
	}{
		{"malformed", service.JobRequest{Experiment: "table2", Shard: "nope"}, "shard"},
		{"out-of-range", service.JobRequest{Experiment: "table2", Shard: "3/3"}, "shard"},
		{"mixed", service.JobRequest{Experiment: "table2", Shard: "0/2", Shards: 2}, "mutually exclusive"},
		{"deterministic", service.JobRequest{Experiment: "curve", Shard: "0/2"}, "does not shard"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := srv.Submit(tc.req)
			if err == nil {
				t.Fatalf("%s: admitted, want ErrBadConfig", tc.name)
			}
			if !errors.Is(err, experiments.ErrBadConfig) {
				t.Fatalf("%s: err = %v, want ErrBadConfig", tc.name, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: err %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
}
