package service_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

// startDaemon spins an in-process daemon behind an httptest server and
// returns a client for it.
func startDaemon(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL)
}

// localArtifact renders the local (in-process) artifact of one experiment
// run: the bytes `cmd/experiments run -o` writes.
func localArtifact(t *testing.T, name string, spec experiments.Spec) []byte {
	t.Helper()
	rep, err := experiments.Run(context.Background(), name, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiments.WriteArtifact(&buf, []*experiments.Report{rep}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// submitAndWait submits a job and waits for a terminal state.
func submitAndWait(t *testing.T, c *client.Client, req service.JobRequest) service.JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == service.StateFailed {
		t.Fatalf("job %s failed: %s", st.ID, st.Error)
	}
	return st
}

// TestServedReportByteIdenticalAndCached is the service's correctness
// contract end to end: the artifact fetched from the daemon for a quick
// Table 2 run — computed unsharded and as a 2-shard fan-out — is
// byte-identical to the local `run -o` artifact, and resubmitting the same
// spec is served from the content-addressed cache, marked Cached, with the
// identical bytes.
func TestServedReportByteIdenticalAndCached(t *testing.T) {
	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	want := localArtifact(t, "table2", spec)
	req := service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(spec)}

	for _, shards := range []int{0, 2} {
		cfg := service.Config{Workers: 2}
		_, c := startDaemon(t, cfg)
		r := req
		r.Shards = shards

		st := submitAndWait(t, c, r)
		if st.Cached {
			t.Fatalf("shards=%d: first submission reported cached", shards)
		}
		if shards > 1 && len(st.Shards) != shards {
			t.Fatalf("shards=%d: status reports %d shard units", shards, len(st.Shards))
		}
		got, err := c.ReportArtifact(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: served artifact differs from local run -o:\n--- served ---\n%s\n--- local ---\n%s",
				shards, got, want)
		}

		// Resubmission: answered from the cache, marked cached, same bytes.
		st2, err := c.Submit(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if st2.State != service.StateDone || !st2.Cached {
			t.Fatalf("shards=%d: resubmission state=%s cached=%v", shards, st2.State, st2.Cached)
		}
		got2, err := c.ReportArtifact(context.Background(), st2.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2, want) {
			t.Fatalf("shards=%d: cached artifact differs", shards)
		}
	}
}

// TestCacheHitAcrossShardCounts pins the content address: an unsharded
// submission after a sharded one of the same spec is a cache hit (the hash
// identifies the complete run, not its execution layout).
func TestCacheHitAcrossShardCounts(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 2})
	spec := service.SpecRequest{Quick: true, Battery: "kibam"}
	st := submitAndWait(t, c, service.JobRequest{Experiment: "table2", Spec: spec, Shards: 2})
	if st.Cached {
		t.Fatal("first submission cached")
	}
	st2, err := c.Submit(context.Background(), service.JobRequest{Experiment: "table2", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.Hash != st.Hash {
		t.Fatalf("unsharded resubmission cached=%v hash=%s, want cache hit on %s", st2.Cached, st2.Hash, st.Hash)
	}
}

// TestDiskCacheSurvivesRestart checks the on-disk tier: a fresh daemon over
// the same cache directory serves a previously computed spec as cached.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := service.SpecRequest{Quick: true, Battery: "kibam"}
	req := service.JobRequest{Experiment: "table2", Spec: spec}

	_, c1 := startDaemon(t, service.Config{Workers: 1, CacheDir: dir})
	first := submitAndWait(t, c1, req)
	want, err := c1.ReportArtifact(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}

	_, c2 := startDaemon(t, service.Config{Workers: 1, CacheDir: dir})
	st, err := c2.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Fatal("restarted daemon did not hit the disk cache")
	}
	got, err := c2.ReportArtifact(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("disk-cached artifact differs")
	}
}

// TestReportTableFormat checks ?format=table rendering.
func TestReportTableFormat(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1})
	st := submitAndWait(t, c, service.JobRequest{
		Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam"},
	})
	text, err := c.ReportTable(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "BAS-2", "kibam"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table rendering missing %q:\n%s", want, text)
		}
	}
}

// TestRegistryEndpointsAndHealth checks the listing endpoints and the health
// snapshot.
func TestRegistryEndpointsAndHealth(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1, QueueCapacity: 5})
	ctx := context.Background()

	infos, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]service.ExperimentInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	for _, name := range experiments.Names() {
		if _, ok := byName[name]; !ok {
			t.Fatalf("experiments listing missing %q", name)
		}
	}
	if byName["curve"].Shardable || !byName["table2"].Shardable {
		t.Fatal("shardable flags wrong in listing")
	}

	batteries, err := c.Batteries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(batteries, ","), "kibam") {
		t.Fatalf("battery listing = %v", batteries)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 1 || h.QueueCapacity != 5 {
		t.Fatalf("health = %+v", h)
	}
}

// TestSubmitValidation covers the submission error paths: unknown
// experiment, sharding the deterministic curve, bad battery name — all
// rejected with 400 before any job is admitted.
func TestSubmitValidation(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()
	cases := []service.JobRequest{
		{Experiment: "bogus"},
		{Experiment: "curve", Shards: 2},
		{Experiment: "table2", Spec: service.SpecRequest{Battery: "bogus"}},
		{Experiment: "table2", Shards: -1},
	}
	for _, req := range cases {
		_, err := c.Submit(ctx, req)
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != 400 {
			t.Fatalf("Submit(%+v) err = %v, want HTTP 400", req, err)
		}
	}
	if _, err := c.Job(ctx, "job-999999"); func() bool {
		var ae *client.APIError
		return !errors.As(err, &ae) || ae.Status != 404
	}() {
		t.Fatalf("unknown job err = %v, want HTTP 404", err)
	}
}

// TestQueueBoundAndUnfinishedReport wedges the single worker with a blocking
// fault hook: the submitted job stays unfinished (report answers 409) and
// the unit-bounded queue rejects overflow with 429, then completes normally
// once the hook releases.
func TestQueueBoundAndUnfinishedReport(t *testing.T) {
	gate := make(chan struct{})
	_, c := startDaemon(t, service.Config{
		Workers: 1, QueueCapacity: 3,
		FaultHook: func(ctx context.Context, _ string, _ experiments.Shard) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	ctx := context.Background()

	st, err := c.Submit(ctx, service.JobRequest{
		Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam"}, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateQueued {
		t.Fatalf("state = %s, want queued", st.State)
	}

	_, err = c.ReportArtifact(ctx, st.ID)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 409 {
		t.Fatalf("report of queued job err = %v, want HTTP 409", err)
	}

	// The first job holds 2 of 3 capacity units (one may be in flight,
	// wedged in the hook): a 3-shard job cannot fit either way.
	_, err = c.Submit(ctx, service.JobRequest{
		Experiment: "grid", Spec: service.SpecRequest{Quick: true}, Shards: 3,
	})
	if !errors.As(err, &ae) || ae.Status != 429 {
		t.Fatalf("overflow submit err = %v, want HTTP 429", err)
	}

	close(gate)
	final, err := c.Wait(ctx, st.ID, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("released job state = %s: %s", final.State, final.Error)
	}
}

// TestShardProgressReported checks that per-shard progress from the driver's
// callbacks surfaces in the job status by the time the job completes.
func TestShardProgressReported(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 2})
	var sawProgress bool
	ctx := context.Background()
	st, err := c.Submit(ctx, service.JobRequest{
		Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam", Seed: 3}, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond, func(s service.JobStatus) {
		for _, sh := range s.Shards {
			if sh.Done > 0 && sh.Total > 0 {
				sawProgress = true
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job state = %s: %s", st.State, st.Error)
	}
	if !sawProgress {
		t.Fatal("no shard progress observed in any status snapshot")
	}
	for _, sh := range st.Shards {
		if sh.State != service.StateDone {
			t.Fatalf("shard %q state = %s", sh.Shard, sh.State)
		}
		if sh.Done != sh.Total || sh.Total == 0 {
			t.Fatalf("shard %q progress = %d/%d", sh.Shard, sh.Done, sh.Total)
		}
	}
}

// TestJobMapBounded pins the MaxJobs eviction: terminal jobs beyond the
// bound are dropped oldest-first (their IDs answer 404), while the report
// stays retrievable through the cache by resubmitting the spec.
func TestJobMapBounded(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1, MaxJobs: 2})
	ctx := context.Background()
	req := service.JobRequest{Experiment: "table2", Spec: service.SpecRequest{Quick: true, Battery: "kibam"}}

	first := submitAndWait(t, c, req)
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, req) // cache hits: instantly terminal
		if err != nil {
			t.Fatal(err)
		}
		if !st.Cached {
			t.Fatal("expected cache hit")
		}
		ids = append(ids, st.ID)
	}
	if _, err := c.Job(ctx, first.ID); func() bool {
		var ae *client.APIError
		return !errors.As(err, &ae) || ae.Status != 404
	}() {
		t.Fatalf("oldest terminal job should be evicted, got %v", err)
	}
	// The newest jobs (within the bound) are still tracked, and the artifact
	// is still served for them.
	if _, err := c.ReportArtifact(ctx, ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job's report unavailable: %v", err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Jobs > 2 {
		t.Fatalf("job map holds %d jobs, bound is 2", h.Jobs)
	}
}
