package service

import (
	"errors"

	"battsched/internal/obs"
	"battsched/internal/service/journal"
)

// unitBuckets are the unit-duration histogram bounds (seconds): quick-spec
// shard units land in the millisecond buckets, paper-sized runs in the
// minute ones.
var unitBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// serverMetrics holds the daemon's registry-backed counters and histograms.
// Every series is created up front in newServerMetrics — never while holding
// s.mu — so render-time gauge callbacks that take s.mu cannot deadlock
// against registration (see the obs locking contract).
type serverMetrics struct {
	jobsComputed  *obs.Counter // battsched_jobs_total{admission="computed"}
	jobsCoalesced *obs.Counter // battsched_jobs_total{admission="coalesced"}
	jobsCached    *obs.Counter // battsched_jobs_total{admission="cached"}
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	rejectedFull  *obs.Counter // queue-full 429s
	rejectedDrain *obs.Counter // draining 503s
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheWriteErr *obs.Counter
	journalAppend *obs.Counter // journal append failures
	journalComp   *obs.Counter // journal compaction failures
	unitDur       *obs.Histogram
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	const jobsHelp = "Job submissions by admission path: computed (queued for execution), coalesced (attached to an in-flight duplicate), cached (served from the report cache)."
	const rejHelp = "Rejected submissions by reason: queue_full (429), draining (503)."
	const journalHelp = "Job journal failures by operation: append (accept/done record writes), compact (log rewrites)."
	return serverMetrics{
		jobsComputed:  r.Counter("battsched_jobs_total", jobsHelp, "admission", "computed"),
		jobsCoalesced: r.Counter("battsched_jobs_total", jobsHelp, "admission", "coalesced"),
		jobsCached:    r.Counter("battsched_jobs_total", jobsHelp, "admission", "cached"),
		jobsDone:      r.Counter("battsched_jobs_finished_total", "Jobs reaching a terminal state.", "state", "done"),
		jobsFailed:    r.Counter("battsched_jobs_finished_total", "Jobs reaching a terminal state.", "state", "failed"),
		rejectedFull:  r.Counter("battsched_rejected_total", rejHelp, "reason", "queue_full"),
		rejectedDrain: r.Counter("battsched_rejected_total", rejHelp, "reason", "draining"),
		cacheHits:     r.Counter("battsched_cache_hits_total", "Content-addressed report cache hits."),
		cacheMisses:   r.Counter("battsched_cache_misses_total", "Content-addressed report cache misses."),
		cacheWriteErr: r.Counter("battsched_cache_write_errors_total", "Report cache write failures (the job still completed from memory)."),
		journalAppend: r.Counter("battsched_journal_errors_total", journalHelp, "op", "append"),
		journalComp:   r.Counter("battsched_journal_errors_total", journalHelp, "op", "compact"),
		unitDur: r.Histogram("battsched_unit_duration_seconds",
			"Shard unit execution duration.", unitBuckets),
	}
}

// journalError mirrors one journal failure onto the registry, separating
// compaction failures (ErrCompaction) from plain append failures.
func (m *serverMetrics) journalError(err error) {
	if errors.Is(err, journal.ErrCompaction) {
		m.journalComp.Inc()
	} else {
		m.journalAppend.Inc()
	}
}

// registerGauges wires the instantaneous series to the same server fields
// /healthz reports, so the two endpoints agree by construction. Called from
// New before the worker pool starts; callbacks take s.mu at render time.
func (s *Server) registerGauges() {
	r := s.metrics
	read := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc("battsched_queue_depth", "Shard units waiting in the FIFO queue.",
		read(func() float64 { return float64(s.queued) }))
	r.GaugeFunc("battsched_queue_depth_peak", "High-water mark of battsched_queue_depth over the daemon's lifetime.",
		read(func() float64 { return float64(s.queuedPeak) }))
	r.GaugeFunc("battsched_queue_capacity", "Queue bound in shard units.",
		func() float64 { return float64(s.cfg.QueueCapacity) })
	r.GaugeFunc("battsched_in_flight", "Shard units currently executing.",
		read(func() float64 { return float64(s.inFlight) }))
	r.GaugeFunc("battsched_workers", "Worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("battsched_jobs_tracked", "Jobs currently tracked in the job map.",
		read(func() float64 { return float64(len(s.jobs)) }))
	r.GaugeFunc("battsched_cache_entries", "Report cache in-memory entries.",
		func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc("battsched_mean_unit_seconds", "Recent mean shard-unit duration (EWMA) behind Retry-After estimates.",
		read(func() float64 { return s.meanUnitNs / 1e9 }))
	r.GaugeFunc("battsched_draining", "1 once graceful shutdown has begun, else 0.",
		read(func() float64 {
			if s.draining {
				return 1
			}
			return 0
		}))
	obs.RegisterSim(r, &obs.Sim)
}

// Metrics returns the daemon's metrics registry (the /metrics source), for
// embedding and tests.
func (s *Server) Metrics() *obs.Registry { return s.metrics }
