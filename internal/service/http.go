package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"battsched/internal/battery"
	"battsched/internal/experiments"
	"battsched/internal/obs"
)

// maxRequestBody bounds POST payloads; a JobRequest is a few hundred bytes.
const maxRequestBody = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs              submit {experiment, spec, shards}; 200 when
//	                           served from cache, 202 when queued
//	GET  /v1/jobs/{id}         job state and per-shard progress
//	GET  /v1/jobs/{id}/report  the versioned JSON report artifact
//	                           (?format=table renders the plain-text tables)
//	GET  /v1/experiments       the experiment registry
//	GET  /v1/batteries         the battery model registry
//	GET  /healthz              queue depth, in-flight units, cache stats
//	GET  /metrics              the metrics registry in Prometheus text format
//
// POST /v1/jobs reads the X-Trace-Id header into the submission's trace id
// (see obs.TraceHeader); JobStatus echoes it as trace_id.
//
// Errors are JSON {"error": ...} with 400 (bad request/spec), 404 (unknown
// job), 409 (report of an unfinished job), 429 (queue full, with a
// Retry-After header estimating when capacity frees up), 503 (daemon
// draining; /healthz also turns 503 then) or 500.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/batteries", s.handleBatteries)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metrics.Handler())
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
		var qf *queueFullError
		if errors.As(err, &qf) {
			// Retry-After is whole seconds (RFC 9110), rounded up so a
			// sub-second estimate still tells the client to back off.
			secs := int(math.Ceil(qf.retryAfter.Seconds()))
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		// A draining daemon is gone for good (its replacement answers after
		// restart), so the hint is a short fixed pause: long enough to ride
		// out a rolling restart, short enough not to stall clients that will
		// fail over instead.
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrJobNotFinished):
		status = http.StatusConflict
	case errors.Is(err, experiments.ErrBadConfig):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	// Unknown fields are rejected so a typo'd spec key fails loudly instead
	// of silently running the default configuration.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding job request: %v", err)})
		return
	}
	req.TraceID = obs.TraceFromRequest(r)
	st, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if st.State == StateDone {
		status = http.StatusOK // served from cache
	}
	writeJSON(w, status, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	artifact, err := s.Artifact(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("format") == "table" {
		reports, err := experiments.ReadArtifact(bytes.NewReader(artifact))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, rep := range reports {
			text, err := experiments.FormatReport(rep)
			if err != nil {
				writeError(w, err)
				return
			}
			fmt.Fprint(w, text)
		}
		return
	}
	// The artifact bytes are served verbatim — byte-identical to the local
	// `cmd/experiments run -o` file, which is the service's correctness
	// contract.
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(artifact)
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var infos []ExperimentInfo
	for _, name := range experiments.Names() {
		d, err := experiments.Lookup(name)
		if err != nil {
			writeError(w, err)
			return
		}
		infos = append(infos, ExperimentInfo{
			Name:      d.Name,
			Title:     d.Title,
			Paper:     d.Paper,
			Shardable: d.Shardable,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleBatteries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, battery.Names())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Status != "ok" {
		// A draining daemon is not healthy to route to; the body still
		// carries the full snapshot for operators.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
