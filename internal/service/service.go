// Package service implements the experiment daemon behind cmd/battschedd: a
// long-running HTTP server over the experiment registry with an asynchronous
// bounded FIFO job queue, server-side shard fan-out, and a content-addressed
// report cache.
//
// A submitted job names a registered experiment and a SpecRequest. Jobs enter
// the queue as shard units — one unit for an unsharded run, or Shards
// independent units each executing its RunOptions.Shard slice — and a bounded
// worker pool drains the queue in FIFO order. When the last unit of a job
// completes, the partial reports are recombined with experiments.MergeReports
// and the complete run's artifact (exactly the bytes `cmd/experiments run -o`
// writes) is stored in the cache under the canonical spec hash
// (experiments.SpecHash). A later submission of an equal spec — sharded or
// not — is answered from the cache without recomputation and marked Cached.
//
// Under heavy identical traffic the daemon additionally coalesces in-flight
// work: a submission whose spec hash matches a job that is still queued or
// running attaches to it as a follower (JobStatus.Coalesced) instead of
// recomputing — it resolves, with the identical artifact, the moment the
// leader finalises, and inherits the leader's failure otherwise. With a
// CacheDir configured, accepted jobs are journaled to a JSONL write-ahead log
// (internal/service/journal) and replayed on daemon start, so a restart
// resumes accepted-but-unfinished work instead of dropping it. A full queue
// rejects with ErrQueueFull carrying a Retry-After estimate (queue backlog ×
// recent mean unit duration), which the HTTP layer maps to 429; Shutdown
// drains gracefully (admissions stop, in-flight units finish, queued units
// stay journaled for the next daemon).
//
// Byte-identity to the CLI is the correctness contract: per-set experiments
// merge shard partials bit-for-bit (sample replay), so their served artifacts
// equal the local unsharded `run -o` artifact byte-for-byte at any shard
// count; the scenario grid's chunk-merged cells carry the documented Welford
// reassociation bound instead, so its sharded artifacts equal the equivalent
// local shard+merge pipeline.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/obs"
	"battsched/internal/service/cache"
	"battsched/internal/service/journal"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull reports that admitting the job's shard units would exceed
	// the queue bound. The concrete error carries a Retry-After estimate;
	// the HTTP layer maps it to 429 with a Retry-After header.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrUnknownJob reports a job ID this daemon never issued.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrJobNotFinished reports a report request for a job still in flight.
	ErrJobNotFinished = errors.New("service: job not finished")
	// ErrDraining reports a submission to a daemon that is shutting down.
	ErrDraining = errors.New("service: daemon is draining")
)

// shutdownMsg is the terminal failure message of jobs abandoned by daemon
// shutdown. Their journal accept records are retained, so a restart over the
// same CacheDir resumes them instead of reporting zombies.
const shutdownMsg = "daemon shut down before the job finished"

// queueFullError is the concrete ErrQueueFull: it carries the backpressure
// hint the HTTP layer surfaces as a Retry-After header.
type queueFullError struct {
	units, capacity, queued int
	retryAfter              time.Duration
}

func (e *queueFullError) Error() string {
	return fmt.Sprintf("%v: %d unit(s) would exceed the %d-unit bound (%d queued); retry in ~%s",
		ErrQueueFull, e.units, e.capacity, e.queued, e.retryAfter.Round(time.Second))
}

func (e *queueFullError) Unwrap() error { return ErrQueueFull }

// Config tunes one daemon instance. The zero value is usable: two workers, a
// 64-unit queue, a memory-only 64-entry cache, full per-run parallelism.
type Config struct {
	// Workers is the worker-pool size: how many shard units execute
	// concurrently (<= 0 selects 2).
	Workers int
	// QueueCapacity bounds the FIFO queue in shard units (<= 0 selects 64).
	// Submissions whose units do not fit are rejected with ErrQueueFull.
	QueueCapacity int
	// Parallel is the RunOptions.Parallel passed to every unit's run: the
	// job-grid worker count inside one experiment run (0 selects all cores).
	// With several service workers, bound this to avoid oversubscription.
	Parallel int
	// CacheDir is the on-disk content-addressed report store; "" keeps the
	// cache memory-only. A non-empty CacheDir also enables the durable job
	// journal (journal.jsonl in the same directory): accepted jobs are
	// logged before they enqueue and replayed on daemon start, so a restart
	// resumes accepted-but-unfinished work under the original job IDs.
	CacheDir string
	// CacheEntries bounds the cache's in-memory LRU tier (<= 0 selects 64).
	CacheEntries int
	// JournalFsync syncs every journal record to stable storage before the
	// append returns, upgrading the journal from process-kill durability (the
	// default: records ride the OS page cache) to power-loss durability. See
	// the -journal-fsync flag for the measured per-record cost.
	JournalFsync bool
	// MaxJobs bounds the job map (<= 0 selects 1024): when a submission
	// would exceed it, the oldest *terminal* jobs (done or failed, in
	// completion order) are evicted so the long-running daemon's memory stays
	// bounded; their IDs then answer 404. Queued and running jobs are never
	// evicted. Finished artifacts stay retrievable by resubmitting the spec —
	// the report cache, not the job map, is the artifact store.
	MaxJobs int
	// FaultHook, when non-nil, runs before every shard unit's execution with
	// the daemon context; a non-nil return fails the unit with that error,
	// and blocking (on ctx or an external gate) injects delay. Fault
	// injection only — tests and load harnesses use it to drive retry,
	// coalescing and kill/restart paths deterministically; leave nil in
	// production.
	FaultHook func(ctx context.Context, experiment string, shard experiments.Shard) error
}

// Server is the experiment daemon. Construct with New, expose over HTTP with
// Handler, and stop with Close (immediate) or Shutdown (graceful drain).
// Submit and Job are also usable directly for in-process embedding.
type Server struct {
	cfg     Config
	cache   *cache.Cache
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *unit
	metrics *obs.Registry
	met     serverMetrics
	events  *obs.EventLog // nil without CacheDir; Emit is nil-safe

	drainIdle    chan struct{} // closed when draining and no unit is in flight
	drainOnce    sync.Once
	shutdownOnce sync.Once
	shutdownDone chan struct{} // closed when shutdown has fully completed

	mu           sync.Mutex
	jobs         map[string]*job
	inflight     map[string]*job // spec hash -> queued/running leader job
	journal      *journal.Journal
	terminal     []string // terminal job IDs in completion order (eviction queue)
	queued       int      // units in the queue
	queuedPeak   int      // high-water mark of queued
	inFlight     int      // units executing
	seq          int
	draining     bool
	cacheErrSeen map[string]bool // distinct cache write errors already logged
	meanUnitNs   float64         // EWMA of unit execution duration
}

// job is one accepted submission.
type job struct {
	id         string
	experiment string
	trace      string // fleet-wide trace id (obs.TraceHeader)
	hash       string
	spec       experiments.Spec
	state      string
	cached     bool
	coalesced  bool
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	units      []*unit
	followers  []*job // coalesced submissions resolving with this leader
	remaining  int
	artifact   []byte
}

// unit is one queued/executing shard of a job.
type unit struct {
	job   *job
	shard experiments.Shard
	state string
	done  int
	total int
	rep   *experiments.Report
}

// New constructs a daemon, replays the job journal (when CacheDir is set)
// and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	c, err := cache.New(cfg.CacheDir, cfg.CacheEntries)
	if err != nil {
		return nil, err
	}
	var jr *journal.Journal
	var backlog []journal.Accept
	if cfg.CacheDir != "" {
		jr, backlog, err = journal.Open(filepath.Join(cfg.CacheDir, "journal.jsonl"), cfg.JournalFsync)
		if err != nil {
			return nil, err
		}
	}
	// The queue must admit the entire replayed backlog even when it exceeds
	// the configured bound (the previous daemon admitted it under its own
	// bound); new submissions still reject against cfg.QueueCapacity until
	// the backlog drains below it.
	queueCap := cfg.QueueCapacity
	if n := backlogUnits(backlog); n > queueCap {
		queueCap = n
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	s := &Server{
		cfg:          cfg,
		cache:        c,
		ctx:          ctx,
		cancel:       cancel,
		queue:        make(chan *unit, queueCap),
		metrics:      reg,
		met:          newServerMetrics(reg),
		drainIdle:    make(chan struct{}),
		shutdownDone: make(chan struct{}),
		jobs:         make(map[string]*job),
		inflight:     make(map[string]*job),
		journal:      jr,
		cacheErrSeen: make(map[string]bool),
	}
	s.registerGauges()
	if cfg.CacheDir != "" {
		// The event log is telemetry, never availability: a failed open is
		// logged and the daemon runs without it (Emit is nil-safe).
		ev, err := obs.OpenEventLog(filepath.Join(cfg.CacheDir, "events.jsonl"))
		if err != nil {
			log.Printf("service: opening event log: %v", err)
		} else {
			s.events = ev
		}
	}
	s.mu.Lock()
	for _, rec := range backlog {
		s.replayLocked(rec)
	}
	s.mu.Unlock()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// backlogUnits counts the shard units a journal backlog expands to.
func backlogUnits(backlog []journal.Accept) int {
	n := 0
	for _, rec := range backlog {
		if rec.Shards > 1 {
			n += rec.Shards
		} else {
			n++
		}
	}
	return n
}

// jobSeq extracts the numeric sequence of a daemon-issued job ID.
func jobSeq(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Close stops the daemon immediately: admissions stop, in-flight runs are
// cancelled through their context, and every job still queued or running is
// terminal-marked failed ("daemon shut down ...") so no job ID ever reports
// a zombie queued state. Journaled accept records of abandoned jobs are
// retained for the next daemon to resume. Safe to call more than once.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // an already-expired deadline: drain nothing, abandon in flight
	_ = s.Shutdown(ctx)
}

// Shutdown drains the daemon gracefully: new submissions are rejected with
// ErrDraining and Health reports "draining" (so /healthz answers 503 and
// load balancers stop routing here); in-flight units run to completion —
// their jobs finalise normally — until ctx expires, at which point they are
// cancelled; still-queued units never start (their journal records persist
// for the next daemon) and their jobs are terminal-marked failed with a
// shutdown message. Safe to call concurrently and more than once; every call
// returns once shutdown has fully completed.
func (s *Server) Shutdown(ctx context.Context) error {
	ran := false
	s.shutdownOnce.Do(func() {
		ran = true
		s.doShutdown(ctx)
	})
	if !ran {
		<-s.shutdownDone
	}
	return nil
}

func (s *Server) doShutdown(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	idle := s.inFlight == 0
	s.mu.Unlock()
	if !idle {
		select {
		case <-s.drainIdle:
		case <-ctx.Done():
		}
	}
	s.cancel()
	s.wg.Wait()
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			s.completeLocked(j, StateFailed, shutdownMsg, false)
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.met.journalError(err)
			log.Printf("service: closing job journal: %v", err)
		}
		s.journal = nil
	}
	s.mu.Unlock()
	if err := s.events.Close(); err != nil {
		log.Printf("service: closing event log: %v", err)
	}
	close(s.shutdownDone)
}

// Submit validates and admits one job. A spec whose canonical hash is
// already in the report cache completes immediately with Cached set; a spec
// matching a job still queued or running coalesces onto it as a follower
// (Coalesced set) and resolves when the leader does; anything else enqueues
// the job's shard units, failing with ErrQueueFull (Retry-After estimate
// attached) when they do not fit the queue bound, or ErrDraining during
// shutdown.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	def, err := experiments.Lookup(req.Experiment)
	if err != nil {
		return JobStatus{}, err
	}
	if req.Shards < 0 {
		return JobStatus{}, fmt.Errorf("%w: negative shard count %d", experiments.ErrBadConfig, req.Shards)
	}
	if req.Shards > 1 && !def.Shardable {
		return JobStatus{}, fmt.Errorf("%w: experiment %q is deterministic and does not shard",
			experiments.ErrBadConfig, req.Experiment)
	}
	unitShard, err := experiments.ParseShard(req.Shard)
	if err != nil {
		return JobStatus{}, err
	}
	if unitShard.Enabled() {
		if req.Shards > 1 {
			return JobStatus{}, fmt.Errorf("%w: shard %q and shards=%d are mutually exclusive",
				experiments.ErrBadConfig, req.Shard, req.Shards)
		}
		if !def.Shardable {
			return JobStatus{}, fmt.Errorf("%w: experiment %q is deterministic and does not shard",
				experiments.ErrBadConfig, req.Experiment)
		}
	}
	spec := req.Spec.Spec()
	if spec.Battery != "" {
		// Fail a bad battery name at submission instead of asynchronously.
		if _, err := experiments.NamedBatteryFactory(spec.Battery); err != nil {
			return JobStatus{}, err
		}
	}
	spec.Parallel = s.cfg.Parallel
	// A shard-unit job is content-addressed by its partial's hash (the
	// complete run's hash when unsharded), so duplicate dispatches of one
	// unit dedupe exactly like duplicate complete submissions.
	hash := experiments.ShardSpecHash(req.Experiment, spec, unitShard)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.rejectedDrain.Inc()
		return JobStatus{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:         fmt.Sprintf("job-%06d", s.seq),
		experiment: req.Experiment,
		trace:      req.TraceID,
		hash:       hash,
		spec:       spec,
		created:    time.Now(),
	}
	if j.trace == "" {
		// Untraced submission (raw curl): issue a server-side id so the
		// event log still threads this job's records together.
		j.trace = obs.NewTraceID()
	}
	if artifact, ok := s.cacheGetLocked(j, hash); ok {
		j.cached = true
		j.artifact = artifact
		s.jobs[j.id] = j
		s.met.jobsCached.Inc()
		s.events.Emit(obs.Event{Event: obs.EventJobAccepted, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Detail: "cached"})
		s.finishLocked(j, StateDone, "")
		s.evictLocked()
		return s.statusLocked(j), nil
	}
	if leader := s.inflight[hash]; leader != nil {
		// Singleflight coalescing: attach to the in-flight computation of
		// the same spec instead of queueing a duplicate. Followers consume
		// no queue capacity and resolve when the leader finalises.
		j.coalesced = true
		j.state = leader.state
		j.started = leader.started
		leader.followers = append(leader.followers, j)
		s.met.jobsCoalesced.Inc()
		s.jobs[j.id] = j
		s.events.Emit(obs.Event{Event: obs.EventJobAccepted, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Detail: "coalesced"})
		s.journalAcceptLocked(j, req.Spec, req.Shards, req.Shard)
		s.evictLocked()
		return s.statusLocked(j), nil
	}
	units := makeUnits(j, req.Shards, unitShard)
	if s.queued+len(units) > s.cfg.QueueCapacity {
		s.met.rejectedFull.Inc()
		return JobStatus{}, &queueFullError{
			units: len(units), capacity: s.cfg.QueueCapacity, queued: s.queued,
			retryAfter: s.retryAfterLocked(),
		}
	}
	j.units = units
	j.state = StateQueued
	j.remaining = len(j.units)
	s.jobs[j.id] = j
	s.inflight[hash] = j
	s.met.jobsComputed.Inc()
	s.events.Emit(obs.Event{Event: obs.EventJobAccepted, Trace: j.trace, Job: j.id,
		Experiment: j.experiment, Detail: "computed"})
	s.journalAcceptLocked(j, req.Spec, req.Shards, req.Shard)
	s.evictLocked()
	s.enqueueLocked(j)
	return s.statusLocked(j), nil
}

// enqueueLocked queues every unit of a newly-admitted job, tracking the
// queue-depth high-water mark. Callers hold s.mu and have verified capacity
// (admission bound, or a backlog-sized queue on replay).
func (s *Server) enqueueLocked(j *job) {
	for _, u := range j.units {
		s.queued++
		s.events.Emit(obs.Event{Event: obs.EventUnitQueued, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Unit: u.shard.String()})
		s.queue <- u // never blocks: queued <= QueueCapacity <= cap(queue)
	}
	if s.queued > s.queuedPeak {
		s.queuedPeak = s.queued
	}
}

// cacheGetLocked wraps the report cache lookup, mirroring hit/miss onto the
// registry and the event log. Callers hold s.mu.
func (s *Server) cacheGetLocked(j *job, hash string) ([]byte, bool) {
	artifact, ok := s.cache.Get(hash)
	if ok {
		s.met.cacheHits.Inc()
		s.events.Emit(obs.Event{Event: obs.EventCacheHit, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Detail: hash})
	} else {
		s.met.cacheMisses.Inc()
		s.events.Emit(obs.Event{Event: obs.EventCacheMiss, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Detail: hash})
	}
	return artifact, ok
}

// makeUnits builds a job's shard units: one unit carrying unitShard for a
// shard-unit job, one unsharded unit for shards <= 1, one unit per shard
// otherwise.
func makeUnits(j *job, shards int, unitShard experiments.Shard) []*unit {
	if unitShard.Enabled() {
		return []*unit{{job: j, shard: unitShard, state: StateQueued}}
	}
	if shards <= 1 {
		return []*unit{{job: j, state: StateQueued}}
	}
	units := make([]*unit, 0, shards)
	for i := 0; i < shards; i++ {
		units = append(units, &unit{
			job:   j,
			shard: experiments.Shard{Index: i, Count: shards},
			state: StateQueued,
		})
	}
	return units
}

// replayLocked re-admits one journaled job under its original ID on daemon
// start. A spec that became cache-resolvable (the previous daemon finished a
// sibling of the same hash) completes immediately; duplicates of a job
// replayed earlier in the backlog coalesce onto it; anything else enqueues.
// Records that no longer decode or validate are terminal-marked failed and
// compacted away rather than wedging the restart. Callers hold s.mu.
func (s *Server) replayLocked(rec journal.Accept) {
	if n, ok := jobSeq(rec.ID); ok {
		if n > s.seq {
			s.seq = n
		}
	} else {
		s.seq++
		rec.ID = fmt.Sprintf("job-%06d", s.seq)
	}
	created := rec.Created
	if created.IsZero() {
		created = time.Now()
	}
	j := &job{id: rec.ID, experiment: rec.Experiment, trace: rec.Trace, created: created}
	if j.trace == "" {
		j.trace = obs.NewTraceID()
	}
	s.jobs[j.id] = j
	fail := func(msg string) {
		j.state = StateRunning // completeLocked requires a non-terminal state
		s.completeLocked(j, StateFailed, "journal replay: "+msg, true)
	}
	def, err := experiments.Lookup(rec.Experiment)
	if err != nil {
		fail(err.Error())
		return
	}
	var sreq SpecRequest
	if err := json.Unmarshal(rec.Spec, &sreq); err != nil {
		fail("decoding spec: " + err.Error())
		return
	}
	if rec.Shards > 1 && !def.Shardable {
		fail(fmt.Sprintf("experiment %q does not shard", rec.Experiment))
		return
	}
	unitShard, err := experiments.ParseShard(rec.Shard)
	if err != nil {
		fail(err.Error())
		return
	}
	if unitShard.Enabled() && !def.Shardable {
		fail(fmt.Sprintf("experiment %q does not shard", rec.Experiment))
		return
	}
	spec := sreq.Spec()
	spec.Parallel = s.cfg.Parallel
	j.spec = spec
	// Recompute the content address instead of trusting the journaled one:
	// a ReportVersion/ResultsVersion bump between restarts must re-run.
	j.hash = experiments.ShardSpecHash(rec.Experiment, spec, unitShard)
	if artifact, ok := s.cacheGetLocked(j, j.hash); ok {
		j.cached = true
		j.artifact = artifact
		j.state = StateRunning
		s.met.jobsCached.Inc()
		s.completeLocked(j, StateDone, "", true)
		return
	}
	if leader := s.inflight[j.hash]; leader != nil {
		j.coalesced = true
		j.state = leader.state
		leader.followers = append(leader.followers, j)
		s.met.jobsCoalesced.Inc()
		return
	}
	j.units = makeUnits(j, rec.Shards, unitShard)
	j.state = StateQueued
	j.remaining = len(j.units)
	s.inflight[j.hash] = j
	s.met.jobsComputed.Inc()
	s.events.Emit(obs.Event{Event: obs.EventJobAccepted, Trace: j.trace, Job: j.id,
		Experiment: j.experiment, Detail: "replayed"})
	s.enqueueLocked(j) // the queue is sized to hold the whole backlog
}

// journalAcceptLocked appends one accepted job to the WAL. Journal failures
// degrade durability, not availability: they are logged and the job still
// runs. Callers hold s.mu.
func (s *Server) journalAcceptLocked(j *job, spec SpecRequest, shards int, shard string) {
	if s.journal == nil {
		return
	}
	raw, err := json.Marshal(spec)
	if err == nil {
		err = s.journal.Accept(journal.Accept{
			ID: j.id, Experiment: j.experiment, Spec: raw,
			Shards: shards, Shard: shard, Hash: j.hash, Created: j.created,
			Trace: j.trace,
		})
	}
	if err != nil {
		s.met.journalError(err)
		log.Printf("service: journaling job %s failed (job runs, restart will not resume it): %v", j.id, err)
	}
}

// journalDoneLocked marks one job finished in the WAL. Callers hold s.mu.
func (s *Server) journalDoneLocked(id string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Done(id); err != nil {
		s.met.journalError(err)
		log.Printf("service: journaling completion of %s: %v", id, err)
	}
}

// finishLocked marks j terminal and records it in the eviction queue (a job
// reaches a terminal state exactly once). Callers hold s.mu.
func (s *Server) finishLocked(j *job, state, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	s.terminal = append(s.terminal, j.id)
	if state == StateDone {
		s.met.jobsDone.Inc()
		s.events.Emit(obs.Event{Event: obs.EventJobDone, Trace: j.trace, Job: j.id,
			Experiment: j.experiment})
	} else {
		s.met.jobsFailed.Inc()
		s.events.Emit(obs.Event{Event: obs.EventJobFailed, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Detail: errMsg})
	}
}

// completeLocked finishes a non-terminal job and all its still-pending
// followers with the same terminal state (followers of a done leader share
// its artifact), deregisters the in-flight hash entry, and — unless the job
// is being abandoned by shutdown — marks the journal records done so they
// compact away instead of replaying. Callers hold s.mu.
func (s *Server) completeLocked(j *job, state, errMsg string, journalDone bool) {
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	s.finishLocked(j, state, errMsg)
	if s.inflight[j.hash] == j {
		delete(s.inflight, j.hash)
	}
	if journalDone {
		s.journalDoneLocked(j.id)
	}
	for _, f := range j.followers {
		if f.state == StateDone || f.state == StateFailed {
			continue
		}
		if state == StateDone {
			f.artifact = j.artifact
		}
		s.finishLocked(f, state, errMsg)
		if journalDone {
			s.journalDoneLocked(f.id)
		}
	}
}

// evictLocked drops the oldest terminal jobs beyond the MaxJobs bound, so a
// long-running daemon's job map cannot grow without limit. Callers hold s.mu.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.MaxJobs && len(s.terminal) > 0 {
		id := s.terminal[0]
		s.terminal = s.terminal[1:]
		delete(s.jobs, id)
	}
}

// retryAfterLocked estimates when a rejected submitter should retry: the
// current unit backlog divided across the worker pool at the recent mean
// unit duration (1 s floor before any unit has completed), clamped to
// [1 s, 5 min]. Callers hold s.mu.
func (s *Server) retryAfterLocked() time.Duration {
	mean := time.Duration(s.meanUnitNs)
	if mean <= 0 {
		mean = time.Second
	}
	backlog := s.queued + s.inFlight
	d := mean * time.Duration(backlog) / time.Duration(s.cfg.Workers)
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// Job returns the status of one job.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

// Artifact returns the finished job's report artifact: exactly the bytes the
// equivalent local `cmd/experiments run -o` writes. ErrJobNotFinished while
// the job is queued or running; the job's failure message once failed.
func (s *Server) Artifact(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateDone:
		return j.artifact, nil
	case StateFailed:
		return nil, fmt.Errorf("service: job %s failed: %s", id, j.errMsg)
	default:
		return nil, fmt.Errorf("%w: job %s is %s", ErrJobNotFinished, id, j.state)
	}
}

// Health snapshots the daemon's load. Status is "draining" once Shutdown or
// Close has begun, "ok" otherwise.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	// The lifetime counters read straight off the metrics registry — the
	// same series /metrics renders — so the two endpoints agree by
	// construction (pinned by TestHealthMatchesMetrics).
	return Health{
		Status:           status,
		QueueDepth:       s.queued,
		QueueCapacity:    s.cfg.QueueCapacity,
		InFlight:         s.inFlight,
		Workers:          s.cfg.Workers,
		Jobs:             len(s.jobs),
		CoalescedJobs:    int(s.met.jobsCoalesced.Value()),
		CacheEntries:     s.cache.Len(),
		CacheHits:        int(s.met.cacheHits.Value()),
		CacheMisses:      int(s.met.cacheMisses.Value()),
		CacheWriteErrors: int(s.met.cacheWriteErr.Value()),
		MeanUnitMs:       s.meanUnitNs / 1e6,
	}
}

// statusLocked builds a JobStatus snapshot. Callers hold s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:         j.id,
		Experiment: j.experiment,
		TraceID:    j.trace,
		Hash:       j.hash,
		State:      j.state,
		Cached:     j.cached,
		Coalesced:  j.coalesced,
		Error:      j.errMsg,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
	}
	for _, u := range j.units {
		st.Shards = append(st.Shards, ShardStatus{
			Shard: u.shard.String(),
			State: u.state,
			Done:  u.done,
			Total: u.total,
		})
	}
	return st
}

// worker drains the unit queue until the daemon closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case u := <-s.queue:
			s.runUnit(u)
		}
	}
}

// runUnit executes one shard unit and finalises its job when it is the last.
func (s *Server) runUnit(u *unit) {
	j := u.job
	s.mu.Lock()
	s.queued--
	if s.draining || s.ctx.Err() != nil {
		// The daemon is draining: leave the unit unstarted. Its job is
		// terminal-marked by the shutdown sweep, and its journal record
		// survives for the next daemon to resume.
		s.mu.Unlock()
		return
	}
	if j.state == StateFailed {
		// A sibling shard already failed the job: don't burn a worker on a
		// result nobody will merge.
		u.state = StateFailed
		s.mu.Unlock()
		return
	}
	s.inFlight++
	u.state = StateRunning
	s.events.Emit(obs.Event{Event: obs.EventUnitStarted, Trace: j.trace, Job: j.id,
		Experiment: j.experiment, Unit: u.shard.String()})
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
		for _, f := range j.followers {
			if f.state == StateQueued {
				f.state = StateRunning
				f.started = j.started
			}
		}
	}
	s.mu.Unlock()

	start := time.Now()
	var rep *experiments.Report
	var err error
	if hook := s.cfg.FaultHook; hook != nil {
		err = hook(s.ctx, j.experiment, u.shard)
	}
	if err == nil {
		spec := j.spec
		spec.Shard = u.shard
		spec.Progress = func(done, total int) {
			s.mu.Lock()
			u.done, u.total = done, total
			s.mu.Unlock()
		}
		rep, err = experiments.Run(s.ctx, j.experiment, spec)
	}
	dur := time.Since(start)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.inFlight--
	s.met.unitDur.Observe(dur.Seconds())
	// EWMA of unit duration feeds the Retry-After backpressure estimate.
	if s.meanUnitNs == 0 {
		s.meanUnitNs = float64(dur)
	} else {
		s.meanUnitNs = 0.8*s.meanUnitNs + 0.2*float64(dur)
	}
	if err != nil {
		u.state = StateFailed
		s.events.Emit(obs.Event{Event: obs.EventUnitFailed, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Unit: u.shard.String(), Detail: err.Error()})
		if s.ctx.Err() != nil {
			// Cancelled by Close/expired drain: abandon without journaling
			// completion, so a restart resumes the job.
			s.completeLocked(j, StateFailed, shutdownMsg, false)
		} else {
			s.completeLocked(j, StateFailed, err.Error(), true)
		}
	} else {
		u.state = StateDone
		u.rep = rep
		s.events.Emit(obs.Event{Event: obs.EventUnitFinished, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Unit: u.shard.String(), Detail: dur.Round(time.Millisecond).String()})
		j.remaining--
		if j.remaining == 0 {
			s.finalizeLocked(j)
		}
	}
	if s.draining && s.inFlight == 0 {
		s.drainOnce.Do(func() { close(s.drainIdle) })
	}
}

// finalizeLocked merges a job's shard partials, renders the artifact, stores
// it in the report cache and resolves the job with all its coalesced
// followers. Callers hold s.mu.
func (s *Server) finalizeLocked(j *job) {
	rep := j.units[0].rep
	if len(j.units) > 1 {
		parts := make([]*experiments.Report, len(j.units))
		for i, u := range j.units {
			parts[i] = u.rep
		}
		merged, err := experiments.MergeReports(parts)
		if err != nil {
			s.completeLocked(j, StateFailed, err.Error(), true)
			return
		}
		rep = merged
		s.events.Emit(obs.Event{Event: obs.EventMerge, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Detail: fmt.Sprintf("%d shard partials", len(j.units))})
	}
	var buf bytes.Buffer
	if err := experiments.WriteArtifact(&buf, []*experiments.Report{rep}); err != nil {
		s.completeLocked(j, StateFailed, err.Error(), true)
		return
	}
	j.artifact = buf.Bytes()
	// A cache write failure (disk full, permissions) must not fail the job:
	// the artifact is already in memory; only future resubmissions lose the
	// shortcut. It is counted in Health and logged once per distinct error.
	if err := s.cache.Put(j.hash, j.artifact); err != nil {
		s.met.cacheWriteErr.Inc()
		if !s.cacheErrSeen[err.Error()] {
			s.cacheErrSeen[err.Error()] = true
			log.Printf("service: report cache write failed (artifact kept in memory): %v", err)
		}
	}
	s.completeLocked(j, StateDone, "", true)
}
