// Package service implements the experiment daemon behind cmd/battschedd: a
// long-running HTTP server over the experiment registry with an asynchronous
// bounded FIFO job queue, server-side shard fan-out, and a content-addressed
// report cache.
//
// A submitted job names a registered experiment and a SpecRequest. Jobs enter
// the queue as shard units — one unit for an unsharded run, or Shards
// independent units each executing its RunOptions.Shard slice — and a bounded
// worker pool drains the queue in FIFO order. When the last unit of a job
// completes, the partial reports are recombined with experiments.MergeReports
// and the complete run's artifact (exactly the bytes `cmd/experiments run -o`
// writes) is stored in the cache under the canonical spec hash
// (experiments.SpecHash). A later submission of an equal spec — sharded or
// not — is answered from the cache without recomputation and marked Cached.
//
// Byte-identity to the CLI is the correctness contract: per-set experiments
// merge shard partials bit-for-bit (sample replay), so their served artifacts
// equal the local unsharded `run -o` artifact byte-for-byte at any shard
// count; the scenario grid's chunk-merged cells carry the documented Welford
// reassociation bound instead, so its sharded artifacts equal the equivalent
// local shard+merge pipeline.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/service/cache"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull reports that admitting the job's shard units would exceed
	// the queue bound.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrUnknownJob reports a job ID this daemon never issued.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrJobNotFinished reports a report request for a job still in flight.
	ErrJobNotFinished = errors.New("service: job not finished")
)

// Config tunes one daemon instance. The zero value is usable: two workers, a
// 64-unit queue, a memory-only 64-entry cache, full per-run parallelism.
type Config struct {
	// Workers is the worker-pool size: how many shard units execute
	// concurrently (<= 0 selects 2).
	Workers int
	// QueueCapacity bounds the FIFO queue in shard units (<= 0 selects 64).
	// Submissions whose units do not fit are rejected with ErrQueueFull.
	QueueCapacity int
	// Parallel is the RunOptions.Parallel passed to every unit's run: the
	// job-grid worker count inside one experiment run (0 selects all cores).
	// With several service workers, bound this to avoid oversubscription.
	Parallel int
	// CacheDir is the on-disk content-addressed report store; "" keeps the
	// cache memory-only.
	CacheDir string
	// CacheEntries bounds the cache's in-memory LRU tier (<= 0 selects 64).
	CacheEntries int
	// MaxJobs bounds the job map (<= 0 selects 1024): when a submission
	// would exceed it, the oldest *terminal* jobs (done or failed, in
	// completion order) are evicted so the long-running daemon's memory stays
	// bounded; their IDs then answer 404. Queued and running jobs are never
	// evicted. Finished artifacts stay retrievable by resubmitting the spec —
	// the report cache, not the job map, is the artifact store.
	MaxJobs int
}

// Server is the experiment daemon. Construct with New, expose over HTTP with
// Handler, and stop with Close. Submit and Job are also usable directly for
// in-process embedding.
type Server struct {
	cfg    Config
	cache  *cache.Cache
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *unit

	mu       sync.Mutex
	jobs     map[string]*job
	terminal []string // terminal job IDs in completion order (eviction queue)
	queued   int      // units in the queue
	inFlight int      // units executing
	seq      int
}

// job is one accepted submission.
type job struct {
	id         string
	experiment string
	hash       string
	spec       experiments.Spec
	state      string
	cached     bool
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	units      []*unit
	remaining  int
	artifact   []byte
}

// unit is one queued/executing shard of a job.
type unit struct {
	job   *job
	shard experiments.Shard
	state string
	done  int
	total int
	rep   *experiments.Report
}

// New constructs a daemon and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	c, err := cache.New(cfg.CacheDir, cfg.CacheEntries)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		cache:  c,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *unit, cfg.QueueCapacity),
		jobs:   make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops the worker pool: in-flight runs are cancelled through their
// context and queued units are abandoned. Safe to call more than once.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// Submit validates and admits one job. A spec whose canonical hash is
// already in the report cache completes immediately with Cached set; anything
// else enqueues the job's shard units, failing with ErrQueueFull when they
// do not fit the queue bound.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	def, err := experiments.Lookup(req.Experiment)
	if err != nil {
		return JobStatus{}, err
	}
	if req.Shards < 0 {
		return JobStatus{}, fmt.Errorf("%w: negative shard count %d", experiments.ErrBadConfig, req.Shards)
	}
	if req.Shards > 1 && !def.Shardable {
		return JobStatus{}, fmt.Errorf("%w: experiment %q is deterministic and does not shard",
			experiments.ErrBadConfig, req.Experiment)
	}
	spec := req.Spec.Spec()
	if spec.Battery != "" {
		// Fail a bad battery name at submission instead of asynchronously.
		if _, err := experiments.NamedBatteryFactory(spec.Battery); err != nil {
			return JobStatus{}, err
		}
	}
	spec.Parallel = s.cfg.Parallel
	hash := experiments.SpecHash(req.Experiment, spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:         fmt.Sprintf("job-%06d", s.seq),
		experiment: req.Experiment,
		hash:       hash,
		spec:       spec,
		created:    time.Now(),
	}
	if artifact, ok := s.cache.Get(hash); ok {
		j.cached = true
		j.artifact = artifact
		s.jobs[j.id] = j
		s.finishLocked(j, StateDone, "")
		s.evictLocked()
		return s.statusLocked(j), nil
	}
	shards := req.Shards
	if shards <= 1 {
		j.units = []*unit{{job: j, state: StateQueued}}
	} else {
		for i := 0; i < shards; i++ {
			j.units = append(j.units, &unit{
				job:   j,
				shard: experiments.Shard{Index: i, Count: shards},
				state: StateQueued,
			})
		}
	}
	if s.queued+len(j.units) > s.cfg.QueueCapacity {
		return JobStatus{}, fmt.Errorf("%w: %d unit(s) would exceed the %d-unit bound (%d queued)",
			ErrQueueFull, len(j.units), s.cfg.QueueCapacity, s.queued)
	}
	j.state = StateQueued
	j.remaining = len(j.units)
	s.jobs[j.id] = j
	s.evictLocked()
	for _, u := range j.units {
		s.queued++
		s.queue <- u // never blocks: queued <= QueueCapacity == cap(queue)
	}
	return s.statusLocked(j), nil
}

// finishLocked marks j terminal and records it in the eviction queue (a job
// reaches a terminal state exactly once). Callers hold s.mu.
func (s *Server) finishLocked(j *job, state, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	s.terminal = append(s.terminal, j.id)
}

// evictLocked drops the oldest terminal jobs beyond the MaxJobs bound, so a
// long-running daemon's job map cannot grow without limit. Callers hold s.mu.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.MaxJobs && len(s.terminal) > 0 {
		id := s.terminal[0]
		s.terminal = s.terminal[1:]
		delete(s.jobs, id)
	}
}

// Job returns the status of one job.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

// Artifact returns the finished job's report artifact: exactly the bytes the
// equivalent local `cmd/experiments run -o` writes. ErrJobNotFinished while
// the job is queued or running; the job's failure message once failed.
func (s *Server) Artifact(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateDone:
		return j.artifact, nil
	case StateFailed:
		return nil, fmt.Errorf("service: job %s failed: %s", id, j.errMsg)
	default:
		return nil, fmt.Errorf("%w: job %s is %s", ErrJobNotFinished, id, j.state)
	}
}

// Health snapshots the daemon's load.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	hits, misses := s.cache.Stats()
	return Health{
		Status:        "ok",
		QueueDepth:    s.queued,
		QueueCapacity: s.cfg.QueueCapacity,
		InFlight:      s.inFlight,
		Workers:       s.cfg.Workers,
		Jobs:          len(s.jobs),
		CacheEntries:  s.cache.Len(),
		CacheHits:     hits,
		CacheMisses:   misses,
	}
}

// statusLocked builds a JobStatus snapshot. Callers hold s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:         j.id,
		Experiment: j.experiment,
		Hash:       j.hash,
		State:      j.state,
		Cached:     j.cached,
		Error:      j.errMsg,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
	}
	for _, u := range j.units {
		st.Shards = append(st.Shards, ShardStatus{
			Shard: u.shard.String(),
			State: u.state,
			Done:  u.done,
			Total: u.total,
		})
	}
	return st
}

// worker drains the unit queue until the daemon closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case u := <-s.queue:
			s.runUnit(u)
		}
	}
}

// runUnit executes one shard unit and finalises its job when it is the last.
func (s *Server) runUnit(u *unit) {
	j := u.job
	s.mu.Lock()
	s.queued--
	if j.state == StateFailed || s.ctx.Err() != nil {
		// A sibling shard already failed the job (or the daemon is closing):
		// don't burn a worker on a result nobody will merge.
		u.state = StateFailed
		s.mu.Unlock()
		return
	}
	s.inFlight++
	u.state = StateRunning
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
	}
	s.mu.Unlock()

	spec := j.spec
	spec.Shard = u.shard
	spec.Progress = func(done, total int) {
		s.mu.Lock()
		u.done, u.total = done, total
		s.mu.Unlock()
	}
	rep, err := experiments.Run(s.ctx, j.experiment, spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.inFlight--
	if err != nil {
		u.state = StateFailed
		if j.state != StateFailed {
			s.finishLocked(j, StateFailed, err.Error())
		}
		return
	}
	u.state = StateDone
	u.rep = rep
	j.remaining--
	if j.remaining == 0 {
		s.finalizeLocked(j)
	}
}

// finalizeLocked merges a job's shard partials, renders the artifact and
// stores it in the report cache. Callers hold s.mu.
func (s *Server) finalizeLocked(j *job) {
	rep := j.units[0].rep
	if len(j.units) > 1 {
		parts := make([]*experiments.Report, len(j.units))
		for i, u := range j.units {
			parts[i] = u.rep
		}
		merged, err := experiments.MergeReports(parts)
		if err != nil {
			s.finishLocked(j, StateFailed, err.Error())
			return
		}
		rep = merged
	}
	var buf bytes.Buffer
	if err := experiments.WriteArtifact(&buf, []*experiments.Report{rep}); err != nil {
		s.finishLocked(j, StateFailed, err.Error())
		return
	}
	j.artifact = buf.Bytes()
	s.finishLocked(j, StateDone, "")
	// A cache write failure (disk full, permissions) must not fail the job:
	// the artifact is already in memory; only future resubmissions lose the
	// shortcut.
	_ = s.cache.Put(j.hash, j.artifact)
}
