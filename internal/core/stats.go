package core

import "fmt"

// GraphStats summarises the behaviour of one task graph across all of its
// instances in a simulation.
type GraphStats struct {
	// GraphIndex and Name identify the graph.
	GraphIndex int
	Name       string
	// Jobs is the number of instances released.
	Jobs int
	// Misses is the number of instances that missed their deadline.
	Misses int
	// MaxResponse and AvgResponse are the worst-case and mean response times
	// (completion time minus release time) of completed instances, in
	// seconds.
	MaxResponse float64
	AvgResponse float64
	// AvgLaxity is the mean remaining time to the deadline at completion, in
	// seconds.
	AvgLaxity float64
}

// String implements fmt.Stringer.
func (g GraphStats) String() string {
	return fmt.Sprintf("%s: jobs=%d misses=%d maxResp=%.4gs avgResp=%.4gs avgLaxity=%.4gs",
		g.Name, g.Jobs, g.Misses, g.MaxResponse, g.AvgResponse, g.AvgLaxity)
}

// graphStatsCollector accumulates per-graph response statistics during a run.
type graphStatsCollector struct {
	stats []GraphStats
	sums  []float64 // response-time sums
	lax   []float64 // laxity sums
	done  []int     // completed instances
}

func newGraphStatsCollector(names []string) *graphStatsCollector {
	c := &graphStatsCollector{
		stats: make([]GraphStats, len(names)),
		sums:  make([]float64, len(names)),
		lax:   make([]float64, len(names)),
		done:  make([]int, len(names)),
	}
	for i, n := range names {
		c.stats[i].GraphIndex = i
		c.stats[i].Name = n
	}
	return c
}

// reset rebinds the collector to names and zeroes all counters, reusing the
// slices when their capacity suffices. Previously finalized GraphStats slices
// alias c.stats and are invalidated by the reuse.
func (c *graphStatsCollector) reset(names []string) {
	n := len(names)
	if cap(c.stats) < n {
		c.stats = make([]GraphStats, n)
		c.sums = make([]float64, n)
		c.lax = make([]float64, n)
		c.done = make([]int, n)
	} else {
		c.stats = c.stats[:n]
		c.sums = c.sums[:n]
		c.lax = c.lax[:n]
		c.done = c.done[:n]
		for i := range c.sums {
			c.stats[i] = GraphStats{}
			c.sums[i] = 0
			c.lax[i] = 0
			c.done[i] = 0
		}
	}
	for i, nm := range names {
		c.stats[i].GraphIndex = i
		c.stats[i].Name = nm
	}
}

// released records one released instance.
func (c *graphStatsCollector) released(graph int) {
	if graph >= 0 && graph < len(c.stats) {
		c.stats[graph].Jobs++
	}
}

// completed records one completed instance.
func (c *graphStatsCollector) completed(graph int, response, laxity float64, missed bool) {
	if graph < 0 || graph >= len(c.stats) {
		return
	}
	s := &c.stats[graph]
	if missed {
		s.Misses++
	}
	if response > s.MaxResponse {
		s.MaxResponse = response
	}
	c.sums[graph] += response
	c.lax[graph] += laxity
	c.done[graph]++
}

// missedWithoutCompletion records an instance flagged as missed before it
// completed (it may still complete later; only the miss is counted here).
func (c *graphStatsCollector) missedWithoutCompletion(graph int) {
	if graph >= 0 && graph < len(c.stats) {
		c.stats[graph].Misses++
	}
}

// finalize computes the averages and returns the per-graph statistics.
func (c *graphStatsCollector) finalize() []GraphStats {
	for i := range c.stats {
		if c.done[i] > 0 {
			c.stats[i].AvgResponse = c.sums[i] / float64(c.done[i])
			c.stats[i].AvgLaxity = c.lax[i] / float64(c.done[i])
		}
	}
	return c.stats
}
