package core

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/tgff"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the file
// when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenResult renders every numeric field of a Result with round-trip float
// precision, so any behavioural change of the engine shows up byte-for-byte.
func goldenResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "horizon=%.17g busy=%.17g idle=%.17g\n", r.Horizon, r.BusyTime, r.IdleTime)
	fmt.Fprintf(&b, "energyBattery=%.17g energyProcessor=%.17g\n", r.EnergyBattery, r.EnergyProcessor)
	fmt.Fprintf(&b, "cycles=%.17g avgFreq=%.17g\n", r.ExecutedCycles, r.AverageFrequency)
	fmt.Fprintf(&b, "jobs=%d/%d nodes=%d misses=%d preempt=%d outOfOrder=%d feasRej=%d decisions=%d\n",
		r.JobsReleased, r.JobsCompleted, r.NodesCompleted, r.DeadlineMisses,
		r.Preemptions, r.OutOfOrderExecutions, r.FeasibilityRejections, r.SchedulingDecisions)
	if r.Profile != nil {
		fmt.Fprintf(&b, "profile: segments=%d duration=%.17g charge=%.17g peak=%.17g\n",
			len(r.Profile.Segments), r.Profile.Duration(), r.Profile.Charge(), r.Profile.PeakCurrent())
	}
	if r.Trace != nil {
		fmt.Fprintf(&b, "trace: slices=%d busy=%.17g idle=%.17g cycles=%.17g charge=%.17g\n",
			len(r.Trace.Slices), r.Trace.BusyTime(), r.Trace.IdleTime(), r.Trace.ExecutedCycles(), r.Trace.Charge())
	}
	for _, g := range r.PerGraph {
		fmt.Fprintf(&b, "graph %d %s: jobs=%d misses=%d maxResp=%.17g avgResp=%.17g avgLaxity=%.17g\n",
			g.GraphIndex, g.Name, g.Jobs, g.Misses, g.MaxResponse, g.AvgResponse, g.AvgLaxity)
	}
	return b.String()
}

// TestGoldenEngineSchemes pins the exact behaviour of the engine across every
// paper scheme and every frequency mode at a fixed seed: the refactored
// engine must produce byte-identical results.
func TestGoldenEngineSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), 4, 0.7, 1e9, rng)
	if err != nil {
		t.Fatal(err)
	}

	schemes := []struct {
		name   string
		alg    func() dvs.Algorithm
		prio   func() priority.Function
		policy ReadyPolicy
	}{
		{"edf", func() dvs.Algorithm { return dvs.NewNoDVS() }, func() priority.Function { return priority.NewRandom() }, MostImminentOnly},
		{"ccedf", func() dvs.Algorithm { return dvs.NewCCEDF() }, func() priority.Function { return priority.NewRandom() }, MostImminentOnly},
		{"laedf", func() dvs.Algorithm { return dvs.NewLAEDF() }, func() priority.Function { return priority.NewRandom() }, MostImminentOnly},
		{"bas1", func() dvs.Algorithm { return dvs.NewLAEDF() }, func() priority.Function { return priority.NewPUBS() }, MostImminentOnly},
		{"bas2", func() dvs.Algorithm { return dvs.NewLAEDF() }, func() priority.Function { return priority.NewPUBS() }, AllReleased},
	}
	modes := []struct {
		name string
		mode FrequencyMode
	}{
		{"continuous", ContinuousFrequency},
		{"discrete", DiscreteFrequency},
		{"discrete-ceil", DiscreteCeilFrequency},
	}

	var b strings.Builder
	for _, s := range schemes {
		for _, m := range modes {
			res, err := Run(Config{
				System:        sys.Clone(),
				DVS:           s.alg(),
				Priority:      s.prio(),
				ReadyPolicy:   s.policy,
				FrequencyMode: m.mode,
				Hyperperiods:  2,
				Seed:          7,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", s.name, m.name, err)
			}
			fmt.Fprintf(&b, "=== %s %s ===\n%s", s.name, m.name, goldenResult(res))
		}
	}
	checkGolden(t, "engine_schemes", b.String())
}
