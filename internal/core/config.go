// Package core implements the paper's Battery-Aware Scheduling methodology:
// a preemptive EDF scheduling engine for periodically arriving task graphs on
// a single DVS-capable processor, in which
//
//   - a pluggable DVS algorithm (internal/dvs) re-selects the reference
//     frequency fref on every task-graph release and node completion
//     (the paper's Algorithm 1), and
//   - a pluggable priority function (internal/priority) chooses which ready
//     node to execute next, either among the nodes of the most imminent task
//     graph only (BAS-1) or among the nodes of all released task graphs
//     (BAS-2), in which case the paper's feasibility check (Algorithm 2)
//     guarantees that no deadline is ever missed.
//
// The engine produces an execution trace and a battery load-current profile
// that the battery models (internal/battery) evaluate for lifetime and
// delivered charge.
package core

import (
	"errors"
	"fmt"

	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/processor"
	"battsched/internal/taskgraph"
)

// ReadyPolicy selects which released task graphs contribute candidates to the
// ready list.
type ReadyPolicy int

const (
	// MostImminentOnly admits only ready nodes of the released task graph
	// with the earliest absolute deadline (the BAS-1 policy; plain EDF among
	// graphs, so no feasibility check is needed).
	MostImminentOnly ReadyPolicy = iota
	// AllReleased admits ready nodes of every released task graph (the BAS-2
	// policy); out-of-EDF-order candidates must pass the feasibility check.
	AllReleased
)

// String implements fmt.Stringer.
func (p ReadyPolicy) String() string {
	switch p {
	case MostImminentOnly:
		return "most-imminent"
	case AllReleased:
		return "all-released"
	default:
		return fmt.Sprintf("ReadyPolicy(%d)", int(p))
	}
}

// FrequencyMode selects how the reference frequency is realised.
type FrequencyMode int

const (
	// ContinuousFrequency runs the processor exactly at fref (clamped to the
	// supported range) — the idealised model used for the energy-only
	// comparisons (Table 1, Figure 6).
	ContinuousFrequency FrequencyMode = iota
	// DiscreteFrequency realises fref as the optimal linear combination of
	// the two adjacent supported operating points, higher frequency first, as
	// the paper prescribes for real processors (used for the battery runs of
	// Table 2).
	DiscreteFrequency
	// DiscreteCeilFrequency realises fref at the smallest supported operating
	// point that is at least fref. It is the naive quantisation policy the
	// paper argues against (citing the optimality of the linear combination)
	// and exists for ablation studies.
	DiscreteCeilFrequency
)

// String implements fmt.Stringer.
func (m FrequencyMode) String() string {
	switch m {
	case ContinuousFrequency:
		return "continuous"
	case DiscreteFrequency:
		return "discrete"
	case DiscreteCeilFrequency:
		return "discrete-ceil"
	default:
		return fmt.Sprintf("FrequencyMode(%d)", int(m))
	}
}

// Config assembles one scheduling simulation.
type Config struct {
	// System is the set of periodic task graphs to schedule.
	System *taskgraph.System
	// Processor is the DVS processor model (nil selects processor.Default()).
	Processor *processor.Model
	// DVS selects the reference frequency (nil selects dvs.NewCCEDF()).
	DVS dvs.Algorithm
	// Priority orders the ready list (nil selects priority.NewFIFO()).
	Priority priority.Function
	// Estimator predicts actual execution requirements for the priority
	// function (nil selects priority.NewHistoryEstimator(0.5)).
	Estimator priority.Estimator
	// OracleEstimates, when true, feeds the priority function the true actual
	// cycles of each node instance instead of the estimator's prediction.
	OracleEstimates bool
	// LocalSpeedModel, when true, makes the pUBS priority evaluate the
	// post-candidate speed s_{o,k} with Gruian's deadline-local rescaling
	// model (remaining work over time to the candidate's deadline) instead of
	// querying the configured DVS algorithm hypothetically. This matches the
	// original UBS formulation; the DVS-based estimate is the default.
	LocalSpeedModel bool
	// ReadyPolicy selects BAS-1 (MostImminentOnly) or BAS-2 (AllReleased)
	// candidate admission.
	ReadyPolicy ReadyPolicy
	// FrequencyMode selects continuous or discrete frequency realisation.
	FrequencyMode FrequencyMode
	// Execution draws actual execution requirements (nil selects the paper's
	// uniform 20–100 % of WCET model seeded with Seed).
	Execution taskgraph.ExecutionModel
	// Observer receives every constant-state segment the simulation emits
	// (see SegmentSink). Nil selects the full Recorder, which populates
	// Result.Profile and Result.Trace as before; experiment sweeps pass
	// cheap accumulate-only sinks (Discard, NewProfileRecorder) to skip
	// recording they do not need. Energy totals are accumulated by the
	// engine itself and do not depend on the observer.
	Observer SegmentSink
	// Horizon is the simulated duration in seconds. When zero the horizon is
	// Hyperperiods hyperperiods of the system.
	Horizon float64
	// Hyperperiods is the number of hyperperiods to simulate when Horizon is
	// zero (default 1).
	Hyperperiods int
	// Seed seeds the random elements (execution model, Random priority).
	Seed int64
}

// Errors returned by Config.Validate and Run.
var (
	ErrNilSystem  = errors.New("core: nil task-graph system")
	ErrBadHorizon = errors.New("core: horizon must be positive")
	ErrOverload   = errors.New("core: system utilisation exceeds 1 at fmax")
	// ErrEngineNotReady is returned by Engine.Run when it is not preceded by a
	// successful Engine.Reset (each Reset admits exactly one Run).
	ErrEngineNotReady = errors.New("core: Engine.Run requires a successful Reset first")
)

// withDefaults returns a copy of the config with nil/zero fields replaced by
// the documented defaults.
func (c Config) withDefaults() Config {
	if c.Processor == nil {
		c.Processor = processor.Default()
	}
	if c.DVS == nil {
		c.DVS = dvs.NewCCEDF()
	}
	if c.Priority == nil {
		c.Priority = priority.NewFIFO()
	}
	if c.Estimator == nil {
		c.Estimator = priority.NewHistoryEstimator(0.5)
	}
	if c.Execution == nil {
		c.Execution = taskgraph.NewUniformExecution(0.2, 1.0, c.Seed)
	}
	if c.Horizon <= 0 && c.Hyperperiods <= 0 {
		c.Hyperperiods = 1
	}
	return c
}

// Validate checks the configuration for structural problems.
func (c Config) Validate() error {
	if c.System == nil {
		return ErrNilSystem
	}
	cfg := c.withDefaults()
	if err := cfg.Processor.Validate(); err != nil {
		return err
	}
	if err := cfg.System.Validate(cfg.Processor.FMax()); err != nil {
		if errors.Is(err, taskgraph.ErrOverload) {
			return fmt.Errorf("%w: %v", ErrOverload, err)
		}
		return err
	}
	if c.Horizon < 0 {
		return ErrBadHorizon
	}
	return nil
}

// horizon returns the simulation horizon in seconds for the (defaulted)
// configuration.
func (c Config) horizon() float64 {
	if c.Horizon > 0 {
		return c.Horizon
	}
	n := c.Hyperperiods
	if n <= 0 {
		n = 1
	}
	return c.System.Hyperperiod() * float64(n)
}
