package core
