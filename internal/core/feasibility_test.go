package core

import (
	"testing"

	"battsched/internal/dvs"
)

func feasViews() []dvs.InstanceView {
	// Three released instances in EDF order at t=0: deadlines 10, 20, 40 s
	// with remaining worst-case work 4e9, 6e9 and 10e9 cycles.
	return []dvs.InstanceView{
		{AbsoluteDeadline: 10, RemainingWorstCase: 4e9},
		{AbsoluteDeadline: 20, RemainingWorstCase: 6e9},
		{AbsoluteDeadline: 40, RemainingWorstCase: 10e9},
	}
}

func TestMostImminentAlwaysFeasible(t *testing.T) {
	if !feasible(1e12, 0, feasViews(), 0, 1e9) {
		t.Fatal("candidates of the most imminent instance must never be rejected")
	}
	if !feasible(1e12, -1, nil, 0, 0) {
		t.Fatal("negative EDF position must be treated as most imminent")
	}
}

func TestFeasibilityAcceptsWhenSlackSuffices(t *testing.T) {
	// Candidate of the 2nd instance (position 1), wc = 5e9 cycles, fref = 1 GHz.
	// Check for j=0: 4e9 + 5e9 = 9e9 <= 1e9*10 = 10e9. Feasible.
	if !feasible(5e9, 1, feasViews(), 0, 1e9) {
		t.Fatal("expected feasible")
	}
}

func TestFeasibilityRejectsWhenDeadlineWouldBeJeopardised(t *testing.T) {
	// wc = 7e9: 4e9 + 7e9 = 11e9 > 10e9 capacity before the first deadline.
	if feasible(7e9, 1, feasViews(), 0, 1e9) {
		t.Fatal("expected infeasible")
	}
}

func TestFeasibilityChecksAllEarlierDeadlinesCumulatively(t *testing.T) {
	// Candidate from the 3rd instance (position 2), wc = 5e9, fref = 1 GHz:
	//   j=0: 4e9 + 5e9 = 9e9  <= 10e9  OK
	//   j=1: 4e9 + 6e9 + 5e9 = 15e9 <= 20e9 OK
	if !feasible(5e9, 2, feasViews(), 0, 1e9) {
		t.Fatal("expected feasible at position 2")
	}
	// wc = 11e9 passes j=0? 4e9+11e9 = 15e9 > 10e9 -> rejected at the first
	// check already.
	if feasible(11e9, 2, feasViews(), 0, 1e9) {
		t.Fatal("expected infeasible (first deadline)")
	}
	// wc = 6e9 passes j=0 (10e9 <= 10e9) but fails j=1 only if cumulative
	// work exceeds capacity: 4+6+6=16e9 <= 20e9, so still feasible.
	if !feasible(6e9, 2, feasViews(), 0, 1e9) {
		t.Fatal("expected feasible (cumulative fits)")
	}
}

func TestFeasibilityDependsOnFrequencyAndTime(t *testing.T) {
	// At half frequency the same candidate becomes infeasible.
	if feasible(5e9, 1, feasViews(), 0, 0.5e9) {
		t.Fatal("expected infeasible at half frequency")
	}
	// Later in time the remaining capacity shrinks.
	if feasible(5e9, 1, feasViews(), 5, 1e9) {
		t.Fatal("expected infeasible at t=5")
	}
	// Zero or negative frequency can never accommodate out-of-order work.
	if feasible(1, 1, feasViews(), 0, 0) {
		t.Fatal("expected infeasible at fref=0")
	}
}

func TestFeasibilityPositionBeyondViews(t *testing.T) {
	// A position larger than the number of views only checks the views that
	// exist (defensive behaviour).
	if !feasible(1e9, 5, feasViews(), 0, 1e9) {
		t.Fatal("expected feasible with clamped position")
	}
}
