package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"battsched/internal/dvs"
	"battsched/internal/obs"
	"battsched/internal/priority"
	"battsched/internal/processor"
	"battsched/internal/profile"
	"battsched/internal/taskgraph"
)

// timeEpsilon absorbs floating-point noise when comparing simulation times.
const timeEpsilon = 1e-12

// cycleEpsilon is the threshold below which remaining cycles count as zero.
const cycleEpsilon = 1e-6

// Run executes one scheduling simulation described by cfg and returns its
// Result. It is the main entry point of the package: a one-shot wrapper over
// a fresh Engine, byte-identical to reusing an Engine with the same Config.
func Run(cfg Config) (*Result, error) {
	var en Engine
	if err := en.Reset(cfg); err != nil {
		return nil, err
	}
	return en.Run()
}

// Engine is a reusable scheduling engine. A zero Engine is ready for Reset;
// NewEngine is provided for symmetry. Reset(cfg) followed by Run() produces a
// Result byte-identical to Run(cfg), but every piece of scratch state — the
// EDF-ordered released list, view/candidate/realisation buffers, the instance
// free list, the estimator history map, the execution model's RNG and the
// per-graph statistics — survives across runs, so steady-state allocations
// drop from ~90 per run to ~1.
//
// Aliasing contract: Result.PerGraph aliases engine-owned storage and
// Result.Profile/Result.Trace alias the observer's storage (when the observer
// is reused across runs, see ProfileRecorder.Reset); both are valid only until
// the next Reset of the engine/observer that produced them. Copy anything that
// must outlive the reuse.
//
// Caching contract: structural validation, graph names and trace labels are
// cached per System pointer (validation also keys on the Processor pointer).
// An Engine therefore assumes a System is immutable while its pointer is being
// reused — mutate a system only by passing a fresh pointer (e.g. a Clone).
//
// An Engine is not safe for concurrent use; the experiment drivers keep one
// per worker job.
type Engine struct {
	e engine

	// Engine-owned reusable defaults for the Config fields withDefaults would
	// otherwise allocate fresh on every Reset.
	hist *priority.HistoryEstimator
	exec *taskgraph.UniformExecution
	proc *processor.Model

	// Validation cache: the (System, Processor) pair that last passed
	// Config.Validate.
	lastSys  *taskgraph.System
	lastProc *processor.Model

	ready bool
}

// NewEngine returns a fresh reusable engine, equivalent to new(Engine).
func NewEngine() *Engine { return &Engine{} }

// Reset prepares the engine to simulate cfg, reusing all scratch state from
// previous runs. It performs the same validation and defaulting as Run, except
// that nil Estimator/Execution/Processor fields are filled with engine-owned
// reusable instances (reset/reseeded to match fresh ones bit-for-bit) and
// structural validation is skipped when the same (System, Processor) pointers
// were already validated by a previous Reset.
func (en *Engine) Reset(cfg Config) error {
	if cfg.Processor == nil {
		if en.proc == nil {
			en.proc = processor.Default()
		}
		cfg.Processor = en.proc
	}
	if cfg.Estimator == nil {
		if en.hist == nil {
			en.hist = priority.NewHistoryEstimator(0.5)
		} else {
			en.hist.Reset()
		}
		cfg.Estimator = en.hist
	}
	if cfg.Execution == nil {
		if en.exec == nil {
			en.exec = taskgraph.NewUniformExecution(0.2, 1.0, cfg.Seed)
		} else {
			en.exec.Reseed(cfg.Seed)
		}
		cfg.Execution = en.exec
	}
	if cfg.System != nil && cfg.System == en.lastSys && cfg.Processor == en.lastProc {
		// Already validated this (System, Processor) pair; only the per-run
		// horizon check remains.
		if cfg.Horizon < 0 {
			return ErrBadHorizon
		}
	} else {
		if err := cfg.Validate(); err != nil {
			return err
		}
		en.lastSys, en.lastProc = cfg.System, cfg.Processor
	}
	en.e.reset(cfg.withDefaults())
	en.ready = true
	return nil
}

// Run executes the simulation prepared by the last Reset. It errors unless
// preceded by a successful Reset; each Reset admits exactly one Run.
func (en *Engine) Run() (*Result, error) {
	if !en.ready {
		return nil, ErrEngineNotReady
	}
	en.ready = false
	obs.Sim.EngineRuns.Add(1)
	return en.e.run(), nil
}

// nodeState tracks one node of one released instance.
type nodeState struct {
	wcet      float64 // full worst-case cycles
	actual    float64 // drawn actual cycles for this instance
	executed  float64 // cycles executed so far
	predsLeft int
	done      bool
}

func (n *nodeState) wcRemaining() float64 {
	r := n.wcet - n.executed
	if r < 0 {
		return 0
	}
	return r
}

func (n *nodeState) acRemaining() float64 {
	r := n.actual - n.executed
	if r < 0 {
		return 0
	}
	return r
}

// instance is one released job of a task graph.
type instance struct {
	graphIndex int
	jobIndex   int
	release    float64
	deadline   float64
	nodes      []nodeState
	remaining  int     // nodes not yet done
	adjustedWC float64 // the paper's WC_i
	missed     bool
}

// view summarises the instance for the DVS algorithm and feasibility check.
func (in *instance) view(g *taskgraph.Graph) dvs.InstanceView {
	var rem float64
	for i := range in.nodes {
		if !in.nodes[i].done {
			rem += in.nodes[i].wcRemaining()
		}
	}
	return dvs.InstanceView{
		GraphIndex:         in.graphIndex,
		ReleaseTime:        in.release,
		AbsoluteDeadline:   in.deadline,
		Period:             g.Period,
		TotalWCET:          g.TotalWCET(),
		AdjustedWCET:       in.adjustedWC,
		RemainingWorstCase: rem,
	}
}

// instanceBefore is the total EDF order of the released list: earliest
// absolute deadline first, ties broken by release time and graph index so the
// order is total and deterministic.
func instanceBefore(a, b *instance) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.release != b.release {
		return a.release < b.release
	}
	return a.graphIndex < b.graphIndex
}

// candidateRef pairs a priority.Candidate with the instance/node it refers to.
type candidateRef struct {
	cand     priority.Candidate
	inst     *instance
	value    float64
	imminent bool // true when the candidate belongs to the earliest-deadline incomplete instance
}

// candSorter stably orders candidate scratch slices by (value, EDF position,
// node). It lives inside the engine so sorting allocates nothing per decision.
type candSorter struct{ c []candidateRef }

func (s *candSorter) Len() int      { return len(s.c) }
func (s *candSorter) Swap(i, j int) { s.c[i], s.c[j] = s.c[j], s.c[i] }
func (s *candSorter) Less(i, j int) bool {
	a, b := s.c[i], s.c[j]
	if a.value != b.value {
		return a.value < b.value
	}
	if a.cand.EDFPosition != b.cand.EDFPosition {
		return a.cand.EDFPosition < b.cand.EDFPosition
	}
	return a.cand.Node < b.cand.Node
}

// engine is the simulation state.
type engine struct {
	cfg   Config
	sys   *taskgraph.System
	fmax  float64
	rng   *rand.Rand
	horiz float64

	now         float64
	nextRelease []float64
	jobCounter  []int
	released    []*instance // incrementally maintained in EDF order (instanceBefore)

	sink   SegmentSink
	charge profile.ChargeAccumulator
	res    *Result
	gstat  *graphStatsCollector

	labels      [][]string // per-(graph, node) labels; nil unless the sink records traces
	labelsCache [][]string // labels built for the current system, kept across resets
	names       []string   // per-graph display names, kept across resets

	// Scratch buffers and pre-bound state reused across scheduling decisions:
	// after warm-up the decision loop allocates nothing.
	viewsBuf []dvs.InstanceView
	candsBuf []candidateRef
	hypBuf   []dvs.InstanceView // frequencyAfter's hypothetical views
	segsBuf  []freqSegment
	realBuf  []processor.RealizationSegment
	sorter   candSorter
	prioCtx  priority.Context
	freeList []*instance // retired instances recycled by release

	// frequencyAfter state: the closure is bound once at construction and
	// reads the per-decision views/frequency from these fields.
	fAfterViews []dvs.InstanceView
	fAfterFreq  float64
	fAfterFn    func(priority.Candidate, float64) float64

	lastRunning *instance
	lastNode    int
}

// reset rebinds the engine to cfg (already validated and defaulted), reusing
// every scratch buffer from previous runs. Per-system caches (graph names,
// trace labels) are invalidated only when the System pointer changes; the
// engine keeps the pointer alive, so an unchanged address implies the same
// system.
func (e *engine) reset(cfg Config) {
	sysChanged := e.sys != cfg.System || e.names == nil
	e.cfg = cfg
	e.sys = cfg.System
	e.fmax = cfg.Processor.FMax()
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	} else {
		e.rng.Seed(cfg.Seed ^ 0x5eed)
	}
	e.horiz = cfg.horizon()

	n := cfg.System.NumGraphs()
	e.nextRelease = resetFloats(e.nextRelease, n)
	e.jobCounter = resetInts(e.jobCounter, n)
	for i, in := range e.released {
		e.freeList = append(e.freeList, in)
		e.released[i] = nil
	}
	e.released = e.released[:0]
	e.now = 0
	e.res = &Result{}
	e.charge.Reset()
	e.lastRunning = nil
	e.lastNode = -1

	e.sink = cfg.Observer
	if e.sink == nil {
		e.sink = NewRecorder()
	}
	if sysChanged {
		e.labelsCache = nil
		if cap(e.names) < n {
			e.names = make([]string, n)
		}
		e.names = e.names[:n]
		for i, g := range cfg.System.Graphs {
			e.names[i] = graphLabel(g, i)
		}
	}
	e.labels = nil
	if _, ok := e.sink.(TraceProvider); ok {
		if e.labelsCache == nil {
			e.labelsCache = buildLabels(cfg.System)
		}
		e.labels = e.labelsCache
	}
	if e.fAfterFn == nil {
		e.fAfterFn = e.evalFrequencyAfter
	}
	if e.gstat == nil {
		e.gstat = newGraphStatsCollector(e.names)
	} else {
		e.gstat.reset(e.names)
	}
}

// resetFloats returns s resized to n elements, all zero, reusing capacity.
func resetFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetInts returns s resized to n elements, all zero, reusing capacity.
func resetInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// run executes the simulation until the horizon is reached and every released
// instance has completed.
func (e *engine) run() *Result {
	for {
		e.releaseDue()
		e.recordMisses()
		e.dropCompleted()

		if e.now >= e.horiz-timeEpsilon && !e.hasPendingWork() {
			break
		}

		views := e.views()
		fref := e.cfg.DVS.SelectFrequency(e.now, e.fmax, views)
		effFreq, segments := e.realize(fref)

		cands := e.candidates(views, effFreq)
		e.res.SchedulingDecisions++
		if len(cands) == 0 {
			// Idle until the next release (or the horizon, whichever is
			// later if no releases remain).
			next := e.nextEvent()
			if next <= e.now+timeEpsilon {
				// No future release and nothing to run: we are done.
				break
			}
			e.idle(next - e.now)
			continue
		}

		chosen := e.choose(cands, views, effFreq)
		e.execute(chosen, effFreq, segments)
	}

	e.finalize()
	return e.res
}

// releaseDue creates instances for every graph whose next release time has
// arrived (and lies before the horizon).
func (e *engine) releaseDue() {
	for gi, g := range e.sys.Graphs {
		for e.nextRelease[gi] <= e.now+timeEpsilon && e.nextRelease[gi] < e.horiz-timeEpsilon {
			e.release(gi, g, e.nextRelease[gi])
			e.nextRelease[gi] += g.Period
		}
	}
}

// allocInstance returns a reset instance with nn node slots, recycling a
// retired one when available.
func (e *engine) allocInstance(nn int) *instance {
	var in *instance
	if n := len(e.freeList); n > 0 {
		in = e.freeList[n-1]
		e.freeList[n-1] = nil
		e.freeList = e.freeList[:n-1]
	} else {
		in = &instance{}
	}
	if cap(in.nodes) >= nn {
		in.nodes = in.nodes[:nn]
	} else {
		in.nodes = make([]nodeState, nn)
	}
	return in
}

func (e *engine) release(gi int, g *taskgraph.Graph, at float64) {
	in := e.allocInstance(g.NumNodes())
	in.graphIndex = gi
	in.jobIndex = e.jobCounter[gi]
	in.release = at
	in.deadline = at + g.Period
	in.remaining = g.NumNodes()
	in.adjustedWC = g.TotalWCET()
	in.missed = false
	e.jobCounter[gi]++
	for i := range in.nodes {
		id := taskgraph.NodeID(i)
		in.nodes[i] = nodeState{
			wcet:      g.Nodes[i].WCET,
			actual:    e.cfg.Execution.Actual(g, id),
			predsLeft: len(g.Predecessors(id)),
		}
		if in.nodes[i].actual > in.nodes[i].wcet {
			in.nodes[i].actual = in.nodes[i].wcet
		}
		if in.nodes[i].actual <= 0 {
			in.nodes[i].actual = cycleEpsilon
		}
	}
	e.insertReleased(in)
	e.res.JobsReleased++
	e.gstat.released(gi)
}

// insertReleased inserts the instance at its EDF position, keeping the
// released list sorted at all times (instanceBefore is a strict total order,
// so incremental insertion reproduces exactly the order a stable sort of the
// whole list would).
func (e *engine) insertReleased(in *instance) {
	i := sort.Search(len(e.released), func(i int) bool { return instanceBefore(in, e.released[i]) })
	e.released = append(e.released, nil)
	copy(e.released[i+1:], e.released[i:])
	e.released[i] = in
}

// recordMisses flags instances whose deadline passed while work remains.
func (e *engine) recordMisses() {
	for _, in := range e.released {
		if !in.missed && in.remaining > 0 && in.deadline < e.now-timeEpsilon {
			in.missed = true
			e.res.DeadlineMisses++
			e.gstat.missedWithoutCompletion(in.graphIndex)
		}
	}
}

// dropCompleted removes finished instances from the released list — but only
// once their deadline (equal to the next release of the same graph) has
// passed. Keeping completed instances visible until then implements the
// paper's rule that WC_i reflects the actual computations "as long as the new
// instance of the taskgraph Ti is not released", which is also what keeps the
// ccEDF/laEDF utilisation accounting (and hence the deadline guarantee)
// intact. Dropped instances return to the free list for recycling.
func (e *engine) dropCompleted() {
	out := e.released[:0]
	for _, in := range e.released {
		if in.remaining > 0 || in.deadline > e.now+timeEpsilon {
			out = append(out, in)
		} else {
			e.freeList = append(e.freeList, in)
		}
	}
	for i := len(out); i < len(e.released); i++ {
		e.released[i] = nil
	}
	e.released = out
}

// hasPendingWork reports whether any released instance still has unfinished
// nodes.
func (e *engine) hasPendingWork() bool {
	for _, in := range e.released {
		if in.remaining > 0 {
			return true
		}
	}
	return false
}

// views returns the InstanceViews of all released instances. The released
// list is maintained in EDF order incrementally (see insertReleased), so no
// per-decision sort is needed; the views land in a scratch buffer reused
// across decisions.
func (e *engine) views() []dvs.InstanceView {
	e.viewsBuf = e.viewsBuf[:0]
	for _, in := range e.released {
		e.viewsBuf = append(e.viewsBuf, in.view(e.sys.Graphs[in.graphIndex]))
	}
	return e.viewsBuf
}

// realize maps fref onto the processor: the effective execution frequency and
// the constant-current segments (share of the interval, frequency, battery
// current) used for segment emission.
type freqSegment struct {
	share     float64
	frequency float64
	current   float64
}

func (e *engine) realize(fref float64) (float64, []freqSegment) {
	p := e.cfg.Processor
	e.segsBuf = e.segsBuf[:0]
	if e.cfg.FrequencyMode == DiscreteFrequency || e.cfg.FrequencyMode == DiscreteCeilFrequency {
		var r processor.Realization
		if e.cfg.FrequencyMode == DiscreteCeilFrequency {
			r = p.RealizeCeilInto(fref, e.realBuf)
		} else {
			r = p.RealizeInto(fref, e.realBuf)
		}
		if cap(r.Segments) > cap(e.realBuf) {
			e.realBuf = r.Segments
		}
		for _, s := range r.Segments {
			if s.Share <= 0 {
				continue
			}
			e.segsBuf = append(e.segsBuf, freqSegment{
				share:     s.Share,
				frequency: s.Point.Frequency,
				current:   p.BatteryCurrentAtPoint(s.Point) + p.IdleCurrent,
			})
		}
		return r.EffectiveFrequency(), e.segsBuf
	}
	// Continuous mode: the idealised processor runs exactly at fref (only the
	// upper bound fmax applies) and draws the cubic-law battery current the
	// paper's energy analysis assumes.
	f := fref
	if f > p.FMax() {
		f = p.FMax()
	}
	if f < 0 {
		f = 0
	}
	e.segsBuf = append(e.segsBuf, freqSegment{share: 1, frequency: f, current: p.BatteryCurrentIdeal(f) + p.IdleCurrent})
	return f, e.segsBuf
}

// candidates builds the ready list according to the configured policy. The
// released list may contain instances that are already complete (kept for the
// DVS utilisation accounting until their deadline); they never contribute
// candidates. The first incomplete instance in EDF order is the "most
// imminent" one: its candidates are always admissible without a feasibility
// check, and under the MostImminentOnly policy only its candidates are
// offered. The returned slice is a scratch buffer reused across decisions.
func (e *engine) candidates(views []dvs.InstanceView, effFreq float64) []candidateRef {
	out := e.candsBuf[:0]
	imminentPos := -1
	for pos, in := range e.released {
		if in.remaining == 0 {
			continue
		}
		if imminentPos < 0 {
			imminentPos = pos
		} else if e.cfg.ReadyPolicy == MostImminentOnly {
			break
		}
		g := e.sys.Graphs[in.graphIndex]
		for ni := range in.nodes {
			ns := &in.nodes[ni]
			if ns.done || ns.predsLeft > 0 {
				continue
			}
			est := e.estimateRemaining(in, ni, ns)
			out = append(out, candidateRef{
				inst:     in,
				imminent: pos == imminentPos,
				cand: priority.Candidate{
					GraphIndex:       in.graphIndex,
					Node:             ni,
					Name:             g.Nodes[ni].Name,
					RemainingWCET:    ns.wcRemaining(),
					EstimatedActual:  est,
					AbsoluteDeadline: in.deadline,
					EDFPosition:      pos,
				},
			})
		}
	}
	e.candsBuf = out
	return out
}

// estimateRemaining returns the X_k estimate for the remaining execution of a
// node: either the oracle (true actual remaining) or the history estimator's
// prediction minus what already ran.
func (e *engine) estimateRemaining(in *instance, ni int, ns *nodeState) float64 {
	if e.cfg.OracleEstimates {
		return math.Max(ns.acRemaining(), cycleEpsilon)
	}
	est := e.cfg.Estimator.Estimate(in.graphIndex, ni, ns.wcet) - ns.executed
	if est < cycleEpsilon {
		est = cycleEpsilon
	}
	if est > ns.wcRemaining() {
		est = math.Max(ns.wcRemaining(), cycleEpsilon)
	}
	return est
}

// choose orders the candidates with the priority function and returns the
// best feasible one. Candidates of the most imminent task graph are always
// feasible; under the AllReleased policy out-of-order candidates must pass
// the feasibility check, and if none passes the best most-imminent candidate
// is used (which always exists, so deadlines are never at risk).
func (e *engine) choose(cands []candidateRef, views []dvs.InstanceView, effFreq float64) candidateRef {
	e.prioCtx = priority.Context{
		Now:              e.now,
		CurrentFrequency: effFreq,
		FMax:             e.fmax,
		Rand:             e.rng,
	}
	if !e.cfg.LocalSpeedModel {
		e.fAfterViews = views
		e.fAfterFreq = effFreq
		e.prioCtx.FrequencyAfter = e.fAfterFn
	}
	for i := range cands {
		cands[i].value = e.cfg.Priority.Priority(cands[i].cand, &e.prioCtx)
	}
	e.sorter.c = cands
	sort.Stable(&e.sorter)
	for _, c := range cands {
		if c.imminent {
			return c
		}
		if feasible(c.cand.RemainingWCET, c.cand.EDFPosition, views, e.now, effFreq) {
			e.res.OutOfOrderExecutions++
			return c
		}
		e.res.FeasibilityRejections++
	}
	// No out-of-order candidate is feasible: fall back to the best candidate
	// of the most imminent incomplete instance (EDF order), which is always
	// safe.
	for _, c := range cands {
		if c.imminent {
			return c
		}
	}
	// Defensive: should be unreachable because the most imminent incomplete
	// instance always has at least one ready node.
	return cands[0]
}

// evalFrequencyAfter is the closure used by pUBS to evaluate s_{o,k}: the
// reference frequency the DVS algorithm would select if the candidate
// completed next after consuming assumedCycles. It is bound once per engine
// (fAfterFn) and reads the current decision's views and effective frequency
// from fAfterViews/fAfterFreq; the hypothetical views land in one scratch
// buffer reused across every candidate evaluation (previously a fresh copy of
// the whole views slice was allocated per candidate — O(candidates ×
// instances) allocations per decision under pUBS).
func (e *engine) evalFrequencyAfter(c priority.Candidate, assumedCycles float64) float64 {
	e.hypBuf = append(e.hypBuf[:0], e.fAfterViews...)
	hyp := e.hypBuf
	if c.EDFPosition >= 0 && c.EDFPosition < len(hyp) {
		v := hyp[c.EDFPosition]
		v.AdjustedWCET = v.AdjustedWCET - c.RemainingWCET + assumedCycles
		if v.AdjustedWCET < 0 {
			v.AdjustedWCET = 0
		}
		v.RemainingWorstCase -= c.RemainingWCET
		if v.RemainingWorstCase < 0 {
			v.RemainingWorstCase = 0
		}
		hyp[c.EDFPosition] = v
	}
	then := e.now
	if e.fAfterFreq > 0 {
		then += assumedCycles / e.fAfterFreq
	}
	return e.cfg.DVS.SelectFrequency(then, e.fmax, hyp)
}

// idle advances time with the processor idle, emitting one segment at the
// idle current.
func (e *engine) idle(dur float64) {
	if dur <= 0 {
		return
	}
	cur := e.cfg.Processor.IdleCurrent
	e.charge.Append(dur, cur)
	e.sink.AppendSegment(Segment{Start: e.now, Duration: dur, Idle: true, Current: cur})
	e.res.IdleTime += dur
	e.now += dur
	e.lastRunning = nil
	e.lastNode = -1
}

// nextEvent returns the earliest future release time, or the horizon when no
// release remains before it.
func (e *engine) nextEvent() float64 {
	next := math.Inf(1)
	for gi := range e.nextRelease {
		if e.nextRelease[gi] < e.horiz-timeEpsilon && e.nextRelease[gi] < next {
			next = e.nextRelease[gi]
		}
	}
	if math.IsInf(next, 1) {
		if e.now < e.horiz {
			return e.horiz
		}
		return e.now
	}
	return next
}

// execute runs the chosen candidate until it completes or the next release
// arrives, whichever comes first, then processes the completion if any.
func (e *engine) execute(c candidateRef, effFreq float64, segments []freqSegment) {
	in := c.inst
	ns := &in.nodes[c.cand.Node]
	g := e.sys.Graphs[in.graphIndex]

	if e.lastRunning != nil && (e.lastRunning != in || e.lastNode != c.cand.Node) {
		// The previously running node was set aside while unfinished.
		if !e.lastRunning.nodes[e.lastNode].done {
			e.res.Preemptions++
		}
	}
	e.lastRunning = in
	e.lastNode = c.cand.Node

	if effFreq <= 0 {
		effFreq = e.cfg.Processor.FMin()
	}
	timeToFinish := ns.acRemaining() / effFreq
	nextRel := e.nextEvent()
	dur := timeToFinish
	completes := true
	if nextRel > e.now+timeEpsilon && nextRel-e.now < dur-timeEpsilon {
		dur = nextRel - e.now
		completes = false
	}
	if dur <= 0 {
		dur = timeEpsilon
	}

	cycles := effFreq * dur
	if completes {
		cycles = ns.acRemaining()
	}

	// Emit one segment per realised frequency level (higher-frequency portion
	// first so the within-interval current profile is non-increasing).
	var label string
	if e.labels != nil {
		label = e.labels[in.graphIndex][c.cand.Node]
	}
	start := e.now
	for _, seg := range segments {
		d := dur * seg.share
		if d <= 0 {
			continue
		}
		e.charge.Append(d, seg.current)
		e.sink.AppendSegment(Segment{
			Start:      start,
			Duration:   d,
			GraphIndex: in.graphIndex,
			Node:       c.cand.Node,
			Label:      label,
			Instance:   in.jobIndex,
			Frequency:  seg.frequency,
			Current:    seg.current,
		})
		start += d
	}

	ns.executed += cycles
	e.res.BusyTime += dur
	e.res.ExecutedCycles += cycles
	e.now += dur

	if completes || ns.acRemaining() <= cycleEpsilon {
		e.completeNode(in, c.cand.Node, ns, g)
	}
}

// completeNode finishes a node: updates WC_i with the actual requirement
// (the paper's endofnode handler), releases successors and retires the
// instance when its last node finishes.
func (e *engine) completeNode(in *instance, nodeIdx int, ns *nodeState, g *taskgraph.Graph) {
	ns.done = true
	ns.executed = ns.actual
	in.remaining--
	in.adjustedWC += ns.actual - ns.wcet
	if in.adjustedWC < 0 {
		in.adjustedWC = 0
	}
	e.cfg.Estimator.Observe(in.graphIndex, nodeIdx, ns.wcet, ns.actual)
	for _, s := range g.Successors(taskgraph.NodeID(nodeIdx)) {
		in.nodes[s].predsLeft--
	}
	e.res.NodesCompleted++
	e.lastRunning = nil
	e.lastNode = -1
	if in.remaining == 0 {
		e.res.JobsCompleted++
		newlyMissed := false
		if !in.missed && in.deadline < e.now-1e-9 {
			in.missed = true
			e.res.DeadlineMisses++
			newlyMissed = true
		}
		e.gstat.completed(in.graphIndex, e.now-in.release, in.deadline-e.now, newlyMissed)
	}
}

// finalize fills the derived fields of the Result. The profile and trace are
// attached when the configured sink built them (the default Recorder builds
// both; accumulate-only sinks leave them nil).
func (e *engine) finalize() {
	if p, ok := e.sink.(ProfileProvider); ok {
		e.res.Profile = p.BuiltProfile()
	}
	if t, ok := e.sink.(TraceProvider); ok {
		e.res.Trace = t.BuiltTrace()
	}
	e.res.Horizon = e.now
	vbat := e.cfg.Processor.BatteryVoltage
	e.res.EnergyBattery = e.charge.Charge() * vbat
	e.res.EnergyProcessor = e.res.EnergyBattery * e.cfg.Processor.ConverterEfficiency
	if e.res.BusyTime > 0 {
		e.res.AverageFrequency = e.res.ExecutedCycles / e.res.BusyTime
	}
	e.res.PerGraph = e.gstat.finalize()
}

// graphLabel returns the graph's name or a positional fallback.
func graphLabel(g *taskgraph.Graph, index int) string {
	if g.Name != "" {
		return g.Name
	}
	return fmt.Sprintf("T%d", index+1)
}
