package core

import (
	"fmt"

	"battsched/internal/profile"
	"battsched/internal/taskgraph"
	"battsched/internal/trace"
)

// Segment is one constant-state interval emitted by the engine: the processor
// either executed one node at one frequency or idled, drawing a constant
// battery current throughout. Segments arrive in simulation order and tile the
// horizon exactly; they are the single stream from which profiles, traces and
// energy totals derive.
type Segment struct {
	// Start is the absolute start time in seconds.
	Start float64
	// Duration in seconds (> 0).
	Duration float64
	// Idle reports whether the processor idled during the segment.
	Idle bool
	// GraphIndex and Node identify the executing node (valid when !Idle).
	GraphIndex int
	Node       int
	// Instance is the job number of the executing task-graph instance.
	Instance int
	// Label is the human-readable node label ("T1.n3"). It is populated only
	// when the configured sink implements TraceProvider (labels cost a
	// per-node string table the pure-aggregation sinks do not need);
	// GraphIndex/Node always identify the node.
	Label string
	// Frequency is the processor frequency in Hz (0 when idle).
	Frequency float64
	// Current is the battery current in amperes.
	Current float64
}

// SegmentSink observes the segments a simulation emits. The engine invokes
// AppendSegment once per constant-state interval, in simulation order, on the
// goroutine running the simulation. Experiment sweeps plug in cheap
// accumulate-only sinks (Discard, NewProfileRecorder) where the interactive
// CLIs keep full traces (NewRecorder); Config.Observer selects the sink.
//
// The engine accumulates the battery charge (and hence Result.EnergyBattery)
// internally, so even the Discard sink loses no energy accounting.
type SegmentSink interface {
	AppendSegment(Segment)
}

// ProfileProvider is implemented by sinks that build a load-current profile;
// the engine attaches it to Result.Profile at the end of the run.
type ProfileProvider interface {
	BuiltProfile() *profile.Profile
}

// TraceProvider is implemented by sinks that build an execution trace; the
// engine attaches it to Result.Trace at the end of the run and computes node
// labels for the emitted segments.
type TraceProvider interface {
	BuiltTrace() *trace.Trace
}

// discardSink drops every segment.
type discardSink struct{}

// AppendSegment implements SegmentSink.
func (discardSink) AppendSegment(Segment) {}

// Discard is the no-op sink: scheduling statistics and energy totals are
// still accumulated by the engine, but no profile or trace is recorded. It is
// the cheapest sink and the default for energy-only experiment sweeps.
var Discard SegmentSink = discardSink{}

// ProfileRecorder records only the battery load-current profile — what the
// battery-lifetime experiments need — skipping the execution trace.
//
// Profile aliasing contract: BuiltProfile (and hence Result.Profile of a run
// observed by this sink) returns the recorder's own profile, not a copy. It is
// valid until the next Reset, which truncates the profile in place to keep its
// segment capacity. Callers that reuse a recorder across runs must finish with
// the profile (evaluate batteries, copy it with Clone) before resetting.
type ProfileRecorder struct {
	p *profile.Profile
}

// NewProfileRecorder returns an empty profile-only sink.
func NewProfileRecorder() *ProfileRecorder { return &ProfileRecorder{p: profile.New()} }

// AppendSegment implements SegmentSink.
func (r *ProfileRecorder) AppendSegment(s Segment) { r.p.Append(s.Duration, s.Current) }

// BuiltProfile implements ProfileProvider.
func (r *ProfileRecorder) BuiltProfile() *profile.Profile { return r.p }

// Reset truncates the recorded profile in place, keeping its segment capacity,
// so a recorder reused across runs stops allocating once warmed up. Profiles
// previously returned by BuiltProfile alias the reused storage and are
// invalidated (see the type's aliasing contract).
func (r *ProfileRecorder) Reset() { r.p.Reset() }

// Recorder records the full execution history: the battery load-current
// profile and the per-node execution trace. It is the default sink when
// Config.Observer is nil, preserving the historical behaviour of Run.
type Recorder struct {
	p *profile.Profile
	t *trace.Trace
}

// NewRecorder returns an empty full-recording sink.
func NewRecorder() *Recorder { return &Recorder{p: profile.New(), t: trace.New()} }

// AppendSegment implements SegmentSink.
func (r *Recorder) AppendSegment(s Segment) {
	r.p.Append(s.Duration, s.Current)
	if s.Idle {
		r.t.Append(trace.Slice{Start: s.Start, Duration: s.Duration, Idle: true, Current: s.Current})
		return
	}
	r.t.Append(trace.Slice{
		Start:      s.Start,
		Duration:   s.Duration,
		GraphIndex: s.GraphIndex,
		Node:       s.Node,
		Label:      s.Label,
		Instance:   s.Instance,
		Frequency:  s.Frequency,
		Current:    s.Current,
	})
}

// BuiltProfile implements ProfileProvider.
func (r *Recorder) BuiltProfile() *profile.Profile { return r.p }

// BuiltTrace implements TraceProvider.
func (r *Recorder) BuiltTrace() *trace.Trace { return r.t }

// Reset truncates the recorded profile and trace in place, keeping their
// capacity, so a recorder reused across runs stops allocating once warmed up.
// Profiles and traces previously returned by BuiltProfile/BuiltTrace alias the
// reused storage and are invalidated — copy (Clone) anything that must outlive
// the reuse before resetting.
func (r *Recorder) Reset() {
	r.p.Reset()
	r.t.Reset()
}

// buildLabels precomputes the per-(graph, node) labels trace-recording sinks
// receive in Segment.Label: the node's name, or "<graph>.n<id>" when unnamed.
func buildLabels(sys *taskgraph.System) [][]string {
	labels := make([][]string, len(sys.Graphs))
	for gi, g := range sys.Graphs {
		ls := make([]string, g.NumNodes())
		for ni := range ls {
			ls[ni] = g.Nodes[ni].Name
			if ls[ni] == "" {
				ls[ni] = fmt.Sprintf("%s.n%d", graphLabel(g, gi), ni)
			}
		}
		labels[gi] = ls
	}
	return labels
}
