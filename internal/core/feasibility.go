package core

import "battsched/internal/dvs"

// feasibilityEpsilonCycles absorbs floating-point noise when comparing
// remaining work against available capacity.
const feasibilityEpsilonCycles = 1e-6

// feasible implements the paper's Algorithm 2 (feasibility check) in its
// cumulative form: executing a candidate node of worst-case size wcCycles
// that belongs to the task graph at position edfPosition (0-based, EDF order)
// is allowed only if, for every earlier-deadline instance j < edfPosition,
// the total worst-case work of instances 0..j plus the candidate's own
// worst-case work can be completed before instance j's deadline when running
// at the reference frequency fref.
//
// views must be sorted by absolute deadline (earliest first); now is the
// current time in seconds; fref is in Hz. A candidate of the most imminent
// instance (edfPosition == 0) is always feasible, exactly as the paper notes
// ("no checks are required").
func feasible(wcCycles float64, edfPosition int, views []dvs.InstanceView, now, fref float64) bool {
	if edfPosition <= 0 {
		return true
	}
	if fref <= 0 {
		return false
	}
	sumWC := 0.0
	for j := 0; j < edfPosition && j < len(views); j++ {
		sumWC += views[j].RemainingWorstCase
		capacity := fref * (views[j].AbsoluteDeadline - now)
		if sumWC+wcCycles > capacity+feasibilityEpsilonCycles {
			return false
		}
	}
	return true
}
