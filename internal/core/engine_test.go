package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/processor"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// singleTaskSystem is one graph with a single node: wc cycles, period seconds.
func singleTaskSystem(wc, period float64) *taskgraph.System {
	g := taskgraph.NewGraph("T1", period)
	g.AddNode("T1.n0", wc)
	return taskgraph.NewSystem(g)
}

// figure5System reproduces the workload of the paper's Figure 5: T1 = one
// task wc=5 (D=20), T2 = one task wc=5 (D=50), T3 = three tasks wc=5 each
// (D=100); time unit seconds, work in seconds-at-fmax times fmax cycles.
func figure5System(fmax float64) *taskgraph.System {
	t1 := taskgraph.NewGraph("T1", 20)
	t1.AddNode("T1.a", 5*fmax)
	t2 := taskgraph.NewGraph("T2", 50)
	t2.AddNode("T2.a", 5*fmax)
	t3 := taskgraph.NewGraph("T3", 100)
	t3.AddNode("T3.a", 5*fmax)
	t3.AddNode("T3.b", 5*fmax)
	t3.AddNode("T3.c", 5*fmax)
	return taskgraph.NewSystem(t1, t2, t3)
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); !errors.Is(err, ErrNilSystem) {
		t.Fatalf("nil system err = %v", err)
	}
	over := singleTaskSystem(2e9, 1) // U = 2 at 1 GHz
	if _, err := Run(Config{System: over}); !errors.Is(err, ErrOverload) {
		t.Fatalf("overload err = %v", err)
	}
	neg := Config{System: singleTaskSystem(1e6, 1), Horizon: -1}
	if err := neg.Validate(); !errors.Is(err, ErrBadHorizon) {
		t.Fatalf("negative horizon err = %v", err)
	}
}

func TestPolicyAndModeStrings(t *testing.T) {
	if MostImminentOnly.String() != "most-imminent" || AllReleased.String() != "all-released" {
		t.Fatal("ReadyPolicy strings wrong")
	}
	if ContinuousFrequency.String() != "continuous" || DiscreteFrequency.String() != "discrete" {
		t.Fatal("FrequencyMode strings wrong")
	}
	if ReadyPolicy(9).String() == "" || FrequencyMode(9).String() == "" {
		t.Fatal("fallback strings empty")
	}
}

func TestSingleTaskNoDVSWorstCase(t *testing.T) {
	// One task of 0.4e9 cycles every 1 s at fmax=1e9: runs 0.4 s per period
	// at full speed, idles 0.6 s.
	sys := singleTaskSystem(0.4e9, 1)
	res, err := Run(Config{
		System:    sys,
		DVS:       dvs.NewNoDVS(),
		Execution: taskgraph.WorstCaseExecution{},
		Horizon:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("deadline misses = %d", res.DeadlineMisses)
	}
	if res.JobsReleased != 5 || res.JobsCompleted != 5 || res.NodesCompleted != 5 {
		t.Fatalf("jobs: released=%d completed=%d nodes=%d", res.JobsReleased, res.JobsCompleted, res.NodesCompleted)
	}
	if math.Abs(res.BusyTime-5*0.4) > 1e-6 {
		t.Fatalf("busy time = %v, want 2.0", res.BusyTime)
	}
	if math.Abs(res.IdleTime-5*0.6) > 1e-6 {
		t.Fatalf("idle time = %v, want 3.0", res.IdleTime)
	}
	if math.Abs(res.ExecutedCycles-5*0.4e9) > 1 {
		t.Fatalf("executed cycles = %v", res.ExecutedCycles)
	}
	if math.Abs(res.AverageFrequency-1e9) > 1 {
		t.Fatalf("average frequency = %v, want fmax", res.AverageFrequency)
	}
	if math.Abs(res.Utilization()-0.4) > 1e-6 {
		t.Fatalf("utilisation = %v, want 0.4", res.Utilization())
	}
	if res.EnergyBattery <= 0 || res.EnergyProcessor >= res.EnergyBattery {
		t.Fatalf("energy accounting wrong: battery=%v processor=%v", res.EnergyBattery, res.EnergyProcessor)
	}
	if res.Profile == nil || math.Abs(res.Profile.Duration()-res.Horizon) > 1e-6 {
		t.Fatalf("profile duration = %v, want %v", res.Profile.Duration(), res.Horizon)
	}
	if res.Trace == nil || math.Abs(res.Trace.BusyTime()-res.BusyTime) > 1e-6 {
		t.Fatalf("trace busy time = %v, want %v", res.Trace.BusyTime(), res.BusyTime)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestSingleTaskCCEDFStretchesToDeadline(t *testing.T) {
	// With ccEDF and worst-case executions, fref = U*fmax = 0.4 GHz in the
	// idealised continuous mode: the task stretches to fill its whole period.
	sys := singleTaskSystem(0.4e9, 1)
	res, err := Run(Config{
		System:    sys,
		DVS:       dvs.NewCCEDF(),
		Execution: taskgraph.WorstCaseExecution{},
		Horizon:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if math.Abs(res.BusyTime-4*1.0) > 1e-6 {
		t.Fatalf("busy time = %v, want 4.0", res.BusyTime)
	}
	if math.Abs(res.AverageFrequency-0.4e9) > 1 {
		t.Fatalf("average frequency = %v, want 0.4 GHz", res.AverageFrequency)
	}
	// Scaling down must save battery energy compared with noDVS.
	noDVS, err := Run(Config{System: sys.Clone(), DVS: dvs.NewNoDVS(), Execution: taskgraph.WorstCaseExecution{}, Horizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyBattery >= noDVS.EnergyBattery {
		t.Fatalf("ccEDF energy %v not below noDVS energy %v", res.EnergyBattery, noDVS.EnergyBattery)
	}
}

func TestHyperperiodDefaultHorizon(t *testing.T) {
	sys := figure5System(1e9)
	cfg := Config{System: sys, Execution: taskgraph.WorstCaseExecution{}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hyperperiod of {20,50,100} = 100 s.
	if math.Abs(res.Horizon-100) > 1e-6 {
		t.Fatalf("default horizon = %v, want 100", res.Horizon)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	// Releases in 100 s: T1 x5, T2 x2, T3 x1.
	if res.JobsReleased != 8 || res.JobsCompleted != 8 {
		t.Fatalf("jobs = %d/%d, want 8/8", res.JobsCompleted, res.JobsReleased)
	}
}

func TestFigure5CanonicalVersusPUBSOrdering(t *testing.T) {
	// The paper's Figure 5: with everything released at t=0, utilisation 0.5
	// and worst-case executions, fref = 0.5 fmax throughout. Under canonical
	// EDF ordering (FIFO, most-imminent-only) no out-of-order executions
	// occur; with pUBS over all released graphs the scheduler may execute
	// nodes of T2/T3 before T1 finishes the window, using the feasibility
	// check, and still misses no deadline.
	fmaxHz := 1e9
	canonical, err := Run(Config{
		System:      figure5System(fmaxHz),
		DVS:         dvs.NewCCEDF(),
		Priority:    priority.NewFIFO(),
		ReadyPolicy: MostImminentOnly,
		Execution:   taskgraph.WorstCaseExecution{},
		Horizon:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	bas2, err := Run(Config{
		System:      figure5System(fmaxHz),
		DVS:         dvs.NewCCEDF(),
		Priority:    priority.NewPUBS(),
		ReadyPolicy: AllReleased,
		Execution:   taskgraph.WorstCaseExecution{},
		Horizon:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"canonical": canonical, "bas2": bas2} {
		if r.DeadlineMisses != 0 {
			t.Fatalf("%s: deadline misses = %d", name, r.DeadlineMisses)
		}
		// Worst-case executions at utilisation 0.5: everything runs at
		// 0.5 fmax (which is also FMin), so busy time equals the horizon...
		// (the processor never idles because fref = U*fmax exactly fills it).
		if math.Abs(r.AverageFrequency-0.5e9) > 1e3 {
			t.Fatalf("%s: average frequency = %v, want 0.5 GHz", name, r.AverageFrequency)
		}
	}
	if canonical.OutOfOrderExecutions != 0 {
		t.Fatalf("canonical EDF ordering executed out of order %d times", canonical.OutOfOrderExecutions)
	}
	if bas2.OutOfOrderExecutions == 0 {
		t.Fatal("BAS-2 never executed out of EDF order in the Figure 5 scenario")
	}
	// Same total work executed either way.
	if math.Abs(canonical.ExecutedCycles-bas2.ExecutedCycles) > 1 {
		t.Fatalf("executed cycles differ: %v vs %v", canonical.ExecutedCycles, bas2.ExecutedCycles)
	}
}

func TestDiscreteModeUsesSupportedFrequencies(t *testing.T) {
	proc := processor.Default()
	sys := figure5System(proc.FMax())
	res, err := Run(Config{
		System:        sys,
		Processor:     proc,
		DVS:           dvs.NewCCEDF(),
		Priority:      priority.NewPUBS(),
		ReadyPolicy:   AllReleased,
		FrequencyMode: DiscreteFrequency,
		Execution:     taskgraph.NewUniformExecution(0.2, 1.0, 7),
		Horizon:       100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	supported := map[float64]bool{}
	for _, p := range proc.Points {
		supported[p.Frequency] = true
	}
	for _, s := range res.Trace.Slices {
		if s.Idle {
			continue
		}
		if !supported[s.Frequency] {
			t.Fatalf("slice at unsupported frequency %v", s.Frequency)
		}
	}
}

func TestCCEDFFrequencyLocallyNonIncreasing(t *testing.T) {
	// All graphs share one period, so scheduling windows align with it: within
	// each window ccEDF must never raise the frequency (battery guideline 1).
	fmaxHz := 1e9
	g1 := taskgraph.NewGraph("A", 1)
	g1.AddNode("A.0", 0.2e9)
	g1.AddNode("A.1", 0.15e9)
	g1.AddEdge(0, 1)
	g2 := taskgraph.NewGraph("B", 1)
	g2.AddNode("B.0", 0.25e9)
	g2.AddNode("B.1", 0.1e9)
	sys := taskgraph.NewSystem(g1, g2)
	res, err := Run(Config{
		System:      sys,
		DVS:         dvs.NewCCEDF(),
		Priority:    priority.NewPUBS(),
		ReadyPolicy: AllReleased,
		Execution:   taskgraph.NewUniformExecution(0.2, 1.0, 3),
		Horizon:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if !res.Trace.FrequencyIsLocallyNonIncreasing(1.0) {
		t.Fatal("ccEDF execution frequency increased within an arrival window")
	}
	_ = fmaxHz
}

func TestPUBSOrderingSavesEnergyUnderCCEDF(t *testing.T) {
	// Averaged over seeds, pUBS ordering should not consume more energy than
	// random ordering when the frequency setter responds to recovered slack
	// (ccEDF); allowing candidates from all released graphs (BAS-2 style)
	// must help further or at least not hurt.
	var pubs1E, pubs2E, randE float64
	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), 4, 0.7, 1e9, rng)
		if err != nil {
			t.Fatal(err)
		}
		base := Config{
			System:       sys,
			DVS:          dvs.NewCCEDF(),
			ReadyPolicy:  MostImminentOnly,
			Execution:    taskgraph.NewUniformExecution(0.2, 1.0, seed),
			Hyperperiods: 2,
			Seed:         seed,
		}
		run := func(prio priority.Function, pol ReadyPolicy, oracle bool) *Result {
			cfg := base
			cfg.System = sys.Clone()
			cfg.Priority = prio
			cfg.ReadyPolicy = pol
			cfg.OracleEstimates = oracle
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.DeadlineMisses != 0 {
				t.Fatalf("seed %d: %d deadline misses", seed, r.DeadlineMisses)
			}
			return r
		}
		pubs1E += run(priority.NewPUBS(), MostImminentOnly, true).EnergyBattery
		pubs2E += run(priority.NewPUBS(), AllReleased, true).EnergyBattery
		randE += run(priority.NewRandom(), MostImminentOnly, false).EnergyBattery
	}
	if pubs1E > randE*1.02 {
		t.Fatalf("pUBS (most imminent) used more energy than random: %v vs %v", pubs1E, randE)
	}
	if pubs2E > pubs1E*1.02 {
		t.Fatalf("pUBS over all released graphs used more energy than most-imminent: %v vs %v", pubs2E, pubs1E)
	}
}

func TestDVSAlgorithmsEnergyOrdering(t *testing.T) {
	// noDVS must use (much) more battery energy than ccEDF, which in turn
	// should not beat laEDF by much (averaged over a few seeds).
	var e = map[string]float64{}
	const seeds = 4
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), 4, 0.7, 1e9, rng)
		if err != nil {
			t.Fatal(err)
		}
		for name, alg := range map[string]dvs.Algorithm{"noDVS": dvs.NewNoDVS(), "ccEDF": dvs.NewCCEDF(), "laEDF": dvs.NewLAEDF()} {
			res, err := Run(Config{
				System:       sys.Clone(),
				DVS:          alg,
				Priority:     priority.NewRandom(),
				Execution:    taskgraph.NewUniformExecution(0.2, 1.0, seed),
				Hyperperiods: 2,
				Seed:         seed,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.DeadlineMisses != 0 {
				t.Fatalf("%s seed %d: %d deadline misses", name, seed, res.DeadlineMisses)
			}
			e[name] += res.EnergyBattery
		}
	}
	if e["ccEDF"] >= e["noDVS"] {
		t.Fatalf("ccEDF energy %v not below noDVS energy %v", e["ccEDF"], e["noDVS"])
	}
	if e["laEDF"] >= e["noDVS"] {
		t.Fatalf("laEDF energy %v not below noDVS energy %v", e["laEDF"], e["noDVS"])
	}
	if e["laEDF"] > e["ccEDF"]*1.05 {
		t.Fatalf("laEDF energy %v much above ccEDF energy %v", e["laEDF"], e["ccEDF"])
	}
}

func TestExecutedCyclesMatchActualWork(t *testing.T) {
	// With a fixed-fraction execution model the executed cycles must equal
	// the sum of actuals over all released jobs.
	fmaxHz := 1e9
	sys := figure5System(fmaxHz)
	frac := 0.5
	res, err := Run(Config{
		System:    sys,
		DVS:       dvs.NewCCEDF(),
		Execution: &taskgraph.FixedFractionExecution{Fraction: frac},
		Horizon:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Released work: T1 5 jobs * 5e9, T2 2 * 5e9, T3 1 * 15e9 = 50e9 cycles
	// worst case; actual = half of that.
	want := frac * 50e9
	if math.Abs(res.ExecutedCycles-want) > 1e3 {
		t.Fatalf("executed cycles = %v, want %v", res.ExecutedCycles, want)
	}
	if res.NodesCompleted != 5+2+3 {
		t.Fatalf("nodes completed = %d, want 10", res.NodesCompleted)
	}
}

func TestPrecedenceRespectedInTrace(t *testing.T) {
	// In a chain a->b->c, every slice of b must start after the last slice of
	// a ends, and c after b.
	g := taskgraph.NewGraph("C", 1)
	g.AddNode("C.a", 0.2e9)
	g.AddNode("C.b", 0.2e9)
	g.AddNode("C.c", 0.2e9)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	sys := taskgraph.NewSystem(g)
	res, err := Run(Config{
		System:      sys,
		DVS:         dvs.NewLAEDF(),
		Priority:    priority.NewPUBS(),
		ReadyPolicy: AllReleased,
		Execution:   taskgraph.NewUniformExecution(0.2, 1.0, 11),
		Horizon:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	// Check per job index: end(a) <= start(b) <= end(b) <= start(c).
	type span struct{ start, end float64 }
	spans := map[int]map[int]*span{} // job -> node -> span
	for _, s := range res.Trace.Slices {
		if s.Idle {
			continue
		}
		if spans[s.Instance] == nil {
			spans[s.Instance] = map[int]*span{}
		}
		sp := spans[s.Instance][s.Node]
		if sp == nil {
			spans[s.Instance][s.Node] = &span{start: s.Start, end: s.End()}
		} else {
			if s.Start < sp.start {
				sp.start = s.Start
			}
			if s.End() > sp.end {
				sp.end = s.End()
			}
		}
	}
	for job, m := range spans {
		a, b, c := m[0], m[1], m[2]
		if a == nil || b == nil || c == nil {
			t.Fatalf("job %d: missing node executions", job)
		}
		if a.end > b.start+1e-9 || b.end > c.start+1e-9 {
			t.Fatalf("job %d: precedence violated (a:%v b:%v c:%v)", job, *a, *b, *c)
		}
	}
}

func TestPerGraphStatistics(t *testing.T) {
	sys := figure5System(1e9)
	res, err := Run(Config{
		System:    sys,
		DVS:       dvs.NewCCEDF(),
		Execution: taskgraph.WorstCaseExecution{},
		Horizon:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerGraph) != 3 {
		t.Fatalf("PerGraph entries = %d, want 3", len(res.PerGraph))
	}
	wantJobs := map[string]int{"T1": 5, "T2": 2, "T3": 1}
	var totalJobs, totalMisses int
	for _, g := range res.PerGraph {
		if g.String() == "" {
			t.Fatal("empty GraphStats string")
		}
		if want, ok := wantJobs[g.Name]; ok && g.Jobs != want {
			t.Fatalf("%s: jobs = %d, want %d", g.Name, g.Jobs, want)
		}
		if g.Misses != 0 {
			t.Fatalf("%s: misses = %d", g.Name, g.Misses)
		}
		if g.MaxResponse <= 0 || g.AvgResponse <= 0 || g.MaxResponse < g.AvgResponse-1e-9 {
			t.Fatalf("%s: response stats inconsistent: %+v", g.Name, g)
		}
		if g.AvgLaxity < -1e-9 {
			t.Fatalf("%s: negative laxity %v", g.Name, g.AvgLaxity)
		}
		totalJobs += g.Jobs
		totalMisses += g.Misses
	}
	if totalJobs != res.JobsReleased {
		t.Fatalf("per-graph jobs %d != released %d", totalJobs, res.JobsReleased)
	}
	if totalMisses != res.DeadlineMisses {
		t.Fatalf("per-graph misses %d != total %d", totalMisses, res.DeadlineMisses)
	}
}

func TestDiscreteCeilFrequencyMode(t *testing.T) {
	proc := processor.Default()
	sys := figure5System(proc.FMax())
	ceil, err := Run(Config{
		System:        sys.Clone(),
		Processor:     proc,
		DVS:           dvs.NewCCEDF(),
		FrequencyMode: DiscreteCeilFrequency,
		Execution:     taskgraph.WorstCaseExecution{},
		Horizon:       100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ceil.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", ceil.DeadlineMisses)
	}
	// Ceil quantisation only uses supported points and never runs below fref,
	// so with fref = 0.5 GHz everything runs at exactly 0.5 GHz here.
	supported := map[float64]bool{}
	for _, p := range proc.Points {
		supported[p.Frequency] = true
	}
	for _, s := range ceil.Trace.Slices {
		if !s.Idle && !supported[s.Frequency] {
			t.Fatalf("unsupported frequency %v", s.Frequency)
		}
	}
	// Ablation check: the linear-combination realisation never uses more
	// battery energy than ceil quantisation (it is optimal per the paper's
	// reference [4]).
	linear, err := Run(Config{
		System:        sys.Clone(),
		Processor:     proc,
		DVS:           dvs.NewCCEDF(),
		FrequencyMode: DiscreteFrequency,
		Execution:     taskgraph.NewUniformExecution(0.2, 1.0, 5),
		Horizon:       100,
	})
	if err != nil {
		t.Fatal(err)
	}
	ceil2, err := Run(Config{
		System:        sys.Clone(),
		Processor:     proc,
		DVS:           dvs.NewCCEDF(),
		FrequencyMode: DiscreteCeilFrequency,
		Execution:     taskgraph.NewUniformExecution(0.2, 1.0, 5),
		Horizon:       100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if linear.EnergyBattery > ceil2.EnergyBattery+1e-9 {
		t.Fatalf("linear-combination energy %v exceeds ceil energy %v", linear.EnergyBattery, ceil2.EnergyBattery)
	}
	if DiscreteCeilFrequency.String() != "discrete-ceil" {
		t.Fatal("DiscreteCeilFrequency string wrong")
	}
}

// Property: for random workloads, any combination of DVS algorithm, priority
// function and ready policy meets every deadline and keeps the bookkeeping
// consistent (busy+idle = horizon, jobs completed = jobs released).
func TestNoDeadlineMissProperty(t *testing.T) {
	algs := []dvs.Algorithm{dvs.NewNoDVS(), dvs.NewCCEDF(), dvs.NewLAEDF(), dvs.NewStatic()}
	prios := []priority.Function{priority.NewPUBS(), priority.NewLTF(), priority.NewSTF(), priority.NewRandom(), priority.NewFIFO()}
	policies := []ReadyPolicy{MostImminentOnly, AllReleased}
	modes := []FrequencyMode{ContinuousFrequency, DiscreteFrequency}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nGraphs := 1 + rng.Intn(4)
		util := 0.3 + rng.Float64()*0.65 // up to 95 % utilisation
		sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), nGraphs, util, 1e9, rng)
		if err != nil {
			return false
		}
		cfg := Config{
			System:        sys,
			DVS:           algs[rng.Intn(len(algs))],
			Priority:      prios[rng.Intn(len(prios))],
			ReadyPolicy:   policies[rng.Intn(len(policies))],
			FrequencyMode: modes[rng.Intn(len(modes))],
			Execution:     taskgraph.NewUniformExecution(0.2, 1.0, seed),
			Hyperperiods:  1,
			Seed:          seed,
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		if res.DeadlineMisses != 0 {
			return false
		}
		if res.JobsCompleted != res.JobsReleased {
			return false
		}
		if math.Abs(res.BusyTime+res.IdleTime-res.Horizon) > 1e-6*res.Horizon {
			return false
		}
		if res.EnergyBattery < 0 || math.IsNaN(res.EnergyBattery) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
