package core

import (
	"fmt"

	"battsched/internal/profile"
	"battsched/internal/trace"
)

// Result summarises one scheduling simulation.
type Result struct {
	// Profile is the battery load-current profile of the simulated horizon.
	// It is populated when the configured observer builds one (the default
	// Recorder and NewProfileRecorder do; Discard leaves it nil).
	Profile *profile.Profile
	// Trace is the execution trace (which node ran when, at which frequency).
	// It is populated when the configured observer builds one (the default
	// Recorder does; profile-only and no-op sinks leave it nil).
	Trace *trace.Trace
	// Horizon is the simulated duration in seconds (it may exceed the
	// configured horizon slightly if work released before the horizon needed
	// to finish).
	Horizon float64
	// EnergyBattery is the energy drawn from the battery in joules.
	EnergyBattery float64
	// EnergyProcessor is the energy delivered to the processor core in
	// joules (EnergyBattery times the converter efficiency).
	EnergyProcessor float64
	// DeadlineMisses counts task-graph instances that were not complete at
	// their absolute deadline. It is zero for every configuration the paper
	// considers; a non-zero value indicates a mis-configured workload
	// (utilisation above 1) or a scheduler bug.
	DeadlineMisses int
	// JobsReleased and JobsCompleted count task-graph instances.
	JobsReleased  int
	JobsCompleted int
	// NodesCompleted counts completed node executions.
	NodesCompleted int
	// BusyTime and IdleTime partition the horizon.
	BusyTime float64
	IdleTime float64
	// ExecutedCycles is the total number of processor cycles executed.
	ExecutedCycles float64
	// AverageFrequency is ExecutedCycles/BusyTime (0 if never busy).
	AverageFrequency float64
	// Preemptions counts times a partially executed node was set aside for a
	// different node.
	Preemptions int
	// OutOfOrderExecutions counts times the scheduler picked a candidate from
	// a task graph other than the most imminent one (BAS-2 only).
	OutOfOrderExecutions int
	// FeasibilityRejections counts candidates rejected by the feasibility
	// check (BAS-2 only).
	FeasibilityRejections int
	// SchedulingDecisions counts ready-list evaluations.
	SchedulingDecisions int
	// PerGraph holds per-task-graph response-time and miss statistics.
	PerGraph []GraphStats
}

// Utilization returns BusyTime/Horizon.
func (r Result) Utilization() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return r.BusyTime / r.Horizon
}

// AveragePower returns the average battery-side power in watts.
func (r Result) AveragePower() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return r.EnergyBattery / r.Horizon
}

// EnergyPerCycle returns battery energy per executed cycle in joules (0 if no
// cycles executed).
func (r Result) EnergyPerCycle() float64 {
	if r.ExecutedCycles <= 0 {
		return 0
	}
	return r.EnergyBattery / r.ExecutedCycles
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("Result(horizon=%.4gs energy=%.4gJ misses=%d jobs=%d/%d busy=%.3g idle=%.3g preempt=%d)",
		r.Horizon, r.EnergyBattery, r.DeadlineMisses, r.JobsCompleted, r.JobsReleased, r.BusyTime, r.IdleTime, r.Preemptions)
}
