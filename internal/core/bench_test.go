package core

import (
	"math/rand"
	"testing"

	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/tgff"
)

// benchConfig returns the BAS-2 configuration (laEDF + pUBS over all released
// graphs, discrete frequencies) the engine benchmarks run: the scheme with
// the most expensive decisions (hypothetical DVS queries per candidate).
func benchConfig(b *testing.B, sink SegmentSink) Config {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), 5, 0.7, 1e9, rng)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		System:        sys,
		DVS:           dvs.NewLAEDF(),
		Priority:      priority.NewPUBS(),
		ReadyPolicy:   AllReleased,
		FrequencyMode: DiscreteFrequency,
		Hyperperiods:  1,
		Seed:          7,
		Observer:      sink,
	}
}

func benchEngineRun(b *testing.B, sink func() SegmentSink) {
	cfg := benchConfig(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Observer = sink()
		cfg.Seed = int64(i)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.DeadlineMisses != 0 {
			b.Fatal("deadline miss")
		}
	}
}

// BenchmarkEngineRun measures one hyperperiod of the engine with the no-op
// sink — the experiment hot path (energy totals only, no recording).
func BenchmarkEngineRun(b *testing.B) {
	benchEngineRun(b, func() SegmentSink { return Discard })
}

// BenchmarkEngineRunProfile measures the same run recording only the battery
// load-current profile (what the battery-lifetime experiments use).
func BenchmarkEngineRunProfile(b *testing.B) {
	benchEngineRun(b, func() SegmentSink { return NewProfileRecorder() })
}

// BenchmarkEngineRunRecorded measures the same run with full profile + trace
// recording — the engine's mandatory behaviour before the observer layer,
// and still the default when Config.Observer is nil.
func BenchmarkEngineRunRecorded(b *testing.B) {
	benchEngineRun(b, func() SegmentSink { return NewRecorder() })
}

// BenchmarkEngineRunReused measures the steady-state Reset+Run cost of one
// reused Engine with one reused ProfileRecorder — the experiment drivers' hot
// path after the cross-scheme restructure. Scratch buffers, estimator history,
// free list and profile storage all survive across iterations, so allocations
// per op collapse to the fresh Result (vs ~90 for a one-shot Run).
func BenchmarkEngineRunReused(b *testing.B) {
	cfg := benchConfig(b, nil)
	eng := NewEngine()
	rec := NewProfileRecorder()
	cfg.Observer = rec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Reset()
		cfg.Seed = int64(i)
		if err := eng.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.DeadlineMisses != 0 {
			b.Fatal("deadline miss")
		}
	}
}
