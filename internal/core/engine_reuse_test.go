package core

import (
	"math"
	"math/rand"
	"testing"

	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// reuseScheme is one scheduling configuration of the reuse matrix.
type reuseScheme struct {
	name    string
	dvs     dvs.Algorithm
	prio    priority.Function
	policy  ReadyPolicy
	oracle  bool
	modes   []FrequencyMode
	localSM bool
}

func reuseSchemes() []reuseScheme {
	all := []FrequencyMode{ContinuousFrequency, DiscreteFrequency, DiscreteCeilFrequency}
	return []reuseScheme{
		{name: "EDF", dvs: dvs.NewNoDVS(), prio: priority.NewFIFO(), policy: MostImminentOnly, modes: all},
		{name: "ccEDF", dvs: dvs.NewCCEDF(), prio: priority.NewFIFO(), policy: MostImminentOnly, modes: all},
		{name: "BAS-1", dvs: dvs.NewLAEDF(), prio: priority.NewPUBS(), policy: MostImminentOnly, modes: all},
		{name: "BAS-2", dvs: dvs.NewLAEDF(), prio: priority.NewPUBS(), policy: AllReleased, modes: all},
		{name: "BAS-2-oracle", dvs: dvs.NewLAEDF(), prio: priority.NewPUBS(), policy: AllReleased, oracle: true, modes: []FrequencyMode{ContinuousFrequency, DiscreteFrequency}},
		{name: "BAS-2-localSM", dvs: dvs.NewLAEDF(), prio: priority.NewPUBS(), policy: AllReleased, localSM: true, modes: []FrequencyMode{DiscreteFrequency}},
		{name: "static-LTF", dvs: dvs.NewStatic(), prio: priority.NewLTF(), policy: AllReleased, modes: []FrequencyMode{DiscreteFrequency}},
		{name: "random", dvs: dvs.NewCCEDF(), prio: priority.NewRandom(), policy: AllReleased, modes: []FrequencyMode{DiscreteFrequency}},
	}
}

// equalResults fails the test unless got matches want field by field, exactly.
func equalResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	type scalar struct {
		name string
		w, g float64
	}
	scalars := []scalar{
		{"Horizon", want.Horizon, got.Horizon},
		{"EnergyBattery", want.EnergyBattery, got.EnergyBattery},
		{"EnergyProcessor", want.EnergyProcessor, got.EnergyProcessor},
		{"BusyTime", want.BusyTime, got.BusyTime},
		{"IdleTime", want.IdleTime, got.IdleTime},
		{"ExecutedCycles", want.ExecutedCycles, got.ExecutedCycles},
		{"AverageFrequency", want.AverageFrequency, got.AverageFrequency},
	}
	for _, s := range scalars {
		if math.Float64bits(s.w) != math.Float64bits(s.g) {
			t.Errorf("%s: %s = %v, want %v (bit-exact)", label, s.name, s.g, s.w)
		}
	}
	if want.DeadlineMisses != got.DeadlineMisses ||
		want.JobsReleased != got.JobsReleased ||
		want.JobsCompleted != got.JobsCompleted ||
		want.NodesCompleted != got.NodesCompleted ||
		want.Preemptions != got.Preemptions ||
		want.OutOfOrderExecutions != got.OutOfOrderExecutions ||
		want.FeasibilityRejections != got.FeasibilityRejections ||
		want.SchedulingDecisions != got.SchedulingDecisions {
		t.Errorf("%s: counters differ: got %+v want %+v", label, got, want)
	}
	if len(want.PerGraph) != len(got.PerGraph) {
		t.Fatalf("%s: PerGraph length %d, want %d", label, len(got.PerGraph), len(want.PerGraph))
	}
	for i := range want.PerGraph {
		if want.PerGraph[i] != got.PerGraph[i] {
			t.Errorf("%s: PerGraph[%d] = %+v, want %+v", label, i, got.PerGraph[i], want.PerGraph[i])
		}
	}
	switch {
	case want.Profile == nil && got.Profile == nil:
	case want.Profile == nil || got.Profile == nil:
		t.Errorf("%s: profile presence differs", label)
	default:
		ws, gs := want.Profile.Segments, got.Profile.Segments
		if len(ws) != len(gs) {
			t.Fatalf("%s: profile has %d segments, want %d", label, len(gs), len(ws))
		}
		for i := range ws {
			if math.Float64bits(ws[i].Duration) != math.Float64bits(gs[i].Duration) ||
				math.Float64bits(ws[i].Current) != math.Float64bits(gs[i].Current) {
				t.Errorf("%s: profile segment %d = %+v, want %+v (bit-exact)", label, i, gs[i], ws[i])
			}
		}
	}
}

// copyResult deep-copies the parts of a Result that alias reused engine or
// observer storage, so it survives the next Reset.
func copyResult(res *Result) *Result {
	cp := *res
	cp.PerGraph = append([]GraphStats(nil), res.PerGraph...)
	if res.Profile != nil {
		cp.Profile = res.Profile.Clone()
	}
	return &cp
}

// TestEngineReuseMatchesFreshRun drives one Engine (and one ProfileRecorder)
// through many Reset+Run cycles across schemes, frequency modes, seeds and
// systems of different sizes, and checks every result is byte-identical to a
// fresh one-shot core.Run with its own fresh recorder.
func TestEngineReuseMatchesFreshRun(t *testing.T) {
	systems := []*taskgraph.System{}
	for i, ng := range []int{5, 3, 6} {
		rng := rand.New(rand.NewSource(int64(40 + i)))
		sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), ng, 0.65, 1e9, rng)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, sys)
	}

	eng := NewEngine()
	rec := NewProfileRecorder()
	for si, sys := range systems {
		for _, sc := range reuseSchemes() {
			for _, mode := range sc.modes {
				for seed := int64(0); seed < 3; seed++ {
					cfg := Config{
						System:          sys,
						DVS:             sc.dvs,
						Priority:        sc.prio,
						ReadyPolicy:     sc.policy,
						OracleEstimates: sc.oracle,
						LocalSpeedModel: sc.localSM,
						FrequencyMode:   mode,
						Hyperperiods:    1,
						Seed:            seed,
						Observer:        rec,
					}
					rec.Reset()
					if err := eng.Reset(cfg); err != nil {
						t.Fatal(err)
					}
					got, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}
					got = copyResult(got)

					fresh := cfg
					fresh.Observer = NewProfileRecorder()
					want, err := Run(fresh)
					if err != nil {
						t.Fatal(err)
					}
					label := sc.name + "/" + mode.String()
					if seed == 0 && si == 0 {
						t.Logf("checking %s", label)
					}
					equalResults(t, label, want, got)
				}
			}
		}
	}
}

// TestEngineReuseWithDefaultObserver checks the Recorder (profile + trace)
// default path also reproduces fresh runs when the engine is reused, including
// trace label construction after system switches.
func TestEngineReuseWithDefaultObserver(t *testing.T) {
	rngA := rand.New(rand.NewSource(17))
	sysA, err := tgff.GenerateSystem(tgff.DefaultConfig(), 4, 0.6, 1e9, rngA)
	if err != nil {
		t.Fatal(err)
	}
	rngB := rand.New(rand.NewSource(18))
	sysB, err := tgff.GenerateSystem(tgff.DefaultConfig(), 2, 0.5, 1e9, rngB)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine()
	rec := NewRecorder()
	for i, sys := range []*taskgraph.System{sysA, sysB, sysA} {
		cfg := Config{
			System:        sys,
			DVS:           dvs.NewLAEDF(),
			Priority:      priority.NewPUBS(),
			ReadyPolicy:   AllReleased,
			FrequencyMode: DiscreteFrequency,
			Hyperperiods:  1,
			Seed:          int64(i),
			Observer:      rec,
		}
		rec.Reset()
		if err := eng.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		got, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got.Trace == nil {
			t.Fatal("reused Recorder produced no trace")
		}
		gotSlices := append(got.Trace.Slices[:0:0], got.Trace.Slices...)
		got = copyResult(got)

		fresh := cfg
		fresh.Observer = NewRecorder()
		want, err := Run(fresh)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, "recorder", want, got)
		if len(want.Trace.Slices) != len(gotSlices) {
			t.Fatalf("trace has %d slices, want %d", len(gotSlices), len(want.Trace.Slices))
		}
		for j := range gotSlices {
			if gotSlices[j] != want.Trace.Slices[j] {
				t.Fatalf("trace slice %d = %+v, want %+v", j, gotSlices[j], want.Trace.Slices[j])
			}
		}
	}
}

// TestRecordedExecutionReplayAcrossSchemes pins the comparability contract the
// experiment drivers rely on: an execution realisation recorded during one
// scheme's run replays bit-identically for every other scheme on the same
// system, seed and horizon, because the engine draws Actual values in a
// scheme-independent order.
func TestRecordedExecutionReplayAcrossSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), 5, 0.7, 1e9, rng)
	if err != nil {
		t.Fatal(err)
	}

	schemes := reuseSchemes()
	for seed := int64(1); seed <= 3; seed++ {
		exec := taskgraph.NewRecordedExecution(taskgraph.NewUniformExecution(0.2, 1.0, seed))
		eng := NewEngine()
		rec := NewProfileRecorder()
		for i, sc := range schemes {
			if i == 0 {
				exec.Restart(taskgraph.NewUniformExecution(0.2, 1.0, seed))
			} else {
				exec.Replay()
			}
			cfg := Config{
				System:          sys,
				DVS:             sc.dvs,
				Priority:        sc.prio,
				ReadyPolicy:     sc.policy,
				OracleEstimates: sc.oracle,
				LocalSpeedModel: sc.localSM,
				FrequencyMode:   DiscreteFrequency,
				Hyperperiods:    1,
				Seed:            seed,
				Execution:       exec,
				Observer:        rec,
			}
			rec.Reset()
			if err := eng.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			got, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			got = copyResult(got)

			fresh := cfg
			fresh.Execution = taskgraph.NewUniformExecution(0.2, 1.0, seed)
			fresh.Observer = NewProfileRecorder()
			want, err := Run(fresh)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, sc.name+"/replay", want, got)
		}
	}
}

// TestEngineRunRequiresReset pins the one-Run-per-Reset contract.
func TestEngineRunRequiresReset(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.Run(); err != ErrEngineNotReady {
		t.Fatalf("Run without Reset: err = %v, want ErrEngineNotReady", err)
	}
	rng := rand.New(rand.NewSource(5))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), 2, 0.5, 1e9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(Config{System: sys, Observer: Discard, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != ErrEngineNotReady {
		t.Fatalf("second Run after one Reset: err = %v, want ErrEngineNotReady", err)
	}
}

// TestProfileRecorderReuse pins capacity retention and truncation semantics of
// ProfileRecorder.Reset.
func TestProfileRecorderReuse(t *testing.T) {
	rec := NewProfileRecorder()
	for i := 0; i < 64; i++ {
		rec.AppendSegment(Segment{Duration: 1, Current: float64(i)})
	}
	p := rec.BuiltProfile()
	if len(p.Segments) != 64 {
		t.Fatalf("len = %d, want 64", len(p.Segments))
	}
	capBefore := cap(p.Segments)

	rec.Reset()
	if got := len(rec.BuiltProfile().Segments); got != 0 {
		t.Fatalf("after Reset len = %d, want 0", got)
	}
	if got := cap(rec.BuiltProfile().Segments); got != capBefore {
		t.Fatalf("Reset changed capacity: %d, want %d", got, capBefore)
	}

	// A shorter recording after Reset must truncate correctly: the profile
	// matches a fresh recorder fed the same segments, with no stale tail.
	fresh := NewProfileRecorder()
	for i := 0; i < 5; i++ {
		s := Segment{Duration: 2, Current: float64(100 + i)}
		rec.AppendSegment(s)
		fresh.AppendSegment(s)
	}
	got, want := rec.BuiltProfile().Segments, fresh.BuiltProfile().Segments
	if len(got) != len(want) {
		t.Fatalf("after reuse len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if cap(rec.BuiltProfile().Segments) != capBefore {
		t.Fatalf("reuse reallocated: cap %d, want %d", cap(rec.BuiltProfile().Segments), capBefore)
	}

	// Merging still works across Reset: equal consecutive currents collapse.
	rec.Reset()
	rec.AppendSegment(Segment{Duration: 1, Current: 3})
	rec.AppendSegment(Segment{Duration: 2, Current: 3})
	if n := len(rec.BuiltProfile().Segments); n != 1 {
		t.Fatalf("merge after Reset: %d segments, want 1", n)
	}
	if d := rec.BuiltProfile().Segments[0].Duration; d != 3 {
		t.Fatalf("merged duration = %v, want 3", d)
	}
}

// TestRecorderReuse pins Recorder.Reset clearing both profile and trace while
// keeping capacity.
func TestRecorderReuse(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 16; i++ {
		rec.AppendSegment(Segment{Start: float64(i), Duration: 1, GraphIndex: i, Frequency: 1e8, Current: float64(i)})
	}
	pc, tc := cap(rec.BuiltProfile().Segments), cap(rec.BuiltTrace().Slices)
	rec.Reset()
	if len(rec.BuiltProfile().Segments) != 0 || len(rec.BuiltTrace().Slices) != 0 {
		t.Fatal("Reset did not empty recorder")
	}
	if cap(rec.BuiltProfile().Segments) != pc || cap(rec.BuiltTrace().Slices) != tc {
		t.Fatal("Reset dropped capacity")
	}
}
