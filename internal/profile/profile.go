// Package profile represents battery load-current profiles as sequences of
// piecewise-constant segments. The scheduler (internal/core) emits a Profile
// describing the current drawn from the battery over one simulated horizon;
// the battery models (internal/battery/...) consume it, repeating it
// periodically until the battery is exhausted.
package profile

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Segment is a constant-current interval.
type Segment struct {
	// Duration of the segment in seconds (> 0).
	Duration float64
	// Current drawn from the battery in amperes (>= 0).
	Current float64
}

// Profile is an ordered sequence of constant-current segments.
type Profile struct {
	Segments []Segment
}

// Errors returned by profile operations.
var (
	ErrEmptyProfile = errors.New("profile: empty profile")
	ErrBadSegment   = errors.New("profile: segment with non-positive duration or negative current")
)

// New returns an empty profile.
func New() *Profile { return &Profile{} }

// Append adds a constant-current segment, merging it with the previous one if
// the current is (numerically) identical. Zero-duration segments are ignored.
func (p *Profile) Append(duration, current float64) {
	if duration <= 0 {
		return
	}
	if current < 0 {
		current = 0
	}
	if n := len(p.Segments); n > 0 && nearlyEqual(p.Segments[n-1].Current, current) {
		p.Segments[n-1].Duration += duration
		return
	}
	p.Segments = append(p.Segments, Segment{Duration: duration, Current: current})
}

// AppendSegment adds a pre-built segment via Append.
func (p *Profile) AppendSegment(s Segment) { p.Append(s.Duration, s.Current) }

// Reset empties the profile while keeping the segment slice's capacity, so a
// reused profile stops allocating once it has grown to its steady-state size.
// Callers holding the old Segments slice observe it being overwritten by the
// next Append sequence — copy (Clone) before resetting when the contents must
// outlive the reuse.
func (p *Profile) Reset() { p.Segments = p.Segments[:0] }

// Validate checks the profile contains at least one well-formed segment.
func (p *Profile) Validate() error {
	if len(p.Segments) == 0 {
		return ErrEmptyProfile
	}
	for i, s := range p.Segments {
		if s.Duration <= 0 || s.Current < 0 {
			return fmt.Errorf("%w: segment %d = %+v", ErrBadSegment, i, s)
		}
	}
	return nil
}

// Duration returns the total length of the profile in seconds.
func (p *Profile) Duration() float64 {
	var d float64
	for _, s := range p.Segments {
		d += s.Duration
	}
	return d
}

// Charge returns the total charge of the profile in coulombs (ampere-seconds).
func (p *Profile) Charge() float64 {
	var q float64
	for _, s := range p.Segments {
		q += s.Duration * s.Current
	}
	return q
}

// ChargeMAh returns the total charge in milliampere-hours.
func (p *Profile) ChargeMAh() float64 { return p.Charge() / 3.6 }

// AverageCurrent returns Charge()/Duration(), or 0 for an empty profile.
func (p *Profile) AverageCurrent() float64 {
	d := p.Duration()
	if d <= 0 {
		return 0
	}
	return p.Charge() / d
}

// PeakCurrent returns the largest segment current.
func (p *Profile) PeakCurrent() float64 {
	var m float64
	for _, s := range p.Segments {
		if s.Current > m {
			m = s.Current
		}
	}
	return m
}

// Energy returns the energy delivered at the given terminal voltage, in
// joules.
func (p *Profile) Energy(voltage float64) float64 { return p.Charge() * voltage }

// CurrentAt returns the current at time t (seconds from the start of the
// profile). Times beyond the end of the profile wrap around (the profile is
// treated as periodic); negative times return the first segment's current.
func (p *Profile) CurrentAt(t float64) float64 {
	if len(p.Segments) == 0 {
		return 0
	}
	d := p.Duration()
	if d <= 0 {
		return p.Segments[0].Current
	}
	if t < 0 {
		return p.Segments[0].Current
	}
	t = math.Mod(t, d)
	for _, s := range p.Segments {
		if t < s.Duration {
			return s.Current
		}
		t -= s.Duration
	}
	return p.Segments[len(p.Segments)-1].Current
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	return &Profile{Segments: append([]Segment(nil), p.Segments...)}
}

// Scale returns a copy of the profile with every current multiplied by k.
func (p *Profile) Scale(k float64) *Profile {
	c := p.Clone()
	for i := range c.Segments {
		c.Segments[i].Current *= k
		if c.Segments[i].Current < 0 {
			c.Segments[i].Current = 0
		}
	}
	return c
}

// Concat returns a new profile consisting of p followed by q.
func (p *Profile) Concat(q *Profile) *Profile {
	out := p.Clone()
	for _, s := range q.Segments {
		out.Append(s.Duration, s.Current)
	}
	return out
}

// Repeat returns a new profile consisting of n back-to-back copies of p.
func (p *Profile) Repeat(n int) *Profile {
	out := New()
	for i := 0; i < n; i++ {
		for _, s := range p.Segments {
			out.Append(s.Duration, s.Current)
		}
	}
	return out
}

// Constant returns a single-segment profile drawing current amperes for
// duration seconds.
func Constant(current, duration float64) *Profile {
	p := New()
	p.Append(duration, current)
	return p
}

// IsLocallyNonIncreasing reports whether, inside every window of length
// `window` seconds aligned to the start of the profile, segment currents never
// increase. With window <= 0 the whole profile is one window. This is the
// property battery guideline 1 asks the scheduler to preserve within one
// task-arrival window.
func (p *Profile) IsLocallyNonIncreasing(window float64) bool {
	if len(p.Segments) == 0 {
		return true
	}
	if window <= 0 {
		window = math.Inf(1)
	}
	var t float64
	prev := math.Inf(1)
	windowIdx := 0
	for _, s := range p.Segments {
		idx := int(t / window)
		if idx != windowIdx {
			windowIdx = idx
			prev = math.Inf(1)
		}
		if s.Current > prev+1e-12 {
			return false
		}
		prev = s.Current
		t += s.Duration
	}
	return true
}

// ChargeAccumulator computes the total charge of a segment stream without
// materialising a Profile. It replicates Profile.Append's merge semantics and
// Profile.Charge's summation order exactly, so for the same Append sequence
// Charge returns the bit-identical value a recorded Profile would — which is
// what lets the scheduler report identical energies with recording disabled.
type ChargeAccumulator struct {
	sum      float64 // charge of flushed (closed) segments, in segment order
	dur, cur float64 // the open (mergeable) trailing segment
	active   bool
}

// Append incorporates a constant-current segment with the same contract as
// Profile.Append: non-positive durations are ignored, negative currents clamp
// to zero, and nearly-equal consecutive currents merge into one segment.
func (a *ChargeAccumulator) Append(duration, current float64) {
	if duration <= 0 {
		return
	}
	if current < 0 {
		current = 0
	}
	if a.active && nearlyEqual(a.cur, current) {
		a.dur += duration
		return
	}
	if a.active {
		a.sum += a.dur * a.cur
	}
	a.dur, a.cur, a.active = duration, current, true
}

// Reset returns the accumulator to its zero state so it can be reused for a
// fresh Append sequence.
func (a *ChargeAccumulator) Reset() { *a = ChargeAccumulator{} }

// Charge returns the accumulated charge in coulombs.
func (a *ChargeAccumulator) Charge() float64 {
	if a.active {
		return a.sum + a.dur*a.cur
	}
	return a.sum
}

// WriteCSV writes the profile as "start_s,duration_s,current_a" rows.
func (p *Profile) WriteCSV(w io.Writer) error {
	var t float64
	if _, err := fmt.Fprintln(w, "start_s,duration_s,current_a"); err != nil {
		return err
	}
	for _, s := range p.Segments {
		if _, err := fmt.Fprintf(w, "%.9g,%.9g,%.9g\n", t, s.Duration, s.Current); err != nil {
			return err
		}
		t += s.Duration
	}
	return nil
}

// ReadCSV parses a profile previously written by WriteCSV (the start column
// is ignored; ordering is taken from row order).
func ReadCSV(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := New()
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "start_s") || strings.HasPrefix(line, "#") {
			continue
		}
		var start, dur, cur float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(line, ",", " "), "%g %g %g", &start, &dur, &cur); err != nil {
			return nil, fmt.Errorf("profile: line %d: %w", i+1, err)
		}
		p.Append(dur, cur)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// String implements fmt.Stringer.
func (p *Profile) String() string {
	return fmt.Sprintf("Profile(segments=%d duration=%.3gs avg=%.3gA peak=%.3gA)",
		len(p.Segments), p.Duration(), p.AverageCurrent(), p.PeakCurrent())
}

func nearlyEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= 1e-12 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
