package profile

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendMergesEqualCurrents(t *testing.T) {
	p := New()
	p.Append(1, 0.5)
	p.Append(2, 0.5)
	p.Append(1, 0.7)
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d, want 2 (adjacent equal currents merged)", len(p.Segments))
	}
	if p.Segments[0].Duration != 3 {
		t.Fatalf("merged duration = %v, want 3", p.Segments[0].Duration)
	}
}

func TestAppendIgnoresZeroDurationAndClampsNegativeCurrent(t *testing.T) {
	p := New()
	p.Append(0, 1)
	p.Append(-1, 1)
	if len(p.Segments) != 0 {
		t.Fatalf("segments = %d, want 0", len(p.Segments))
	}
	p.Append(1, -5)
	if p.Segments[0].Current != 0 {
		t.Fatalf("negative current not clamped: %v", p.Segments[0].Current)
	}
}

func TestValidate(t *testing.T) {
	p := New()
	if err := p.Validate(); !errors.Is(err, ErrEmptyProfile) {
		t.Fatalf("Validate empty = %v, want ErrEmptyProfile", err)
	}
	p.Append(1, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate = %v, want nil", err)
	}
	p.Segments = append(p.Segments, Segment{Duration: -1, Current: 1})
	if err := p.Validate(); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("Validate = %v, want ErrBadSegment", err)
	}
}

func TestChargeDurationAndAverages(t *testing.T) {
	p := New()
	p.Append(10, 1.0) // 10 C
	p.Append(10, 0.5) // 5 C
	if got := p.Duration(); got != 20 {
		t.Fatalf("Duration = %v, want 20", got)
	}
	if got := p.Charge(); got != 15 {
		t.Fatalf("Charge = %v, want 15", got)
	}
	if got := p.ChargeMAh(); math.Abs(got-15.0/3.6) > 1e-12 {
		t.Fatalf("ChargeMAh = %v", got)
	}
	if got := p.AverageCurrent(); got != 0.75 {
		t.Fatalf("AverageCurrent = %v, want 0.75", got)
	}
	if got := p.PeakCurrent(); got != 1.0 {
		t.Fatalf("PeakCurrent = %v, want 1", got)
	}
	if got := p.Energy(1.2); math.Abs(got-18) > 1e-12 {
		t.Fatalf("Energy = %v, want 18", got)
	}
}

func TestAverageCurrentEmptyProfile(t *testing.T) {
	p := New()
	if got := p.AverageCurrent(); got != 0 {
		t.Fatalf("AverageCurrent of empty = %v, want 0", got)
	}
}

func TestCurrentAt(t *testing.T) {
	p := New()
	p.Append(2, 1.0)
	p.Append(3, 0.2)
	cases := []struct{ t, want float64 }{
		{-1, 1.0},
		{0, 1.0},
		{1.9, 1.0},
		{2.5, 0.2},
		{4.9, 0.2},
		{5.5, 1.0}, // wraps around
		{7.3, 0.2},
	}
	for _, c := range cases {
		if got := p.CurrentAt(c.t); got != c.want {
			t.Errorf("CurrentAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := New().CurrentAt(1); got != 0 {
		t.Errorf("CurrentAt on empty profile = %v, want 0", got)
	}
}

func TestCloneScaleConcatRepeat(t *testing.T) {
	p := New()
	p.Append(1, 2)
	c := p.Clone()
	c.Segments[0].Current = 99
	if p.Segments[0].Current == 99 {
		t.Fatal("Clone shares storage")
	}
	s := p.Scale(0.5)
	if s.Segments[0].Current != 1 {
		t.Fatalf("Scale = %v, want 1", s.Segments[0].Current)
	}
	q := New()
	q.Append(2, 3)
	cat := p.Concat(q)
	if cat.Duration() != 3 || cat.Charge() != 2+6 {
		t.Fatalf("Concat wrong: %v", cat)
	}
	r := q.Repeat(3)
	if r.Duration() != 6 || len(r.Segments) != 1 { // identical currents merge
		t.Fatalf("Repeat wrong: %v", r)
	}
}

func TestConstant(t *testing.T) {
	p := Constant(0.5, 100)
	if p.Duration() != 100 || p.AverageCurrent() != 0.5 {
		t.Fatalf("Constant profile wrong: %v", p)
	}
}

func TestIsLocallyNonIncreasing(t *testing.T) {
	p := New()
	p.Append(1, 1.0)
	p.Append(1, 0.5)
	p.Append(1, 0.2)
	if !p.IsLocallyNonIncreasing(0) {
		t.Fatal("monotone profile reported as increasing")
	}
	p.Append(1, 0.8)
	if p.IsLocallyNonIncreasing(0) {
		t.Fatal("increasing profile reported as non-increasing globally")
	}
	// With a window of 3 s the increase happens at a window boundary, so the
	// profile is locally non-increasing.
	if !p.IsLocallyNonIncreasing(3) {
		t.Fatal("windowed check should reset at the window boundary")
	}
	if !New().IsLocallyNonIncreasing(1) {
		t.Fatal("empty profile should be trivially non-increasing")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	p := New()
	p.Append(1.5, 0.75)
	p.Append(0.5, 0.1)
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "start_s,duration_s,current_a") {
		t.Fatalf("missing header: %q", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if math.Abs(back.Duration()-p.Duration()) > 1e-9 || math.Abs(back.Charge()-p.Charge()) > 1e-9 {
		t.Fatalf("round trip mismatch: %v vs %v", back, p)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("garbage,line\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected empty profile error")
	}
	// Comment lines and blank lines are ignored.
	p, err := ReadCSV(strings.NewReader("# comment\n0,1,0.5\n\n"))
	if err != nil {
		t.Fatalf("ReadCSV with comments: %v", err)
	}
	if p.Duration() != 1 {
		t.Fatalf("Duration = %v, want 1", p.Duration())
	}
}

func TestString(t *testing.T) {
	p := Constant(1, 1)
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: charge equals the sum of duration*current over segments and the
// average current never exceeds the peak.
func TestChargeConsistencyProperty(t *testing.T) {
	f := func(durs, curs []float64) bool {
		if len(curs) == 0 {
			return true
		}
		p := New()
		var want float64
		for i := range durs {
			d := math.Abs(math.Mod(durs[i], 100))
			c := math.Abs(math.Mod(curs[i%len(curs)], 10))
			if d == 0 {
				continue
			}
			p.Append(d, c)
			want += d * c
		}
		if math.Abs(p.Charge()-want) > 1e-6*math.Max(1, want) {
			return false
		}
		return p.AverageCurrent() <= p.PeakCurrent()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
