package tgff

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"battsched/internal/taskgraph"
)

func TestDefaultConfigIsValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig()
	cases := []func(Config) Config{
		func(c Config) Config { c.MinNodes = 0; return c },
		func(c Config) Config { c.MaxNodes = c.MinNodes - 1; return c },
		func(c Config) Config { c.EdgeProbability = -0.1; return c },
		func(c Config) Config { c.EdgeProbability = 1.1; return c },
		func(c Config) Config { c.MinWCET = 0; return c },
		func(c Config) Config { c.MaxWCET = c.MinWCET / 2; return c },
		func(c Config) Config { c.Periods = nil; return c },
		func(c Config) Config { c.Periods = []float64{0}; return c },
		func(c Config) Config { c.Layers = -1; return c },
	}
	for i, mut := range cases {
		if err := mut(base).Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: expected ErrBadConfig, got %v", i, err)
		}
	}
}

func TestGenerateRequiresRNG(t *testing.T) {
	if _, err := Generate(DefaultConfig(), "g", nil); !errors.Is(err, ErrNilRNG) {
		t.Fatalf("err = %v, want ErrNilRNG", err)
	}
	if _, err := GenerateWithNodes(DefaultConfig(), "g", 5, nil); !errors.Is(err, ErrNilRNG) {
		t.Fatalf("err = %v, want ErrNilRNG", err)
	}
}

func TestGenerateWithNodesExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 20; n++ {
		g, err := GenerateWithNodes(DefaultConfig(), "g", n, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.NumNodes() != n {
			t.Fatalf("n=%d: got %d nodes", n, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: invalid graph: %v", n, err)
		}
	}
}

func TestGenerateNodeCountWithinBounds(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		g, err := Generate(cfg, "g", rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() < cfg.MinNodes || g.NumNodes() > cfg.MaxNodes {
			t.Fatalf("node count %d outside [%d,%d]", g.NumNodes(), cfg.MinNodes, cfg.MaxNodes)
		}
	}
}

func TestGeneratedWCETsWithinBounds(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	g, err := GenerateWithNodes(cfg, "g", 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.WCET < cfg.MinWCET || n.WCET > cfg.MaxWCET {
			t.Fatalf("WCET %v outside [%v,%v]", n.WCET, cfg.MinWCET, cfg.MaxWCET)
		}
	}
}

func TestGeneratedPeriodFromCandidates(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(4))
	g, err := Generate(cfg, "g", rng)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range cfg.Periods {
		if g.Period == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("period %v not among candidates %v", g.Period, cfg.Periods)
	}
}

func TestDegreeBoundsRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInDegree = 2
	cfg.MaxOutDegree = 2
	cfg.EdgeProbability = 1.0
	rng := rand.New(rand.NewSource(5))
	g, err := GenerateWithNodes(cfg, "g", 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if d := len(g.Predecessors(n.ID)); d > 2 {
			t.Fatalf("node %v in-degree %d > 2", n.ID, d)
		}
		if d := len(g.Successors(n.ID)); d > 2 {
			t.Fatalf("node %v out-degree %d > 2", n.ID, d)
		}
	}
}

func TestGenerateIndependentHasNoEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := GenerateIndependent(DefaultConfig(), "g", 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 0 {
		t.Fatalf("independent graph has %d edges", len(g.Edges))
	}
	if g.NumNodes() != 10 {
		t.Fatalf("node count = %d", g.NumNodes())
	}
}

func TestGenerateSystemUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const fmax = 1e9
	sys, err := GenerateSystem(DefaultConfig(), 5, 0.7, fmax, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumGraphs() != 5 {
		t.Fatalf("graphs = %d, want 5", sys.NumGraphs())
	}
	if u := sys.Utilization(fmax); math.Abs(u-0.7) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.7", u)
	}
}

func TestGenerateSystemWithoutScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sys, err := GenerateSystem(DefaultConfig(), 2, 0, 1e9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumGraphs() != 2 {
		t.Fatalf("graphs = %d", sys.NumGraphs())
	}
}

func TestGenerateSystemRejectsBadCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := GenerateSystem(DefaultConfig(), 0, 0.5, 1e9, rng); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestStripPrecedence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sys, err := GenerateSystem(DefaultConfig(), 3, 0.7, 1e9, rng)
	if err != nil {
		t.Fatal(err)
	}
	stripped := StripPrecedence(sys)
	for _, g := range stripped.Graphs {
		if len(g.Edges) != 0 {
			t.Fatalf("stripped graph still has edges")
		}
	}
	// Original untouched, same utilisation.
	hasEdges := false
	for _, g := range sys.Graphs {
		if len(g.Edges) > 0 {
			hasEdges = true
		}
	}
	if !hasEdges {
		t.Skip("random system happened to have no edges")
	}
	if math.Abs(stripped.Utilization(1e9)-sys.Utilization(1e9)) > 1e-12 {
		t.Fatal("stripping changed utilisation")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := func(seed int64) *taskgraph.System {
		rng := rand.New(rand.NewSource(seed))
		sys, err := GenerateSystem(DefaultConfig(), 4, 0.7, 1e9, rng)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a, b := gen(11), gen(11)
	if a.TotalNodes() != b.TotalNodes() {
		t.Fatal("same seed produced different systems")
	}
	for i := range a.Graphs {
		if a.Graphs[i].TotalWCET() != b.Graphs[i].TotalWCET() || len(a.Graphs[i].Edges) != len(b.Graphs[i].Edges) {
			t.Fatal("same seed produced different graphs")
		}
	}
}

// Property: every generated graph is a valid DAG whose layered construction
// admits a topological order, for any seed and node count in [1, 30].
func TestGenerateAlwaysValidDAGProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%30
		rng := rand.New(rand.NewSource(seed))
		g, err := GenerateWithNodes(cfg, "p", n, rng)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		order, err := g.TopologicalOrder()
		if err != nil {
			return false
		}
		return g.IsLinearExtension(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestIntSqrt(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3, 15: 3, 16: 4, 30: 5}
	for n, want := range cases {
		if got := intSqrt(n); got != want {
			t.Errorf("intSqrt(%d) = %d, want %d", n, got, want)
		}
	}
}
