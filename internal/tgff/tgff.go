// Package tgff generates random periodic task graphs. The paper uses
// Princeton's "Task Graphs For Free" (TGFF) generator with random
// dependencies and uniformly distributed worst-case computations; this
// package is the in-repo substitute: a seeded generator producing layered
// random DAGs with bounded fan-in/fan-out, uniform WCETs and periods drawn
// from a configurable candidate set, with a helper that rescales a generated
// system to an exact target utilisation (the paper uses 70 %).
package tgff

import (
	"errors"
	"fmt"
	"math/rand"

	"battsched/internal/taskgraph"
)

// Config controls graph generation.
type Config struct {
	// MinNodes and MaxNodes bound the (uniformly drawn) node count per graph.
	// The paper's graphs have 5 to 15 nodes.
	MinNodes int
	MaxNodes int
	// EdgeProbability is the probability of adding a precedence edge between
	// a pair of nodes in adjacent layers.
	EdgeProbability float64
	// MaxInDegree and MaxOutDegree bound the per-node degree (0 = unbounded).
	MaxInDegree  int
	MaxOutDegree int
	// MinWCET and MaxWCET bound the uniformly drawn worst-case execution
	// requirement per node, in cycles at f_max.
	MinWCET float64
	MaxWCET float64
	// Periods is the candidate set of periods (seconds); each graph picks one
	// uniformly at random.
	Periods []float64
	// Layers (0 = auto) forces the number of precedence layers; when 0 the
	// generator uses roughly sqrt(n) layers, which yields the mix of chains
	// and parallelism typical of TGFF output.
	Layers int
}

// DefaultConfig returns the configuration used by the paper's experiments:
// 5–15 nodes per graph, uniform WCETs, random dependencies, periods in the
// tens-of-milliseconds range (harmonically related so hyperperiods stay
// small).
func DefaultConfig() Config {
	return Config{
		MinNodes:        5,
		MaxNodes:        15,
		EdgeProbability: 0.4,
		MaxInDegree:     3,
		MaxOutDegree:    3,
		MinWCET:         1e6,  // 1 Mcycle  (1 ms at 1 GHz)
		MaxWCET:         10e6, // 10 Mcycles
		Periods:         []float64{0.050, 0.100, 0.200, 0.400},
	}
}

// Errors returned by the generator.
var (
	ErrBadConfig = errors.New("tgff: invalid configuration")
	ErrNilRNG    = errors.New("tgff: nil RNG")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.MinNodes < 1 || c.MaxNodes < c.MinNodes:
		return fmt.Errorf("%w: node bounds [%d,%d]", ErrBadConfig, c.MinNodes, c.MaxNodes)
	case c.EdgeProbability < 0 || c.EdgeProbability > 1:
		return fmt.Errorf("%w: edge probability %v", ErrBadConfig, c.EdgeProbability)
	case c.MinWCET <= 0 || c.MaxWCET < c.MinWCET:
		return fmt.Errorf("%w: WCET bounds [%v,%v]", ErrBadConfig, c.MinWCET, c.MaxWCET)
	case len(c.Periods) == 0:
		return fmt.Errorf("%w: no candidate periods", ErrBadConfig)
	case c.Layers < 0:
		return fmt.Errorf("%w: negative layer count", ErrBadConfig)
	}
	for _, p := range c.Periods {
		if p <= 0 {
			return fmt.Errorf("%w: period %v", ErrBadConfig, p)
		}
	}
	return nil
}

// Generate produces one random task graph with the given name.
func Generate(cfg Config, name string, rng *rand.Rand) (*taskgraph.Graph, error) {
	if rng == nil {
		return nil, ErrNilRNG
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.MinNodes
	if cfg.MaxNodes > cfg.MinNodes {
		n += rng.Intn(cfg.MaxNodes - cfg.MinNodes + 1)
	}
	return GenerateWithNodes(cfg, name, n, rng)
}

// GenerateWithNodes produces one random task graph with exactly n nodes.
func GenerateWithNodes(cfg Config, name string, n int, rng *rand.Rand) (*taskgraph.Graph, error) {
	if rng == nil {
		return nil, ErrNilRNG
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadConfig, n)
	}
	period := cfg.Periods[rng.Intn(len(cfg.Periods))]
	g := taskgraph.NewGraph(name, period)
	for i := 0; i < n; i++ {
		wc := cfg.MinWCET + rng.Float64()*(cfg.MaxWCET-cfg.MinWCET)
		g.AddNode(fmt.Sprintf("%s.n%d", name, i), wc)
	}

	// Assign nodes to layers; edges only go from earlier to later layers so
	// the graph is a DAG by construction.
	layers := cfg.Layers
	if layers <= 0 {
		layers = intSqrt(n)
		if layers < 1 {
			layers = 1
		}
	}
	if layers > n {
		layers = n
	}
	layerOf := make([]int, n)
	// Guarantee every layer is non-empty, then spread the rest randomly.
	perm := rng.Perm(n)
	for l := 0; l < layers; l++ {
		layerOf[perm[l]] = l
	}
	for i := layers; i < n; i++ {
		layerOf[perm[i]] = rng.Intn(layers)
	}

	inDeg := make([]int, n)
	outDeg := make([]int, n)
	addEdge := func(from, to int) bool {
		if cfg.MaxOutDegree > 0 && outDeg[from] >= cfg.MaxOutDegree {
			return false
		}
		if cfg.MaxInDegree > 0 && inDeg[to] >= cfg.MaxInDegree {
			return false
		}
		g.AddEdge(taskgraph.NodeID(from), taskgraph.NodeID(to))
		outDeg[from]++
		inDeg[to]++
		return true
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if layerOf[from] >= layerOf[to] {
				continue
			}
			if layerOf[to]-layerOf[from] == 1 && rng.Float64() < cfg.EdgeProbability {
				addEdge(from, to)
			}
		}
	}
	// Connect isolated later-layer nodes to some predecessor layer node so the
	// graph is not a trivial collection of independent tasks (unless it has a
	// single layer).
	for to := 0; to < n; to++ {
		if layerOf[to] == 0 || inDeg[to] > 0 {
			continue
		}
		candidates := make([]int, 0, n)
		for from := 0; from < n; from++ {
			if layerOf[from] < layerOf[to] {
				candidates = append(candidates, from)
			}
		}
		rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		for _, from := range candidates {
			if addEdge(from, to) {
				break
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("tgff: generated invalid graph: %w", err)
	}
	return g, nil
}

// GenerateIndependent produces a "graph" of n independent tasks (no edges)
// sharing one deadline. It is used for the precedence-free near-optimal
// baseline of the paper's Figure 6.
func GenerateIndependent(cfg Config, name string, n int, rng *rand.Rand) (*taskgraph.Graph, error) {
	c := cfg
	c.EdgeProbability = 0
	c.Layers = 1
	return GenerateWithNodes(c, name, n, rng)
}

// GenerateSystem produces numGraphs random task graphs and scales their WCETs
// so that the worst-case utilisation at fmax equals utilization. With
// utilization <= 0 no scaling is applied.
func GenerateSystem(cfg Config, numGraphs int, utilization, fmax float64, rng *rand.Rand) (*taskgraph.System, error) {
	if numGraphs < 1 {
		return nil, fmt.Errorf("%w: %d graphs", ErrBadConfig, numGraphs)
	}
	sys := taskgraph.NewSystem()
	for i := 0; i < numGraphs; i++ {
		g, err := Generate(cfg, fmt.Sprintf("T%d", i+1), rng)
		if err != nil {
			return nil, err
		}
		sys.Add(g)
	}
	if utilization > 0 && fmax > 0 {
		sys.ScaleToUtilization(utilization, fmax)
	}
	if err := sys.Validate(0); err != nil {
		return nil, err
	}
	return sys, nil
}

// StripPrecedence returns a copy of the system with all precedence edges
// removed (every node becomes independently schedulable). This is the
// transformation the paper applies to obtain the near-optimal reference of
// Figure 6.
func StripPrecedence(sys *taskgraph.System) *taskgraph.System {
	c := sys.Clone()
	for _, g := range c.Graphs {
		g.Edges = nil
	}
	return c
}

func intSqrt(n int) int {
	i := 0
	for (i+1)*(i+1) <= n {
		i++
	}
	return i
}
