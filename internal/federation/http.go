package federation

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"battsched/internal/battery"
	"battsched/internal/experiments"
	"battsched/internal/obs"
	"battsched/internal/service"
)

// maxRequestBody bounds POST payloads, matching the worker daemon.
const maxRequestBody = 1 << 20

// Handler returns the coordinator's HTTP API — the worker daemon's /v1
// surface (so `cmd/experiments submit` and the typed client work unchanged
// against a coordinator) plus the worker registry:
//
//	POST /v1/jobs              submit; units fan out across the fleet
//	GET  /v1/jobs/{id}         job state and per-unit progress
//	GET  /v1/jobs/{id}/report  the merged artifact (?format=table renders it)
//	GET  /v1/experiments       the experiment registry
//	GET  /v1/batteries         the battery model registry
//	GET  /v1/workers           the worker registry with liveness and leases
//	POST /v1/workers           register a worker {"url": "http://host:port"}
//	GET  /healthz              the Health snapshot with the fleet section
//	GET  /metrics              the metrics registry in Prometheus text format
//
// POST /v1/jobs reads the X-Trace-Id header into the submission's trace id
// (see obs.TraceHeader), which is forwarded on every unit dispatch so the
// whole fleet logs under one trace.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", co.handleReport)
	mux.HandleFunc("GET /v1/experiments", co.handleExperiments)
	mux.HandleFunc("GET /v1/batteries", co.handleBatteries)
	mux.HandleFunc("GET /v1/workers", co.handleWorkers)
	mux.HandleFunc("POST /v1/workers", co.handleRegister)
	mux.HandleFunc("GET /healthz", co.handleHealth)
	mux.Handle("GET /metrics", co.metrics.Handler())
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps coordinator errors onto the same statuses the worker
// daemon uses, so clients cannot tell the difference.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, service.ErrQueueFull):
		status = http.StatusTooManyRequests
		var fb *fleetBusyError
		if errors.As(err, &fb) {
			secs := int(math.Ceil(fb.retryAfter.Seconds()))
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	case errors.Is(err, service.ErrDraining):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, service.ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, service.ErrJobNotFinished):
		status = http.StatusConflict
	case errors.Is(err, experiments.ErrBadConfig):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding job request: %v", err)})
		return
	}
	req.TraceID = obs.TraceFromRequest(r)
	st, err := co.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if st.State == service.StateDone {
		status = http.StatusOK
	}
	writeJSON(w, status, st)
}

func (co *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := co.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (co *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	artifact, err := co.Artifact(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("format") == "table" {
		reports, err := experiments.ReadArtifact(bytes.NewReader(artifact))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, rep := range reports {
			text, err := experiments.FormatReport(rep)
			if err != nil {
				writeError(w, err)
				return
			}
			fmt.Fprint(w, text)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(artifact)
}

func (co *Coordinator) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var infos []service.ExperimentInfo
	for _, name := range experiments.Names() {
		d, err := experiments.Lookup(name)
		if err != nil {
			writeError(w, err)
			return
		}
		infos = append(infos, service.ExperimentInfo{
			Name:      d.Name,
			Title:     d.Title,
			Paper:     d.Paper,
			Shardable: d.Shardable,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (co *Coordinator) handleBatteries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, battery.Names())
}

func (co *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, co.Workers())
}

// registerRequest is the POST /v1/workers payload.
type registerRequest struct {
	URL string `json:"url"`
}

func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.URL == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "registration needs {\"url\": \"http://host:port\"}"})
		return
	}
	co.AddWorker(req.URL)
	writeJSON(w, http.StatusOK, co.Workers())
}

func (co *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := co.Health()
	status := http.StatusOK
	if h.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
