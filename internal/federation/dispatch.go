package federation

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"syscall"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/obs"
	"battsched/internal/service"
)

// heartbeatLoop probes every worker's /healthz each interval. A passing probe
// makes the worker live and refreshes its slot count (the worker's pool
// size); DeadAfter consecutive failures mark it dead, which expires all its
// leases immediately — their units re-queue without waiting for the lease
// deadline.
func (co *Coordinator) heartbeatLoop() {
	defer co.wg.Done()
	tick := time.NewTicker(co.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		co.heartbeatRound()
		select {
		case <-co.ctx.Done():
			return
		case <-tick.C:
		}
	}
}

func (co *Coordinator) heartbeatRound() {
	co.mu.Lock()
	probes := make([]*worker, 0, len(co.workers))
	for _, w := range co.workers {
		probes = append(probes, w)
	}
	co.mu.Unlock()

	type result struct {
		w     *worker
		slots int
		ok    bool
	}
	results := make(chan result, len(probes))
	// The probe deadline gets a 1 s floor above the interval: a busy worker
	// saturating its cores on shard units can take tens of milliseconds to
	// answer /healthz, and a short -heartbeat must not turn that latency
	// into a death verdict (dead workers are detected fast regardless —
	// their sockets refuse instantly).
	timeout := co.cfg.HeartbeatInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	for _, w := range probes {
		go func(w *worker) {
			ctx, cancel := context.WithTimeout(co.ctx, timeout)
			defer cancel()
			h, err := w.probe.Health(ctx)
			// A draining worker answers 503 with a full snapshot, but it is
			// shutting down: treat it like a failed probe so no new units
			// route there and its leases expire on the usual schedule.
			results <- result{w: w, slots: h.Workers, ok: err == nil && h.Status == "ok"}
		}(w)
	}
	collected := make([]result, 0, len(probes))
	for range probes {
		collected = append(collected, <-results)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, r := range collected {
		if r.ok {
			if !r.w.live {
				co.events.Emit(obs.Event{Event: obs.EventWorkerUp, Worker: r.w.url})
			}
			r.w.live = true
			r.w.fails = 0
			r.w.slots = r.slots
			co.cond.Broadcast()
			continue
		}
		r.w.fails++
		if r.w.fails >= co.cfg.DeadAfter && r.w.live {
			co.markWorkerDownLocked(r.w, obs.ReasonHeartbeatMiss,
				fmt.Sprintf("%d consecutive heartbeat probes failed", r.w.fails))
		}
	}
}

// leaseFailed fails one lease and, when the underlying error is a
// connection-level transport error (refused, reset, timed out — the daemon
// is not answering at the socket level), marks the worker down immediately.
// Waiting for DeadAfter missed heartbeats instead would keep routing the
// re-queued unit back to the corpse: a dead worker holds zero leases, so it
// wins the most-free-slots pick every time and burns through MaxAttempts in
// the sub-second window before the heartbeat verdict lands. API-level errors
// (an unknown remote job after a worker restart, a decode failure) leave the
// worker up — its socket answered.
func (co *Coordinator) leaseFailed(l *lease, msg string, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.failLeaseLocked(l, msg)
	var ne net.Error
	if errors.As(err, &ne) || errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		co.markWorkerDownLocked(l.w, obs.ReasonTransportError, msg)
	}
}

// markWorkerDownLocked takes a worker out of dispatch rotation and expires
// its outstanding leases, recording the verdict — reason is the structured
// cause (obs.ReasonHeartbeatMiss or obs.ReasonTransportError), why the
// free-form one. The next passing heartbeat probe revives it. Callers hold
// co.mu.
func (co *Coordinator) markWorkerDownLocked(w *worker, reason, why string) {
	if !w.live {
		return
	}
	log.Printf("federation: marking worker %s down (%s): %s", w.url, reason, why)
	if reason == obs.ReasonTransportError {
		co.met.downTransport.Inc()
	} else {
		co.met.downHeartbeat.Inc()
	}
	co.events.Emit(obs.Event{
		Event: obs.EventWorkerDown, Worker: w.url, Reason: reason, Detail: why,
	})
	w.live = false
	w.fails = co.cfg.DeadAfter
	co.expireWorkerLeasesLocked(w)
}

// expireWorkerLeasesLocked expires every outstanding lease held by a dead
// worker. Callers hold co.mu.
func (co *Coordinator) expireWorkerLeasesLocked(w *worker) {
	for _, j := range co.jobs {
		for _, u := range j.units {
			for _, l := range u.leases {
				if l.w == w && !l.cancelled {
					co.met.leaseExpiries.Inc()
					co.failLeaseLocked(l, fmt.Sprintf("worker %s stopped answering heartbeats", w.url))
				}
			}
		}
	}
}

// dispatcher pairs queued units with free worker slots and spawns one lease
// goroutine per dispatch. It sleeps on the cond var whenever nothing is
// dispatchable (empty queue, no live capacity).
func (co *Coordinator) dispatcher() {
	defer co.wg.Done()
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if co.ctx.Err() != nil {
			return
		}
		l := co.pickLocked()
		if l == nil {
			co.cond.Wait()
			continue
		}
		co.wg.Add(1)
		go co.runLease(l)
	}
}

// pickLocked pops the first dispatchable (unit, worker) pair off the queue
// and leases it: the unit's preferred worker when live with a free slot (the
// journaled lease target on restart — the result is likely cached or still
// in flight there), otherwise the live worker with the most free slots that
// is not already running this unit. Finished or terminal units are dropped
// from the queue in passing. Returns nil when nothing is dispatchable.
// Callers hold co.mu.
func (co *Coordinator) pickLocked() *lease {
	for qi := 0; qi < len(co.queue); qi++ {
		u := co.queue[qi]
		if u.finished || u.job.state == service.StateDone || u.job.state == service.StateFailed {
			u.queued = false
			co.queue = append(co.queue[:qi], co.queue[qi+1:]...)
			qi--
			continue
		}
		w := co.workerForLocked(u)
		if w == nil {
			continue // no capacity for this unit right now; try the next
		}
		co.queue = append(co.queue[:qi], co.queue[qi+1:]...)
		u.queued = false
		u.attempts++
		now := time.Now()
		if u.started.IsZero() {
			u.started = now
		}
		u.state = service.StateRunning
		j := u.job
		if j.state == service.StateQueued {
			j.state = service.StateRunning
			j.started = now
			for _, f := range j.followers {
				if f.state == service.StateQueued {
					f.state = service.StateRunning
					f.started = now
				}
			}
		}
		l := &lease{unit: u, w: w, started: now, expires: now.Add(co.cfg.LeaseDuration)}
		u.leases = append(u.leases, l)
		w.leased++
		co.journalLeaseLocked(l)
		return l
	}
	return nil
}

// workerForLocked picks the dispatch target for one unit. Callers hold co.mu.
func (co *Coordinator) workerForLocked(u *funit) *worker {
	eligible := func(w *worker) bool {
		if !w.live || w.leased >= w.slots {
			return false
		}
		for _, l := range u.leases {
			if l.w == w && !l.cancelled {
				return false // already running this unit (speculation targets another worker)
			}
		}
		return true
	}
	if u.prefer != "" {
		if w := co.workers[u.prefer]; w != nil && eligible(w) {
			return w
		}
	}
	var best *worker
	for _, w := range co.workers {
		if !eligible(w) {
			continue
		}
		if best == nil || w.slots-w.leased > best.slots-best.leased {
			best = w
		}
	}
	return best
}

// runLease drives one dispatched unit on its worker: submit the shard-unit
// job, poll its status (each successful poll renews the lease), fetch the
// artifact on completion and deliver it. Every failure path funnels into
// failLeaseLocked, which re-queues or fails the unit.
func (co *Coordinator) runLease(l *lease) {
	defer co.wg.Done()
	u := l.unit
	j := u.job
	if hook := co.cfg.OnDispatch; hook != nil {
		hook(j.id, u.shard, l.w.url)
	}
	co.events.Emit(obs.Event{
		Event: obs.EventUnitLeased, Trace: j.trace, Job: j.id,
		Experiment: j.experiment, Unit: unitName(u), Worker: l.w.url,
	})
	// The job's trace id rides the X-Trace-Id header of every unit dispatch,
	// so the worker's event log carries the same trace as the coordinator's.
	req := service.JobRequest{Experiment: j.experiment, Spec: j.specReq, TraceID: j.trace}
	if u.shard.Enabled() {
		req.Shard = u.shard.String()
	}
	st, err := l.w.sub.Submit(co.ctx, req)
	if err != nil {
		co.leaseFailed(l, fmt.Sprintf("submitting to %s: %v", l.w.url, err), err)
		return
	}
	co.mu.Lock()
	l.remote = st.ID
	l.expires = time.Now().Add(co.cfg.LeaseDuration)
	co.journalLeaseLocked(l)
	cancelled := l.cancelled
	co.mu.Unlock()

	for !cancelled {
		if st.State == service.StateDone {
			raw, err := l.w.sub.ReportArtifact(co.ctx, st.ID)
			if err != nil {
				co.leaseFailed(l, fmt.Sprintf("fetching artifact from %s: %v", l.w.url, err), err)
				return
			}
			co.deliver(l, raw)
			return
		}
		if st.State == service.StateFailed {
			// Worker-reported failure. It may be deterministic (a bad spec —
			// rare, the coordinator validates upfront) or transient (the
			// worker was shutting down and abandoned the job); both re-queue
			// until MaxAttempts, which bounds the deterministic case.
			co.mu.Lock()
			co.failLeaseLocked(l, fmt.Sprintf("worker %s: %s", l.w.url, st.Error))
			co.mu.Unlock()
			return
		}
		select {
		case <-co.ctx.Done():
			return
		case <-time.After(co.cfg.PollInterval):
		}
		st, err = l.w.sub.Job(co.ctx, st.ID)
		if err != nil {
			co.leaseFailed(l, fmt.Sprintf("polling %s: %v", l.w.url, err), err)
			return
		}
		co.mu.Lock()
		if !l.cancelled {
			// The worker is answering: renew the lease.
			l.expires = time.Now().Add(co.cfg.LeaseDuration)
			co.met.leaseRenewals.Inc()
		}
		cancelled = l.cancelled
		co.mu.Unlock()
	}
}

// failLeaseLocked handles every way a lease ends without delivering: release
// the slot and, when this was the unit's last active lease, re-queue the unit
// (below MaxAttempts) or fail the job. A unit whose speculative duplicate is
// still running is left to that copy. Callers hold co.mu.
func (co *Coordinator) failLeaseLocked(l *lease, msg string) {
	if l.cancelled {
		return // already expired/superseded; the monitor handled the unit
	}
	co.releaseLocked(l)
	u := l.unit
	u.leases = dropLease(u.leases, l)
	j := u.job
	if u.finished || j.state == service.StateDone || j.state == service.StateFailed {
		return
	}
	if len(u.leases) > 0 {
		return // a speculative copy is still in flight
	}
	if u.attempts >= co.cfg.MaxAttempts {
		u.state = service.StateFailed
		co.events.Emit(obs.Event{
			Event: obs.EventUnitFailed, Trace: j.trace, Job: j.id,
			Experiment: j.experiment, Unit: unitName(u), Worker: l.w.url, Detail: msg,
		})
		co.completeLocked(j, service.StateFailed,
			fmt.Sprintf("unit %s failed after %d attempts: %s", unitName(u), u.attempts, msg), true)
		return
	}
	// Every path here — an expired lease, a dead worker, a transport error, a
	// worker-reported failure — ends in the same re-dispatch, counted once.
	co.met.expiredRe.Inc()
	co.events.Emit(obs.Event{
		Event: obs.EventUnitRedispatched, Trace: j.trace, Job: j.id,
		Experiment: j.experiment, Unit: unitName(u), Worker: l.w.url, Detail: msg,
	})
	log.Printf("federation: re-queueing %s unit %s (attempt %d): %s", j.id, unitName(u), u.attempts, msg)
	u.state = service.StateQueued
	co.enqueueLocked(u)
}

// unitName names a unit for logs and errors.
func unitName(u *funit) string {
	if u.shard.Enabled() {
		return u.shard.String()
	}
	return "0/1"
}

// dropLease removes one lease from a slice.
func dropLease(ls []*lease, l *lease) []*lease {
	out := ls[:0]
	for _, x := range ls {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}

// leaseMonitor expires overdue leases and speculatively re-dispatches
// stragglers.
func (co *Coordinator) leaseMonitor() {
	defer co.wg.Done()
	period := co.cfg.LeaseDuration / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-co.ctx.Done():
			return
		case <-tick.C:
		}
		co.monitorRound()
	}
}

func (co *Coordinator) monitorRound() {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := time.Now()
	for _, j := range co.jobs {
		if j.state != service.StateRunning && j.state != service.StateQueued {
			continue
		}
		for _, u := range j.units {
			if u.finished {
				continue
			}
			// Expired leases: the worker stopped renewing (died, wedged, or
			// unreachable) — re-queue elsewhere.
			for _, l := range u.leases {
				if !l.cancelled && now.After(l.expires) {
					co.met.leaseExpiries.Inc()
					co.failLeaseLocked(l, fmt.Sprintf("lease on %s expired", l.w.url))
				}
			}
			// Stragglers: one active lease, runtime far beyond the fleet
			// mean — dispatch a speculative duplicate; first completion wins.
			if len(u.leases) == 1 && !u.queued && u.attempts < co.cfg.MaxAttempts {
				l := u.leases[0]
				threshold := co.cfg.StragglerMin
				if mean := time.Duration(co.cfg.StragglerFactor * co.meanUnitNs); mean > threshold {
					threshold = mean
				}
				if now.Sub(l.started) > threshold {
					co.met.speculative.Inc()
					co.events.Emit(obs.Event{
						Event: obs.EventSpeculative, Trace: j.trace, Job: j.id,
						Experiment: j.experiment, Unit: unitName(u), Worker: l.w.url,
						Detail: fmt.Sprintf("%.1fs > %.1fs threshold", now.Sub(l.started).Seconds(), threshold.Seconds()),
					})
					log.Printf("federation: %s unit %s is a straggler on %s (%.1fs > %.1fs); dispatching a duplicate",
						j.id, unitName(u), l.w.url, now.Sub(l.started).Seconds(), threshold.Seconds())
					co.enqueueLocked(u)
				}
			}
		}
	}
}

// deliver folds one completed unit's artifact into its job: the first copy
// wins, later duplicates are discarded (bit-exact by construction), shard
// partials are cached under their content address and merged incrementally,
// and the last unit finalises the job.
func (co *Coordinator) deliver(l *lease, raw []byte) {
	u := l.unit
	j := u.job
	var rep *experiments.Report
	if u.shard.Enabled() {
		var err error
		rep, err = decodePartial(raw)
		if err != nil {
			co.mu.Lock()
			co.failLeaseLocked(l, fmt.Sprintf("decoding partial from %s: %v", l.w.url, err))
			co.mu.Unlock()
			return
		}
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	dur := time.Since(l.started)
	if !l.cancelled {
		co.releaseLocked(l)
	}
	u.leases = dropLease(u.leases, l)
	if u.finished || j.state == service.StateDone || j.state == service.StateFailed {
		return // a duplicate (speculation or expiry re-dispatch) already delivered
	}
	if co.meanUnitNs == 0 {
		co.meanUnitNs = float64(dur)
	} else {
		co.meanUnitNs = 0.8*co.meanUnitNs + 0.2*float64(dur)
	}
	if l.w.meanUnitNs == 0 {
		l.w.meanUnitNs = float64(dur)
	} else {
		l.w.meanUnitNs = 0.8*l.w.meanUnitNs + 0.2*float64(dur)
	}
	co.met.unitDur.Observe(dur.Seconds())
	co.events.Emit(obs.Event{
		Event: obs.EventUnitFinished, Trace: j.trace, Job: j.id,
		Experiment: j.experiment, Unit: unitName(u), Worker: l.w.url,
		Detail: dur.Round(time.Millisecond).String(),
	})
	// Cancel any other outstanding copies of this unit; their pollers exit.
	for _, ol := range u.leases {
		co.releaseLocked(ol)
	}
	u.leases = nil
	if !u.shard.Enabled() {
		// Unsharded: the worker's complete artifact is proxied verbatim, so
		// the coordinator's bytes are the worker's bytes are the local run's.
		u.finished = true
		u.state = service.StateDone
		j.remaining--
		j.artifact = raw
		co.putCacheLocked(j.hash, raw)
		co.completeLocked(j, service.StateDone, "", true)
		return
	}
	co.putCacheLocked(experiments.ShardSpecHash(j.experiment, j.spec, u.shard), raw)
	if err := co.foldLocked(u, rep); err != nil {
		u.state = service.StateFailed
		co.completeLocked(j, service.StateFailed, err.Error(), true)
	}
}

// foldLocked merges one shard partial into its job, finalising the job when
// it was the last. Callers hold co.mu.
func (co *Coordinator) foldLocked(u *funit, rep *experiments.Report) error {
	j := u.job
	if err := j.merger.Add(rep); err != nil {
		return err
	}
	u.finished = true
	u.state = service.StateDone
	j.remaining--
	if j.remaining == 0 {
		co.finalizeLocked(j)
	}
	return nil
}

// finalizeLocked renders the merged artifact and completes the job. The
// merger's exact-path refold makes the bytes identical to a local
// `cmd/experiments run -o`. Callers hold co.mu.
func (co *Coordinator) finalizeLocked(j *fedJob) {
	rep, err := j.merger.Report()
	if err != nil {
		co.completeLocked(j, service.StateFailed, err.Error(), true)
		return
	}
	var buf bytes.Buffer
	if err := experiments.WriteArtifact(&buf, []*experiments.Report{rep}); err != nil {
		co.completeLocked(j, service.StateFailed, err.Error(), true)
		return
	}
	j.artifact = buf.Bytes()
	co.events.Emit(obs.Event{
		Event: obs.EventMerge, Trace: j.trace, Job: j.id, Experiment: j.experiment,
		Detail: fmt.Sprintf("%d shard partials", len(j.units)),
	})
	co.putCacheLocked(j.hash, j.artifact)
	co.completeLocked(j, service.StateDone, "", true)
}

// putCacheLocked stores one artifact, counting and logging (not failing) on
// error. Callers hold co.mu.
func (co *Coordinator) putCacheLocked(hash string, raw []byte) {
	if err := co.cache.Put(hash, raw); err != nil {
		co.met.cacheWriteErr.Inc()
		log.Printf("federation: artifact cache write failed (kept in memory): %v", err)
	}
}
