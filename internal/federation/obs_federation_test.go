package federation_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"battsched/internal/experiments"
	"battsched/internal/federation"
	"battsched/internal/obs"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

// scrape fetches base/metrics and parses the exposition.
func scrape(t *testing.T, base string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(body)
	if err != nil {
		t.Fatalf("parse /metrics: %v\n%s", err, body)
	}
	return samples
}

// mustFind fails the test when the sample is absent.
func mustFind(t *testing.T, samples []obs.Sample, name string, labels ...string) float64 {
	t.Helper()
	s, ok := obs.Find(samples, name, labels...)
	if !ok {
		t.Fatalf("metric %s%v not exposed", name, labels)
	}
	return s.Value
}

// startTracedCoordinator is startCoordinator exposing the httptest base URL,
// which the observability tests need for GET /metrics.
func startTracedCoordinator(t *testing.T, cfg federation.Config) (*federation.Coordinator, *client.Client, string) {
	t.Helper()
	co, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		ts.Close()
		co.Close()
	})
	return co, client.New(ts.URL), ts.URL
}

// TestFleetHealthMatchesMetrics pins the coordinator's observability
// contract: the fleet view /healthz reports must equal the corresponding
// /metrics series (shared counters read the same registry; gauges read the
// same mutex-guarded fields).
func TestFleetHealthMatchesMetrics(t *testing.T) {
	_, tsA := startWorker(t, service.Config{})
	_, tsB := startWorker(t, service.Config{})
	co, c, base := startTracedCoordinator(t, fastConfig(tsA.URL, tsB.URL))

	waitFor(t, "both workers live", func() bool {
		h := co.Health()
		return h.Fleet != nil && h.Fleet.LiveWorkers == 2
	})

	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	req := service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(spec), Shards: 2}
	ctx := context.Background()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	// Resubmission: cache-served, so the cached admission counter moves too.
	if st, err = c.Submit(ctx, req); err != nil {
		t.Fatal(err)
	} else if !st.Cached {
		t.Fatalf("resubmission not served from cache: %+v", st)
	}

	h := co.Health()
	if h.Fleet == nil {
		t.Fatal("coordinator Health has no fleet view")
	}
	samples := scrape(t, base)

	if got := mustFind(t, samples, "battsched_jobs_total", "admission", "computed"); got != 1 {
		t.Errorf("jobs_total{computed} = %v, want 1", got)
	}
	if got := mustFind(t, samples, "battsched_jobs_total", "admission", "cached"); got != 1 {
		t.Errorf("jobs_total{cached} = %v, want 1", got)
	}
	for _, pin := range []struct {
		metric string
		health int
	}{
		{"battsched_fleet_workers", h.Fleet.Workers},
		{"battsched_fleet_live_workers", h.Fleet.LiveWorkers},
		{"battsched_fleet_slots", h.Fleet.Slots},
		{"battsched_fleet_free_slots", h.Fleet.FreeSlots},
		{"battsched_fleet_queued_units", h.Fleet.QueuedUnits},
		{"battsched_fleet_leased_units", h.Fleet.LeasedUnits},
		{"battsched_fleet_expired_redispatches_total", h.Fleet.ExpiredRedispatches},
		{"battsched_fleet_speculative_dispatches_total", h.Fleet.SpeculativeDispatches},
		{"battsched_cache_hits_total", h.CacheHits},
		{"battsched_cache_misses_total", h.CacheMisses},
		{"battsched_queue_depth", h.QueueDepth},
		{"battsched_jobs_tracked", h.Jobs},
		{"battsched_cache_entries", h.CacheEntries},
	} {
		if got := mustFind(t, samples, pin.metric); got != float64(pin.health) {
			t.Errorf("%s = %v, /healthz says %d", pin.metric, got, pin.health)
		}
	}
	if got := mustFind(t, samples, "battsched_unit_duration_seconds_count"); got < 2 {
		t.Errorf("unit_duration_seconds_count = %v, want >= 2 (2 shard units delivered)", got)
	}
	// Per-worker series, labelled by worker URL, both live.
	for _, url := range []string{tsA.URL, tsB.URL} {
		if got := mustFind(t, samples, "battsched_worker_up", "worker", url); got != 1 {
			t.Errorf("worker_up{worker=%s} = %v, want 1", url, got)
		}
	}
}

// TestFederatedTraceRoundTrip is the tracing acceptance pin: one
// client-chosen trace id, stamped as X-Trace-Id on the submission, threads
// the coordinator's event log AND the worker daemons' event logs, so
// filtering every log by that one id reconstructs the job's complete
// fleet-wide lifecycle.
func TestFederatedTraceRoundTrip(t *testing.T) {
	coordDir, dirA, dirB := t.TempDir(), t.TempDir(), t.TempDir()
	_, tsA := startWorker(t, service.Config{CacheDir: dirA})
	_, tsB := startWorker(t, service.Config{CacheDir: dirB})
	cfg := fastConfig(tsA.URL, tsB.URL)
	cfg.CacheDir = coordDir
	co, c, _ := startTracedCoordinator(t, cfg)

	waitFor(t, "both workers live", func() bool {
		h := co.Health()
		return h.Fleet != nil && h.Fleet.LiveWorkers == 2
	})

	const trace = "cafe0123cafe0123cafe0123cafe0123"
	req := service.JobRequest{
		Experiment: "table2",
		Spec:       service.SpecRequestFrom(experiments.Spec{Quick: true, Battery: "kibam"}),
		TraceID:    trace,
		Shards:     4,
	}
	ctx := context.Background()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != trace {
		t.Fatalf("status TraceID = %q, want %q", st.TraceID, trace)
	}
	if st, err = c.Wait(ctx, st.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}

	// Coordinator log: admission, one lease and one delivery per unit, the
	// merge, and the terminal state — all under the submitted trace id.
	coEvents, err := obs.ReadEvents(filepath.Join(coordDir, "events.jsonl"), trace)
	if err != nil {
		t.Fatal(err)
	}
	coCounts := map[string]int{}
	for _, e := range coEvents {
		coCounts[e.Event]++
		if e.Event == obs.EventUnitLeased && e.Worker == "" {
			t.Errorf("unit_leased event without a worker: %+v", e)
		}
	}
	if coCounts[obs.EventJobAccepted] != 1 {
		t.Errorf("coordinator job_accepted = %d, want 1", coCounts[obs.EventJobAccepted])
	}
	if coCounts[obs.EventUnitLeased] < 4 {
		t.Errorf("coordinator unit_leased = %d, want >= 4", coCounts[obs.EventUnitLeased])
	}
	if coCounts[obs.EventUnitFinished] != 4 {
		t.Errorf("coordinator unit_finished = %d, want 4", coCounts[obs.EventUnitFinished])
	}
	if coCounts[obs.EventMerge] != 1 || coCounts[obs.EventJobDone] != 1 {
		t.Errorf("coordinator merge/job_done = %d/%d, want 1/1",
			coCounts[obs.EventMerge], coCounts[obs.EventJobDone])
	}

	// Worker logs: the coordinator forwards X-Trace-Id on every dispatched
	// unit, so each worker's execution records carry the same id. Units may
	// land on either worker; merge both logs.
	var wEvents []obs.Event
	for _, dir := range []string{dirA, dirB} {
		evs, err := obs.ReadEvents(filepath.Join(dir, "events.jsonl"), trace)
		if err != nil {
			t.Fatal(err)
		}
		wEvents = append(wEvents, evs...)
	}
	wCounts := map[string]int{}
	for _, e := range wEvents {
		wCounts[e.Event]++
	}
	if wCounts[obs.EventJobAccepted] != 4 {
		t.Errorf("worker job_accepted = %d, want 4 (one per dispatched unit)", wCounts[obs.EventJobAccepted])
	}
	if wCounts[obs.EventUnitStarted] != 4 || wCounts[obs.EventUnitFinished] != 4 {
		t.Errorf("worker unit events = %d started / %d finished, want 4/4",
			wCounts[obs.EventUnitStarted], wCounts[obs.EventUnitFinished])
	}

	// An unrelated id filters everything out: the logs stay per-trace clean.
	other, err := obs.ReadEvents(filepath.Join(coordDir, "events.jsonl"), obs.NewTraceID())
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != 0 {
		t.Errorf("unrelated trace matched %d coordinator events", len(other))
	}
}

// TestWorkerDownEventReason pins the structured worker-down verdict: killing
// a worker's transport mid-heartbeat produces a worker_down event whose
// Reason is heartbeat-miss, and the per-reason counter moves with it.
func TestWorkerDownEventReason(t *testing.T) {
	coordDir := t.TempDir()
	_, tsA := startWorker(t, service.Config{})
	cfg := fastConfig(tsA.URL)
	cfg.CacheDir = coordDir
	co, _, base := startTracedCoordinator(t, cfg)

	waitFor(t, "worker live", func() bool {
		h := co.Health()
		return h.Fleet != nil && h.Fleet.LiveWorkers == 1
	})
	tsA.CloseClientConnections()
	tsA.Close()
	waitFor(t, "worker marked down", func() bool {
		h := co.Health()
		return h.Fleet != nil && h.Fleet.LiveWorkers == 0
	})

	events, err := obs.ReadEvents(filepath.Join(coordDir, "events.jsonl"), "")
	if err != nil {
		t.Fatal(err)
	}
	var down *obs.Event
	for i := range events {
		if events[i].Event == obs.EventWorkerDown {
			down = &events[i]
		}
	}
	if down == nil {
		t.Fatal("no worker_down event emitted")
	}
	if down.Reason != obs.ReasonHeartbeatMiss {
		t.Errorf("worker_down reason = %q, want %q", down.Reason, obs.ReasonHeartbeatMiss)
	}
	if down.Worker != tsA.URL {
		t.Errorf("worker_down worker = %q, want %q", down.Worker, tsA.URL)
	}
	samples := scrape(t, base)
	if got := mustFind(t, samples, "battsched_worker_down_total", "reason", obs.ReasonHeartbeatMiss); got < 1 {
		t.Errorf("worker_down_total{heartbeat-miss} = %v, want >= 1", got)
	}
	if got := mustFind(t, samples, "battsched_worker_up", "worker", tsA.URL); got != 0 {
		t.Errorf("worker_up{%s} = %v after death, want 0", tsA.URL, got)
	}
}
