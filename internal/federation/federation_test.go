package federation_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/federation"
	"battsched/internal/service"
	"battsched/internal/service/client"
)

// fastConfig returns coordinator timings suitable for tests: heartbeats and
// polls in the tens of milliseconds, speculation disabled unless a test
// enables it.
func fastConfig(workers ...string) federation.Config {
	return federation.Config{
		Workers:           workers,
		HeartbeatInterval: 20 * time.Millisecond,
		DeadAfter:         2,
		LeaseDuration:     500 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		StragglerMin:      time.Hour, // no speculation unless the test wants it
		MaxAttempts:       5,
	}
}

// startWorker spins one in-process battschedd behind an httptest server.
func startWorker(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// startCoordinator spins a coordinator behind an httptest server.
func startCoordinator(t *testing.T, cfg federation.Config) (*federation.Coordinator, *client.Client) {
	t.Helper()
	co, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		ts.Close()
		co.Close()
	})
	return co, client.New(ts.URL)
}

// localArtifact renders the local run's artifact — the byte-identity target.
func localArtifact(t *testing.T, name string, spec experiments.Spec) []byte {
	t.Helper()
	rep, err := experiments.Run(context.Background(), name, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiments.WriteArtifact(&buf, []*experiments.Report{rep}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// blockingHook returns a FaultHook that wedges every unit until the returned
// release func is called (or the worker shuts down).
func blockingHook() (func(context.Context, string, experiments.Shard) error, func()) {
	gate := make(chan struct{})
	var once sync.Once
	hook := func(ctx context.Context, _ string, _ experiments.Shard) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-gate:
			return nil
		}
	}
	return hook, func() { once.Do(func() { close(gate) }) }
}

// TestFederatedJobSurvivesWorkerDeath is the acceptance pin: a 4-shard job
// across 2 workers, one killed while its units are in flight, still completes
// with an artifact byte-identical to the local `run -o` file. The dead
// worker's leases are re-dispatched to the survivor.
func TestFederatedJobSurvivesWorkerDeath(t *testing.T) {
	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	want := localArtifact(t, "table2", spec)

	// Worker A wedges every unit: its leases only resolve by A dying.
	hookA, releaseA := blockingHook()
	defer releaseA()
	srvA, tsA := startWorker(t, service.Config{FaultHook: hookA})
	_, tsB := startWorker(t, service.Config{})

	var toA atomic.Int32
	cfg := fastConfig(tsA.URL) // A only, so its units land there first
	// Production-shaped failure budget: the default 3 attempts, and a
	// DeadAfter the heartbeat cannot reach within the test. Recovery must
	// come from the transport-error path marking A down on the first
	// refused connection — without it, re-queued units keep picking the
	// zero-lease corpse (it looks like the freest worker) and burn through
	// MaxAttempts before any heartbeat verdict.
	cfg.MaxAttempts = 3
	cfg.DeadAfter = 1 << 30
	cfg.OnDispatch = func(_ string, _ experiments.Shard, worker string) {
		if worker == tsA.URL {
			toA.Add(1)
		}
	}
	co, c := startCoordinator(t, cfg)

	ctx := context.Background()
	st, err := c.Submit(ctx, service.JobRequest{
		Experiment: "table2", Spec: service.SpecRequestFrom(spec), Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a unit dispatched to worker A", func() bool { return toA.Load() > 0 })
	co.AddWorker(tsB.URL)
	// Kill A mid-run: its HTTP endpoint vanishes and its in-flight units die.
	tsA.CloseClientConnections()
	tsA.Close()
	srvA.Close()

	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job = %s (%s), want done", final.State, final.Error)
	}
	got, err := c.ReportArtifact(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("federated artifact differs from local run -o (%d vs %d bytes)", len(got), len(want))
	}
	h := co.Health()
	if h.Fleet == nil || h.Fleet.ExpiredRedispatches == 0 {
		t.Fatalf("fleet health = %+v, want re-dispatches after worker death", h.Fleet)
	}
	if h.Fleet.LiveWorkers != 1 || h.Fleet.Workers != 2 {
		t.Fatalf("fleet health = %+v, want 1 of 2 workers live", h.Fleet)
	}
}

// TestCoordinatorRestartResumesFromJournal pins the journal contract: a
// coordinator killed mid-job resumes it on restart under the original ID,
// folds the partials it already cached without re-dispatching them, and the
// finished artifact is byte-identical to the local run.
func TestCoordinatorRestartResumesFromJournal(t *testing.T) {
	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	want := localArtifact(t, "table2", spec)
	dir := t.TempDir()

	// The worker wedges shard 1/2 until released; 0/2 computes immediately.
	gate := make(chan struct{})
	var execs sync.Map // shard string -> *atomic.Int32
	hook := func(ctx context.Context, _ string, shard experiments.Shard) error {
		n, _ := execs.LoadOrStore(shard.String(), new(atomic.Int32))
		n.(*atomic.Int32).Add(1)
		if shard.String() == "1/2" {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-gate:
			}
		}
		return nil
	}
	_, tsW := startWorker(t, service.Config{FaultHook: hook})

	cfg := fastConfig(tsW.URL)
	cfg.CacheDir = dir
	co1, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := co1.Submit(service.JobRequest{
		Experiment: "table2", Spec: service.SpecRequestFrom(spec), Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "shard 0/2 delivered to the coordinator", func() bool {
		js, err := co1.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range js.Shards {
			if sh.Shard == "0/2" && sh.State == service.StateDone {
				return true
			}
		}
		return false
	})
	co1.Close() // kill mid-job: 1/2 still wedged on the worker

	// The worker outlives the coordinator; release the gate so its in-flight
	// 1/2 unit finishes (and lands in the worker's own cache).
	close(gate)

	var dispatched []string
	var mu sync.Mutex
	cfg2 := cfg
	cfg2.OnDispatch = func(_ string, shard experiments.Shard, _ string) {
		mu.Lock()
		dispatched = append(dispatched, shard.String())
		mu.Unlock()
	}
	co2, err := federation.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()

	// The job resumes under its original ID.
	waitFor(t, "replayed job to finish", func() bool {
		js, err := co2.Job(st.ID)
		if err != nil {
			return false
		}
		if js.State == service.StateFailed {
			t.Fatalf("replayed job failed: %s", js.Error)
		}
		return js.State == service.StateDone
	})
	got, err := co2.Artifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart artifact differs from local run -o (%d vs %d bytes)", len(got), len(want))
	}
	// The cached 0/2 partial folded straight from disk: never re-dispatched.
	mu.Lock()
	defer mu.Unlock()
	for _, sh := range dispatched {
		if sh == "0/2" {
			t.Fatalf("cached unit 0/2 was re-dispatched after restart (dispatches: %v)", dispatched)
		}
	}
	if len(dispatched) == 0 {
		t.Fatal("restart dispatched nothing; expected unit 1/2")
	}
	// And the worker never re-executed either shard: the re-dispatched 1/2
	// was a cache hit (or coalesced onto the in-flight run) there.
	for _, sh := range []string{"0/2", "1/2"} {
		n, ok := execs.Load(sh)
		if !ok {
			t.Fatalf("shard %s never executed on the worker", sh)
		}
		if got := n.(*atomic.Int32).Load(); got != 1 {
			t.Fatalf("shard %s executed %d times on the worker, want exactly 1", sh, got)
		}
	}
}

// TestSpeculativeRedispatchFirstCompletionWins pins straggler handling: units
// wedged on a slow worker get speculative duplicates on another worker, the
// duplicate's completion finishes the job, and the artifact stays
// byte-identical (the late copy is discarded).
func TestSpeculativeRedispatchFirstCompletionWins(t *testing.T) {
	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	want := localArtifact(t, "table2", spec)

	hookA, releaseA := blockingHook()
	defer releaseA()
	_, tsA := startWorker(t, service.Config{FaultHook: hookA})
	_, tsB := startWorker(t, service.Config{})

	var toA atomic.Int32
	cfg := fastConfig(tsA.URL)
	cfg.StragglerMin = 50 * time.Millisecond
	cfg.StragglerFactor = 3
	cfg.LeaseDuration = time.Minute // expiry must not beat speculation here
	cfg.OnDispatch = func(_ string, _ experiments.Shard, worker string) {
		if worker == tsA.URL {
			toA.Add(1)
		}
	}
	co, c := startCoordinator(t, cfg)

	ctx := context.Background()
	st, err := c.Submit(ctx, service.JobRequest{
		Experiment: "table2", Spec: service.SpecRequestFrom(spec), Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a unit dispatched to the slow worker", func() bool { return toA.Load() > 0 })
	co.AddWorker(tsB.URL)

	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job = %s (%s), want done", final.State, final.Error)
	}
	got, err := c.ReportArtifact(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("artifact differs from local run -o after speculation")
	}
	if h := co.Health(); h.Fleet == nil || h.Fleet.SpeculativeDispatches == 0 {
		t.Fatalf("fleet health = %+v, want speculative dispatches", h.Fleet)
	}
}

// TestUnshardedProxyAndCache pins the unsharded path: the coordinator proxies
// the worker's complete artifact verbatim, and a resubmission of the same
// spec answers from the coordinator's cache.
func TestUnshardedProxyAndCache(t *testing.T) {
	spec := experiments.Spec{Quick: true, Battery: "kibam"}
	want := localArtifact(t, "table2", spec)
	_, tsW := startWorker(t, service.Config{})
	_, c := startCoordinator(t, fastConfig(tsW.URL))

	ctx := context.Background()
	req := service.JobRequest{Experiment: "table2", Spec: service.SpecRequestFrom(spec)}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job = %s (%s)", final.State, final.Error)
	}
	got, err := c.ReportArtifact(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("proxied unsharded artifact differs from local run -o")
	}

	st2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != service.StateDone {
		t.Fatalf("resubmission = %+v, want cached done", st2)
	}
	got2, err := c.ReportArtifact(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("cached artifact differs")
	}
}

// TestCoordinatorValidation pins coordinator-side admission errors.
func TestCoordinatorValidation(t *testing.T) {
	_, tsW := startWorker(t, service.Config{})
	co, _ := startCoordinator(t, fastConfig(tsW.URL))
	cases := []service.JobRequest{
		{Experiment: "nope"},
		{Experiment: "table2", Shard: "0/2"}, // unit jobs are for workers
		{Experiment: "curve", Shards: 4},     // deterministic: no sharding
		{Experiment: "table2", Shards: -1},
	}
	for _, req := range cases {
		if _, err := co.Submit(req); err == nil {
			t.Fatalf("request %+v admitted, want error", req)
		}
	}
	if _, err := co.Artifact("job-999999"); !errors.Is(err, service.ErrUnknownJob) {
		t.Fatalf("unknown artifact err = %v", err)
	}
}
