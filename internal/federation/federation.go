// Package federation implements the fleet coordinator of the experiment
// service: a daemon that accepts the same POST /v1/jobs API as a single
// battschedd worker (internal/service) but executes nothing itself. Instead
// it keeps a registry of remote battschedd workers — registered at start or
// over POST /v1/workers, health-checked by periodic heartbeat against their
// /healthz — splits every accepted job into shard units, and dispatches the
// units to workers under time-bounded leases through the typed client.
//
// Each unit rides the worker's own machinery: it is submitted as a
// single-shard job (JobRequest.Shard "i/n") content-addressed by the
// partial's hash, so a re-dispatch of a unit another worker already computed
// is a cache hit, and a re-dispatch of a unit the same worker is still
// computing coalesces onto the in-flight run. That idempotence is what makes
// the coordinator's failure handling simple: leases that expire (worker died
// or became unreachable) re-queue their units, stragglers (unit runtime
// beyond StragglerFactor × the fleet's mean unit time) get a speculative
// duplicate on another worker, the first completed copy wins, and duplicates
// are discarded — every copy of a shard partial is bit-exact.
//
// Shard partials fold into the job's report incrementally as they arrive
// (experiments.ReportMerger), so the merged artifact is ready the moment the
// last unit lands and is byte-identical to the local `cmd/experiments run -o`
// file. Accepted jobs and unit leases are journaled through
// internal/service/journal; a restarted coordinator resumes dispatch from the
// journal, folding already-cached partials instead of re-running them and
// preferring each unit's journaled worker (where the result is likely cached
// or still in flight).
package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"battsched/internal/experiments"
	"battsched/internal/obs"
	"battsched/internal/service"
	"battsched/internal/service/cache"
	"battsched/internal/service/client"
	"battsched/internal/service/journal"
)

// shutdownMsg is the terminal failure message of jobs abandoned by
// coordinator shutdown. Their journal records survive for the next start.
const shutdownMsg = "coordinator shut down before the job finished"

// Config configures a Coordinator. The zero value of every field selects a
// sensible default; Workers may be empty when workers register over HTTP.
type Config struct {
	// Workers are the base URLs of the initial worker fleet
	// ("http://127.0.0.1:8345"). More can register over POST /v1/workers.
	Workers []string
	// HeartbeatInterval is the /healthz probe period per worker (<= 0
	// selects 1 s).
	HeartbeatInterval time.Duration
	// DeadAfter is the number of consecutive failed heartbeats after which a
	// worker is considered dead and its leases expire immediately (<= 0
	// selects 3).
	DeadAfter int
	// LeaseDuration bounds each dispatched unit's lease (<= 0 selects 15 s).
	// Successful status polls renew the lease, so a healthy long-running
	// unit keeps its lease alive; the lease only expires when the worker
	// stops answering.
	LeaseDuration time.Duration
	// PollInterval is the remote job status poll period (<= 0 selects
	// 100 ms).
	PollInterval time.Duration
	// StragglerFactor marks a unit a straggler once its runtime exceeds this
	// multiple of the fleet's mean unit time (EWMA); stragglers get one
	// speculative duplicate dispatch on another worker (<= 0 selects 3).
	StragglerFactor float64
	// StragglerMin is the minimum runtime before a unit can be called a
	// straggler, so short jobs don't speculate on scheduling noise (<= 0
	// selects 2 s).
	StragglerMin time.Duration
	// MaxAttempts bounds dispatch attempts per unit before the job fails
	// (<= 0 selects 3; speculative duplicates count).
	MaxAttempts int
	// CacheDir is the coordinator's content-addressed artifact store: full
	// merged artifacts and shard partials both live here, and a non-empty
	// CacheDir also enables the job journal (accepted jobs + unit leases)
	// that makes restart resume dispatch. "" keeps everything memory-only.
	CacheDir string
	// CacheEntries bounds the cache's in-memory LRU tier (<= 0 selects 64).
	CacheEntries int
	// JournalFsync syncs every journal record to stable storage (see
	// service.Config.JournalFsync).
	JournalFsync bool
	// MaxJobs bounds the job map like service.Config.MaxJobs (<= 0 selects
	// 1024).
	MaxJobs int
	// QueueCapacity bounds the number of shard units queued or leased at
	// once (<= 0 selects 256); submissions beyond it reject with 429 and a
	// Retry-After estimate.
	QueueCapacity int
	// OnDispatch, when non-nil, observes every unit dispatch (job ID, the
	// unit's shard, the worker URL) just before the unit is submitted to the
	// worker. Tests use it to count dispatches and to gate execution; leave
	// nil in production.
	OnDispatch func(jobID string, shard experiments.Shard, worker string)
}

func (cfg *Config) fillDefaults() {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = 15 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 3
	}
	if cfg.StragglerMin <= 0 {
		cfg.StragglerMin = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 256
	}
}

// worker is one registered battschedd.
type worker struct {
	url        string
	sub        *client.Client // submits and polls: a couple of retries absorb restarts
	probe      *client.Client // heartbeats: fail fast, the heartbeat loop is the retry
	live       bool
	fails      int     // consecutive failed heartbeats
	slots      int     // the worker's pool size, from its last health snapshot
	leased     int     // units this coordinator currently leases to it
	meanUnitNs float64 // per-worker EWMA of dispatch-to-delivery unit time
}

// fedJob is one accepted coordinator job.
type fedJob struct {
	id         string
	trace      string // fleet-wide trace id, forwarded on every unit dispatch
	experiment string
	hash       string // the complete run's content address
	specReq    service.SpecRequest
	spec       experiments.Spec
	shards     int // requested fan-out (0/1 = unsharded single unit)
	state      string
	cached     bool
	coalesced  bool
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	units      []*funit
	merger     *experiments.ReportMerger // nil for unsharded jobs
	remaining  int
	followers  []*fedJob
	artifact   []byte
}

// funit is one dispatchable shard unit of a job.
type funit struct {
	job      *fedJob
	shard    experiments.Shard // disabled for the single unit of an unsharded job
	state    string
	finished bool // a partial was delivered (first completion won)
	queued   bool // currently waiting in the dispatch queue
	attempts int  // dispatches so far (speculative duplicates count)
	leases   []*lease
	prefer   string // journaled worker URL to prefer on restart replay
	started  time.Time
}

// lease is one outstanding dispatch of a unit to a worker.
type lease struct {
	unit      *funit
	w         *worker
	remote    string // the worker's job ID, once known
	started   time.Time
	expires   time.Time
	cancelled bool // expired or superseded; the poll goroutine stops
}

// Coordinator is the federation daemon. Construct with New, expose with
// Handler, stop with Shutdown (drain) or Close (immediate).
type Coordinator struct {
	cfg          Config
	cache        *cache.Cache
	ctx          context.Context
	cancel       context.CancelFunc
	wg           sync.WaitGroup
	mu           sync.Mutex
	cond         *sync.Cond // signalled when the queue or fleet capacity changes
	workers      map[string]*worker
	jobs         map[string]*fedJob
	inflight     map[string]*fedJob // complete-run hash -> leader job
	journal      *journal.Journal
	terminal     []string
	queue        []*funit // FIFO dispatch queue
	queuedPeak   int      // high-water mark of len(queue)
	seq          int
	draining     bool
	shutdownOnce sync.Once
	shutdownDone chan struct{}

	metrics *obs.Registry
	met     fedMetrics
	events  *obs.EventLog // nil without CacheDir

	meanUnitNs float64 // EWMA of dispatch-to-delivery unit time
}

// New constructs a coordinator, replays its journal (when CacheDir is set)
// and starts the heartbeat, dispatcher and lease-monitor loops.
func New(cfg Config) (*Coordinator, error) {
	cfg.fillDefaults()
	c, err := cache.New(cfg.CacheDir, cfg.CacheEntries)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		cfg:          cfg,
		cache:        c,
		ctx:          ctx,
		cancel:       cancel,
		workers:      make(map[string]*worker),
		jobs:         make(map[string]*fedJob),
		inflight:     make(map[string]*fedJob),
		shutdownDone: make(chan struct{}),
	}
	co.cond = sync.NewCond(&co.mu)
	co.metrics = obs.NewRegistry()
	co.met = newFedMetrics(co.metrics)
	co.registerGauges()
	for _, url := range cfg.Workers {
		co.addWorkerLocked(url)
		co.registerWorkerMetrics(url)
	}
	var backlog []journal.Accept
	if cfg.CacheDir != "" {
		co.journal, backlog, err = journal.Open(filepath.Join(cfg.CacheDir, "journal.jsonl"), cfg.JournalFsync)
		if err != nil {
			cancel()
			return nil, err
		}
		co.events, err = obs.OpenEventLog(filepath.Join(cfg.CacheDir, "events.jsonl"))
		if err != nil {
			// Observability must not take the coordinator down: run without
			// the event log (Emit on nil is a no-op).
			log.Printf("federation: opening event log: %v", err)
			co.events = nil
		}
	}
	co.mu.Lock()
	for _, rec := range backlog {
		co.replayLocked(rec)
	}
	co.mu.Unlock()
	co.wg.Add(3)
	go co.heartbeatLoop()
	go co.dispatcher()
	go co.leaseMonitor()
	return co, nil
}

// AddWorker registers one worker URL (idempotent). The next heartbeat
// round-trip makes it live and dispatchable.
func (co *Coordinator) AddWorker(url string) {
	// Per-worker gauges register BEFORE co.mu is taken: registration takes the
	// registry write lock, and a concurrent /metrics render holds the registry
	// read lock while its callbacks take co.mu — registering under co.mu would
	// be a lock-order inversion (see the obs locking contract).
	co.registerWorkerMetrics(url)
	co.mu.Lock()
	defer co.mu.Unlock()
	co.addWorkerLocked(url)
}

func (co *Coordinator) addWorkerLocked(url string) {
	if _, ok := co.workers[url]; ok {
		return
	}
	sub := client.New(url)
	sub.MaxRetries = 2
	sub.RetryBaseDelay = 100 * time.Millisecond
	co.workers[url] = &worker{url: url, sub: sub, probe: client.New(url)}
	co.cond.Broadcast()
}

// WorkerStatus is one registry entry of GET /v1/workers.
type WorkerStatus struct {
	URL    string `json:"url"`
	Live   bool   `json:"live"`
	Slots  int    `json:"slots"`
	Leased int    `json:"leased"`
}

// Workers snapshots the registry, sorted by URL.
func (co *Coordinator) Workers() []WorkerStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]WorkerStatus, 0, len(co.workers))
	for _, w := range co.workers {
		out = append(out, WorkerStatus{URL: w.url, Live: w.live, Slots: w.slots, Leased: w.leased})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// fleetBusyError is the coordinator's ErrQueueFull: the unit backlog would
// exceed QueueCapacity.
type fleetBusyError struct {
	units, capacity, backlog int
	retryAfter               time.Duration
}

func (e *fleetBusyError) Error() string {
	return fmt.Sprintf("%v: %d unit(s) do not fit (capacity %d, backlog %d); retry in %s",
		service.ErrQueueFull, e.units, e.capacity, e.backlog, e.retryAfter.Round(time.Second))
}

func (e *fleetBusyError) Unwrap() error { return service.ErrQueueFull }

// retryAfter implements the backpressure hint like the worker daemon's:
// backlog over fleet capacity at the recent mean unit time.
func (e *fleetBusyError) RetryAfter() time.Duration { return e.retryAfter }

// Submit validates and admits one job, exactly like service.Server.Submit: a
// cached hash answers immediately, an in-flight duplicate coalesces, anything
// else splits into shard units and queues for dispatch.
func (co *Coordinator) Submit(req service.JobRequest) (service.JobStatus, error) {
	def, err := experiments.Lookup(req.Experiment)
	if err != nil {
		return service.JobStatus{}, err
	}
	if req.Shard != "" {
		// Unit-level jobs are the coordinator's *output*, not its input:
		// a coordinator fronting coordinators is not supported.
		return service.JobStatus{}, fmt.Errorf("%w: the coordinator does not accept shard-unit jobs", experiments.ErrBadConfig)
	}
	if req.Shards < 0 {
		return service.JobStatus{}, fmt.Errorf("%w: negative shard count %d", experiments.ErrBadConfig, req.Shards)
	}
	if req.Shards > 1 && !def.Shardable {
		return service.JobStatus{}, fmt.Errorf("%w: experiment %q is deterministic and does not shard",
			experiments.ErrBadConfig, req.Experiment)
	}
	spec := req.Spec.Spec()
	if spec.Battery != "" {
		if _, err := experiments.NamedBatteryFactory(spec.Battery); err != nil {
			return service.JobStatus{}, err
		}
	}
	hash := experiments.SpecHash(req.Experiment, spec)

	co.mu.Lock()
	defer co.mu.Unlock()
	if co.draining {
		co.met.rejectedDrain.Inc()
		return service.JobStatus{}, service.ErrDraining
	}
	co.seq++
	j := &fedJob{
		id:         fmt.Sprintf("job-%06d", co.seq),
		trace:      req.TraceID,
		experiment: req.Experiment,
		hash:       hash,
		specReq:    req.Spec,
		spec:       spec,
		shards:     req.Shards,
		created:    time.Now(),
	}
	if j.trace == "" {
		j.trace = obs.NewTraceID()
	}
	if artifact, ok := co.cacheGetLocked(j, hash); ok {
		j.cached = true
		j.artifact = artifact
		co.jobs[j.id] = j
		co.met.jobsCached.Inc()
		co.emitAcceptLocked(j, "cached")
		co.finishLocked(j, service.StateDone, "")
		co.evictLocked()
		return co.statusLocked(j), nil
	}
	if leader := co.inflight[hash]; leader != nil {
		j.coalesced = true
		j.state = leader.state
		j.started = leader.started
		leader.followers = append(leader.followers, j)
		co.met.jobsCoalesced.Inc()
		co.emitAcceptLocked(j, "coalesced")
		co.jobs[j.id] = j
		co.journalAcceptLocked(j)
		co.evictLocked()
		return co.statusLocked(j), nil
	}
	units := co.buildUnits(j)
	if backlog := co.backlogLocked(); backlog+len(units) > co.cfg.QueueCapacity {
		co.met.rejectedFull.Inc()
		return service.JobStatus{}, &fleetBusyError{
			units: len(units), capacity: co.cfg.QueueCapacity, backlog: backlog,
			retryAfter: co.retryAfterLocked(),
		}
	}
	j.units = units
	j.state = service.StateQueued
	j.remaining = len(units)
	co.jobs[j.id] = j
	co.inflight[hash] = j
	co.met.jobsComputed.Inc()
	co.emitAcceptLocked(j, "computed")
	co.journalAcceptLocked(j)
	co.evictLocked()
	for _, u := range units {
		co.enqueueLocked(u)
	}
	return co.statusLocked(j), nil
}

// cacheGetLocked looks up one content address for job j, counting the hit or
// miss on the registry and mirroring it into the event log. Callers hold
// co.mu.
func (co *Coordinator) cacheGetLocked(j *fedJob, hash string) ([]byte, bool) {
	artifact, ok := co.cache.Get(hash)
	name := obs.EventCacheMiss
	if ok {
		co.met.cacheHits.Inc()
		name = obs.EventCacheHit
	} else {
		co.met.cacheMisses.Inc()
	}
	co.events.Emit(obs.Event{
		Event: name, Trace: j.trace, Job: j.id, Experiment: j.experiment,
		Detail: hash,
	})
	return artifact, ok
}

// emitAcceptLocked records one job admission in the event log; detail is the
// admission path (computed, coalesced, cached, replayed). Callers hold co.mu.
func (co *Coordinator) emitAcceptLocked(j *fedJob, detail string) {
	co.events.Emit(obs.Event{
		Event: obs.EventJobAccepted, Trace: j.trace, Job: j.id,
		Experiment: j.experiment, Detail: detail,
	})
}

// buildUnits constructs a job's units and, for sharded jobs, its incremental
// merger.
func (co *Coordinator) buildUnits(j *fedJob) []*funit {
	if j.shards <= 1 {
		return []*funit{{job: j, state: service.StateQueued}}
	}
	m, _ := experiments.NewReportMerger(j.shards)
	j.merger = m
	units := make([]*funit, 0, j.shards)
	for i := 0; i < j.shards; i++ {
		units = append(units, &funit{
			job:   j,
			shard: experiments.Shard{Index: i, Count: j.shards},
			state: service.StateQueued,
		})
	}
	return units
}

// backlogLocked counts units queued or under lease. Callers hold co.mu.
func (co *Coordinator) backlogLocked() int {
	n := 0
	for _, j := range co.jobs {
		for _, u := range j.units {
			if !u.finished && (u.queued || len(u.leases) > 0 || u.state == service.StateQueued) {
				n++
			}
		}
	}
	return n
}

// retryAfterLocked estimates the backpressure hint: backlog across fleet
// slots at the mean unit time, clamped to [1 s, 5 min]. Callers hold co.mu.
func (co *Coordinator) retryAfterLocked() time.Duration {
	mean := time.Duration(co.meanUnitNs)
	if mean <= 0 {
		mean = time.Second
	}
	slots := 0
	for _, w := range co.workers {
		if w.live {
			slots += w.slots
		}
	}
	if slots <= 0 {
		slots = 1
	}
	d := mean * time.Duration(co.backlogLocked()) / time.Duration(slots)
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// enqueueLocked appends a unit to the dispatch queue (idempotent per unit)
// and wakes the dispatcher. Callers hold co.mu.
func (co *Coordinator) enqueueLocked(u *funit) {
	if u.queued || u.finished {
		return
	}
	u.queued = true
	co.queue = append(co.queue, u)
	if len(co.queue) > co.queuedPeak {
		co.queuedPeak = len(co.queue)
	}
	co.cond.Broadcast()
}

// replayLocked re-admits one journaled job on start: cached partials fold
// immediately (never re-dispatched), the rest queue with the journaled worker
// preferred. Callers hold co.mu.
func (co *Coordinator) replayLocked(rec journal.Accept) {
	if n, ok := jobSeq(rec.ID); ok {
		if n > co.seq {
			co.seq = n
		}
	} else {
		co.seq++
		rec.ID = fmt.Sprintf("job-%06d", co.seq)
	}
	created := rec.Created
	if created.IsZero() {
		created = time.Now()
	}
	j := &fedJob{id: rec.ID, trace: rec.Trace, experiment: rec.Experiment, shards: rec.Shards, created: created}
	if j.trace == "" {
		j.trace = obs.NewTraceID()
	}
	co.jobs[j.id] = j
	co.emitAcceptLocked(j, "replayed")
	fail := func(msg string) {
		j.state = service.StateRunning
		co.completeLocked(j, service.StateFailed, "journal replay: "+msg, true)
	}
	def, err := experiments.Lookup(rec.Experiment)
	if err != nil {
		fail(err.Error())
		return
	}
	if err := json.Unmarshal(rec.Spec, &j.specReq); err != nil {
		fail("decoding spec: " + err.Error())
		return
	}
	if rec.Shards > 1 && !def.Shardable {
		fail(fmt.Sprintf("experiment %q does not shard", rec.Experiment))
		return
	}
	j.spec = j.specReq.Spec()
	j.hash = experiments.SpecHash(rec.Experiment, j.spec)
	if artifact, ok := co.cacheGetLocked(j, j.hash); ok {
		j.cached = true
		j.artifact = artifact
		j.state = service.StateRunning
		co.met.jobsCached.Inc()
		co.completeLocked(j, service.StateDone, "", true)
		return
	}
	if leader := co.inflight[j.hash]; leader != nil {
		j.coalesced = true
		j.state = leader.state
		leader.followers = append(leader.followers, j)
		co.met.jobsCoalesced.Inc()
		return
	}
	prefer := make(map[string]string, len(rec.Leases))
	for _, l := range rec.Leases {
		prefer[l.Unit] = l.Worker
	}
	j.units = co.buildUnits(j)
	j.state = service.StateQueued
	j.remaining = len(j.units)
	co.inflight[j.hash] = j
	co.met.jobsComputed.Inc()
	for _, u := range j.units {
		// A partial the previous coordinator already cached folds without a
		// dispatch — this is what "resumes from the journal without
		// re-running cached units" means.
		if u.shard.Enabled() {
			if raw, ok := co.cacheGetLocked(j, experiments.ShardSpecHash(j.experiment, j.spec, u.shard)); ok {
				if rep, err := decodePartial(raw); err == nil {
					if err := co.foldLocked(u, rep); err == nil {
						continue
					}
				}
			}
		}
		u.prefer = prefer[u.shard.String()]
		co.enqueueLocked(u)
	}
}

// jobSeq extracts the numeric sequence of a coordinator-issued job ID.
func jobSeq(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// decodePartial decodes a single-report artifact.
func decodePartial(raw []byte) (*experiments.Report, error) {
	reports, err := experiments.ReadArtifact(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if len(reports) != 1 {
		return nil, fmt.Errorf("federation: artifact holds %d reports, want 1", len(reports))
	}
	return reports[0], nil
}

// journalAcceptLocked journals one accepted job. Callers hold co.mu.
func (co *Coordinator) journalAcceptLocked(j *fedJob) {
	if co.journal == nil {
		return
	}
	raw, err := json.Marshal(j.specReq)
	if err == nil {
		err = co.journal.Accept(journal.Accept{
			ID: j.id, Experiment: j.experiment, Spec: raw,
			Shards: j.shards, Hash: j.hash, Created: j.created, Trace: j.trace,
		})
	}
	if err != nil {
		co.met.journalError(err)
		log.Printf("federation: journaling job %s failed (job runs, restart will not resume it): %v", j.id, err)
	}
}

// journalLeaseLocked journals one unit lease. Callers hold co.mu.
func (co *Coordinator) journalLeaseLocked(l *lease) {
	if co.journal == nil {
		return
	}
	err := co.journal.Lease(l.unit.job.id, journal.Lease{
		Unit: l.unit.shard.String(), Worker: l.w.url, Remote: l.remote, Expires: l.expires,
	})
	if err != nil {
		co.met.journalError(err)
		log.Printf("federation: journaling lease of %s %s: %v", l.unit.job.id, l.unit.shard.String(), err)
	}
}

// finishLocked marks a job terminal exactly once, counting and logging the
// terminal transition. Callers hold co.mu.
func (co *Coordinator) finishLocked(j *fedJob, state, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	co.terminal = append(co.terminal, j.id)
	if state == service.StateDone {
		co.met.jobsDone.Inc()
		co.events.Emit(obs.Event{
			Event: obs.EventJobDone, Trace: j.trace, Job: j.id, Experiment: j.experiment,
		})
	} else {
		co.met.jobsFailed.Inc()
		co.events.Emit(obs.Event{
			Event: obs.EventJobFailed, Trace: j.trace, Job: j.id, Experiment: j.experiment,
			Detail: errMsg,
		})
	}
}

// completeLocked finishes a non-terminal job and its followers, cancels any
// outstanding leases of its units, and (unless abandoning for shutdown) marks
// the journal record done. Callers hold co.mu.
func (co *Coordinator) completeLocked(j *fedJob, state, errMsg string, journalDone bool) {
	if j.state == service.StateDone || j.state == service.StateFailed {
		return
	}
	co.finishLocked(j, state, errMsg)
	if co.inflight[j.hash] == j {
		delete(co.inflight, j.hash)
	}
	for _, u := range j.units {
		u.queued = false
		for _, l := range u.leases {
			co.releaseLocked(l)
		}
		u.leases = nil
	}
	if journalDone && co.journal != nil {
		if err := co.journal.Done(j.id); err != nil {
			co.met.journalError(err)
			log.Printf("federation: journaling completion of %s: %v", j.id, err)
		}
	}
	for _, f := range j.followers {
		if f.state == service.StateDone || f.state == service.StateFailed {
			continue
		}
		if state == service.StateDone {
			f.artifact = j.artifact
		}
		co.finishLocked(f, state, errMsg)
		if journalDone && co.journal != nil {
			if err := co.journal.Done(f.id); err != nil {
				co.met.journalError(err)
				log.Printf("federation: journaling completion of %s: %v", f.id, err)
			}
		}
	}
}

// releaseLocked cancels one lease and returns its slot. Callers hold co.mu.
func (co *Coordinator) releaseLocked(l *lease) {
	if l.cancelled {
		return
	}
	l.cancelled = true
	l.w.leased--
	co.cond.Broadcast()
}

// evictLocked drops the oldest terminal jobs beyond MaxJobs. Callers hold
// co.mu.
func (co *Coordinator) evictLocked() {
	for len(co.jobs) > co.cfg.MaxJobs && len(co.terminal) > 0 {
		id := co.terminal[0]
		co.terminal = co.terminal[1:]
		delete(co.jobs, id)
	}
}

// Job returns one job's status.
func (co *Coordinator) Job(id string) (service.JobStatus, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	if !ok {
		return service.JobStatus{}, fmt.Errorf("%w %q", service.ErrUnknownJob, id)
	}
	return co.statusLocked(j), nil
}

// Artifact returns a finished job's merged artifact — byte-identical to the
// local `cmd/experiments run -o` file.
func (co *Coordinator) Artifact(id string) ([]byte, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", service.ErrUnknownJob, id)
	}
	switch j.state {
	case service.StateDone:
		return j.artifact, nil
	case service.StateFailed:
		return nil, fmt.Errorf("federation: job %s failed: %s", id, j.errMsg)
	default:
		return nil, fmt.Errorf("%w: job %s is %s", service.ErrJobNotFinished, id, j.state)
	}
}

// statusLocked builds a JobStatus snapshot. Callers hold co.mu.
func (co *Coordinator) statusLocked(j *fedJob) service.JobStatus {
	st := service.JobStatus{
		ID:         j.id,
		Experiment: j.experiment,
		TraceID:    j.trace,
		Hash:       j.hash,
		State:      j.state,
		Cached:     j.cached,
		Coalesced:  j.coalesced,
		Error:      j.errMsg,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
	}
	for _, u := range j.units {
		st.Shards = append(st.Shards, service.ShardStatus{
			Shard: u.shard.String(),
			State: u.state,
		})
	}
	return st
}

// Health snapshots the coordinator: the shared Health shape with the Fleet
// section filled in.
func (co *Coordinator) Health() service.Health {
	co.mu.Lock()
	defer co.mu.Unlock()
	status := "ok"
	if co.draining {
		status = "draining"
	}
	// Lifetime counters are read back from the metrics registry, so /healthz
	// and /metrics cannot disagree (pinned by TestFleetHealthMatchesMetrics).
	fleet := &service.FleetHealth{
		Workers:               len(co.workers),
		ExpiredRedispatches:   int(co.met.expiredRe.Value()),
		SpeculativeDispatches: int(co.met.speculative.Value()),
		MeanUnitMs:            co.meanUnitNs / 1e6,
	}
	leased := 0
	for _, w := range co.workers {
		if w.live {
			fleet.LiveWorkers++
			fleet.Slots += w.slots
			free := w.slots - w.leased
			if free > 0 {
				fleet.FreeSlots += free
			}
		}
		leased += w.leased
	}
	fleet.LeasedUnits = leased
	fleet.QueuedUnits = len(co.queue)
	return service.Health{
		Status:           status,
		QueueDepth:       len(co.queue),
		QueueCapacity:    co.cfg.QueueCapacity,
		InFlight:         leased,
		Workers:          fleet.Slots,
		Jobs:             len(co.jobs),
		CoalescedJobs:    int(co.met.jobsCoalesced.Value()),
		CacheEntries:     co.cache.Len(),
		CacheHits:        int(co.met.cacheHits.Value()),
		CacheMisses:      int(co.met.cacheMisses.Value()),
		CacheWriteErrors: int(co.met.cacheWriteErr.Value()),
		MeanUnitMs:       co.meanUnitNs / 1e6,
		Fleet:            fleet,
	}
}

// Close stops the coordinator immediately; in-flight leases are abandoned
// (their journal records survive for the next start).
func (co *Coordinator) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = co.Shutdown(ctx)
}

// Shutdown drains gracefully: new submissions reject with ErrDraining,
// outstanding jobs run to completion until ctx expires, then everything still
// pending is abandoned (terminal-failed in memory, journal records retained
// for the next coordinator). Safe to call concurrently and repeatedly.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	ran := false
	co.shutdownOnce.Do(func() {
		ran = true
		co.doShutdown(ctx)
	})
	if !ran {
		<-co.shutdownDone
	}
	return nil
}

func (co *Coordinator) doShutdown(ctx context.Context) {
	co.mu.Lock()
	co.draining = true
	co.cond.Broadcast()
	co.mu.Unlock()
	// Drain: wait until no job is live or the deadline passes. Dispatch of
	// already-accepted units continues while draining.
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
drain:
	for {
		co.mu.Lock()
		live := false
		for _, j := range co.jobs {
			if j.state == service.StateQueued || j.state == service.StateRunning {
				live = true
				break
			}
		}
		co.mu.Unlock()
		if !live {
			break
		}
		select {
		case <-ctx.Done():
			break drain
		case <-tick.C:
		}
	}
	co.cancel()
	co.mu.Lock()
	co.cond.Broadcast()
	co.mu.Unlock()
	co.wg.Wait()
	co.mu.Lock()
	for _, j := range co.jobs {
		if j.state == service.StateQueued || j.state == service.StateRunning {
			co.completeLocked(j, service.StateFailed, shutdownMsg, false)
		}
	}
	if co.journal != nil {
		if err := co.journal.Close(); err != nil {
			co.met.journalError(err)
			log.Printf("federation: closing journal: %v", err)
		}
		co.journal = nil
	}
	co.mu.Unlock()
	co.events.Close()
	close(co.shutdownDone)
}
