package federation

import (
	"errors"

	"battsched/internal/obs"
	"battsched/internal/service/journal"
)

// unitBuckets bound the dispatch-to-delivery unit histogram (seconds):
// federated units add submit/poll/fetch hops on top of worker execution.
var unitBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// fedMetrics holds the coordinator's registry-backed counters and
// histograms. Everything here is created up front in newFedMetrics — never
// under co.mu — so render-time gauge callbacks that take co.mu cannot
// deadlock against registration (see the obs locking contract). Per-worker
// series are the one runtime addition and are registered outside co.mu too
// (registerWorkerMetrics).
type fedMetrics struct {
	jobsComputed  *obs.Counter // battsched_jobs_total{admission="computed"}
	jobsCoalesced *obs.Counter
	jobsCached    *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	rejectedFull  *obs.Counter
	rejectedDrain *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheWriteErr *obs.Counter
	journalAppend *obs.Counter
	journalComp   *obs.Counter
	leaseRenewals *obs.Counter // successful status polls extending a lease
	leaseExpiries *obs.Counter // leases expired (deadline passed or worker died)
	expiredRe     *obs.Counter // unit re-dispatches after a failed/expired lease
	speculative   *obs.Counter // straggler duplicate dispatches
	downHeartbeat *obs.Counter // battsched_worker_down_total{reason="heartbeat-miss"}
	downTransport *obs.Counter // battsched_worker_down_total{reason="transport-error"}
	unitDur       *obs.Histogram
}

func newFedMetrics(r *obs.Registry) fedMetrics {
	const jobsHelp = "Job submissions by admission path: computed (split into units and dispatched), coalesced (attached to an in-flight duplicate), cached (served from the artifact cache)."
	const rejHelp = "Rejected submissions by reason: queue_full (429), draining (503)."
	const journalHelp = "Job journal failures by operation: append (accept/done/lease record writes), compact (log rewrites)."
	const downHelp = "Workers taken out of dispatch rotation, by verdict: heartbeat-miss (consecutive /healthz probes failed) vs transport-error (a lease RPC failed at the socket level)."
	return fedMetrics{
		jobsComputed:  r.Counter("battsched_jobs_total", jobsHelp, "admission", "computed"),
		jobsCoalesced: r.Counter("battsched_jobs_total", jobsHelp, "admission", "coalesced"),
		jobsCached:    r.Counter("battsched_jobs_total", jobsHelp, "admission", "cached"),
		jobsDone:      r.Counter("battsched_jobs_finished_total", "Jobs reaching a terminal state.", "state", "done"),
		jobsFailed:    r.Counter("battsched_jobs_finished_total", "Jobs reaching a terminal state.", "state", "failed"),
		rejectedFull:  r.Counter("battsched_rejected_total", rejHelp, "reason", "queue_full"),
		rejectedDrain: r.Counter("battsched_rejected_total", rejHelp, "reason", "draining"),
		cacheHits:     r.Counter("battsched_cache_hits_total", "Content-addressed artifact cache hits (full runs and shard partials)."),
		cacheMisses:   r.Counter("battsched_cache_misses_total", "Content-addressed artifact cache misses."),
		cacheWriteErr: r.Counter("battsched_cache_write_errors_total", "Artifact cache write failures (the artifact stayed in memory)."),
		journalAppend: r.Counter("battsched_journal_errors_total", journalHelp, "op", "append"),
		journalComp:   r.Counter("battsched_journal_errors_total", journalHelp, "op", "compact"),
		leaseRenewals: r.Counter("battsched_fleet_lease_renewals_total", "Lease renewals from successful remote status polls."),
		leaseExpiries: r.Counter("battsched_fleet_lease_expiries_total", "Leases expired: deadline passed without renewal, or the worker was marked dead."),
		expiredRe:     r.Counter("battsched_fleet_expired_redispatches_total", "Units re-dispatched after a failed or expired lease."),
		speculative:   r.Counter("battsched_fleet_speculative_dispatches_total", "Straggler units duplicated onto a second worker."),
		downHeartbeat: r.Counter("battsched_worker_down_total", downHelp, "reason", obs.ReasonHeartbeatMiss),
		downTransport: r.Counter("battsched_worker_down_total", downHelp, "reason", obs.ReasonTransportError),
		unitDur: r.Histogram("battsched_unit_duration_seconds",
			"Shard unit dispatch-to-delivery duration.", unitBuckets),
	}
}

// journalError mirrors one journal failure onto the registry, separating
// compaction failures from append failures.
func (m *fedMetrics) journalError(err error) {
	if errors.Is(err, journal.ErrCompaction) {
		m.journalComp.Inc()
	} else {
		m.journalAppend.Inc()
	}
}

// registerGauges wires the fleet gauges to the same coordinator state
// /healthz reports. Called from New before the loops start; the callbacks
// take co.mu at render time.
func (co *Coordinator) registerGauges() {
	r := co.metrics
	read := func(f func() float64) func() float64 {
		return func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc("battsched_queue_depth", "Shard units waiting in the dispatch queue.",
		read(func() float64 { return float64(len(co.queue)) }))
	r.GaugeFunc("battsched_queue_depth_peak", "High-water mark of battsched_queue_depth over the coordinator's lifetime.",
		read(func() float64 { return float64(co.queuedPeak) }))
	r.GaugeFunc("battsched_queue_capacity", "Unit backlog bound (queued + leased).",
		func() float64 { return float64(co.cfg.QueueCapacity) })
	r.GaugeFunc("battsched_in_flight", "Units currently under a worker lease.",
		read(func() float64 { return float64(co.leasedLocked()) }))
	r.GaugeFunc("battsched_jobs_tracked", "Jobs currently tracked in the job map.",
		read(func() float64 { return float64(len(co.jobs)) }))
	r.GaugeFunc("battsched_cache_entries", "Artifact cache in-memory entries.",
		func() float64 { return float64(co.cache.Len()) })
	r.GaugeFunc("battsched_mean_unit_seconds", "Fleet-wide mean dispatch-to-delivery unit time (EWMA) — the straggler baseline.",
		read(func() float64 { return co.meanUnitNs / 1e9 }))
	r.GaugeFunc("battsched_draining", "1 once graceful shutdown has begun, else 0.",
		read(func() float64 {
			if co.draining {
				return 1
			}
			return 0
		}))
	r.GaugeFunc("battsched_fleet_workers", "Registered workers.",
		read(func() float64 { return float64(len(co.workers)) }))
	r.GaugeFunc("battsched_fleet_live_workers", "Workers passing heartbeats.",
		read(func() float64 {
			n := 0
			for _, w := range co.workers {
				if w.live {
					n++
				}
			}
			return float64(n)
		}))
	r.GaugeFunc("battsched_fleet_slots", "Total execution slots across live workers.",
		read(func() float64 {
			n := 0
			for _, w := range co.workers {
				if w.live {
					n += w.slots
				}
			}
			return float64(n)
		}))
	r.GaugeFunc("battsched_fleet_free_slots", "Live slots not holding a lease.",
		read(func() float64 {
			n := 0
			for _, w := range co.workers {
				if w.live && w.slots > w.leased {
					n += w.slots - w.leased
				}
			}
			return float64(n)
		}))
	r.GaugeFunc("battsched_fleet_queued_units", "Units waiting for a slot.",
		read(func() float64 { return float64(len(co.queue)) }))
	r.GaugeFunc("battsched_fleet_leased_units", "Units under a worker lease.",
		read(func() float64 { return float64(co.leasedLocked()) }))
	obs.RegisterSim(r, &obs.Sim)
}

// leasedLocked counts units currently under lease. Callers hold co.mu.
func (co *Coordinator) leasedLocked() int {
	n := 0
	for _, w := range co.workers {
		n += w.leased
	}
	return n
}

// registerWorkerMetrics registers one worker's per-URL series: liveness,
// outstanding leases and mean unit time. Idempotent (re-registration swaps
// in an equivalent callback reading the same map entry) and called WITHOUT
// co.mu held — the callbacks take co.mu at render time.
func (co *Coordinator) registerWorkerMetrics(url string) {
	read := func(f func(w *worker) float64) func() float64 {
		return func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			w := co.workers[url]
			if w == nil {
				return 0
			}
			return f(w)
		}
	}
	co.metrics.GaugeFunc("battsched_worker_up", "Per-worker liveness (1 = passing heartbeats).",
		read(func(w *worker) float64 {
			if w.live {
				return 1
			}
			return 0
		}), "worker", url)
	co.metrics.GaugeFunc("battsched_worker_leased", "Units this coordinator currently leases to the worker.",
		read(func(w *worker) float64 { return float64(w.leased) }), "worker", url)
	co.metrics.GaugeFunc("battsched_worker_mean_unit_seconds", "Per-worker mean dispatch-to-delivery unit time (EWMA).",
		read(func(w *worker) float64 { return w.meanUnitNs / 1e9 }), "worker", url)
}

// Metrics returns the coordinator's metrics registry (the /metrics source).
func (co *Coordinator) Metrics() *obs.Registry { return co.metrics }
