package taskgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT writes the graph in Graphviz DOT format, one node per task
// annotated with its WCET, so generated workloads can be inspected visually
// (e.g. `dot -Tpng`).
func (g *Graph) WriteDOT(w io.Writer) error {
	name := g.Name
	if name == "" {
		name = "taskgraph"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  label=%q;\n", fmt.Sprintf("%s (period %g s)", name, g.Period)); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("n%d", int(n.ID))
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", int(n.ID), fmt.Sprintf("%s\\nwc=%.3g", label, n.WCET)); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", int(e.From), int(e.To)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// DOT returns the graph in Graphviz DOT format as a string.
func (g *Graph) DOT() string {
	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		return ""
	}
	return b.String()
}

// WriteDOT writes every graph of the system as a separate digraph in one DOT
// stream.
func (s *System) WriteDOT(w io.Writer) error {
	for _, g := range s.Graphs {
		if err := g.WriteDOT(w); err != nil {
			return err
		}
	}
	return nil
}
