package taskgraph

import (
	"fmt"
	"math"
)

// System is a set of periodic task graphs scheduled together on a single
// DVS-capable processor.
type System struct {
	Graphs []*Graph
}

// NewSystem returns a System containing the given graphs.
func NewSystem(graphs ...*Graph) *System {
	return &System{Graphs: graphs}
}

// Add appends a graph to the system.
func (s *System) Add(g *Graph) { s.Graphs = append(s.Graphs, g) }

// NumGraphs returns the number of graphs in the system.
func (s *System) NumGraphs() int { return len(s.Graphs) }

// TotalNodes returns the total number of nodes across all graphs.
func (s *System) TotalNodes() int {
	var n int
	for _, g := range s.Graphs {
		n += len(g.Nodes)
	}
	return n
}

// Utilization returns the worst-case processor utilisation at frequency fmax:
// the sum over graphs of TotalWCET/(fmax*Period). The paper keeps this at
// 0.70 for the Table 2 experiments.
func (s *System) Utilization(fmax float64) float64 {
	var u float64
	for _, g := range s.Graphs {
		u += g.Utilization(fmax)
	}
	return u
}

// ScaleToUtilization uniformly scales every node's WCET so that the system's
// worst-case utilisation at fmax equals target. It returns the factor applied.
func (s *System) ScaleToUtilization(target, fmax float64) float64 {
	cur := s.Utilization(fmax)
	if cur <= 0 {
		return 1
	}
	f := target / cur
	for _, g := range s.Graphs {
		g.ScaleWCET(f)
	}
	return f
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{Graphs: make([]*Graph, len(s.Graphs))}
	for i, g := range s.Graphs {
		c.Graphs[i] = g.Clone()
	}
	return c
}

// Validate checks every graph, that graph names are unique, and that the
// system is non-empty.
func (s *System) Validate(fmax float64) error {
	if len(s.Graphs) == 0 {
		return ErrEmptySystem
	}
	names := make(map[string]bool, len(s.Graphs))
	for _, g := range s.Graphs {
		if err := g.Validate(); err != nil {
			return err
		}
		if g.Name != "" {
			if names[g.Name] {
				return fmt.Errorf("%w: %q", ErrDuplicateGraph, g.Name)
			}
			names[g.Name] = true
		}
	}
	if fmax > 0 {
		if u := s.Utilization(fmax); u > 1+1e-9 {
			return fmt.Errorf("%w: U=%.3f", ErrOverload, u)
		}
	}
	return nil
}

// Hyperperiod returns the least common multiple of the graph periods. Periods
// are matched on a 1 microsecond grid; if a period is not representable on
// that grid the fallback is the maximum period times the number of graphs,
// which is always a valid (if conservative) simulation horizon.
func (s *System) Hyperperiod() float64 {
	const grid = 1e-6
	l := int64(1)
	ok := true
	for _, g := range s.Graphs {
		p := int64(math.Round(g.Period / grid))
		if p <= 0 || math.Abs(float64(p)*grid-g.Period) > grid/2 {
			ok = false
			break
		}
		l = lcm64(l, p)
		if l <= 0 || l > int64(1e15) { // overflow / absurd hyperperiod guard
			ok = false
			break
		}
	}
	if ok && len(s.Graphs) > 0 {
		return float64(l) * grid
	}
	var maxP float64
	for _, g := range s.Graphs {
		if g.Period > maxP {
			maxP = g.Period
		}
	}
	return maxP * float64(len(s.Graphs))
}

// MaxPeriod returns the largest period in the system.
func (s *System) MaxPeriod() float64 {
	var m float64
	for _, g := range s.Graphs {
		if g.Period > m {
			m = g.Period
		}
	}
	return m
}

// MinPeriod returns the smallest period in the system (0 for an empty system).
func (s *System) MinPeriod() float64 {
	if len(s.Graphs) == 0 {
		return 0
	}
	m := s.Graphs[0].Period
	for _, g := range s.Graphs[1:] {
		if g.Period < m {
			m = g.Period
		}
	}
	return m
}

// String implements fmt.Stringer.
func (s *System) String() string {
	return fmt.Sprintf("System(graphs=%d nodes=%d)", len(s.Graphs), s.TotalNodes())
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd64(a, b) * b
}
