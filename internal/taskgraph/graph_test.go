package taskgraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func chainGraph(t *testing.T, n int, period float64) *Graph {
	t.Helper()
	g := NewGraph("chain", period)
	for i := 0; i < n; i++ {
		g.AddNode("", float64(i+1)*100)
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("chain graph invalid: %v", err)
	}
	return g
}

func diamondGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("diamond", 10)
	a := g.AddNode("a", 100)
	b := g.AddNode("b", 200)
	c := g.AddNode("c", 300)
	d := g.AddNode("d", 400)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond graph invalid: %v", err)
	}
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := NewGraph("g", 1)
	for i := 0; i < 5; i++ {
		id := g.AddNode("", 10)
		if int(id) != i {
			t.Fatalf("node %d got ID %d", i, int(id))
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestValidateRejectsEmptyGraph(t *testing.T) {
	g := NewGraph("empty", 1)
	if err := g.Validate(); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("Validate = %v, want ErrEmptyGraph", err)
	}
}

func TestValidateRejectsBadPeriod(t *testing.T) {
	g := NewGraph("g", 0)
	g.AddNode("", 10)
	if err := g.Validate(); !errors.Is(err, ErrBadPeriod) {
		t.Fatalf("Validate = %v, want ErrBadPeriod", err)
	}
	g.Period = -1
	if err := g.Validate(); !errors.Is(err, ErrBadPeriod) {
		t.Fatalf("Validate = %v, want ErrBadPeriod", err)
	}
}

func TestValidateRejectsBadWCET(t *testing.T) {
	g := NewGraph("g", 1)
	g.AddNode("", 0)
	if err := g.Validate(); !errors.Is(err, ErrBadWCET) {
		t.Fatalf("Validate = %v, want ErrBadWCET", err)
	}
}

func TestValidateRejectsSelfEdge(t *testing.T) {
	g := NewGraph("g", 1)
	a := g.AddNode("", 10)
	g.AddEdge(a, a)
	if err := g.Validate(); !errors.Is(err, ErrSelfEdge) {
		t.Fatalf("Validate = %v, want ErrSelfEdge", err)
	}
}

func TestValidateRejectsOutOfRangeEdge(t *testing.T) {
	g := NewGraph("g", 1)
	a := g.AddNode("", 10)
	g.AddEdge(a, NodeID(7))
	if err := g.Validate(); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("Validate = %v, want ErrBadEdge", err)
	}
}

func TestValidateRejectsDuplicateEdge(t *testing.T) {
	g := NewGraph("g", 1)
	a := g.AddNode("", 10)
	b := g.AddNode("", 10)
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if err := g.Validate(); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("Validate = %v, want ErrDuplicateEdge", err)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := NewGraph("g", 1)
	a := g.AddNode("", 10)
	b := g.AddNode("", 10)
	c := g.AddNode("", 10)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
}

func TestTotalWCETAndUtilization(t *testing.T) {
	g := diamondGraph(t)
	if got := g.TotalWCET(); got != 1000 {
		t.Fatalf("TotalWCET = %v, want 1000", got)
	}
	// 1000 cycles over a period of 10 s at 100 Hz => U = 1.
	if got := g.Utilization(100); got != 1.0 {
		t.Fatalf("Utilization = %v, want 1", got)
	}
	if got := g.Deadline(); got != g.Period {
		t.Fatalf("Deadline = %v, want Period = %v", got, g.Period)
	}
}

func TestScaleWCET(t *testing.T) {
	g := diamondGraph(t)
	g.ScaleWCET(2)
	if got := g.TotalWCET(); got != 2000 {
		t.Fatalf("TotalWCET after scale = %v, want 2000", got)
	}
}

func TestSuccessorsPredecessorsSourcesSinks(t *testing.T) {
	g := diamondGraph(t)
	if got := g.Successors(0); len(got) != 2 {
		t.Fatalf("Successors(a) = %v, want 2 nodes", got)
	}
	if got := g.Predecessors(3); len(got) != 2 {
		t.Fatalf("Predecessors(d) = %v, want 2 nodes", got)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Sinks = %v, want [3]", got)
	}
}

func TestTopologicalOrderRespectsEdges(t *testing.T) {
	g := diamondGraph(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatalf("TopologicalOrder: %v", err)
	}
	if !g.IsLinearExtension(order) {
		t.Fatalf("topological order %v is not a linear extension", order)
	}
	if order[0] != 0 || order[len(order)-1] != 3 {
		t.Fatalf("diamond order = %v, want a first and d last", order)
	}
}

func TestIsLinearExtensionRejectsBadOrders(t *testing.T) {
	g := diamondGraph(t)
	cases := [][]NodeID{
		{3, 1, 2, 0}, // reversed
		{0, 1, 2},    // short
		{0, 1, 1, 3}, // duplicate
		{0, 1, 2, 7}, // out of range
		{1, 0, 2, 3}, // b before a
		{0, 3, 1, 2}, // d before its predecessors
	}
	for i, c := range cases {
		if g.IsLinearExtension(c) {
			t.Errorf("case %d: %v accepted as linear extension", i, c)
		}
	}
	if !g.IsLinearExtension([]NodeID{0, 2, 1, 3}) {
		t.Errorf("valid extension rejected")
	}
}

func TestCriticalPathWCET(t *testing.T) {
	g := diamondGraph(t)
	// Longest path a->c->d = 100+300+400 = 800.
	if got := g.CriticalPathWCET(); got != 800 {
		t.Fatalf("CriticalPathWCET = %v, want 800", got)
	}
	chain := chainGraph(t, 4, 1)
	if got := chain.CriticalPathWCET(); got != 100+200+300+400 {
		t.Fatalf("chain CriticalPathWCET = %v, want 1000", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamondGraph(t)
	c := g.Clone()
	c.Nodes[0].WCET = 999
	c.AddEdge(1, 2)
	if g.Nodes[0].WCET == 999 {
		t.Fatal("clone shares node storage with original")
	}
	if len(g.Edges) == len(c.Edges) {
		t.Fatal("clone shares edge storage with original")
	}
}

func TestAdjacencyInvalidatedAfterMutation(t *testing.T) {
	g := NewGraph("g", 1)
	a := g.AddNode("", 10)
	b := g.AddNode("", 10)
	if got := g.Successors(a); len(got) != 0 {
		t.Fatalf("Successors before edge = %v", got)
	}
	g.AddEdge(a, b)
	if got := g.Successors(a); len(got) != 1 || got[0] != b {
		t.Fatalf("Successors after edge = %v, want [%d]", got, b)
	}
}

// Property: for random DAGs built with edges only from lower to higher IDs,
// the topological order is always a valid linear extension and contains every
// node exactly once.
func TestTopologicalOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := NewGraph("p", 1)
		for i := 0; i < n; i++ {
			g.AddNode("", 1+rng.Float64()*100)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		if err := g.Validate(); err != nil {
			return false
		}
		order, err := g.TopologicalOrder()
		if err != nil {
			return false
		}
		return g.IsLinearExtension(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAndEdgeString(t *testing.T) {
	n := Node{ID: 3, Name: "fft", WCET: 1000}
	if s := n.String(); s == "" {
		t.Fatal("empty node string")
	}
	unnamed := Node{ID: 1, WCET: 10}
	if s := unnamed.String(); s == "" {
		t.Fatal("empty unnamed node string")
	}
	e := Edge{From: 1, To: 2}
	if e.String() != "1->2" {
		t.Fatalf("edge string = %q", e.String())
	}
}

func TestGraphString(t *testing.T) {
	g := diamondGraph(t)
	if g.String() == "" {
		t.Fatal("empty graph string")
	}
}

// TestValidateDetectsInPlaceEdgeMutation pins the staleness contract: the
// adjacency cache survives repeated Validate calls, but an in-place mutation
// of the exported Edges slice (same length, different content) must be
// detected so Validate judges the current edges, not the cached ones.
func TestValidateDetectsInPlaceEdgeMutation(t *testing.T) {
	g := NewGraph("T", 1)
	g.AddNode("a", 1)
	g.AddNode("b", 1)
	g.AddNode("c", 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Successors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Successors(0) = %v", got)
	}
	// Replace an edge in place, creating a cycle a->b->a.
	g.Edges[1] = Edge{From: 1, To: 0}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a cycle introduced by in-place edge mutation")
	}
	// And a legal in-place replacement must be reflected in the adjacency.
	g.Edges[1] = Edge{From: 0, To: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Successors(0); len(got) != 2 {
		t.Fatalf("Successors(0) after mutation = %v, want a->b and a->c", got)
	}
}
