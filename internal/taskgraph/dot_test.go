package taskgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := NewGraph("pipeline", 0.1)
	a := g.AddNode("decode", 100)
	b := g.AddNode("", 200)
	g.AddEdge(a, b)

	out := g.DOT()
	for _, want := range []string{"digraph", "decode", "n0 -> n1", "period 0.1", "wc=100", "wc=200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Unnamed graphs and nodes get fallback labels.
	anon := NewGraph("", 1)
	anon.AddNode("", 1)
	if !strings.Contains(anon.DOT(), "taskgraph") {
		t.Fatal("anonymous graph not labelled")
	}
}

func TestSystemWriteDOT(t *testing.T) {
	g1 := NewGraph("A", 1)
	g1.AddNode("x", 1)
	g2 := NewGraph("B", 2)
	g2.AddNode("y", 1)
	sys := NewSystem(g1, g2)
	var buf bytes.Buffer
	if err := sys.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "digraph") != 2 || !strings.Contains(out, `"A"`) || !strings.Contains(out, `"B"`) {
		t.Fatalf("system DOT output unexpected:\n%s", out)
	}
}
