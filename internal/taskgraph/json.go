package taskgraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonNode, jsonEdge, jsonGraph and jsonSystem are the on-disk representation
// used by the cmd/ tools (tgffgen writes them, basched reads them).

type jsonNode struct {
	Name string  `json:"name,omitempty"`
	WCET float64 `json:"wcet"`
}

type jsonEdge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

type jsonGraph struct {
	Name   string     `json:"name,omitempty"`
	Period float64    `json:"period"`
	Nodes  []jsonNode `json:"nodes"`
	Edges  []jsonEdge `json:"edges,omitempty"`
}

type jsonSystem struct {
	Graphs []jsonGraph `json:"graphs"`
}

// MarshalJSON implements json.Marshaler for Graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSONGraph(g))
}

// UnmarshalJSON implements json.Unmarshaler for Graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	fromJSONGraph(jg, g)
	return nil
}

// MarshalJSON implements json.Marshaler for System.
func (s *System) MarshalJSON() ([]byte, error) {
	js := jsonSystem{Graphs: make([]jsonGraph, len(s.Graphs))}
	for i, g := range s.Graphs {
		js.Graphs[i] = toJSONGraph(g)
	}
	return json.Marshal(js)
}

// UnmarshalJSON implements json.Unmarshaler for System.
func (s *System) UnmarshalJSON(data []byte) error {
	var js jsonSystem
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	s.Graphs = make([]*Graph, len(js.Graphs))
	for i, jg := range js.Graphs {
		g := &Graph{}
		fromJSONGraph(jg, g)
		s.Graphs[i] = g
	}
	return nil
}

// WriteJSON writes the system as indented JSON to w.
func (s *System) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a System from JSON and validates it structurally (without a
// utilisation bound; pass fmax to Validate separately for that).
func ReadJSON(r io.Reader) (*System, error) {
	var s System
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("taskgraph: decode system: %w", err)
	}
	if err := s.Validate(0); err != nil {
		return nil, err
	}
	return &s, nil
}

func toJSONGraph(g *Graph) jsonGraph {
	jg := jsonGraph{Name: g.Name, Period: g.Period}
	for _, n := range g.Nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{Name: n.Name, WCET: n.WCET})
	}
	for _, e := range g.Edges {
		jg.Edges = append(jg.Edges, jsonEdge{From: int(e.From), To: int(e.To)})
	}
	return jg
}

func fromJSONGraph(jg jsonGraph, g *Graph) {
	g.Name = jg.Name
	g.Period = jg.Period
	g.Nodes = g.Nodes[:0]
	g.Edges = g.Edges[:0]
	for i, n := range jg.Nodes {
		g.Nodes = append(g.Nodes, Node{ID: NodeID(i), Name: n.Name, WCET: n.WCET})
	}
	for _, e := range jg.Edges {
		g.Edges = append(g.Edges, Edge{From: NodeID(e.From), To: NodeID(e.To)})
	}
	g.invalidate()
}
