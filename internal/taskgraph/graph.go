package taskgraph

import (
	"errors"
	"fmt"
	"sort"
)

// Common validation errors returned by Graph.Validate and System.Validate.
var (
	ErrEmptyGraph     = errors.New("taskgraph: graph has no nodes")
	ErrCycle          = errors.New("taskgraph: graph contains a cycle")
	ErrBadEdge        = errors.New("taskgraph: edge references unknown node")
	ErrSelfEdge       = errors.New("taskgraph: self edge")
	ErrBadWCET        = errors.New("taskgraph: node WCET must be > 0")
	ErrBadPeriod      = errors.New("taskgraph: period must be > 0")
	ErrDuplicateEdge  = errors.New("taskgraph: duplicate edge")
	ErrBadNodeID      = errors.New("taskgraph: node IDs must be dense and start at 0")
	ErrOverload       = errors.New("taskgraph: system utilisation exceeds 1")
	ErrEmptySystem    = errors.New("taskgraph: system has no graphs")
	ErrDuplicateGraph = errors.New("taskgraph: duplicate graph name")
)

// Graph is a periodic task graph: a DAG of Nodes with precedence Edges, a
// Period, and an implicit relative deadline equal to the period (as assumed
// by the paper).
type Graph struct {
	// Name identifies the graph within a System.
	Name string
	// Nodes are the tasks; Nodes[i].ID == NodeID(i).
	Nodes []Node
	// Edges are precedence constraints between nodes of this graph.
	Edges []Edge
	// Period is the inter-arrival time of instances in seconds. The relative
	// deadline equals the period.
	Period float64

	// derived adjacency, built lazily by ensureAdj; adjEdges records the
	// edge count the cache was built from so appends to Edges made without
	// AddEdge are detected and trigger a rebuild.
	succ     [][]NodeID
	pred     [][]NodeID
	adjEdges int
}

// NewGraph returns an empty graph with the given name and period.
func NewGraph(name string, period float64) *Graph {
	return &Graph{Name: name, Period: period}
}

// AddNode appends a node with the given name and WCET (cycles at f_max) and
// returns its NodeID.
func (g *Graph) AddNode(name string, wcet float64) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Name: name, WCET: wcet})
	g.invalidate()
	return id
}

// AddEdge adds the precedence constraint from -> to.
func (g *Graph) AddEdge(from, to NodeID) {
	g.Edges = append(g.Edges, Edge{From: from, To: to})
	g.invalidate()
}

// Deadline returns the relative deadline, which equals the period.
func (g *Graph) Deadline() float64 { return g.Period }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// TotalWCET returns the sum of the worst-case execution requirements of all
// nodes, in cycles at f_max. This is the quantity the paper calls WC_i.
func (g *Graph) TotalWCET() float64 {
	var sum float64
	for _, n := range g.Nodes {
		sum += n.WCET
	}
	return sum
}

// Utilization returns TotalWCET/(fmax*Period): the fraction of the processor
// (running at f_max) this graph requires in the worst case.
func (g *Graph) Utilization(fmax float64) float64 {
	return g.TotalWCET() / (fmax * g.Period)
}

// ScaleWCET multiplies every node's WCET by factor. It is used by workload
// generators to hit a target utilisation.
func (g *Graph) ScaleWCET(factor float64) {
	for i := range g.Nodes {
		g.Nodes[i].WCET *= factor
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, Period: g.Period}
	c.Nodes = append([]Node(nil), g.Nodes...)
	c.Edges = append([]Edge(nil), g.Edges...)
	return c
}

// invalidate drops cached adjacency after a mutation.
func (g *Graph) invalidate() {
	g.succ = nil
	g.pred = nil
}

// adjacencyFresh reports whether the cached adjacency (if any) still matches
// g.Edges. It exists for Validate: the lazy length-based staleness check in
// ensureAdj cannot see an in-place mutation of the exported Edges slice that
// keeps its length, so Validate re-verifies edge membership (O(E·degree), no
// allocation) before trusting the cache.
func (g *Graph) adjacencyFresh() bool {
	if g.succ == nil {
		return true // nothing cached: ensureAdj will build from Edges
	}
	if g.adjEdges != len(g.Edges) {
		return true // length change: ensureAdj already detects and rebuilds
	}
	total := 0
	for _, s := range g.succ {
		total += len(s)
	}
	inBounds := 0
	for _, e := range g.Edges {
		if int(e.From) < 0 || int(e.From) >= len(g.succ) || int(e.To) < 0 || int(e.To) >= len(g.succ) {
			continue // Validate reports these; ensureAdj skips them too
		}
		inBounds++
		found := false
		for _, to := range g.succ[e.From] {
			if to == e.To {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return total == inBounds
}

// ensureAdj (re)builds the successor and predecessor adjacency lists.
func (g *Graph) ensureAdj() {
	if g.succ != nil && g.adjEdges == len(g.Edges) {
		return
	}
	g.adjEdges = len(g.Edges)
	n := len(g.Nodes)
	g.succ = make([][]NodeID, n)
	g.pred = make([][]NodeID, n)
	for _, e := range g.Edges {
		if int(e.From) < 0 || int(e.From) >= n || int(e.To) < 0 || int(e.To) >= n {
			continue // Validate reports this; keep adjacency in-bounds.
		}
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
}

// Successors returns the nodes that directly depend on id.
func (g *Graph) Successors(id NodeID) []NodeID {
	g.ensureAdj()
	return g.succ[id]
}

// Predecessors returns the nodes id directly depends on.
func (g *Graph) Predecessors(id NodeID) []NodeID {
	g.ensureAdj()
	return g.pred[id]
}

// Sources returns the nodes with no predecessors, in ID order.
func (g *Graph) Sources() []NodeID {
	g.ensureAdj()
	var out []NodeID
	for i := range g.Nodes {
		if len(g.pred[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Sinks returns the nodes with no successors, in ID order.
func (g *Graph) Sinks() []NodeID {
	g.ensureAdj()
	var out []NodeID
	for i := range g.Nodes {
		if len(g.succ[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// TopologicalOrder returns one topological ordering of the node IDs (Kahn's
// algorithm, smallest ID first among ready nodes so the result is
// deterministic). It returns ErrCycle if the graph is cyclic.
func (g *Graph) TopologicalOrder() ([]NodeID, error) {
	g.ensureAdj()
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		if int(e.To) >= 0 && int(e.To) < n && int(e.From) >= 0 && int(e.From) < n {
			indeg[e.To]++
		}
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]NodeID, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, NodeID(v))
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, int(s))
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsLinearExtension reports whether order is a permutation of all node IDs
// that respects every precedence edge.
func (g *Graph) IsLinearExtension(order []NodeID) bool {
	if len(order) != len(g.Nodes) {
		return false
	}
	pos := make(map[NodeID]int, len(order))
	for i, id := range order {
		if int(id) < 0 || int(id) >= len(g.Nodes) {
			return false
		}
		if _, dup := pos[id]; dup {
			return false
		}
		pos[id] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] > pos[e.To] {
			return false
		}
	}
	return true
}

// CriticalPathWCET returns the length (in cycles) of the longest
// WCET-weighted path through the graph. It is a lower bound on the work that
// must be executed sequentially.
func (g *Graph) CriticalPathWCET() float64 {
	order, err := g.TopologicalOrder()
	if err != nil {
		return 0
	}
	longest := make([]float64, len(g.Nodes))
	var best float64
	for _, id := range order {
		l := longest[id] + g.Nodes[id].WCET
		if l > best {
			best = l
		}
		for _, s := range g.Successors(id) {
			if l > longest[s] {
				longest[s] = l
			}
		}
	}
	return best
}

// Validate checks structural sanity: at least one node, positive period,
// positive WCETs, in-range and non-duplicate edges, and acyclicity.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return ErrEmptyGraph
	}
	if g.Period <= 0 {
		return fmt.Errorf("%w: graph %q has period %v", ErrBadPeriod, g.Name, g.Period)
	}
	for i, n := range g.Nodes {
		if int(n.ID) != i {
			return fmt.Errorf("%w: node %d has ID %d", ErrBadNodeID, i, int(n.ID))
		}
		if n.WCET <= 0 {
			return fmt.Errorf("%w: node %s", ErrBadWCET, n)
		}
	}
	seen := make(map[Edge]bool, len(g.Edges))
	for _, e := range g.Edges {
		if int(e.From) < 0 || int(e.From) >= len(g.Nodes) || int(e.To) < 0 || int(e.To) >= len(g.Nodes) {
			return fmt.Errorf("%w: %s in graph %q", ErrBadEdge, e, g.Name)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: %s in graph %q", ErrSelfEdge, e, g.Name)
		}
		if seen[e] {
			return fmt.Errorf("%w: %s in graph %q", ErrDuplicateEdge, e, g.Name)
		}
		seen[e] = true
	}
	// Keep a still-valid adjacency cache — repeated Validate calls (one per
	// simulation) reuse it instead of rebuilding per run — but drop it when
	// an in-place Edges mutation made it stale.
	if !g.adjacencyFresh() {
		g.invalidate()
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return fmt.Errorf("graph %q: %w", g.Name, err)
	}
	return nil
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(%s nodes=%d edges=%d period=%g)", g.Name, len(g.Nodes), len(g.Edges), g.Period)
}
