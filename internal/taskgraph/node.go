// Package taskgraph defines the workload model used throughout battsched:
// periodic task graphs (directed acyclic graphs of tasks with precedence
// constraints), exactly as in "Battery Aware Dynamic Scheduling for Periodic
// Task Graphs" (Rao et al., WPDRTS 2006).
//
// A Graph is a DAG whose nodes are tasks with a worst-case execution
// requirement expressed in processor cycles at the maximum frequency. Every
// graph is periodic and its relative deadline equals its period; all nodes of
// an instance must complete by the instance deadline. A System is a set of
// graphs scheduled together on one DVS-capable processor.
package taskgraph

import "fmt"

// NodeID identifies a node within a single Graph. IDs are dense and start at
// zero; they index directly into Graph.Nodes.
type NodeID int

// Node is one task of a task graph.
//
// WCET is the worst-case execution requirement in processor cycles at the
// maximum frequency (f_max). The actual requirement of a particular instance
// is drawn at run time (see ExecutionModel) and is always <= WCET.
type Node struct {
	// ID is the node's index inside its graph.
	ID NodeID
	// Name is an optional human-readable label ("fft", "n3", ...).
	Name string
	// WCET is the worst-case execution requirement in cycles at f_max.
	WCET float64
}

// String implements fmt.Stringer.
func (n Node) String() string {
	if n.Name != "" {
		return fmt.Sprintf("%s(#%d wc=%.0f)", n.Name, int(n.ID), n.WCET)
	}
	return fmt.Sprintf("n%d(wc=%.0f)", int(n.ID), n.WCET)
}

// Edge is a precedence constraint: From must complete before To may start
// within the same graph instance.
type Edge struct {
	From NodeID
	To   NodeID
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("%d->%d", int(e.From), int(e.To)) }
