package taskgraph

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func twoGraphSystem(t *testing.T) *System {
	t.Helper()
	g1 := NewGraph("T1", 0.05)
	g1.AddNode("a", 5e6)
	g1.AddNode("b", 5e6)
	g1.AddEdge(0, 1)
	g2 := NewGraph("T2", 0.1)
	g2.AddNode("x", 10e6)
	sys := NewSystem(g1, g2)
	if err := sys.Validate(1e9); err != nil {
		t.Fatalf("system invalid: %v", err)
	}
	return sys
}

func TestSystemUtilization(t *testing.T) {
	sys := twoGraphSystem(t)
	// U = 10e6/(1e9*0.05) + 10e6/(1e9*0.1) = 0.2 + 0.1 = 0.3
	if got := sys.Utilization(1e9); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Utilization = %v, want 0.3", got)
	}
}

func TestScaleToUtilization(t *testing.T) {
	sys := twoGraphSystem(t)
	factor := sys.ScaleToUtilization(0.7, 1e9)
	if math.Abs(sys.Utilization(1e9)-0.7) > 1e-9 {
		t.Fatalf("Utilization after scaling = %v, want 0.7", sys.Utilization(1e9))
	}
	if math.Abs(factor-0.7/0.3) > 1e-9 {
		t.Fatalf("factor = %v, want %v", factor, 0.7/0.3)
	}
}

func TestScaleToUtilizationEmptyIsNoop(t *testing.T) {
	sys := NewSystem()
	if f := sys.ScaleToUtilization(0.5, 1e9); f != 1 {
		t.Fatalf("factor = %v, want 1", f)
	}
}

func TestSystemValidateRejectsEmpty(t *testing.T) {
	sys := NewSystem()
	if err := sys.Validate(1e9); !errors.Is(err, ErrEmptySystem) {
		t.Fatalf("Validate = %v, want ErrEmptySystem", err)
	}
}

func TestSystemValidateRejectsDuplicateNames(t *testing.T) {
	g1 := NewGraph("T", 1)
	g1.AddNode("", 10)
	g2 := NewGraph("T", 1)
	g2.AddNode("", 10)
	sys := NewSystem(g1, g2)
	if err := sys.Validate(0); !errors.Is(err, ErrDuplicateGraph) {
		t.Fatalf("Validate = %v, want ErrDuplicateGraph", err)
	}
}

func TestSystemValidateRejectsOverload(t *testing.T) {
	g := NewGraph("T", 1)
	g.AddNode("", 2e9) // 2e9 cycles each second at fmax=1e9 => U=2
	sys := NewSystem(g)
	if err := sys.Validate(1e9); !errors.Is(err, ErrOverload) {
		t.Fatalf("Validate = %v, want ErrOverload", err)
	}
	// Without an fmax the utilisation check is skipped.
	if err := sys.Validate(0); err != nil {
		t.Fatalf("Validate without fmax = %v, want nil", err)
	}
}

func TestHyperperiod(t *testing.T) {
	sys := twoGraphSystem(t)
	if got := sys.Hyperperiod(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("Hyperperiod = %v, want 0.1", got)
	}
	g3 := NewGraph("T3", 0.04)
	g3.AddNode("", 1e6)
	sys.Add(g3)
	if got := sys.Hyperperiod(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("Hyperperiod = %v, want 0.2", got)
	}
}

func TestHyperperiodFallbackForIrrationalPeriods(t *testing.T) {
	g1 := NewGraph("T1", math.Pi*1e-7) // far below the 1 microsecond grid
	g1.AddNode("", 1)
	sys := NewSystem(g1)
	got := sys.Hyperperiod()
	if got <= 0 {
		t.Fatalf("Hyperperiod fallback = %v, want > 0", got)
	}
}

func TestMinMaxPeriod(t *testing.T) {
	sys := twoGraphSystem(t)
	if got := sys.MinPeriod(); got != 0.05 {
		t.Fatalf("MinPeriod = %v, want 0.05", got)
	}
	if got := sys.MaxPeriod(); got != 0.1 {
		t.Fatalf("MaxPeriod = %v, want 0.1", got)
	}
	empty := NewSystem()
	if got := empty.MinPeriod(); got != 0 {
		t.Fatalf("empty MinPeriod = %v, want 0", got)
	}
}

func TestSystemCloneIsDeep(t *testing.T) {
	sys := twoGraphSystem(t)
	c := sys.Clone()
	c.Graphs[0].Nodes[0].WCET = 1
	if sys.Graphs[0].Nodes[0].WCET == 1 {
		t.Fatal("clone shares storage with original")
	}
}

func TestSystemTotalNodesAndString(t *testing.T) {
	sys := twoGraphSystem(t)
	if got := sys.TotalNodes(); got != 3 {
		t.Fatalf("TotalNodes = %d, want 3", got)
	}
	if sys.String() == "" {
		t.Fatal("empty system string")
	}
}

func TestSystemJSONRoundTrip(t *testing.T) {
	sys := twoGraphSystem(t)
	var buf bytes.Buffer
	if err := sys.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.NumGraphs() != sys.NumGraphs() {
		t.Fatalf("graphs = %d, want %d", back.NumGraphs(), sys.NumGraphs())
	}
	if back.TotalNodes() != sys.TotalNodes() {
		t.Fatalf("nodes = %d, want %d", back.TotalNodes(), sys.TotalNodes())
	}
	if back.Graphs[0].Name != "T1" || back.Graphs[0].Period != 0.05 {
		t.Fatalf("graph 0 round-trip mismatch: %+v", back.Graphs[0])
	}
	if len(back.Graphs[0].Edges) != 1 || back.Graphs[0].Edges[0] != (Edge{From: 0, To: 1}) {
		t.Fatalf("edges round-trip mismatch: %+v", back.Graphs[0].Edges)
	}
	if math.Abs(back.Utilization(1e9)-sys.Utilization(1e9)) > 1e-12 {
		t.Fatalf("utilisation changed across round trip")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	// Structurally invalid: a graph without nodes.
	if _, err := ReadJSON(bytes.NewBufferString(`{"graphs":[{"period":1,"nodes":[]}]}`)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := NewGraph("G", 2.5)
	g.AddNode("a", 100)
	g.AddNode("b", 200)
	g.AddEdge(0, 1)
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	var back Graph
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatalf("UnmarshalJSON: %v", err)
	}
	if back.Name != "G" || back.Period != 2.5 || back.NumNodes() != 2 || len(back.Edges) != 1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
}
