package taskgraph

import "math/rand"

// ExecutionModel draws the actual execution requirement (in cycles at f_max)
// of a node instance. The paper assumes the actual computation of a task is
// "chosen at random between 20% and 100% of the WCET".
type ExecutionModel interface {
	// Actual returns the actual cycles for one instance of the node. The
	// result must satisfy 0 < Actual <= node.WCET.
	Actual(g *Graph, id NodeID) float64
}

// UniformExecution draws the actual requirement uniformly in
// [MinFraction, MaxFraction] * WCET. The zero value is not usable; use
// NewUniformExecution.
type UniformExecution struct {
	MinFraction float64
	MaxFraction float64
	rng         *rand.Rand
}

// NewUniformExecution returns the paper's execution model: actual cycles
// drawn uniformly in [minFrac, maxFrac]*WCET using the given seed. The paper
// uses minFrac=0.2, maxFrac=1.0.
func NewUniformExecution(minFrac, maxFrac float64, seed int64) *UniformExecution {
	if minFrac <= 0 {
		minFrac = 0.2
	}
	if maxFrac <= 0 || maxFrac > 1 {
		maxFrac = 1.0
	}
	if minFrac > maxFrac {
		minFrac, maxFrac = maxFrac, minFrac
	}
	return &UniformExecution{MinFraction: minFrac, MaxFraction: maxFrac, rng: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the model onto a fresh uniform stream for the given seed.
// The resulting draw sequence is identical to that of a model newly built
// with NewUniformExecution(u.MinFraction, u.MaxFraction, seed), which is what
// lets a reused engine reproduce a fresh run bit-for-bit.
func (u *UniformExecution) Reseed(seed int64) { u.rng.Seed(seed) }

// Actual implements ExecutionModel.
func (u *UniformExecution) Actual(g *Graph, id NodeID) float64 {
	wc := g.Nodes[id].WCET
	f := u.MinFraction + u.rng.Float64()*(u.MaxFraction-u.MinFraction)
	ac := f * wc
	if ac <= 0 {
		ac = wc * u.MinFraction
	}
	if ac > wc {
		ac = wc
	}
	return ac
}

// RecordedExecution wraps an ExecutionModel and records every value it draws,
// so the identical execution realisation can be replayed for further runs over
// the same workload. The scheduling engine queries Actual in a scheme-
// independent order (releases are processed in strict time order, node-index
// order within a release), which is what makes a realisation recorded under
// one scheme valid for every other scheme on the same system, seed and
// horizon — the comparability contract the experiment drivers rely on.
//
// In replay mode a call past the recorded sequence falls through to the
// underlying model (and extends the recording); this only happens when the
// replayed run releases more instances than the recorded one, which the
// drivers' equal-horizon usage never does.
type RecordedExecution struct {
	model     ExecutionModel
	vals      []float64
	pos       int
	replaying bool
}

// NewRecordedExecution returns a recording wrapper around model, in recording
// mode with an empty tape.
func NewRecordedExecution(model ExecutionModel) *RecordedExecution {
	return &RecordedExecution{model: model}
}

// Restart switches to a new underlying model (e.g. one reseeded for the next
// task set), truncates the tape keeping its capacity, and returns to recording
// mode.
func (r *RecordedExecution) Restart(model ExecutionModel) {
	r.model = model
	r.vals = r.vals[:0]
	r.pos = 0
	r.replaying = false
}

// Replay rewinds to the start of the tape: subsequent Actual calls return the
// recorded values in order.
func (r *RecordedExecution) Replay() {
	r.pos = 0
	r.replaying = true
}

// Len returns the number of recorded draws.
func (r *RecordedExecution) Len() int { return len(r.vals) }

// Actual implements ExecutionModel.
func (r *RecordedExecution) Actual(g *Graph, id NodeID) float64 {
	if r.replaying && r.pos < len(r.vals) {
		v := r.vals[r.pos]
		r.pos++
		return v
	}
	v := r.model.Actual(g, id)
	r.vals = append(r.vals, v)
	r.pos = len(r.vals)
	return v
}

// WorstCaseExecution always returns the WCET: every instance takes its worst
// case. Useful for deterministic traces (Figure 5 of the paper) and for
// schedulability tests.
type WorstCaseExecution struct{}

// Actual implements ExecutionModel.
func (WorstCaseExecution) Actual(g *Graph, id NodeID) float64 { return g.Nodes[id].WCET }

// FixedFractionExecution returns a fixed fraction of the WCET for every node,
// optionally overridden per node name. It reproduces hand-built scenarios such
// as the paper's Figure 4 (40%/60% actual computation).
type FixedFractionExecution struct {
	// Fraction is the default actual/WCET ratio (clamped to (0,1]).
	Fraction float64
	// PerNode overrides the fraction for nodes whose Name matches the key.
	PerNode map[string]float64
}

// Actual implements ExecutionModel.
func (f *FixedFractionExecution) Actual(g *Graph, id NodeID) float64 {
	frac := f.Fraction
	if f.PerNode != nil {
		if v, ok := f.PerNode[g.Nodes[id].Name]; ok {
			frac = v
		}
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	return frac * g.Nodes[id].WCET
}
