package taskgraph

import "math/rand"

// ExecutionModel draws the actual execution requirement (in cycles at f_max)
// of a node instance. The paper assumes the actual computation of a task is
// "chosen at random between 20% and 100% of the WCET".
type ExecutionModel interface {
	// Actual returns the actual cycles for one instance of the node. The
	// result must satisfy 0 < Actual <= node.WCET.
	Actual(g *Graph, id NodeID) float64
}

// UniformExecution draws the actual requirement uniformly in
// [MinFraction, MaxFraction] * WCET. The zero value is not usable; use
// NewUniformExecution.
type UniformExecution struct {
	MinFraction float64
	MaxFraction float64
	rng         *rand.Rand
}

// NewUniformExecution returns the paper's execution model: actual cycles
// drawn uniformly in [minFrac, maxFrac]*WCET using the given seed. The paper
// uses minFrac=0.2, maxFrac=1.0.
func NewUniformExecution(minFrac, maxFrac float64, seed int64) *UniformExecution {
	if minFrac <= 0 {
		minFrac = 0.2
	}
	if maxFrac <= 0 || maxFrac > 1 {
		maxFrac = 1.0
	}
	if minFrac > maxFrac {
		minFrac, maxFrac = maxFrac, minFrac
	}
	return &UniformExecution{MinFraction: minFrac, MaxFraction: maxFrac, rng: rand.New(rand.NewSource(seed))}
}

// Actual implements ExecutionModel.
func (u *UniformExecution) Actual(g *Graph, id NodeID) float64 {
	wc := g.Nodes[id].WCET
	f := u.MinFraction + u.rng.Float64()*(u.MaxFraction-u.MinFraction)
	ac := f * wc
	if ac <= 0 {
		ac = wc * u.MinFraction
	}
	if ac > wc {
		ac = wc
	}
	return ac
}

// WorstCaseExecution always returns the WCET: every instance takes its worst
// case. Useful for deterministic traces (Figure 5 of the paper) and for
// schedulability tests.
type WorstCaseExecution struct{}

// Actual implements ExecutionModel.
func (WorstCaseExecution) Actual(g *Graph, id NodeID) float64 { return g.Nodes[id].WCET }

// FixedFractionExecution returns a fixed fraction of the WCET for every node,
// optionally overridden per node name. It reproduces hand-built scenarios such
// as the paper's Figure 4 (40%/60% actual computation).
type FixedFractionExecution struct {
	// Fraction is the default actual/WCET ratio (clamped to (0,1]).
	Fraction float64
	// PerNode overrides the fraction for nodes whose Name matches the key.
	PerNode map[string]float64
}

// Actual implements ExecutionModel.
func (f *FixedFractionExecution) Actual(g *Graph, id NodeID) float64 {
	frac := f.Fraction
	if f.PerNode != nil {
		if v, ok := f.PerNode[g.Nodes[id].Name]; ok {
			frac = v
		}
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	return frac * g.Nodes[id].WCET
}
