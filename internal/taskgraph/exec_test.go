package taskgraph

import (
	"testing"
	"testing/quick"
)

func TestUniformExecutionBounds(t *testing.T) {
	g := NewGraph("g", 1)
	g.AddNode("", 1000)
	m := NewUniformExecution(0.2, 1.0, 42)
	for i := 0; i < 1000; i++ {
		ac := m.Actual(g, 0)
		if ac < 0.2*1000-1e-9 || ac > 1000+1e-9 {
			t.Fatalf("actual %v outside [200,1000]", ac)
		}
	}
}

func TestUniformExecutionIsDeterministicPerSeed(t *testing.T) {
	g := NewGraph("g", 1)
	g.AddNode("", 1000)
	a := NewUniformExecution(0.2, 1.0, 7)
	b := NewUniformExecution(0.2, 1.0, 7)
	for i := 0; i < 100; i++ {
		if a.Actual(g, 0) != b.Actual(g, 0) {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestUniformExecutionDefaultsForBadArgs(t *testing.T) {
	m := NewUniformExecution(-1, 2, 1)
	if m.MinFraction != 0.2 || m.MaxFraction != 1.0 {
		t.Fatalf("defaults not applied: %+v", m)
	}
	// Swapped bounds are reordered.
	m2 := NewUniformExecution(0.9, 0.3, 1)
	if m2.MinFraction > m2.MaxFraction {
		t.Fatalf("bounds not reordered: %+v", m2)
	}
}

func TestWorstCaseExecution(t *testing.T) {
	g := NewGraph("g", 1)
	g.AddNode("", 777)
	var m WorstCaseExecution
	if got := m.Actual(g, 0); got != 777 {
		t.Fatalf("Actual = %v, want 777", got)
	}
}

func TestFixedFractionExecution(t *testing.T) {
	g := NewGraph("g", 1)
	g.AddNode("task1", 1000)
	g.AddNode("task2", 1000)
	m := &FixedFractionExecution{Fraction: 0.4, PerNode: map[string]float64{"task2": 0.6}}
	if got := m.Actual(g, 0); got != 400 {
		t.Fatalf("task1 actual = %v, want 400", got)
	}
	if got := m.Actual(g, 1); got != 600 {
		t.Fatalf("task2 actual = %v, want 600", got)
	}
	// Out-of-range fraction falls back to the WCET.
	bad := &FixedFractionExecution{Fraction: 0}
	if got := bad.Actual(g, 0); got != 1000 {
		t.Fatalf("fallback actual = %v, want 1000", got)
	}
}

// Property: every execution model yields 0 < actual <= WCET.
func TestExecutionModelsWithinBoundsProperty(t *testing.T) {
	g := NewGraph("g", 1)
	g.AddNode("n", 12345)
	models := []ExecutionModel{
		NewUniformExecution(0.2, 1.0, 99),
		WorstCaseExecution{},
		&FixedFractionExecution{Fraction: 0.5},
	}
	f := func(_ uint8) bool {
		for _, m := range models {
			ac := m.Actual(g, 0)
			if ac <= 0 || ac > g.Nodes[0].WCET+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
