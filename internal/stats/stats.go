// Package stats provides the small set of descriptive statistics the
// experiment harness needs to aggregate results over many random task-graph
// sets: mean, standard deviation, min/max and Student-t 95 % confidence
// intervals, plus an online accumulator.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs (0 for a single value).
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary is the aggregate description of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the 95 % confidence interval of the mean,
	// using the Student-t critical value for the sample's degrees of freedom
	// (the normal z≈1.96 understates the interval for small samples, which
	// matters once adaptive stopping keys off it).
	CI95 float64
}

// RelCI95 returns CI95 relative to the magnitude of the mean. A zero mean
// with a non-zero interval reports +Inf (never converged); a zero mean with a
// zero interval reports 0.
func (s Summary) RelCI95() float64 {
	if s.CI95 == 0 {
		return 0
	}
	if s.Mean == 0 {
		return math.Inf(1)
	}
	return s.CI95 / math.Abs(s.Mean)
}

// tCritical975 holds the upper 97.5 % critical values of the Student-t
// distribution for 1..30 degrees of freedom.
var tCritical975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical975Sparse extends the table beyond 30 degrees of freedom;
// intermediate values interpolate linearly in 1/df (the standard textbook
// rule), converging to z = 1.960 in the limit.
var tCritical975Sparse = []struct {
	df int
	t  float64
}{
	{30, 2.042}, {40, 2.021}, {60, 2.000}, {80, 1.990}, {100, 1.984}, {120, 1.980},
}

// TCritical95 returns the two-sided 95 % Student-t critical value for df
// degrees of freedom (df < 1 returns +Inf: no interval exists).
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return math.Inf(1)
	case df <= len(tCritical975):
		return tCritical975[df-1]
	}
	for i := 1; i < len(tCritical975Sparse); i++ {
		lo, hi := tCritical975Sparse[i-1], tCritical975Sparse[i]
		if df <= hi.df {
			// Interpolate in 1/df between the bracketing table entries.
			x := (1/float64(df) - 1/float64(hi.df)) / (1/float64(lo.df) - 1/float64(hi.df))
			return hi.t + x*(lo.t-hi.t)
		}
	}
	// Beyond the table, keep interpolating in 1/df toward the z = 1.960
	// limit at 1/df = 0 (a hard jump to z at the table edge would
	// discontinuously understate the interval).
	last := tCritical975Sparse[len(tCritical975Sparse)-1]
	return 1.960 + (last.t-1.960)*float64(last.df)/float64(df)
}

// ci95 returns the t-based 95 % half-width for a sample of size n with sample
// standard deviation sd.
func ci95(n int, sd float64) float64 {
	if n < 2 {
		return 0
	}
	return TCritical95(n-1) * sd / math.Sqrt(float64(n))
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: lo, Max: hi, CI95: ci95(len(xs), sd)}, nil
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.3g min=%.4g max=%.4g", s.N, s.Mean, s.CI95, s.StdDev, s.Min, s.Max)
}

// Accumulator collects values online (Welford's algorithm) so experiment
// sweeps do not need to keep every sample.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge incorporates the observations of b into a, as if every value added
// to b had been added to a (Chan et al.'s parallel Welford combination). It
// lets each worker of a parallel sweep aggregate into its own Accumulator
// without locks and the caller combine the partials afterwards; merging
// partials in a fixed order yields deterministic results at any worker count.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// State is the serialisable snapshot of an Accumulator: the Welford triple
// (n, mean, M2) plus the running extrema. JSON round-trips are exact —
// encoding/json emits the shortest float64 representation that parses back to
// the identical bits — so an exported State re-imported with FromState behaves
// bit-for-bit like the original accumulator. Shard/merge experiment runs rely
// on this to move partial accumulators between processes.
type State struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State exports the accumulator's serialisable state.
func (a *Accumulator) State() State {
	return State{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max}
}

// FromState reconstructs an Accumulator from exported state. The result is
// indistinguishable from the accumulator that produced s: subsequent Add and
// Merge calls continue bit-for-bit as if the original had kept running.
func FromState(s State) Accumulator {
	return Accumulator{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}
}

// N returns the number of observations added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the running sample standard deviation (0 when n < 2).
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Summary returns the aggregate description of the accumulated observations.
func (a *Accumulator) Summary() Summary {
	return Summary{N: a.n, Mean: a.mean, StdDev: a.StdDev(), Min: a.min, Max: a.max, CI95: ci95(a.n, a.StdDev())}
}

// RelCI95 returns the t-based CI95 half-width of the accumulated mean,
// relative to the magnitude of the mean (see Summary.RelCI95). Adaptive
// experiment stopping keys off this value.
func (a *Accumulator) RelCI95() float64 { return a.Summary().RelCI95() }
