// Package stats provides the small set of descriptive statistics the
// experiment harness needs to aggregate results over many random task-graph
// sets: mean, standard deviation, min/max and normal-approximation confidence
// intervals, plus an online accumulator.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs (0 for a single value).
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary is the aggregate description of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the 95 % confidence interval of the mean
	// under a normal approximation.
	CI95 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	ci := 0.0
	if len(xs) > 1 {
		ci = 1.96 * sd / math.Sqrt(float64(len(xs)))
	}
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: lo, Max: hi, CI95: ci}, nil
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.3g min=%.4g max=%.4g", s.N, s.Mean, s.CI95, s.StdDev, s.Min, s.Max)
}

// Accumulator collects values online (Welford's algorithm) so experiment
// sweeps do not need to keep every sample.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge incorporates the observations of b into a, as if every value added
// to b had been added to a (Chan et al.'s parallel Welford combination). It
// lets each worker of a parallel sweep aggregate into its own Accumulator
// without locks and the caller combine the partials afterwards; merging
// partials in a fixed order yields deterministic results at any worker count.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// N returns the number of observations added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the running sample standard deviation (0 when n < 2).
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Summary returns the aggregate description of the accumulated observations.
func (a *Accumulator) Summary() Summary {
	ci := 0.0
	if a.n > 1 {
		ci = 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
	}
	return Summary{N: a.n, Mean: a.mean, StdDev: a.StdDev(), Min: a.min, Max: a.max, CI95: ci}
}
