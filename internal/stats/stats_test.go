package stats

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptySampleErrors(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v", err)
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Variance(nil) err = %v", err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("StdDev(nil) err = %v", err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Max(nil) err = %v", err)
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Percentile(nil) err = %v", err)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Summarize(nil) err = %v", err)
	}
}

func TestBasicStatistics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	v, _ := Variance(xs)
	if math.Abs(v-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
	sd, _ := StdDev(xs)
	if math.Abs(sd-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", sd)
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo != 2 || hi != 9 {
		t.Fatalf("Min/Max = %v/%v", lo, hi)
	}
}

func TestSingleValueVarianceIsZero(t *testing.T) {
	v, err := Variance([]float64{42})
	if err != nil || v != 0 {
		t.Fatalf("Variance([42]) = %v, %v", v, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-10, 1}, {110, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	single, _ := Percentile([]float64{7}, 50)
	if single != 7 {
		t.Fatalf("Percentile single = %v", single)
	}
	// Interpolation between order statistics.
	interp, _ := Percentile([]float64{0, 10}, 25)
	if math.Abs(interp-2.5) > 1e-12 {
		t.Fatalf("Percentile interp = %v, want 2.5", interp)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want > 0", s.CI95)
	}
	if s.String() == "" {
		t.Fatal("empty Summary string")
	}
	one, _ := Summarize([]float64{9})
	if one.CI95 != 0 || one.StdDev != 0 {
		t.Fatalf("single-sample summary = %+v", one)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {9, 2.262}, {29, 2.045}, {30, 2.042},
		{40, 2.021}, {60, 2.000}, {120, 1.980},
		// Beyond the table the value interpolates in 1/df toward z = 1.960:
		// 1.960 + 0.020*120/df.
		{121, 1.960 + 0.020*120.0/121}, {240, 1.970}, {1200, 1.962},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Errorf("TCritical95(0) = %v, want +Inf", TCritical95(0))
	}
	// Interpolated values must lie strictly between the bracketing entries
	// and decrease monotonically, including past the table edge.
	prev := TCritical95(30)
	for df := 31; df <= 2000; df++ {
		got := TCritical95(df)
		if got > prev+1e-12 || got < 1.960-1e-12 {
			t.Fatalf("TCritical95(%d) = %v not monotone (prev %v)", df, got, prev)
		}
		prev = got
	}
}

func TestCI95UsesStudentT(t *testing.T) {
	// n=5 → df=4 → t=2.776; the old normal approximation used 1.96.
	xs := []float64{1, 2, 3, 4, 5}
	s, _ := Summarize(xs)
	sd, _ := StdDev(xs)
	want := 2.776 * sd / math.Sqrt(5)
	if math.Abs(s.CI95-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want t-based %v", s.CI95, want)
	}
}

func TestRelCI95(t *testing.T) {
	s := Summary{Mean: 10, CI95: 0.5}
	if got := s.RelCI95(); math.Abs(got-0.05) > 1e-15 {
		t.Fatalf("RelCI95 = %v, want 0.05", got)
	}
	if got := (Summary{Mean: 0, CI95: 1}).RelCI95(); !math.IsInf(got, 1) {
		t.Fatalf("RelCI95 zero-mean = %v, want +Inf", got)
	}
	if got := (Summary{}).RelCI95(); got != 0 {
		t.Fatalf("RelCI95 empty = %v, want 0", got)
	}
	var acc Accumulator
	for _, x := range []float64{9, 10, 11} {
		acc.Add(x)
	}
	if got, want := acc.RelCI95(), acc.Summary().RelCI95(); got != want {
		t.Fatalf("Accumulator.RelCI95 = %v, want %v", got, want)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{3.5, -1, 2, 8, 0.25, 7, 7, -2.5}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	batch, _ := Summarize(xs)
	got := acc.Summary()
	if got.N != batch.N {
		t.Fatalf("N = %d, want %d", got.N, batch.N)
	}
	if math.Abs(got.Mean-batch.Mean) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got.Mean, batch.Mean)
	}
	if math.Abs(got.StdDev-batch.StdDev) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got.StdDev, batch.StdDev)
	}
	if got.Min != batch.Min || got.Max != batch.Max {
		t.Fatalf("Min/Max = %v/%v, want %v/%v", got.Min, got.Max, batch.Min, batch.Max)
	}
	if math.Abs(got.CI95-batch.CI95) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got.CI95, batch.CI95)
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.StdDev() != 0 {
		t.Fatalf("empty accumulator = %+v", acc.Summary())
	}
	acc.Add(5)
	if acc.N() != 1 || acc.Mean() != 5 || acc.StdDev() != 0 {
		t.Fatalf("single accumulator = %+v", acc.Summary())
	}
}

// Property: the accumulator's mean always lies within [min, max] of the
// values added, and matches the batch mean.
func TestAccumulatorProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1e6))
		}
		if len(clean) == 0 {
			return true
		}
		var acc Accumulator
		for _, x := range clean {
			acc.Add(x)
		}
		batch, _ := Mean(clean)
		lo, _ := Min(clean)
		hi, _ := Max(clean)
		tol := 1e-9 * math.Max(1, math.Abs(batch))
		return math.Abs(acc.Mean()-batch) <= tol && acc.Mean() >= lo-tol && acc.Mean() <= hi+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAccumulatorMerge checks the parallel Welford combination against a
// single-stream accumulator over every split point of a fixed sample.
func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var want Accumulator
	for _, x := range xs {
		want.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var a, b Accumulator
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != want.N() {
			t.Fatalf("split %d: n = %d, want %d", split, a.N(), want.N())
		}
		if math.Abs(a.Mean()-want.Mean()) > 1e-9 {
			t.Fatalf("split %d: mean = %v, want %v", split, a.Mean(), want.Mean())
		}
		if math.Abs(a.StdDev()-want.StdDev()) > 1e-9 {
			t.Fatalf("split %d: sd = %v, want %v", split, a.StdDev(), want.StdDev())
		}
		as, ws := a.Summary(), want.Summary()
		if as.Min != ws.Min || as.Max != ws.Max {
			t.Fatalf("split %d: min/max = %v/%v, want %v/%v", split, as.Min, as.Max, ws.Min, ws.Max)
		}
	}
}

// TestAccumulatorMergeManyChunks folds a sample in unequal chunks, as the
// job-grid runner does with per-job partials.
func TestAccumulatorMergeManyChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 503)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	var want Accumulator
	for _, x := range xs {
		want.Add(x)
	}
	var got Accumulator
	for lo := 0; lo < len(xs); {
		hi := lo + 1 + rng.Intn(37)
		if hi > len(xs) {
			hi = len(xs)
		}
		var part Accumulator
		for _, x := range xs[lo:hi] {
			part.Add(x)
		}
		got.Merge(part)
		lo = hi
	}
	if got.N() != want.N() || math.Abs(got.Mean()-want.Mean()) > 1e-9 || math.Abs(got.StdDev()-want.StdDev()) > 1e-9 {
		t.Fatalf("chunked merge = %+v, want %+v", got.Summary(), want.Summary())
	}
}

// TestAccumulatorMergeEmpty covers the empty-side special cases.
func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Merge(b)
	if a.N() != 0 {
		t.Fatalf("empty+empty n = %d", a.N())
	}
	b.Add(3)
	b.Add(5)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("empty+filled = %+v", a.Summary())
	}
	var c Accumulator
	a.Merge(c)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("filled+empty = %+v", a.Summary())
	}
}

// TestStateJSONRoundTrip checks that export -> JSON -> import preserves the
// accumulator exactly: encoding/json emits the shortest float64 representation
// that parses back to the identical bits, so n, mean and variance survive
// bit-for-bit and a re-imported accumulator keeps accumulating as if it had
// never been serialised.
func TestStateJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a Accumulator
	for i := 0; i < 137; i++ {
		a.Add(rng.NormFloat64()*1e3 + 17)
	}
	blob, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var s State
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	if s != a.State() {
		t.Fatalf("state changed across JSON round-trip:\n%+v\n%+v", s, a.State())
	}
	b := FromState(s)
	if b.N() != a.N() || b.Mean() != a.Mean() || b.StdDev() != a.StdDev() || b.Summary() != a.Summary() {
		t.Fatalf("re-imported accumulator differs:\n%+v\n%+v", b.Summary(), a.Summary())
	}
	// Continuing to accumulate must be bit-identical to the original.
	a.Add(42.5)
	b.Add(42.5)
	if a.State() != b.State() {
		t.Fatalf("post-import Add diverged:\n%+v\n%+v", a.State(), b.State())
	}
}

// TestMergeReimportedPartials checks the shard/merge contract at the stats
// layer: merging shard partials that went through a JSON round-trip is
// bit-for-bit identical to merging the original in-memory partials (the
// serialisation adds nothing). Merging partials is NOT bit-identical to the
// single-process accumulator that Adds every sample in sequence — Chan et
// al.'s combination reassociates the Welford update, so mean and M2 may
// differ by a few ulps; that reassociation bound is asserted here and
// documented wherever stateless merges are used (the scenario grid). The
// per-set experiment drivers sidestep it by retaining samples and replaying
// them at merge time.
func TestMergeReimportedPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 301)
	for i := range xs {
		xs[i] = rng.NormFloat64()*250 + 1200
	}

	var whole Accumulator
	for _, x := range xs {
		whole.Add(x)
	}

	bounds := []int{0, 97, 200, len(xs)}
	var direct, reimported Accumulator
	for i := 1; i < len(bounds); i++ {
		var part Accumulator
		for _, x := range xs[bounds[i-1]:bounds[i]] {
			part.Add(x)
		}
		direct.Merge(part)

		blob, err := json.Marshal(part.State())
		if err != nil {
			t.Fatal(err)
		}
		var s State
		if err := json.Unmarshal(blob, &s); err != nil {
			t.Fatal(err)
		}
		reimported.Merge(FromState(s))
	}

	// Bit-for-bit: serialised partials merge exactly like in-memory partials.
	if direct.State() != reimported.State() {
		t.Fatalf("re-imported merge differs from direct merge:\n%+v\n%+v", direct.State(), reimported.State())
	}
	// Documented reassociation bound versus the sequential accumulator.
	const relTol = 1e-12
	if reimported.N() != whole.N() ||
		math.Abs(reimported.Mean()-whole.Mean()) > relTol*math.Abs(whole.Mean()) ||
		math.Abs(reimported.StdDev()-whole.StdDev()) > relTol*whole.StdDev() {
		t.Fatalf("merged partials beyond reassociation bound:\n%+v\n%+v", reimported.Summary(), whole.Summary())
	}
	// Extrema are order-independent and therefore exact.
	if ws, ms := whole.Summary(), reimported.Summary(); ws.Min != ms.Min || ws.Max != ms.Max {
		t.Fatalf("extrema differ: %+v vs %+v", ms, ws)
	}
}
