// Package processor models the single DVS-capable processor and its power
// delivery chain used by the paper: a set of discrete frequency/voltage
// operating points, a CMOS-style dynamic power model (P = Ceff * V^2 * f) and
// a DC-DC converter of efficiency eta between the battery and the processor
// core.
//
// The battery-terminal current for an operating point is
//
//	Ibat = P / (eta * Vbat) = Ceff * V^2 * f / (eta * Vbat)
//
// which, because supply voltage scales roughly linearly with frequency across
// the supported operating points, scales approximately with the cube of the
// normalised speed s = f/fmax — exactly the s^3 current scaling the paper
// derives from eta*Vbat*Ibat = Vproc*Iproc.
package processor

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// OperatingPoint is one supported frequency/voltage pair of the processor.
type OperatingPoint struct {
	// Frequency in Hz.
	Frequency float64
	// Voltage is the core supply voltage in volts at this frequency.
	Voltage float64
}

// Errors returned by Model validation and lookups.
var (
	ErrNoPoints      = errors.New("processor: no operating points")
	ErrUnsorted      = errors.New("processor: operating points must be strictly increasing in frequency and voltage")
	ErrBadParameter  = errors.New("processor: parameter out of range")
	ErrFreqOutOfGrid = errors.New("processor: requested frequency outside supported range")
)

// Model describes the processor and its power-delivery chain.
type Model struct {
	// Points are the supported operating points, sorted by frequency.
	Points []OperatingPoint
	// Ceff is the effective switched capacitance in farads; dynamic power is
	// Ceff * V^2 * f.
	Ceff float64
	// ConverterEfficiency is the DC-DC converter efficiency eta in (0, 1].
	ConverterEfficiency float64
	// BatteryVoltage is the nominal battery terminal voltage Vbat in volts.
	BatteryVoltage float64
	// IdleCurrent is the battery current drawn when the processor idles, in
	// amperes.
	IdleCurrent float64
}

// Default returns the processor used throughout the paper's evaluation:
// operating points [(0.5 GHz, 3 V), (0.75 GHz, 4 V), (1.0 GHz, 5 V)], powered
// from a 1.2 V NiMH cell through a 90 % efficient converter. Ceff is
// calibrated so that full-speed power is about 2.2 W, which reproduces the
// order of magnitude of the paper's lifetimes (74–148 minutes on a 2000 mAh
// cell at 70 % utilisation).
func Default() *Model {
	return &Model{
		Points: []OperatingPoint{
			{Frequency: 0.5e9, Voltage: 3.0},
			{Frequency: 0.75e9, Voltage: 4.0},
			{Frequency: 1.0e9, Voltage: 5.0},
		},
		Ceff:                88e-12, // 2.2 W at (1 GHz, 5 V)
		ConverterEfficiency: 0.90,
		BatteryVoltage:      1.2,
		IdleCurrent:         0.010, // 10 mA housekeeping / leakage
	}
}

// Validate checks that the model is physically meaningful.
func (m *Model) Validate() error {
	if len(m.Points) == 0 {
		return ErrNoPoints
	}
	for i := 1; i < len(m.Points); i++ {
		if m.Points[i].Frequency <= m.Points[i-1].Frequency || m.Points[i].Voltage < m.Points[i-1].Voltage {
			return ErrUnsorted
		}
	}
	for _, p := range m.Points {
		if p.Frequency <= 0 || p.Voltage <= 0 {
			return fmt.Errorf("%w: operating point %+v", ErrBadParameter, p)
		}
	}
	if m.Ceff <= 0 {
		return fmt.Errorf("%w: Ceff=%v", ErrBadParameter, m.Ceff)
	}
	if m.ConverterEfficiency <= 0 || m.ConverterEfficiency > 1 {
		return fmt.Errorf("%w: ConverterEfficiency=%v", ErrBadParameter, m.ConverterEfficiency)
	}
	if m.BatteryVoltage <= 0 {
		return fmt.Errorf("%w: BatteryVoltage=%v", ErrBadParameter, m.BatteryVoltage)
	}
	if m.IdleCurrent < 0 {
		return fmt.Errorf("%w: IdleCurrent=%v", ErrBadParameter, m.IdleCurrent)
	}
	return nil
}

// FMax returns the maximum supported frequency in Hz.
func (m *Model) FMax() float64 { return m.Points[len(m.Points)-1].Frequency }

// FMin returns the minimum supported frequency in Hz.
func (m *Model) FMin() float64 { return m.Points[0].Frequency }

// ClampFrequency limits f to [FMin, FMax].
func (m *Model) ClampFrequency(f float64) float64 {
	if f < m.FMin() {
		return m.FMin()
	}
	if f > m.FMax() {
		return m.FMax()
	}
	return f
}

// VoltageAt returns the supply voltage required to run at frequency f,
// interpolating linearly between the surrounding operating points (this is
// the voltage of the "ideal continuous" processor used for the energy-only
// experiments). f is clamped to the supported range.
func (m *Model) VoltageAt(f float64) float64 {
	f = m.ClampFrequency(f)
	pts := m.Points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Frequency >= f })
	if i == 0 {
		return pts[0].Voltage
	}
	if i >= len(pts) {
		return pts[len(pts)-1].Voltage
	}
	lo, hi := pts[i-1], pts[i]
	t := (f - lo.Frequency) / (hi.Frequency - lo.Frequency)
	return lo.Voltage + t*(hi.Voltage-lo.Voltage)
}

// Power returns the processor core power in watts when running continuously
// at frequency f (using the interpolated voltage).
func (m *Model) Power(f float64) float64 {
	f = m.ClampFrequency(f)
	v := m.VoltageAt(f)
	return m.Ceff * v * v * f
}

// PowerAtPoint returns the core power at a discrete operating point.
func (m *Model) PowerAtPoint(p OperatingPoint) float64 {
	return m.Ceff * p.Voltage * p.Voltage * p.Frequency
}

// BatteryCurrent returns the current drawn from the battery in amperes when
// running continuously at frequency f.
func (m *Model) BatteryCurrent(f float64) float64 {
	return m.Power(f)/(m.ConverterEfficiency*m.BatteryVoltage) + 0 // core only; idle housekeeping is separate
}

// BatteryCurrentAtPoint returns the battery current at a discrete operating
// point.
func (m *Model) BatteryCurrentAtPoint(p OperatingPoint) float64 {
	return m.PowerAtPoint(p) / (m.ConverterEfficiency * m.BatteryVoltage)
}

// EnergyPerCycle returns the battery-side energy consumed per processor cycle
// at frequency f, in joules.
func (m *Model) EnergyPerCycle(f float64) float64 {
	f = m.ClampFrequency(f)
	return m.Power(f) / (m.ConverterEfficiency * f)
}

// Speed returns the normalised speed s = f/FMax in (0, 1].
func (m *Model) Speed(f float64) float64 { return m.ClampFrequency(f) / m.FMax() }

// PowerIdeal returns the core power under the idealised continuous DVS model
// P(f) = Pmax * (f/fmax)^3 used by the paper's energy-only experiments, where
// Pmax is the power of the highest operating point. Unlike Power it does not
// clamp f to the supported range from below (f above fmax is still clamped),
// so it models an ideal processor that can run arbitrarily slowly.
func (m *Model) PowerIdeal(f float64) float64 {
	if f <= 0 {
		return 0
	}
	fmax := m.FMax()
	if f > fmax {
		f = fmax
	}
	s := f / fmax
	return m.PowerAtPoint(m.Points[len(m.Points)-1]) * s * s * s
}

// BatteryCurrentIdeal returns the battery current under the idealised cubic
// model (see PowerIdeal) — this is exactly the s^3 current scaling the paper
// derives from the DC-DC converter equation.
func (m *Model) BatteryCurrentIdeal(f float64) float64 {
	return m.PowerIdeal(f) / (m.ConverterEfficiency * m.BatteryVoltage)
}

// Realization describes how a requested (possibly unsupported) frequency fref
// is realised over an interval: either exactly (continuous mode) or as a
// linear combination of the two adjacent supported frequencies (discrete
// mode). Shares sum to 1.
type Realization struct {
	// Segments lists the operating points used and the fraction of the
	// interval spent at each, ordered highest frequency first so that the
	// local current profile is non-increasing (battery guideline 1).
	Segments []RealizationSegment
}

// RealizationSegment is one constant-frequency portion of a Realization.
type RealizationSegment struct {
	Point OperatingPoint
	Share float64 // fraction of the interval, in [0,1]
}

// EffectiveFrequency returns the time-averaged frequency of the realization.
func (r Realization) EffectiveFrequency() float64 {
	var f float64
	for _, s := range r.Segments {
		f += s.Point.Frequency * s.Share
	}
	return f
}

// AverageCurrent returns the time-averaged battery current of the realization
// under model m.
func (r Realization) AverageCurrent(m *Model) float64 {
	var i float64
	for _, s := range r.Segments {
		i += m.BatteryCurrentAtPoint(s.Point) * s.Share
	}
	return i
}

// Realize maps a requested frequency fref onto the supported operating
// points. If fref matches a supported point (within 1e-9 relative tolerance)
// a single segment is returned. Otherwise the two adjacent points fi < fref <
// fi+1 are combined linearly such that the average frequency equals fref
// (Gaujal/Navet/Walsh show this linear combination is optimal); the
// higher-frequency segment is listed first so the within-interval current
// profile is non-increasing. fref below FMin is realised at FMin, above FMax
// at FMax.
func (m *Model) Realize(fref float64) Realization {
	return m.RealizeInto(fref, nil)
}

// RealizeInto is Realize with a caller-supplied segment buffer: the returned
// Realization's Segments are appended to buf[:0], so a scheduler realising a
// frequency on every decision can reuse one two-element buffer instead of
// allocating per call. Passing nil behaves like Realize.
func (m *Model) RealizeInto(fref float64, buf []RealizationSegment) Realization {
	fref = m.ClampFrequency(fref)
	pts := m.Points
	buf = buf[:0]
	for _, p := range pts {
		if math.Abs(p.Frequency-fref) <= 1e-9*p.Frequency {
			return Realization{Segments: append(buf, RealizationSegment{Point: p, Share: 1})}
		}
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Frequency >= fref })
	if i == 0 {
		return Realization{Segments: append(buf, RealizationSegment{Point: pts[0], Share: 1})}
	}
	if i >= len(pts) {
		return Realization{Segments: append(buf, RealizationSegment{Point: pts[len(pts)-1], Share: 1})}
	}
	lo, hi := pts[i-1], pts[i]
	// share_hi * f_hi + (1-share_hi) * f_lo = fref
	shareHi := (fref - lo.Frequency) / (hi.Frequency - lo.Frequency)
	return Realization{Segments: append(buf,
		RealizationSegment{Point: hi, Share: shareHi},
		RealizationSegment{Point: lo, Share: 1 - shareHi},
	)}
}

// RealizeCeil maps a requested frequency onto the smallest supported
// operating point that is at least fref (the simple quantisation policy many
// DVS implementations use instead of the optimal linear combination). fref
// above FMax is realised at FMax.
func (m *Model) RealizeCeil(fref float64) Realization {
	return m.RealizeCeilInto(fref, nil)
}

// RealizeCeilInto is RealizeCeil with a caller-supplied segment buffer (see
// RealizeInto).
func (m *Model) RealizeCeilInto(fref float64, buf []RealizationSegment) Realization {
	pts := m.Points
	buf = buf[:0]
	for _, p := range pts {
		if p.Frequency >= fref-1e-9*p.Frequency {
			return Realization{Segments: append(buf, RealizationSegment{Point: p, Share: 1})}
		}
	}
	return Realization{Segments: append(buf, RealizationSegment{Point: pts[len(pts)-1], Share: 1})}
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("Processor(points=%d fmax=%.2gHz Pmax=%.2gW eta=%.2f Vbat=%.2gV)",
		len(m.Points), m.FMax(), m.PowerAtPoint(m.Points[len(m.Points)-1]), m.ConverterEfficiency, m.BatteryVoltage)
}
