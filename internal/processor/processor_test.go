package processor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultIsValid(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
	if m.FMax() != 1.0e9 || m.FMin() != 0.5e9 {
		t.Fatalf("FMin/FMax = %v/%v, want 0.5e9/1e9", m.FMin(), m.FMax())
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Model)
		want error
	}{
		{"no points", func(m *Model) { m.Points = nil }, ErrNoPoints},
		{"unsorted freq", func(m *Model) { m.Points[0], m.Points[2] = m.Points[2], m.Points[0] }, ErrUnsorted},
		{"zero ceff", func(m *Model) { m.Ceff = 0 }, ErrBadParameter},
		{"bad eta", func(m *Model) { m.ConverterEfficiency = 1.5 }, ErrBadParameter},
		{"zero vbat", func(m *Model) { m.BatteryVoltage = 0 }, ErrBadParameter},
		{"negative idle", func(m *Model) { m.IdleCurrent = -1 }, ErrBadParameter},
		{"zero voltage point", func(m *Model) { m.Points[0].Voltage = 0 }, ErrBadParameter},
	}
	for _, c := range cases {
		m := Default()
		c.mut(m)
		if err := m.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestClampFrequency(t *testing.T) {
	m := Default()
	if got := m.ClampFrequency(0.1e9); got != 0.5e9 {
		t.Fatalf("clamp low = %v", got)
	}
	if got := m.ClampFrequency(2e9); got != 1e9 {
		t.Fatalf("clamp high = %v", got)
	}
	if got := m.ClampFrequency(0.75e9); got != 0.75e9 {
		t.Fatalf("clamp in range = %v", got)
	}
}

func TestVoltageInterpolation(t *testing.T) {
	m := Default()
	if got := m.VoltageAt(0.5e9); got != 3.0 {
		t.Fatalf("V(0.5GHz) = %v, want 3", got)
	}
	if got := m.VoltageAt(1.0e9); got != 5.0 {
		t.Fatalf("V(1GHz) = %v, want 5", got)
	}
	// Midpoint between 0.5 and 0.75 GHz -> 3.5 V.
	if got := m.VoltageAt(0.625e9); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("V(0.625GHz) = %v, want 3.5", got)
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	m := Default()
	prev := 0.0
	for f := m.FMin(); f <= m.FMax(); f += 0.01e9 {
		p := m.Power(f)
		if p < prev {
			t.Fatalf("power not monotone at f=%v: %v < %v", f, p, prev)
		}
		prev = p
	}
}

func TestPowerCalibration(t *testing.T) {
	m := Default()
	pmax := m.PowerAtPoint(m.Points[len(m.Points)-1])
	if pmax < 2.0 || pmax > 2.4 {
		t.Fatalf("Pmax = %v W, want about 2.2 W", pmax)
	}
}

func TestBatteryCurrentCubicScaling(t *testing.T) {
	m := Default()
	iMax := m.BatteryCurrentAtPoint(m.Points[2])
	iMin := m.BatteryCurrentAtPoint(m.Points[0])
	// At half frequency and 3/5 voltage: ratio = (3/5)^2 * 0.5 = 0.18,
	// close to the paper's s^3 = 0.125 scaling.
	ratio := iMin / iMax
	if ratio > 0.25 || ratio < 0.1 {
		t.Fatalf("current ratio at half speed = %v, want roughly cubic (0.1–0.25)", ratio)
	}
}

func TestEnergyPerCycleDecreasesWithFrequency(t *testing.T) {
	m := Default()
	// Lower frequency means lower voltage, so lower energy per cycle.
	if m.EnergyPerCycle(0.5e9) >= m.EnergyPerCycle(1.0e9) {
		t.Fatalf("energy per cycle should decrease at lower frequency: %v vs %v",
			m.EnergyPerCycle(0.5e9), m.EnergyPerCycle(1.0e9))
	}
}

func TestSpeed(t *testing.T) {
	m := Default()
	if got := m.Speed(0.5e9); got != 0.5 {
		t.Fatalf("Speed(0.5GHz) = %v, want 0.5", got)
	}
	if got := m.Speed(5e9); got != 1 {
		t.Fatalf("Speed clamps to 1, got %v", got)
	}
}

func TestRealizeExactPoint(t *testing.T) {
	m := Default()
	r := m.Realize(0.75e9)
	if len(r.Segments) != 1 || r.Segments[0].Point.Frequency != 0.75e9 || r.Segments[0].Share != 1 {
		t.Fatalf("Realize(0.75GHz) = %+v, want single full segment", r)
	}
}

func TestRealizeInterpolatesAdjacentPoints(t *testing.T) {
	m := Default()
	r := m.Realize(0.6e9)
	if len(r.Segments) != 2 {
		t.Fatalf("Realize(0.6GHz) = %+v, want 2 segments", r)
	}
	// Higher frequency first so the local current profile is non-increasing.
	if r.Segments[0].Point.Frequency <= r.Segments[1].Point.Frequency {
		t.Fatalf("segments not ordered high->low: %+v", r)
	}
	if math.Abs(r.EffectiveFrequency()-0.6e9) > 1 {
		t.Fatalf("effective frequency = %v, want 0.6e9", r.EffectiveFrequency())
	}
	shares := r.Segments[0].Share + r.Segments[1].Share
	if math.Abs(shares-1) > 1e-12 {
		t.Fatalf("shares sum to %v, want 1", shares)
	}
	if r.AverageCurrent(m) <= 0 {
		t.Fatalf("average current = %v, want > 0", r.AverageCurrent(m))
	}
}

func TestRealizeClampsOutOfRange(t *testing.T) {
	m := Default()
	lo := m.Realize(0.1e9)
	if len(lo.Segments) != 1 || lo.Segments[0].Point.Frequency != m.FMin() {
		t.Fatalf("Realize below range = %+v", lo)
	}
	hi := m.Realize(3e9)
	if len(hi.Segments) != 1 || hi.Segments[0].Point.Frequency != m.FMax() {
		t.Fatalf("Realize above range = %+v", hi)
	}
}

// Property: for any in-range frequency the realization reproduces it exactly
// (to numerical precision), its shares are in [0,1] and sum to 1, and its
// average current is between the currents of the lowest and highest points.
func TestRealizeProperty(t *testing.T) {
	m := Default()
	f := func(x float64) bool {
		frac := math.Abs(math.Mod(x, 1))
		fref := m.FMin() + frac*(m.FMax()-m.FMin())
		r := m.Realize(fref)
		var sum float64
		for _, s := range r.Segments {
			if s.Share < -1e-12 || s.Share > 1+1e-12 {
				return false
			}
			sum += s.Share
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		if math.Abs(r.EffectiveFrequency()-fref) > 1e-3 {
			return false
		}
		i := r.AverageCurrent(m)
		return i >= m.BatteryCurrentAtPoint(m.Points[0])-1e-12 && i <= m.BatteryCurrentAtPoint(m.Points[len(m.Points)-1])+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolated voltage is monotone in frequency across the range.
func TestVoltageMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(a, b float64) bool {
		fa := m.FMin() + math.Abs(math.Mod(a, 1))*(m.FMax()-m.FMin())
		fb := m.FMin() + math.Abs(math.Mod(b, 1))*(m.FMax()-m.FMin())
		if fa > fb {
			fa, fb = fb, fa
		}
		return m.VoltageAt(fa) <= m.VoltageAt(fb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
