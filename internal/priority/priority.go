// Package priority implements the task-ordering heuristics the paper
// evaluates for choosing which ready node to execute next among nodes that
// share (or nearly share) a deadline: the near-optimal pUBS priority function
// of Gruian, the Largest-Task-First and Shortest-Task-First heuristics, a
// seeded Random order and a FIFO/EDF tie-breaking order.
//
// A priority function maps each ready Candidate to a priority value; the
// scheduler executes the candidate with the smallest value (subject to the
// feasibility check of the paper's Algorithm 2 when candidates from
// non-imminent task graphs are allowed).
package priority

import (
	"math"
	"math/rand"
)

// Candidate describes one ready node offered to the priority function.
type Candidate struct {
	// GraphIndex identifies the task graph within the system.
	GraphIndex int
	// Node is the node's ID within its graph.
	Node int
	// Name is the node's human-readable name (may be empty).
	Name string
	// RemainingWCET is the worst-case cycles the node still needs (its full
	// WCET unless it was preempted part-way).
	RemainingWCET float64
	// EstimatedActual is the estimate X_k of the cycles the node will
	// actually require (from the history estimator).
	EstimatedActual float64
	// AbsoluteDeadline is the absolute deadline of the node's instance.
	AbsoluteDeadline float64
	// EDFPosition is the rank of the node's instance in EDF order among all
	// released instances (0 = most imminent deadline).
	EDFPosition int
}

// Context carries the scheduler state a priority function may consult.
type Context struct {
	// Now is the current simulation time in seconds.
	Now float64
	// CurrentFrequency is the reference frequency s_o currently selected by
	// the DVS algorithm, in Hz.
	CurrentFrequency float64
	// FMax is the maximum processor frequency in Hz.
	FMax float64
	// FrequencyAfter returns the reference frequency the DVS algorithm would
	// select immediately after the candidate completed having consumed
	// assumedCycles. It is used by pUBS to evaluate the slack-recovery
	// benefit s_{o,k} of running the candidate next. May be nil, in which
	// case pUBS falls back to a deadline-local speed estimate.
	FrequencyAfter func(c Candidate, assumedCycles float64) float64
	// Rand is the seeded random source used by the Random policy. May be nil
	// for deterministic policies.
	Rand *rand.Rand
}

// Function orders ready candidates; the scheduler picks the candidate with
// the smallest priority value (ties broken by EDF position, then node ID).
type Function interface {
	// Name returns a short identifier ("pUBS", "LTF", ...).
	Name() string
	// Priority returns the priority value of candidate c.
	Priority(c Candidate, ctx *Context) float64
}

// PUBS is Gruian's near-optimal priority function for tasks sharing a
// deadline:
//
//	p_UBS(o, tau_k) = X_k / (s_o^2 - s_{o,k}^2)
//
// where X_k is the estimated actual requirement of the candidate, s_o the
// current speed and s_{o,k} the speed after appending the candidate to the
// partial order. Candidates that promise the largest speed reduction per
// cycle of execution get the smallest values. Candidates that offer no speed
// reduction are pushed to the back (but remain schedulable).
type PUBS struct{}

// NewPUBS returns the pUBS priority function.
func NewPUBS() PUBS { return PUBS{} }

// Name implements Function.
func (PUBS) Name() string { return "pUBS" }

// Priority implements Function.
func (PUBS) Priority(c Candidate, ctx *Context) float64 {
	xk := c.EstimatedActual
	if xk <= 0 {
		xk = c.RemainingWCET
	}
	if xk <= 0 {
		return math.MaxFloat64
	}
	so := ctx.CurrentFrequency
	if so <= 0 {
		so = ctx.FMax
	}
	sok := so
	if ctx.FrequencyAfter != nil {
		sok = ctx.FrequencyAfter(c, xk)
	} else if ctx.FMax > 0 && c.AbsoluteDeadline > ctx.Now {
		// Fallback: deadline-local rescaling estimate — the speed needed to
		// finish the rest of the work after this candidate completes early.
		saved := c.RemainingWCET - xk
		sok = so - saved/(c.AbsoluteDeadline-ctx.Now)
		if sok < 0 {
			sok = 0
		}
	}
	// Normalise speeds so the value does not depend on the frequency unit.
	if ctx.FMax > 0 {
		so /= ctx.FMax
		sok /= ctx.FMax
	}
	den := so*so - sok*sok
	if den <= 1e-15 {
		// No expected speed reduction: de-prioritise, larger tasks last.
		return 1e30 + xk
	}
	return xk / den
}

// LTF is the Largest-Task-First heuristic (used by the slack-reclamation
// scheme of Zhu, Melhem and Childers that the paper compares against in
// Table 1): candidates with the largest worst-case requirement run first.
type LTF struct{}

// NewLTF returns the Largest-Task-First heuristic.
func NewLTF() LTF { return LTF{} }

// Name implements Function.
func (LTF) Name() string { return "LTF" }

// Priority implements Function.
func (LTF) Priority(c Candidate, ctx *Context) float64 { return -c.RemainingWCET }

// STF is the Shortest-Task-First heuristic: candidates with the smallest
// worst-case requirement run first.
type STF struct{}

// NewSTF returns the Shortest-Task-First heuristic.
func NewSTF() STF { return STF{} }

// Name implements Function.
func (STF) Name() string { return "STF" }

// Priority implements Function.
func (STF) Priority(c Candidate, ctx *Context) float64 { return c.RemainingWCET }

// Random picks uniformly at random among the ready candidates (the "Random"
// ordering of the paper's Tables 1 and 2). It requires ctx.Rand; without it
// the order degenerates to FIFO.
type Random struct{}

// NewRandom returns the random ordering policy.
func NewRandom() Random { return Random{} }

// Name implements Function.
func (Random) Name() string { return "Random" }

// Priority implements Function.
func (Random) Priority(c Candidate, ctx *Context) float64 {
	if ctx.Rand == nil {
		return float64(c.EDFPosition)*1e6 + float64(c.Node)
	}
	return ctx.Rand.Float64()
}

// FIFO orders candidates by EDF position and then node ID; it reproduces the
// "canonical EDF ordering" traces of the paper's Figure 5.
type FIFO struct{}

// NewFIFO returns the FIFO/EDF tie-breaking order.
func NewFIFO() FIFO { return FIFO{} }

// Name implements Function.
func (FIFO) Name() string { return "FIFO" }

// Priority implements Function.
func (FIFO) Priority(c Candidate, ctx *Context) float64 {
	return float64(c.EDFPosition)*1e6 + float64(c.Node)
}
