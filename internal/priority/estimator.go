package priority

import "sync"

// Estimator predicts the actual execution requirement X_k of a node instance
// before it runs. The paper notes that the quality of the pUBS schedule
// depends directly on the quality of this estimate and suggests keeping a
// history of previous instances — which is what HistoryEstimator does.
type Estimator interface {
	// Estimate returns the predicted actual cycles for the node identified by
	// (graphIndex, nodeID) whose worst case is wcet cycles. The result is in
	// (0, wcet].
	Estimate(graphIndex, nodeID int, wcet float64) float64
	// Observe records the actual cycles consumed by a completed instance.
	Observe(graphIndex, nodeID int, wcet, actual float64)
}

// DefaultInitialFraction is the fraction of the WCET assumed for a node that
// has never been observed. The paper draws actual requirements uniformly in
// [20 %, 100 %] of the WCET, whose mean is 60 %.
const DefaultInitialFraction = 0.6

// HistoryEstimator keeps an exponentially weighted moving average of the
// actual/WCET ratio of each node across instances. It is safe for concurrent
// use.
type HistoryEstimator struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; larger values weigh the
	// most recent instance more heavily.
	Alpha float64
	// InitialFraction is the assumed actual/WCET ratio before any
	// observation.
	InitialFraction float64

	mu   sync.Mutex
	hist map[nodeKey]float64
}

// NewHistoryEstimator returns a history estimator with the given smoothing
// factor (clamped to (0,1]; 0 selects 0.5) and the default initial fraction.
func NewHistoryEstimator(alpha float64) *HistoryEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &HistoryEstimator{Alpha: alpha, InitialFraction: DefaultInitialFraction, hist: make(map[nodeKey]float64)}
}

// nodeKey identifies a node within a system. A comparable struct key keeps
// Estimate/Observe allocation-free (they sit on the scheduler's per-decision
// hot path; the previous fmt.Sprintf string key dominated the engine's
// allocation profile).
type nodeKey struct{ graph, node int }

func key(graphIndex, nodeID int) nodeKey { return nodeKey{graphIndex, nodeID} }

// Estimate implements Estimator.
func (h *HistoryEstimator) Estimate(graphIndex, nodeID int, wcet float64) float64 {
	if wcet <= 0 {
		return 0
	}
	h.mu.Lock()
	frac, ok := h.hist[key(graphIndex, nodeID)]
	h.mu.Unlock()
	if !ok {
		frac = h.InitialFraction
		if frac <= 0 || frac > 1 {
			frac = DefaultInitialFraction
		}
	}
	est := frac * wcet
	if est <= 0 {
		est = 1e-9 * wcet
	}
	if est > wcet {
		est = wcet
	}
	return est
}

// Observe implements Estimator.
func (h *HistoryEstimator) Observe(graphIndex, nodeID int, wcet, actual float64) {
	if wcet <= 0 || actual <= 0 {
		return
	}
	frac := actual / wcet
	if frac > 1 {
		frac = 1
	}
	k := key(graphIndex, nodeID)
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev, ok := h.hist[k]; ok {
		h.hist[k] = (1-h.Alpha)*prev + h.Alpha*frac
	} else {
		h.hist[k] = frac
	}
}

// Reset forgets all recorded history while keeping the map's storage, so a
// reused estimator starts the next simulation from InitialFraction without
// reallocating its buckets.
func (h *HistoryEstimator) Reset() {
	h.mu.Lock()
	clear(h.hist)
	h.mu.Unlock()
}

// Len returns the number of nodes with recorded history.
func (h *HistoryEstimator) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.hist)
}

// OracleEstimator returns a fixed fraction of the WCET and ignores
// observations. With Fraction = 1 it reproduces worst-case-pessimistic
// estimates; experiments that want a perfect oracle can instead bypass the
// estimator and pass the true actual cycles directly.
type OracleEstimator struct {
	// Fraction is the assumed actual/WCET ratio in (0, 1].
	Fraction float64
}

// Estimate implements Estimator.
func (o OracleEstimator) Estimate(graphIndex, nodeID int, wcet float64) float64 {
	f := o.Fraction
	if f <= 0 || f > 1 {
		f = 1
	}
	return f * wcet
}

// Observe implements Estimator. It is a no-op.
func (o OracleEstimator) Observe(graphIndex, nodeID int, wcet, actual float64) {}

// compile-time interface checks
var (
	_ Estimator = (*HistoryEstimator)(nil)
	_ Estimator = OracleEstimator{}
)
