package priority

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNames(t *testing.T) {
	if NewPUBS().Name() != "pUBS" || NewLTF().Name() != "LTF" || NewSTF().Name() != "STF" ||
		NewRandom().Name() != "Random" || NewFIFO().Name() != "FIFO" {
		t.Fatal("unexpected priority function names")
	}
}

func TestLTFAndSTFOrderByWCET(t *testing.T) {
	small := Candidate{RemainingWCET: 10}
	big := Candidate{RemainingWCET: 100}
	ctx := &Context{}
	if NewLTF().Priority(big, ctx) >= NewLTF().Priority(small, ctx) {
		t.Fatal("LTF should prefer the larger task")
	}
	if NewSTF().Priority(small, ctx) >= NewSTF().Priority(big, ctx) {
		t.Fatal("STF should prefer the smaller task")
	}
}

func TestFIFOOrdersByEDFPositionThenNode(t *testing.T) {
	ctx := &Context{}
	f := NewFIFO()
	a := Candidate{EDFPosition: 0, Node: 5}
	b := Candidate{EDFPosition: 1, Node: 0}
	c := Candidate{EDFPosition: 0, Node: 2}
	if !(f.Priority(c, ctx) < f.Priority(a, ctx) && f.Priority(a, ctx) < f.Priority(b, ctx)) {
		t.Fatal("FIFO ordering wrong")
	}
}

func TestRandomUsesRNGAndFallsBackToFIFO(t *testing.T) {
	r := NewRandom()
	ctx := &Context{Rand: rand.New(rand.NewSource(1))}
	c := Candidate{EDFPosition: 0, Node: 0}
	v1 := r.Priority(c, ctx)
	v2 := r.Priority(c, ctx)
	if v1 == v2 {
		t.Log("two identical random draws (possible but unlikely)")
	}
	if v1 < 0 || v1 >= 1 {
		t.Fatalf("random priority %v outside [0,1)", v1)
	}
	noRNG := &Context{}
	if got := r.Priority(Candidate{EDFPosition: 2, Node: 3}, noRNG); got != 2e6+3 {
		t.Fatalf("fallback priority = %v", got)
	}
}

func TestPUBSPrefersLargerSpeedReductionPerCycle(t *testing.T) {
	// Two candidates with the same estimated actual; candidate A's completion
	// lowers the frequency much more than B's. pUBS must prefer A.
	ctx := &Context{
		Now:              0,
		CurrentFrequency: 0.8e9,
		FMax:             1e9,
		FrequencyAfter: func(c Candidate, assumed float64) float64 {
			if c.Node == 0 {
				return 0.5e9 // big reduction
			}
			return 0.78e9 // small reduction
		},
	}
	a := Candidate{Node: 0, RemainingWCET: 10e6, EstimatedActual: 4e6}
	b := Candidate{Node: 1, RemainingWCET: 10e6, EstimatedActual: 4e6}
	p := NewPUBS()
	if !(p.Priority(a, ctx) < p.Priority(b, ctx)) {
		t.Fatal("pUBS should prefer the candidate with the larger speed reduction")
	}
}

func TestPUBSPrefersSmallerCostForSameReduction(t *testing.T) {
	ctx := &Context{
		CurrentFrequency: 0.8e9,
		FMax:             1e9,
		FrequencyAfter:   func(c Candidate, assumed float64) float64 { return 0.6e9 },
	}
	cheap := Candidate{Node: 0, RemainingWCET: 10e6, EstimatedActual: 2e6}
	dear := Candidate{Node: 1, RemainingWCET: 10e6, EstimatedActual: 8e6}
	p := NewPUBS()
	if !(p.Priority(cheap, ctx) < p.Priority(dear, ctx)) {
		t.Fatal("pUBS should prefer the cheaper candidate when the reduction is equal")
	}
}

func TestPUBSNoReductionGoesLast(t *testing.T) {
	ctx := &Context{
		CurrentFrequency: 0.8e9,
		FMax:             1e9,
		FrequencyAfter: func(c Candidate, assumed float64) float64 {
			return c.EstimatedActual/1e6*0 + ifElse(c.Node == 0, 0.8e9, 0.6e9)
		},
	}
	flat := Candidate{Node: 0, RemainingWCET: 10e6, EstimatedActual: 5e6}
	useful := Candidate{Node: 1, RemainingWCET: 10e6, EstimatedActual: 5e6}
	p := NewPUBS()
	if !(p.Priority(useful, ctx) < p.Priority(flat, ctx)) {
		t.Fatal("a candidate with no speed reduction must rank behind one with a reduction")
	}
	if p.Priority(flat, ctx) < 1e29 {
		t.Fatal("no-reduction candidates should get a sentinel-large priority")
	}
}

func ifElse(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

func TestPUBSFallbackWithoutFrequencyAfter(t *testing.T) {
	// Without a FrequencyAfter closure, pUBS falls back to a deadline-local
	// estimate; a candidate expected to finish earlier (more slack recovered)
	// must still be preferred.
	ctx := &Context{
		Now:              0,
		CurrentFrequency: 0.8e9,
		FMax:             1e9,
	}
	muchSlack := Candidate{Node: 0, RemainingWCET: 10e6, EstimatedActual: 2e6, AbsoluteDeadline: 0.1}
	littleSlack := Candidate{Node: 1, RemainingWCET: 10e6, EstimatedActual: 9.8e6, AbsoluteDeadline: 0.1}
	p := NewPUBS()
	if !(p.Priority(muchSlack, ctx) < p.Priority(littleSlack, ctx)) {
		t.Fatal("fallback pUBS should prefer the candidate recovering more slack")
	}
}

func TestPUBSDegenerateInputs(t *testing.T) {
	p := NewPUBS()
	ctx := &Context{CurrentFrequency: 0, FMax: 1e9}
	// Zero estimated actual and zero WCET: sentinel value, no panic.
	if got := p.Priority(Candidate{}, ctx); got != math.MaxFloat64 {
		t.Fatalf("degenerate candidate priority = %v", got)
	}
	// Zero current frequency falls back to fmax.
	c := Candidate{RemainingWCET: 10e6, EstimatedActual: 5e6, AbsoluteDeadline: 1}
	if got := p.Priority(c, ctx); math.IsNaN(got) || got <= 0 {
		t.Fatalf("priority with zero current frequency = %v", got)
	}
}

// Property: pUBS priorities are monotone in X_k when the speed reduction is
// held fixed — doubling the expected cost never improves the rank.
func TestPUBSMonotoneInCostProperty(t *testing.T) {
	p := NewPUBS()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := &Context{
			CurrentFrequency: 0.5e9 + rng.Float64()*0.5e9,
			FMax:             1e9,
		}
		drop := rng.Float64() * 0.3e9
		ctx.FrequencyAfter = func(c Candidate, assumed float64) float64 { return ctx.CurrentFrequency - drop }
		x := 1e6 + rng.Float64()*10e6
		a := Candidate{RemainingWCET: 20e6, EstimatedActual: x}
		b := Candidate{RemainingWCET: 20e6, EstimatedActual: 2 * x}
		return p.Priority(a, ctx) <= p.Priority(b, ctx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryEstimatorDefaultsAndLearning(t *testing.T) {
	e := NewHistoryEstimator(0.5)
	const wcet = 1000.0
	// Before any observation: the default fraction of the WCET.
	if got := e.Estimate(0, 0, wcet); math.Abs(got-DefaultInitialFraction*wcet) > 1e-9 {
		t.Fatalf("initial estimate = %v, want %v", got, DefaultInitialFraction*wcet)
	}
	// After observing a 30% actual repeatedly the estimate converges there.
	for i := 0; i < 20; i++ {
		e.Observe(0, 0, wcet, 300)
	}
	if got := e.Estimate(0, 0, wcet); math.Abs(got-300) > 10 {
		t.Fatalf("estimate after observations = %v, want ~300", got)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
	// Other nodes unaffected.
	if got := e.Estimate(1, 0, wcet); math.Abs(got-DefaultInitialFraction*wcet) > 1e-9 {
		t.Fatalf("unrelated node estimate = %v", got)
	}
}

func TestHistoryEstimatorClampsAndIgnoresBadObservations(t *testing.T) {
	e := NewHistoryEstimator(0)
	if e.Alpha != 0.5 {
		t.Fatalf("alpha default = %v, want 0.5", e.Alpha)
	}
	e.Observe(0, 0, 0, 10)    // ignored (bad wcet)
	e.Observe(0, 0, 100, 0)   // ignored (bad actual)
	e.Observe(0, 0, 100, 500) // clamped to 1.0
	if got := e.Estimate(0, 0, 100); got > 100 || got <= 0 {
		t.Fatalf("estimate = %v, want in (0, 100]", got)
	}
	if got := e.Estimate(0, 1, 0); got != 0 {
		t.Fatalf("estimate with zero wcet = %v, want 0", got)
	}
}

func TestHistoryEstimatorEWMAWeighting(t *testing.T) {
	e := NewHistoryEstimator(0.9)
	e.Observe(0, 0, 100, 20)
	e.Observe(0, 0, 100, 80)
	// With alpha 0.9 the estimate should be close to the latest observation.
	if got := e.Estimate(0, 0, 100); got < 70 {
		t.Fatalf("estimate = %v, want close to 80", got)
	}
}

func TestOracleEstimator(t *testing.T) {
	o := OracleEstimator{Fraction: 0.4}
	if got := o.Estimate(0, 0, 100); got != 40 {
		t.Fatalf("oracle estimate = %v, want 40", got)
	}
	o.Observe(0, 0, 100, 10) // no-op
	if got := o.Estimate(0, 0, 100); got != 40 {
		t.Fatalf("oracle estimate after observe = %v, want 40", got)
	}
	bad := OracleEstimator{Fraction: 7}
	if got := bad.Estimate(0, 0, 100); got != 100 {
		t.Fatalf("oracle with bad fraction = %v, want wcet", got)
	}
}

// Property: history estimates always stay within (0, WCET].
func TestHistoryEstimatorBoundsProperty(t *testing.T) {
	e := NewHistoryEstimator(0.3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rng.Intn(5)
		n := rng.Intn(5)
		wcet := 1 + rng.Float64()*1e7
		if rng.Float64() < 0.7 {
			e.Observe(g, n, wcet, rng.Float64()*wcet*1.5)
		}
		got := e.Estimate(g, n, wcet)
		return got > 0 && got <= wcet+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
