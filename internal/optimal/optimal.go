// Package optimal provides the single-task-graph scheduling machinery behind
// the paper's Table 1: given one DAG of tasks sharing a deadline and the
// greedy speed-rescaling execution model of Gruian's UBS (before every task
// the speed is set to remaining-worst-case-work / time-to-deadline), it can
//
//   - evaluate the energy of any given execution order (EvaluateOrder),
//   - build an order greedily with any priority function (GreedyOrder), and
//   - find the energy-optimal order by exhaustive search over the DAG's
//     linear extensions with branch-and-bound pruning (OptimalOrder), which
//     is the baseline the paper normalises Table 1 against.
//
// Energy uses the idealised convex power model P(f) ∝ f^PowerExponent (the
// default exponent 3 matches the paper's s³ battery-current scaling), so
// energies are reported in arbitrary units and are meaningful as ratios.
package optimal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"battsched/internal/priority"
	"battsched/internal/taskgraph"
)

// Params configure the single-graph execution model.
type Params struct {
	// Deadline is the common absolute deadline of all tasks (seconds,
	// relative to a release at time zero).
	Deadline float64
	// FMax is the maximum processor frequency in Hz.
	FMax float64
	// FMin, when positive, is a lower clamp on the execution frequency.
	FMin float64
	// PowerExponent is the exponent of the convex power model P ∝ f^k
	// (default 3).
	PowerExponent float64
	// Actuals are the actual execution requirements per node in cycles
	// (indexed by NodeID). Nil means every node takes its WCET.
	Actuals []float64
}

// Errors returned by the package.
var (
	ErrBadParams    = errors.New("optimal: invalid parameters")
	ErrBadOrder     = errors.New("optimal: order is not a linear extension of the graph")
	ErrSearchBudget = errors.New("optimal: search budget exhausted before completing the enumeration")
)

// Evaluation is the outcome of executing one order.
type Evaluation struct {
	// Order is the executed order of node IDs.
	Order []taskgraph.NodeID
	// Energy is the consumed energy in arbitrary (consistent) units.
	Energy float64
	// Makespan is the completion time of the last task in seconds.
	Makespan float64
	// Feasible reports whether the order finished by the deadline.
	Feasible bool
}

func (p Params) withDefaults() Params {
	if p.PowerExponent <= 0 {
		p.PowerExponent = 3
	}
	return p
}

func (p Params) validate(g *taskgraph.Graph) error {
	if g == nil || g.NumNodes() == 0 {
		return fmt.Errorf("%w: empty graph", ErrBadParams)
	}
	if p.Deadline <= 0 || p.FMax <= 0 {
		return fmt.Errorf("%w: deadline=%v fmax=%v", ErrBadParams, p.Deadline, p.FMax)
	}
	if p.FMin < 0 || p.FMin > p.FMax {
		return fmt.Errorf("%w: fmin=%v", ErrBadParams, p.FMin)
	}
	if p.Actuals != nil && len(p.Actuals) != g.NumNodes() {
		return fmt.Errorf("%w: %d actuals for %d nodes", ErrBadParams, len(p.Actuals), g.NumNodes())
	}
	return nil
}

// actual returns the actual cycles of node id under p.
func (p Params) actual(g *taskgraph.Graph, id taskgraph.NodeID) float64 {
	if p.Actuals == nil {
		return g.Nodes[id].WCET
	}
	a := p.Actuals[id]
	if a <= 0 {
		return g.Nodes[id].WCET
	}
	if a > g.Nodes[id].WCET {
		return g.Nodes[id].WCET
	}
	return a
}

// clampSpeed limits s to [FMin, FMax] (ignoring FMin when zero).
func (p Params) clampSpeed(s float64) float64 {
	if s > p.FMax {
		return p.FMax
	}
	if p.FMin > 0 && s < p.FMin {
		return p.FMin
	}
	if s < 0 {
		return 0
	}
	return s
}

// stepEnergy returns the energy of executing `cycles` at speed s under the
// convex power model.
func (p Params) stepEnergy(s, cycles float64) float64 {
	if s <= 0 {
		return 0
	}
	return math.Pow(s/p.FMax, p.PowerExponent-1) * cycles
}

// EvaluateOrder simulates the execution of the graph in the given order under
// the greedy speed-rescaling model and returns its energy and makespan. The
// order must be a linear extension of the graph.
func EvaluateOrder(g *taskgraph.Graph, order []taskgraph.NodeID, params Params) (Evaluation, error) {
	params = params.withDefaults()
	if err := params.validate(g); err != nil {
		return Evaluation{}, err
	}
	if !g.IsLinearExtension(order) {
		return Evaluation{}, ErrBadOrder
	}
	remWC := g.TotalWCET()
	t := 0.0
	energy := 0.0
	for _, id := range order {
		s := params.clampSpeed(remWC / math.Max(params.Deadline-t, 1e-12))
		if s <= 0 {
			s = params.FMax
		}
		ac := params.actual(g, id)
		t += ac / s
		energy += params.stepEnergy(s, ac)
		remWC -= g.Nodes[id].WCET
		if remWC < 0 {
			remWC = 0
		}
	}
	return Evaluation{
		Order:    append([]taskgraph.NodeID(nil), order...),
		Energy:   energy,
		Makespan: t,
		Feasible: t <= params.Deadline+1e-9,
	}, nil
}

// GreedyOrder builds an execution order by repeatedly applying the priority
// function to the set of ready (precedence-satisfied) tasks, exactly as the
// paper's methodology does within a single task graph, and evaluates it.
//
// estimates supplies the X_k values handed to the priority function (indexed
// by NodeID); nil uses the actual requirements (a perfect estimator). rng is
// only needed for the Random priority function.
func GreedyOrder(g *taskgraph.Graph, prio priority.Function, params Params, estimates []float64, rng *rand.Rand) (Evaluation, error) {
	params = params.withDefaults()
	if err := params.validate(g); err != nil {
		return Evaluation{}, err
	}
	if prio == nil {
		prio = priority.NewFIFO()
	}
	if estimates != nil && len(estimates) != g.NumNodes() {
		return Evaluation{}, fmt.Errorf("%w: %d estimates for %d nodes", ErrBadParams, len(estimates), g.NumNodes())
	}
	n := g.NumNodes()
	predsLeft := make([]int, n)
	for i := 0; i < n; i++ {
		predsLeft[i] = len(g.Predecessors(taskgraph.NodeID(i)))
	}
	done := make([]bool, n)
	order := make([]taskgraph.NodeID, 0, n)
	remWC := g.TotalWCET()
	t := 0.0

	estimate := func(id taskgraph.NodeID) float64 {
		if estimates != nil && estimates[id] > 0 {
			return math.Min(estimates[id], g.Nodes[id].WCET)
		}
		return params.actual(g, id)
	}

	for len(order) < n {
		so := params.clampSpeed(remWC / math.Max(params.Deadline-t, 1e-12))
		if so <= 0 {
			so = params.FMax
		}
		ctx := &priority.Context{
			Now:              t,
			CurrentFrequency: so,
			FMax:             params.FMax,
			Rand:             rng,
			FrequencyAfter: func(c priority.Candidate, assumedCycles float64) float64 {
				remAfter := remWC - c.RemainingWCET
				if remAfter < 0 {
					remAfter = 0
				}
				tAfter := t + assumedCycles/so
				return params.clampSpeed(remAfter / math.Max(params.Deadline-tAfter, 1e-12))
			},
		}
		bestIdx := -1
		bestVal := math.Inf(1)
		for i := 0; i < n; i++ {
			if done[i] || predsLeft[i] > 0 {
				continue
			}
			id := taskgraph.NodeID(i)
			c := priority.Candidate{
				GraphIndex:       0,
				Node:             i,
				Name:             g.Nodes[i].Name,
				RemainingWCET:    g.Nodes[i].WCET,
				EstimatedActual:  estimate(id),
				AbsoluteDeadline: params.Deadline,
				EDFPosition:      0,
			}
			v := prio.Priority(c, ctx)
			if v < bestVal || (v == bestVal && (bestIdx == -1 || i < bestIdx)) {
				bestVal = v
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			return Evaluation{}, fmt.Errorf("optimal: no ready task (graph not a DAG?)")
		}
		id := taskgraph.NodeID(bestIdx)
		ac := params.actual(g, id)
		t += ac / so
		remWC -= g.Nodes[id].WCET
		if remWC < 0 {
			remWC = 0
		}
		done[bestIdx] = true
		for _, s := range g.Successors(id) {
			predsLeft[s]--
		}
		order = append(order, id)
	}
	return EvaluateOrder(g, order, params)
}

// SearchResult is the outcome of an exhaustive search.
type SearchResult struct {
	// Best is the lowest-energy evaluation found.
	Best Evaluation
	// ExtensionsVisited is the number of complete linear extensions evaluated.
	ExtensionsVisited int
	// Complete reports whether the search enumerated (or safely pruned) the
	// whole space; false means the expansion budget ran out first.
	Complete bool
}

// OptimalOrder finds the energy-minimal linear extension of the graph under
// the greedy speed-rescaling model by depth-first enumeration with
// branch-and-bound pruning (partial energy is a lower bound because energies
// only accumulate). maxExpansions bounds the number of search-tree node
// expansions; 0 selects a default of 5 million. If the budget runs out the
// best order found so far is returned together with ErrSearchBudget.
func OptimalOrder(g *taskgraph.Graph, params Params, maxExpansions int) (SearchResult, error) {
	params = params.withDefaults()
	if err := params.validate(g); err != nil {
		return SearchResult{}, err
	}
	if maxExpansions <= 0 {
		maxExpansions = 5_000_000
	}
	n := g.NumNodes()
	predsLeft := make([]int, n)
	for i := 0; i < n; i++ {
		predsLeft[i] = len(g.Predecessors(taskgraph.NodeID(i)))
	}
	done := make([]bool, n)
	order := make([]taskgraph.NodeID, 0, n)

	res := SearchResult{Complete: true}
	res.Best.Energy = math.Inf(1)
	expansions := 0

	var dfs func(t, remWC, energy float64)
	dfs = func(t, remWC, energy float64) {
		if expansions >= maxExpansions {
			res.Complete = false
			return
		}
		expansions++
		if energy >= res.Best.Energy {
			return // branch-and-bound: energy only grows along a branch
		}
		if len(order) == n {
			res.ExtensionsVisited++
			res.Best = Evaluation{
				Order:    append([]taskgraph.NodeID(nil), order...),
				Energy:   energy,
				Makespan: t,
				Feasible: t <= params.Deadline+1e-9,
			}
			return
		}
		for i := 0; i < n; i++ {
			if done[i] || predsLeft[i] > 0 {
				continue
			}
			id := taskgraph.NodeID(i)
			s := params.clampSpeed(remWC / math.Max(params.Deadline-t, 1e-12))
			if s <= 0 {
				s = params.FMax
			}
			ac := params.actual(g, id)
			newT := t + ac/s
			newEnergy := energy + params.stepEnergy(s, ac)
			newRem := remWC - g.Nodes[id].WCET
			if newRem < 0 {
				newRem = 0
			}
			done[i] = true
			order = append(order, id)
			for _, su := range g.Successors(id) {
				predsLeft[su]--
			}
			dfs(newT, newRem, newEnergy)
			for _, su := range g.Successors(id) {
				predsLeft[su]++
			}
			order = order[:len(order)-1]
			done[i] = false
			if expansions >= maxExpansions {
				res.Complete = false
				return
			}
		}
	}
	dfs(0, g.TotalWCET(), 0)

	if math.IsInf(res.Best.Energy, 1) {
		return res, fmt.Errorf("optimal: no complete order found within the budget: %w", ErrSearchBudget)
	}
	if !res.Complete {
		return res, ErrSearchBudget
	}
	return res, nil
}

// RandomOrder builds a uniformly random linear extension (by repeatedly
// picking a random ready task) and evaluates it. It is the "Random" column of
// Table 1.
func RandomOrder(g *taskgraph.Graph, params Params, rng *rand.Rand) (Evaluation, error) {
	if rng == nil {
		return Evaluation{}, fmt.Errorf("%w: nil RNG", ErrBadParams)
	}
	return GreedyOrder(g, priority.NewRandom(), params, nil, rng)
}
