package optimal

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"battsched/internal/priority"
	"battsched/internal/taskgraph"
)

const fmaxHz = 1e9

// figure4Graph is the paper's Figure 4 motivational example: two independent
// tasks with WCETs 4 and 6 (here in seconds-at-fmax, converted to cycles)
// sharing a deadline of 10.
func figure4Graph() *taskgraph.Graph {
	g := taskgraph.NewGraph("fig4", 10)
	g.AddNode("task1", 4*fmaxHz)
	g.AddNode("task2", 6*fmaxHz)
	return g
}

func defaultParams(actualFrac1, actualFrac2 float64) Params {
	return Params{
		Deadline: 10,
		FMax:     fmaxHz,
		Actuals:  []float64{actualFrac1 * 4 * fmaxHz, actualFrac2 * 6 * fmaxHz},
	}
}

func TestEvaluateOrderValidation(t *testing.T) {
	g := figure4Graph()
	if _, err := EvaluateOrder(g, []taskgraph.NodeID{0, 1}, Params{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad params err = %v", err)
	}
	p := defaultParams(1, 1)
	if _, err := EvaluateOrder(g, []taskgraph.NodeID{0}, p); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("short order err = %v", err)
	}
	if _, err := EvaluateOrder(nil, nil, p); !errors.Is(err, ErrBadParams) {
		t.Fatalf("nil graph err = %v", err)
	}
	bad := p
	bad.Actuals = []float64{1}
	if _, err := EvaluateOrder(g, []taskgraph.NodeID{0, 1}, bad); !errors.Is(err, ErrBadParams) {
		t.Fatalf("wrong actuals length err = %v", err)
	}
	// Precedence violation.
	chain := taskgraph.NewGraph("c", 10)
	chain.AddNode("a", fmaxHz)
	chain.AddNode("b", fmaxHz)
	chain.AddEdge(0, 1)
	if _, err := EvaluateOrder(chain, []taskgraph.NodeID{1, 0}, Params{Deadline: 10, FMax: fmaxHz}); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("precedence violation err = %v", err)
	}
}

func TestEvaluateOrderWorstCaseRunsAtConstantSpeed(t *testing.T) {
	// With actual = WCET the greedy rescaling keeps the speed constant at
	// totalWC/D for every task, and the makespan equals the deadline.
	g := figure4Graph()
	p := Params{Deadline: 10, FMax: fmaxHz}
	ev, err := EvaluateOrder(g, []taskgraph.NodeID{0, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("worst-case order must be feasible")
	}
	if math.Abs(ev.Makespan-10) > 1e-9 {
		t.Fatalf("makespan = %v, want 10", ev.Makespan)
	}
	// Energy = sum s^2*ac with s = 1 GHz * 10/10... speed = (10e9 cycles)/(10 s) = 1e9.
	want := math.Pow(1.0, 2)*4*fmaxHz + math.Pow(1.0, 2)*6*fmaxHz
	if math.Abs(ev.Energy-want) > 1e-3 {
		t.Fatalf("energy = %v, want %v", ev.Energy, want)
	}
	// Order independence under worst case.
	ev2, err := EvaluateOrder(g, []taskgraph.NodeID{1, 0}, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Energy-ev2.Energy) > 1e-6 {
		t.Fatalf("worst-case energy should not depend on order: %v vs %v", ev.Energy, ev2.Energy)
	}
}

func TestFigure4Case1ShortestTaskFirstWins(t *testing.T) {
	// Case 1 of Figure 4: actuals are 40% and 60% of the WCETs. Executing
	// task1 (the shorter WCET) first recovers more slack.
	g := figure4Graph()
	p := defaultParams(0.4, 0.6)
	stfFirst, err := EvaluateOrder(g, []taskgraph.NodeID{0, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	ltfFirst, err := EvaluateOrder(g, []taskgraph.NodeID{1, 0}, p)
	if err != nil {
		t.Fatal(err)
	}
	if stfFirst.Energy >= ltfFirst.Energy {
		t.Fatalf("case 1: STF order should win (%v vs %v)", stfFirst.Energy, ltfFirst.Energy)
	}
	// And the pUBS greedy picks the winning order.
	pubs, err := GreedyOrder(g, priority.NewPUBS(), p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pubs.Energy-stfFirst.Energy) > 1e-6 {
		t.Fatalf("pUBS energy = %v, want the STF-first energy %v", pubs.Energy, stfFirst.Energy)
	}
}

func TestFigure4Case2LargestTaskFirstWins(t *testing.T) {
	// Case 2 of Figure 4: actuals are 60% and 40% of the WCETs; now the
	// larger task reveals more slack and should go first.
	g := figure4Graph()
	p := defaultParams(0.6, 0.4)
	stfFirst, err := EvaluateOrder(g, []taskgraph.NodeID{0, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	ltfFirst, err := EvaluateOrder(g, []taskgraph.NodeID{1, 0}, p)
	if err != nil {
		t.Fatal(err)
	}
	if ltfFirst.Energy >= stfFirst.Energy {
		t.Fatalf("case 2: LTF order should win (%v vs %v)", ltfFirst.Energy, stfFirst.Energy)
	}
	pubs, err := GreedyOrder(g, priority.NewPUBS(), p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pubs.Energy-ltfFirst.Energy) > 1e-6 {
		t.Fatalf("pUBS energy = %v, want the LTF-first energy %v", pubs.Energy, ltfFirst.Energy)
	}
}

func TestGreedyOrderRespectsPrecedence(t *testing.T) {
	g := taskgraph.NewGraph("diamond", 10)
	a := g.AddNode("a", 2*fmaxHz)
	b := g.AddNode("b", 2*fmaxHz)
	c := g.AddNode("c", 2*fmaxHz)
	d := g.AddNode("d", 2*fmaxHz)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	for _, prio := range []priority.Function{priority.NewPUBS(), priority.NewLTF(), priority.NewSTF(), priority.NewFIFO()} {
		ev, err := GreedyOrder(g, prio, Params{Deadline: 10, FMax: fmaxHz}, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", prio.Name(), err)
		}
		if !g.IsLinearExtension(ev.Order) {
			t.Fatalf("%s: order %v violates precedence", prio.Name(), ev.Order)
		}
		if !ev.Feasible {
			t.Fatalf("%s: infeasible", prio.Name())
		}
	}
}

func TestGreedyOrderValidation(t *testing.T) {
	g := figure4Graph()
	if _, err := GreedyOrder(g, nil, Params{}, nil, nil); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad params err = %v", err)
	}
	if _, err := GreedyOrder(g, nil, defaultParams(1, 1), []float64{1}, nil); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad estimates err = %v", err)
	}
	// nil priority falls back to FIFO.
	if _, err := GreedyOrder(g, nil, defaultParams(1, 1), nil, nil); err != nil {
		t.Fatalf("nil priority err = %v", err)
	}
}

func TestRandomOrderRequiresRNG(t *testing.T) {
	g := figure4Graph()
	if _, err := RandomOrder(g, defaultParams(1, 1), nil); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
	ev, err := RandomOrder(g, defaultParams(0.5, 0.5), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Order) != 2 {
		t.Fatalf("order = %v", ev.Order)
	}
}

func TestOptimalOrderIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4)
		g := taskgraph.NewGraph("t", 10)
		for i := 0; i < n; i++ {
			g.AddNode("", (0.5+rng.Float64())*fmaxHz)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(taskgraph.NodeID(i), taskgraph.NodeID(j))
				}
			}
		}
		actuals := make([]float64, n)
		for i := range actuals {
			actuals[i] = (0.2 + 0.8*rng.Float64()) * g.Nodes[i].WCET
		}
		p := Params{Deadline: 10, FMax: fmaxHz, Actuals: actuals}
		opt, err := OptimalOrder(g, p, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !opt.Complete || opt.ExtensionsVisited < 1 {
			t.Fatalf("trial %d: incomplete search %+v", trial, opt)
		}
		if !g.IsLinearExtension(opt.Best.Order) {
			t.Fatalf("trial %d: optimal order invalid", trial)
		}
		for _, prio := range []priority.Function{priority.NewPUBS(), priority.NewLTF(), priority.NewSTF(), priority.NewFIFO()} {
			ev, err := GreedyOrder(g, prio, p, nil, nil)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, prio.Name(), err)
			}
			if ev.Energy < opt.Best.Energy-1e-6 {
				t.Fatalf("trial %d: %s beat the exhaustive optimum (%v < %v)", trial, prio.Name(), ev.Energy, opt.Best.Energy)
			}
		}
		rnd, err := RandomOrder(g, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rnd.Energy < opt.Best.Energy-1e-6 {
			t.Fatalf("trial %d: random beat the exhaustive optimum", trial)
		}
	}
}

func TestPUBSWithAccurateEstimatesIsNearOptimal(t *testing.T) {
	// The paper (citing Gruian) claims pUBS with accurate estimates is within
	// about 1% of optimal for independent tasks with a common deadline. Allow
	// a small margin over a set of random instances.
	rng := rand.New(rand.NewSource(7))
	var ratioSum float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(4)
		g := taskgraph.NewGraph("t", 10)
		for i := 0; i < n; i++ {
			g.AddNode("", (0.2+rng.Float64())*fmaxHz)
		}
		actuals := make([]float64, n)
		for i := range actuals {
			actuals[i] = (0.2 + 0.8*rng.Float64()) * g.Nodes[i].WCET
		}
		p := Params{Deadline: 10, FMax: fmaxHz, Actuals: actuals}
		opt, err := OptimalOrder(g, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		pubs, err := GreedyOrder(g, priority.NewPUBS(), p, actuals, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratioSum += pubs.Energy / opt.Best.Energy
	}
	avg := ratioSum / trials
	if avg > 1.05 {
		t.Fatalf("pUBS with accurate estimates averages %.3f x optimal, want <= 1.05", avg)
	}
}

func TestOptimalOrderBudget(t *testing.T) {
	// A 9-node independent graph has 9! extensions; with a tiny budget the
	// search must return ErrSearchBudget but still produce a valid order.
	g := taskgraph.NewGraph("big", 10)
	for i := 0; i < 9; i++ {
		g.AddNode("", fmaxHz)
	}
	res, err := OptimalOrder(g, Params{Deadline: 100, FMax: fmaxHz}, 500)
	if !errors.Is(err, ErrSearchBudget) {
		t.Fatalf("err = %v, want ErrSearchBudget", err)
	}
	if res.Complete {
		t.Fatal("search reported complete despite exhausted budget")
	}
	if len(res.Best.Order) != 9 || !g.IsLinearExtension(res.Best.Order) {
		t.Fatalf("best order invalid: %v", res.Best.Order)
	}
}

func TestOptimalOrderValidation(t *testing.T) {
	if _, err := OptimalOrder(nil, Params{Deadline: 1, FMax: 1}, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("nil graph err = %v", err)
	}
}

func TestClampSpeedAndStepEnergy(t *testing.T) {
	p := Params{Deadline: 1, FMax: 10, FMin: 2, PowerExponent: 3}
	if p.clampSpeed(50) != 10 || p.clampSpeed(1) != 2 || p.clampSpeed(5) != 5 {
		t.Fatal("clampSpeed wrong")
	}
	noMin := Params{Deadline: 1, FMax: 10, PowerExponent: 3}
	if noMin.clampSpeed(-1) != 0 {
		t.Fatal("negative speed not clamped to 0")
	}
	if noMin.stepEnergy(0, 100) != 0 {
		t.Fatal("zero-speed energy should be 0")
	}
	// Energy at half speed with exponent 3 is (1/2)^2 per cycle.
	if math.Abs(noMin.stepEnergy(5, 100)-25) > 1e-9 {
		t.Fatalf("stepEnergy = %v, want 25", noMin.stepEnergy(5, 100))
	}
}

// Property: the energy of any linear extension is at least the optimal energy
// and at most the worst-case (constant full-utilisation) energy bound.
func TestGreedyNeverBeatsOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		g := taskgraph.NewGraph("p", 10)
		for i := 0; i < n; i++ {
			g.AddNode("", (0.3+rng.Float64()*0.7)*fmaxHz)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					g.AddEdge(taskgraph.NodeID(i), taskgraph.NodeID(j))
				}
			}
		}
		actuals := make([]float64, n)
		for i := range actuals {
			actuals[i] = (0.2 + 0.8*rng.Float64()) * g.Nodes[i].WCET
		}
		p := Params{Deadline: 10, FMax: fmaxHz, Actuals: actuals}
		opt, err := OptimalOrder(g, p, 0)
		if err != nil {
			return false
		}
		ev, err := GreedyOrder(g, priority.NewPUBS(), p, nil, nil)
		if err != nil {
			return false
		}
		return ev.Energy >= opt.Best.Energy-1e-6 && ev.Feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
