package obs

import (
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestRenderGolden pins the Prometheus text exposition format: HELP/TYPE
// headers, sorted families and series, histogram cumulative buckets with
// +Inf, label escaping. A scrape-format drift breaks real Prometheus
// ingestion, so the rendering is compared byte-for-byte.
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("test_jobs_total", "Jobs by admission.", "admission", "computed")
	jobs.Add(3)
	r.Counter("test_jobs_total", "Jobs by admission.", "admission", "cached").Inc()
	g := r.Gauge("test_queue_depth", "Queue depth.")
	g.Set(7)
	r.GaugeFunc("test_callback", "Callback-backed.", func() float64 { return 2.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99) // beyond the last bound: only +Inf and _count see it
	r.Counter("test_escaped_total", `Help with \ backslash`, "path", "a\"b\\c\nd").Inc()

	const want = `# HELP test_callback Callback-backed.
# TYPE test_callback gauge
test_callback 2.5
# HELP test_escaped_total Help with \\ backslash
# TYPE test_escaped_total counter
test_escaped_total{path="a\"b\\c\nd"} 1
# HELP test_jobs_total Jobs by admission.
# TYPE test_jobs_total counter
test_jobs_total{admission="cached"} 1
test_jobs_total{admission="computed"} 3
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="10"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 100.05
test_latency_seconds_count 4
# HELP test_queue_depth Queue depth.
# TYPE test_queue_depth gauge
test_queue_depth 7
`
	got := string(r.Render())
	if got != want {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHandlerContentType pins the exposition-format content type.
func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestRegistryRace hammers counters, gauges, histograms, registration and
// rendering from many goroutines at once; `go test -race` turns any unsafe
// access into a failure. Also checks the final counts are not lost.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "racing counter")
	g := r.Gauge("race_gauge", "racing gauge")
	h := r.Histogram("race_seconds", "racing histogram", nil)
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Set(float64(k))
				h.Observe(float64(k%300) / 100)
				if k%100 == 0 {
					// Concurrent registration and lookup of labelled series.
					r.Counter("race_labelled_total", "labelled", "g", string(rune('a'+i))).Inc()
					_ = r.Render()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter lost updates: %d != %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram lost observations: %d != %d", got, goroutines*perG)
	}
}

// TestParseRoundTrip renders a registry and parses it back, checking Find and
// the histogram quantile estimator against the known observations.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_jobs_total", "jobs", "admission", "computed").Add(5)
	r.Gauge("rt_depth", "depth").Set(-2.5)
	h := r.Histogram("rt_dur_seconds", "dur", []float64{0.1, 1, 10})
	for i := 0; i < 90; i++ {
		h.Observe(0.05) // le 0.1
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // le 10
	}

	samples, err := ParseText(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := Find(samples, "rt_jobs_total", "admission", "computed"); !ok || s.Value != 5 {
		t.Errorf("rt_jobs_total{admission=computed} = %+v, %v", s, ok)
	}
	if s, ok := Find(samples, "rt_depth"); !ok || s.Value != -2.5 {
		t.Errorf("rt_depth = %+v, %v", s, ok)
	}
	if s, ok := Find(samples, "rt_dur_seconds_count"); !ok || s.Value != 100 {
		t.Errorf("rt_dur_seconds_count = %+v, %v", s, ok)
	}
	if s, ok := Find(samples, "rt_dur_seconds_bucket", "le", "+Inf"); !ok || s.Value != 100 {
		t.Errorf("+Inf bucket = %+v, %v", s, ok)
	}
	// p50 falls in the first bucket (90% of observations are <= 0.1):
	// PromQL-style interpolation keeps it within (0, 0.1].
	q50, ok := BucketQuantile(samples, "rt_dur_seconds", 0.50)
	if !ok || q50 <= 0 || q50 > 0.1 {
		t.Errorf("p50 = %v, %v (want within (0, 0.1])", q50, ok)
	}
	// p99 falls in the (1, 10] bucket.
	q99, ok := BucketQuantile(samples, "rt_dur_seconds", 0.99)
	if !ok || q99 <= 1 || q99 > 10 {
		t.Errorf("p99 = %v, %v (want within (1, 10])", q99, ok)
	}
}

// TestParseValues pins parsing of escaped labels and non-finite values.
func TestParseValues(t *testing.T) {
	text := "a_total{p=\"x\\\"y\\\\z\\nw\"} 3\nweird +Inf\nneg -Inf\n"
	samples, err := ParseText([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := Find(samples, "a_total", "p", "x\"y\\z\nw"); !ok || s.Value != 3 {
		t.Errorf("escaped label sample = %+v, %v", s, ok)
	}
	if s, ok := Find(samples, "weird"); !ok || !math.IsInf(s.Value, 1) {
		t.Errorf("weird = %+v, %v", s, ok)
	}
	if s, ok := Find(samples, "neg"); !ok || !math.IsInf(s.Value, -1) {
		t.Errorf("neg = %+v, %v", s, ok)
	}
}

// TestTraceID checks the shape and uniqueness of generated trace ids.
func TestTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace id lengths %d, %d (want 32)", len(a), len(b))
	}
	if a == b {
		t.Fatalf("two trace ids collided: %s", a)
	}
	if strings.Trim(a, "0123456789abcdef") != "" {
		t.Fatalf("trace id %q is not lowercase hex", a)
	}
}

// TestEventLogRoundTrip writes events under two traces and reads one back
// filtered, covering the nil-safety contract in passing.
func TestEventLogRoundTrip(t *testing.T) {
	var nilLog *EventLog
	nilLog.Emit(Event{Event: EventJobDone}) // must not panic
	if err := nilLog.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}

	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(Event{Event: EventJobAccepted, Trace: "aaa", Job: "job-1", Detail: "computed"})
	l.Emit(Event{Event: EventUnitStarted, Trace: "aaa", Job: "job-1", Unit: "0/2"})
	l.Emit(Event{Event: EventJobAccepted, Trace: "bbb", Job: "job-2"})
	l.Emit(Event{Event: EventJobDone, Trace: "aaa", Job: "job-1"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadEvents(path, "aaa")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("trace aaa has %d events, want 3: %+v", len(got), got)
	}
	wantNames := []string{EventJobAccepted, EventUnitStarted, EventJobDone}
	for i, e := range got {
		if e.Event != wantNames[i] {
			t.Errorf("event %d = %q, want %q", i, e.Event, wantNames[i])
		}
		if e.Trace != "aaa" || e.Job != "job-1" {
			t.Errorf("event %d carries %q/%q", i, e.Trace, e.Job)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	all, err := ReadEvents(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("unfiltered read has %d events, want 4", len(all))
	}
}

// TestSimCounters checks the atomic hot-path bundle and its registry wiring.
func TestSimCounters(t *testing.T) {
	var s SimStats
	s.EngineRuns.Add(2)
	s.BatteryAnalytic.Add(3)
	s.BatteryStepped.Add(1)
	s.BatteryBatches.Add(4)
	snap := s.Snapshot()
	if snap.EngineRuns != 2 || snap.BatteryAnalytic != 3 || snap.BatteryStepped != 1 || snap.BatteryBatches != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	prev := snap
	s.EngineRuns.Add(5)
	d := s.Snapshot().Sub(prev)
	if d.EngineRuns != 5 || d.BatteryAnalytic != 0 {
		t.Fatalf("delta = %+v", d)
	}

	r := NewRegistry()
	RegisterSim(r, &s)
	samples, err := ParseText(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := Find(samples, "battsched_engine_runs_total"); !ok || v.Value != 7 {
		t.Errorf("battsched_engine_runs_total = %+v, %v", v, ok)
	}
	if v, ok := Find(samples, "battsched_battery_sims_total", "path", "analytic"); !ok || v.Value != 3 {
		t.Errorf("analytic sims = %+v, %v", v, ok)
	}
	if v, ok := Find(samples, "battsched_battery_sims_total", "path", "stepped"); !ok || v.Value != 1 {
		t.Errorf("stepped sims = %+v, %v", v, ok)
	}
}
