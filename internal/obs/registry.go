// Package obs is the dependency-free observability substrate shared by the
// worker daemon, the federation coordinator, and the compute core: a
// concurrent metrics registry rendered in Prometheus text exposition format
// (counters, gauges, histograms with fixed buckets, plus callback-backed
// series so /metrics and /healthz read the same source fields), trace-id
// propagation helpers (X-Trace-Id), a JSONL structured event log, and an
// atomic counter bundle for the engine/battery hot path.
//
// Locking contract: metric mutation (Counter.Add, Gauge.Set,
// Histogram.Observe) is lock-free after creation and safe on any hot path.
// Registration (Counter, Gauge, Histogram, GaugeFunc, CounterFunc) takes the
// registry write lock; rendering takes the read lock and invokes registered
// callbacks while holding it. Callbacks may acquire application locks, so
// callers must never register new series while holding a lock a callback
// also takes — register up front, or before taking the application lock.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names as rendered in # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefBuckets are the default latency histogram bounds in seconds, spanning
// sub-millisecond handler work through multi-minute shard units.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Registry is a concurrent metrics registry. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family groups every labelled series of one metric name under a single
// HELP/TYPE header.
type family struct {
	name   string
	help   string
	typ    string
	series map[string]metric // key: rendered label suffix ("" for unlabelled)
}

// metric is one labelled series; writeTo renders its sample lines.
type metric interface {
	writeTo(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing counter. Mutation is a single atomic
// add; safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative semantics; the type is unsigned).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) writeTo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Gauge is a settable instantaneous value. Mutation is a single atomic
// store; safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeTo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// funcMetric is a callback-backed series evaluated at render time. Backing a
// gauge (or counter) with the same field /healthz reports makes the two
// endpoints agree by construction.
type funcMetric struct{ f func() float64 }

func (m funcMetric) writeTo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(m.f()))
}

// Histogram is a fixed-bucket histogram. Observe is a binary search plus
// three atomic adds — no allocation, safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	count   atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the cumulative per-bucket counts aligned with Bounds,
// plus the total count. Used by quantile estimation.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, total uint64) {
	cumulative = make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return h.bounds, cumulative, h.count.Load()
}

func (h *Histogram) writeTo(w io.Writer, name, labels string) {
	// _bucket series carry an extra le label; splice it into the label set.
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(labels, "le", formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(labels, "le", "+Inf"), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

// Counter returns (creating if needed) the counter series name{labels...}.
// labels are alternating key, value pairs. Panics on a type conflict with an
// existing family of the same name.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.getOrCreate(name, help, typeCounter, labels, func() metric { return &Counter{} })
	return m.(*Counter)
}

// Gauge returns (creating if needed) the gauge series name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.getOrCreate(name, help, typeGauge, labels, func() metric { return &Gauge{} })
	return m.(*Gauge)
}

// Histogram returns (creating if needed) the histogram series
// name{labels...} with the given ascending bucket bounds (nil selects
// DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	m := r.getOrCreate(name, help, typeHistogram, labels, func() metric {
		return &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets))}
	})
	return m.(*Histogram)
}

// GaugeFunc registers a gauge series whose value is f(), evaluated at render
// time under the registry read lock (see the package locking contract).
// Re-registering the same name and labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...string) {
	r.setFunc(name, help, typeGauge, f, labels)
}

// CounterFunc registers a counter series whose value is f(), evaluated at
// render time. f must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...string) {
	r.setFunc(name, help, typeCounter, f, labels)
}

func (r *Registry) setFunc(name, help, typ string, f func() float64, labels []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.familyLocked(name, help, typ)
	fam.series[labelString(labels)] = funcMetric{f}
}

func (r *Registry) getOrCreate(name, help, typ string, labels []string, mk func() metric) metric {
	key := labelString(labels)
	r.mu.RLock()
	if fam, ok := r.families[name]; ok {
		if fam.typ != typ {
			r.mu.RUnlock()
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, fam.typ))
		}
		if m, ok := fam.series[key]; ok {
			r.mu.RUnlock()
			return m
		}
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.familyLocked(name, help, typ)
	if m, ok := fam.series[key]; ok {
		return m
	}
	m := mk()
	fam.series[key] = m
	return m
}

func (r *Registry) familyLocked(name, help, typ string) *family {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.families[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, fam.typ))
	}
	return fam
}

// WriteTo renders the registry in Prometheus text exposition format:
// families sorted by name, series sorted by label set, histograms as
// cumulative _bucket/_sum/_count.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var buf strings.Builder
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := r.families[name]
		fmt.Fprintf(&buf, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(&buf, "# TYPE %s %s\n", fam.name, fam.typ)
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fam.series[k].writeTo(&buf, fam.name, k)
		}
	}
	r.mu.RUnlock()
	n, err := io.WriteString(w, buf.String())
	return int64(n), err
}

// Render returns the Prometheus text rendering as a byte slice.
func (r *Registry) Render() []byte {
	var buf strings.Builder
	r.WriteTo(&buf)
	return []byte(buf.String())
}

// Handler returns an http.Handler serving the registry at GET /metrics in
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// labelString renders alternating key, value pairs as a sorted, escaped
// Prometheus label suffix: {a="x",b="y"}. Empty labels render as "".
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want key, value pairs)")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// spliceLabel adds one key="value" pair into a rendered label suffix,
// preserving the existing pairs (used for histogram le labels).
func spliceLabel(labels, key, value string) string {
	pair := key + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
