package obs

import "sync/atomic"

// SimStats is the compute-core counter bundle: one atomic add per engine run
// or battery simulation, cheap enough for the hot path (no allocation, no
// locks) and readable from engbench and the daemon registries. The package
// global Sim is threaded into core.Engine and battery.SimulateBatch.
type SimStats struct {
	// EngineRuns counts scheduler engine executions (core.Engine.Run).
	EngineRuns atomic.Uint64
	// BatteryAnalytic and BatteryStepped count battery lifetime simulations
	// by dispatch path: closed-form analytic fast path vs time-stepped
	// integration.
	BatteryAnalytic atomic.Uint64
	BatteryStepped  atomic.Uint64
	// BatteryBatches counts SimulateBatch passes (each evaluates one load
	// profile against N models).
	BatteryBatches atomic.Uint64
}

// Sim is the process-wide compute-core counter bundle.
var Sim SimStats

// SimSnapshot is a point-in-time copy of SimStats, JSON-ready for bench
// reports.
type SimSnapshot struct {
	EngineRuns      uint64 `json:"engine_runs"`
	BatteryAnalytic uint64 `json:"battery_analytic"`
	BatteryStepped  uint64 `json:"battery_stepped"`
	BatteryBatches  uint64 `json:"battery_batches"`
}

// Snapshot copies the current counter values.
func (s *SimStats) Snapshot() SimSnapshot {
	return SimSnapshot{
		EngineRuns:      s.EngineRuns.Load(),
		BatteryAnalytic: s.BatteryAnalytic.Load(),
		BatteryStepped:  s.BatteryStepped.Load(),
		BatteryBatches:  s.BatteryBatches.Load(),
	}
}

// Sub returns the per-field difference s - prev (counter deltas over a
// bench run).
func (s SimSnapshot) Sub(prev SimSnapshot) SimSnapshot {
	return SimSnapshot{
		EngineRuns:      s.EngineRuns - prev.EngineRuns,
		BatteryAnalytic: s.BatteryAnalytic - prev.BatteryAnalytic,
		BatteryStepped:  s.BatteryStepped - prev.BatteryStepped,
		BatteryBatches:  s.BatteryBatches - prev.BatteryBatches,
	}
}

// RegisterSim exposes the bundle on a registry as counter-func series, so a
// daemon's /metrics reports the compute work it has executed in-process.
func RegisterSim(r *Registry, s *SimStats) {
	r.CounterFunc("battsched_engine_runs_total",
		"Scheduler engine executions (core.Engine.Run).",
		func() float64 { return float64(s.EngineRuns.Load()) })
	r.CounterFunc("battsched_battery_sims_total",
		"Battery lifetime simulations by dispatch path.",
		func() float64 { return float64(s.BatteryAnalytic.Load()) }, "path", "analytic")
	r.CounterFunc("battsched_battery_sims_total",
		"Battery lifetime simulations by dispatch path.",
		func() float64 { return float64(s.BatteryStepped.Load()) }, "path", "stepped")
	r.CounterFunc("battsched_battery_batches_total",
		"SimulateBatch passes (one load profile against N models).",
		func() float64 { return float64(s.BatteryBatches.Load()) })
}
