package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series line of a Prometheus text exposition.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses a Prometheus text exposition (the format Render emits)
// into samples, skipping comments and blank lines. It understands the subset
// this package renders: escaped label values, +Inf/NaN, histograms as plain
// _bucket/_sum/_count series. loadgen uses it to scrape /metrics.
func ParseText(data []byte) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("bad label pair in %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		into[key] = val.String()
		body = strings.TrimPrefix(rest[i+1:], ",")
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Find returns the first sample matching name and every given label pair
// (alternating key, value), or false.
func Find(samples []Sample, name string, labels ...string) (Sample, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Labels[labels[i]] != labels[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sample{}, false
}

// BucketQuantile estimates quantile q (0..1) from the _bucket samples of the
// named histogram, using linear interpolation within the located bucket the
// way PromQL histogram_quantile does. Returns false when the histogram is
// absent or empty.
func BucketQuantile(samples []Sample, name string, q float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		le, err := parseBound(s.Labels["le"])
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le, s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	for i, b := range buckets {
		if b.cum < rank {
			continue
		}
		if i == len(buckets)-1 {
			// +Inf bucket: report the highest finite bound.
			if len(buckets) > 1 {
				return buckets[len(buckets)-2].le, true
			}
			return 0, false
		}
		lower, lowerCum := 0.0, 0.0
		if i > 0 {
			lower, lowerCum = buckets[i-1].le, buckets[i-1].cum
		}
		if b.cum == lowerCum {
			return b.le, true
		}
		return lower + (b.le-lower)*(rank-lowerCum)/(b.cum-lowerCum), true
	}
	return buckets[len(buckets)-1].le, true
}

func parseBound(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
