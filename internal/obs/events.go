package obs

import (
	"encoding/json"
	"log"
	"os"
	"sync"
	"time"
)

// Event names emitted by the daemon and coordinator. One grep on a trace id
// over the JSONL event logs reconstructs a job's full fleet-wide lifecycle.
const (
	EventJobAccepted      = "job_accepted"      // submission admitted (detail: computed|coalesced|cached)
	EventJobDone          = "job_done"          // job reached StateDone
	EventJobFailed        = "job_failed"        // job reached StateFailed (detail: error)
	EventCacheHit         = "cache_hit"         // content-addressed report cache hit
	EventCacheMiss        = "cache_miss"        // cache lookup missed; the job computes
	EventUnitQueued       = "unit_queued"       // shard unit entered the FIFO queue
	EventUnitStarted      = "unit_started"      // worker-pool slot began executing the unit
	EventUnitFinished     = "unit_finished"     // unit completed (detail: duration)
	EventUnitFailed       = "unit_failed"       // unit failed (detail: error)
	EventUnitLeased       = "unit_leased"       // coordinator dispatched the unit under a lease
	EventUnitRedispatched = "unit_redispatched" // lease failed or expired; unit re-queued (detail: cause)
	EventSpeculative      = "speculative_lease" // straggler unit duplicated onto a second worker
	EventMerge            = "merge"             // shard partials merged into the job artifact
	EventWorkerDown       = "worker_down"       // worker taken out of rotation (reason: verdict, detail: cause)
	EventWorkerUp         = "worker_up"         // heartbeat made a worker live (registration or recovery)
)

// Worker-down reasons (Event.Reason of EventWorkerDown).
const (
	ReasonHeartbeatMiss  = "heartbeat-miss"  // consecutive /healthz probes failed
	ReasonTransportError = "transport-error" // a lease RPC failed with a connection-level error
)

// Event is one structured span record in the JSONL event log. Every field
// except Time and Event is optional; Trace threads the record into a
// submission's fleet-wide lifecycle.
type Event struct {
	Time       time.Time `json:"ts"`
	Event      string    `json:"event"`
	Trace      string    `json:"trace,omitempty"`
	Job        string    `json:"job,omitempty"`
	Experiment string    `json:"experiment,omitempty"`
	Unit       string    `json:"unit,omitempty"` // shard label ("2/4"; "" for unsharded)
	Worker     string    `json:"worker,omitempty"`
	// Reason is the structured verdict of EventWorkerDown
	// (ReasonHeartbeatMiss or ReasonTransportError); Detail carries the
	// free-form cause.
	Reason string `json:"reason,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// EventLog is an append-only JSONL event sink. A nil *EventLog is valid and
// discards everything, so callers emit unconditionally and only -cache-dir
// deployments pay the I/O.
type EventLog struct {
	mu      sync.Mutex
	f       *os.File
	errOnce sync.Once
}

// OpenEventLog opens (creating or appending) the JSONL event log at path.
func OpenEventLog(path string) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &EventLog{f: f}, nil
}

// Emit appends one event. Nil-safe; a zero Time is stamped with now. Write
// failures are logged once and otherwise dropped — telemetry never fails a
// job.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, werr := l.f.Write(line)
	l.mu.Unlock()
	if werr != nil {
		l.errOnce.Do(func() {
			log.Printf("obs: event log write failed (suppressing further reports): %v", werr)
		})
	}
}

// Close closes the underlying file. Nil-safe.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReadEvents decodes a JSONL event log, optionally filtering to one trace id
// ("" keeps everything). Unparseable lines are skipped — the log is
// append-only and a crash can truncate the final line.
func ReadEvents(path, trace string) ([]Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Event
	for len(data) > 0 {
		nl := -1
		for i, c := range data {
			if c == '\n' {
				nl = i
				break
			}
		}
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if trace == "" || e.Trace == trace {
			out = append(out, e)
		}
	}
	return out, nil
}
