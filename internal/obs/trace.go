package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// TraceHeader is the HTTP header carrying a submission's trace id. The typed
// client stamps it on every POST /v1/jobs; the coordinator forwards the same
// id on each shard unit it dispatches, so one id threads the whole fleet.
const TraceHeader = "X-Trace-Id"

// NewTraceID returns a fresh 128-bit random trace id as 32 hex digits.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform entropy source is broken;
		// a constant id degrades tracing, not correctness.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// TraceFromRequest extracts the trace id from an incoming request ("" when
// the caller did not send one).
func TraceFromRequest(req *http.Request) string {
	return req.Header.Get(TraceHeader)
}
