// Package profutil wires runtime/pprof behind the -cpuprofile/-memprofile
// flags of the command-line tools (cmd/engbench, cmd/experiments), so hot
// paths can be inspected with `go tool pprof` without ad-hoc instrumentation.
package profutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling as requested: cpuPath starts a CPU profile, memPath
// arranges for an allocation profile to be written when the returned stop
// function runs. Either path may be empty to disable that profile. Call stop
// exactly once, on the success path before the process exits (a profile is
// worthless for a run that died anyway).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// The allocs profile keeps cumulative allocation sites even for
			// freed objects — what the zero-alloc engine work cares about;
			// an up-to-date GC cycle makes the in-use numbers meaningful too.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// MustStart is Start for command main functions: flag-driven profiling that
// fails to initialise is a fatal usage error.
func MustStart(cpuPath, memPath string) func() {
	stop, err := Start(cpuPath, memPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		os.Exit(1)
	}
	return func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			os.Exit(1)
		}
	}
}
