// Package profutil wires runtime/pprof behind the -cpuprofile/-memprofile
// flags of the command-line tools (cmd/engbench, cmd/experiments), so hot
// paths can be inspected with `go tool pprof` without ad-hoc instrumentation.
// DebugServer does the same for the long-running daemons: an opt-in
// net/http/pprof listener behind battschedd's -debug-addr flag.
package profutil

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// Start begins profiling as requested: cpuPath starts a CPU profile, memPath
// arranges for an allocation profile to be written when the returned stop
// function runs. Either path may be empty to disable that profile. Call stop
// exactly once, on the success path before the process exits (a profile is
// worthless for a run that died anyway).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := rpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			rpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// The allocs profile keeps cumulative allocation sites even for
			// freed objects — what the zero-alloc engine work cares about;
			// an up-to-date GC cycle makes the in-use numbers meaningful too.
			runtime.GC()
			if err := rpprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// DebugServer starts an HTTP server on addr serving the net/http/pprof
// endpoints under /debug/pprof/ — live profiling for long-running daemons
// (battschedd -debug-addr). The handlers are mounted on a private mux, NOT
// http.DefaultServeMux, so the debug surface exists only on this listener
// and never leaks onto the daemon's API port. The server runs until the
// process exits; the returned listener reports the bound address (useful
// with ":0"). An empty addr is a no-op returning (nil, nil).
func DebugServer(addr string) (net.Listener, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln, nil
}

// MustStart is Start for command main functions: flag-driven profiling that
// fails to initialise is a fatal usage error.
func MustStart(cpuPath, memPath string) func() {
	stop, err := Start(cpuPath, memPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		os.Exit(1)
	}
	return func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			os.Exit(1)
		}
	}
}
