package dvs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const fmax = 1e9

// twoInstances is a simple scenario: T1 (period 0.05 s, 20e6 cycles) and
// T2 (period 0.1 s, 30e6 cycles), both just released at t=0.
func twoInstances() []InstanceView {
	return []InstanceView{
		{GraphIndex: 0, ReleaseTime: 0, AbsoluteDeadline: 0.05, Period: 0.05, TotalWCET: 20e6, AdjustedWCET: 20e6, RemainingWorstCase: 20e6},
		{GraphIndex: 1, ReleaseTime: 0, AbsoluteDeadline: 0.1, Period: 0.1, TotalWCET: 30e6, AdjustedWCET: 30e6, RemainingWorstCase: 30e6},
	}
}

func TestNames(t *testing.T) {
	if NewNoDVS().Name() != "noDVS" || NewCCEDF().Name() != "ccEDF" || NewLAEDF().Name() != "laEDF" || NewStatic().Name() != "staticEDF" {
		t.Fatal("unexpected algorithm names")
	}
}

func TestNoDVS(t *testing.T) {
	a := NewNoDVS()
	if got := a.SelectFrequency(0, fmax, twoInstances()); got != fmax {
		t.Fatalf("NoDVS with work = %v, want fmax", got)
	}
	if got := a.SelectFrequency(0, fmax, nil); got != 0 {
		t.Fatalf("NoDVS without work = %v, want 0", got)
	}
}

func TestStaticUsesWorstCaseUtilization(t *testing.T) {
	a := NewStatic()
	// U = 20e6/(1e9*0.05) + 30e6/(1e9*0.1) = 0.4 + 0.3 = 0.7
	got := a.SelectFrequency(0, fmax, twoInstances())
	if math.Abs(got-0.7*fmax) > 1 {
		t.Fatalf("Static = %v, want 0.7*fmax", got)
	}
	if a.SelectFrequency(0, fmax, nil) != 0 {
		t.Fatal("Static without work should be 0")
	}
}

func TestCCEDFUsesAdjustedUtilization(t *testing.T) {
	a := NewCCEDF()
	inst := twoInstances()
	// Initially identical to the static utilisation.
	if got := a.SelectFrequency(0, fmax, inst); math.Abs(got-0.7*fmax) > 1 {
		t.Fatalf("ccEDF initial = %v, want 0.7*fmax", got)
	}
	// A node of T1 finished early: WC_1 drops from 20e6 to 12e6 cycles.
	inst[0].AdjustedWCET = 12e6
	// U = 12e6/(1e9*0.05) + 0.3 = 0.24+0.3 = 0.54
	if got := a.SelectFrequency(0.01, fmax, inst); math.Abs(got-0.54*fmax) > 1 {
		t.Fatalf("ccEDF after early completion = %v, want 0.54*fmax", got)
	}
	if a.SelectFrequency(0, fmax, nil) != 0 {
		t.Fatal("ccEDF without work should be 0")
	}
	if a.SelectFrequency(0, 0, inst) != 0 {
		t.Fatal("ccEDF with fmax=0 should be 0")
	}
}

func TestCCEDFClampedAtFmax(t *testing.T) {
	a := NewCCEDF()
	inst := []InstanceView{{AbsoluteDeadline: 1, Period: 1, TotalWCET: 2e9, AdjustedWCET: 2e9, RemainingWorstCase: 2e9}}
	if got := a.SelectFrequency(0, fmax, inst); got != fmax {
		t.Fatalf("ccEDF over-utilised = %v, want clamp at fmax", got)
	}
}

func TestLAEDFSingleInstance(t *testing.T) {
	a := NewLAEDF()
	// Single instance: everything must finish before its own deadline, so
	// fref = remaining / (D - now).
	inst := []InstanceView{{AbsoluteDeadline: 0.1, Period: 0.1, TotalWCET: 40e6, AdjustedWCET: 40e6, RemainingWorstCase: 40e6}}
	got := a.SelectFrequency(0, fmax, inst)
	want := 40e6 / 0.1
	if math.Abs(got-want) > 1 {
		t.Fatalf("laEDF single = %v, want %v", got, want)
	}
	// Halfway to the deadline with half the work left: same speed.
	inst[0].RemainingWorstCase = 20e6
	got = a.SelectFrequency(0.05, fmax, inst)
	if math.Abs(got-want) > 1 {
		t.Fatalf("laEDF halfway = %v, want %v", got, want)
	}
}

func TestLAEDFDefersWorkOfLaterDeadlines(t *testing.T) {
	a := NewLAEDF()
	cc := NewCCEDF()
	inst := twoInstances()
	la := a.SelectFrequency(0, fmax, inst)
	ccF := cc.SelectFrequency(0, fmax, inst)
	if la <= 0 || la > fmax {
		t.Fatalf("laEDF out of range: %v", la)
	}
	// laEDF must be at least the speed needed for the earliest deadline alone
	// and no greater than fmax.
	minNeeded := inst[0].RemainingWorstCase / inst[0].AbsoluteDeadline
	if la < minNeeded-1 {
		t.Fatalf("laEDF %v below the minimum %v needed for the earliest deadline", la, minNeeded)
	}
	// With plenty of slack it should not exceed ccEDF by much; in this
	// scenario the defer calculation yields a value <= ccEDF's utilisation
	// frequency (laEDF is the more aggressive algorithm).
	if la > ccF+1 {
		t.Fatalf("laEDF %v exceeds ccEDF %v on a fresh release", la, ccF)
	}
	if a.SelectFrequency(0, fmax, nil) != 0 {
		t.Fatal("laEDF without work should be 0")
	}
}

func TestLAEDFImmediateDeadlineRunsFlatOut(t *testing.T) {
	a := NewLAEDF()
	inst := []InstanceView{{AbsoluteDeadline: 1.0, Period: 1, TotalWCET: 1e6, AdjustedWCET: 1e6, RemainingWorstCase: 1e6}}
	if got := a.SelectFrequency(1.0, fmax, inst); got != fmax {
		t.Fatalf("laEDF at the deadline = %v, want fmax", got)
	}
}

func TestLAEDFGuaranteesEarliestDeadlineWork(t *testing.T) {
	// Whatever the mix of instances, running at the returned frequency until
	// the earliest deadline must complete at least the remaining work of the
	// earliest-deadline instance (that work cannot be deferred past it).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		now := rng.Float64() * 0.01
		n := 1 + rng.Intn(5)
		inst := make([]InstanceView, n)
		var u float64
		for i := range inst {
			period := 0.02 + rng.Float64()*0.2
			wc := rng.Float64() * 0.5 * period * fmax / float64(n)
			rel := now - rng.Float64()*period*0.5
			inst[i] = InstanceView{
				GraphIndex:         i,
				ReleaseTime:        rel,
				AbsoluteDeadline:   rel + period,
				Period:             period,
				TotalWCET:          wc,
				AdjustedWCET:       wc,
				RemainingWorstCase: wc * (0.3 + 0.7*rng.Float64()),
			}
			u += wc / (fmax * period)
		}
		if u > 1 {
			return true // not a schedulable scenario; skip
		}
		sorted := sortEDF(inst)
		dn := sorted[0].AbsoluteDeadline
		if dn <= now {
			return true
		}
		fref := NewLAEDF().SelectFrequency(now, fmax, inst)
		if fref < 0 || fref > fmax {
			return false
		}
		// Work completable before dn at fref must cover the earliest
		// instance's remaining work.
		return fref*(dn-now)+1e-3 >= sorted[0].RemainingWorstCase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every algorithm returns a frequency in [0, fmax] and is
// monotone: ccEDF never returns less than the pure utilisation of remaining
// deadlines would require... (bounds check only).
func TestAllAlgorithmsWithinRangeProperty(t *testing.T) {
	algs := []Algorithm{NewNoDVS(), NewStatic(), NewCCEDF(), NewLAEDF()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		inst := make([]InstanceView, n)
		for i := range inst {
			period := 0.01 + rng.Float64()*0.5
			wc := rng.Float64() * period * fmax * 0.4
			inst[i] = InstanceView{
				AbsoluteDeadline:   rng.Float64() * 2,
				Period:             period,
				TotalWCET:          wc,
				AdjustedWCET:       wc * (0.2 + 0.8*rng.Float64()),
				RemainingWorstCase: wc * rng.Float64(),
			}
		}
		now := rng.Float64()
		for _, a := range algs {
			got := a.SelectFrequency(now, fmax, inst)
			if got < 0 || got > fmax || math.IsNaN(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSortEDFDoesNotMutateInput(t *testing.T) {
	inst := []InstanceView{
		{AbsoluteDeadline: 0.2},
		{AbsoluteDeadline: 0.1},
	}
	out := sortEDF(inst)
	if inst[0].AbsoluteDeadline != 0.2 {
		t.Fatal("sortEDF mutated its input")
	}
	if out[0].AbsoluteDeadline != 0.1 {
		t.Fatal("sortEDF did not sort")
	}
}

func TestClampFrequency(t *testing.T) {
	if clampFrequency(-1, fmax) != 0 {
		t.Fatal("negative not clamped to 0")
	}
	if clampFrequency(2*fmax, fmax) != fmax {
		t.Fatal("excess not clamped to fmax")
	}
	if clampFrequency(0.5*fmax, fmax) != 0.5*fmax {
		t.Fatal("in-range value altered")
	}
}
