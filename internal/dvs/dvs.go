// Package dvs implements the dynamic voltage/frequency-setting algorithms the
// paper builds on: the cycle-conserving (ccEDF) and look-ahead (laEDF)
// real-time DVS algorithms of Pillai and Shin, extended to periodic task
// graphs as described in Section 4.1 of the paper, plus a no-DVS baseline
// that always runs at the maximum frequency.
//
// A frequency-setting algorithm sees, at every scheduling decision point, a
// summary of all released-but-unfinished task-graph instances (InstanceView)
// and returns the reference frequency fref that guarantees every subsequent
// deadline. The scheduler in internal/core invokes it on every task-graph
// release and on every node completion, exactly as in the paper's Algorithm 1.
package dvs

import "sort"

// InstanceView is the scheduler's summary of one released, incomplete
// task-graph instance, in EDF order (earliest absolute deadline first).
type InstanceView struct {
	// GraphIndex identifies the task graph within the system.
	GraphIndex int
	// ReleaseTime is the absolute release time of this instance in seconds.
	ReleaseTime float64
	// AbsoluteDeadline is the absolute deadline (release + period) in seconds.
	AbsoluteDeadline float64
	// Period is the graph period (= relative deadline) in seconds.
	Period float64
	// TotalWCET is the static worst-case work of the whole graph in cycles.
	TotalWCET float64
	// AdjustedWCET is the paper's WC_i: the sum of the actual cycles of the
	// nodes of this instance that have already completed plus the worst-case
	// cycles of the nodes that have not, in cycles.
	AdjustedWCET float64
	// RemainingWorstCase is the worst-case work still to be executed for this
	// instance (unfinished nodes at their WCET, minus cycles already executed
	// of the in-progress node), in cycles.
	RemainingWorstCase float64
}

// Algorithm selects the reference frequency at a scheduling decision point.
type Algorithm interface {
	// Name returns a short identifier ("ccEDF", "laEDF", "noDVS").
	Name() string
	// SelectFrequency returns the reference frequency fref in Hz given the
	// current time, the maximum processor frequency and the views of all
	// released incomplete instances. The result is always in [0, fmax]; 0
	// means the processor may idle. Implementations must not retain or
	// modify the slice.
	SelectFrequency(now, fmax float64, instances []InstanceView) float64
}

// sortEDF returns the instances sorted by absolute deadline (stable, earliest
// first) without modifying the input. The scheduler always passes views in
// EDF order already, in which case the input is returned as-is (read-only)
// and no copy is allocated — a stable sort of an already-sorted slice is the
// identity, so the result is unchanged.
func sortEDF(instances []InstanceView) []InstanceView {
	sorted := true
	for i := 1; i < len(instances); i++ {
		if instances[i].AbsoluteDeadline < instances[i-1].AbsoluteDeadline {
			sorted = false
			break
		}
	}
	if sorted {
		return instances
	}
	out := append([]InstanceView(nil), instances...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AbsoluteDeadline < out[j].AbsoluteDeadline })
	return out
}

// clampFrequency limits f to [0, fmax].
func clampFrequency(f, fmax float64) float64 {
	if f < 0 {
		return 0
	}
	if f > fmax {
		return fmax
	}
	return f
}

// NoDVS is the baseline that never scales: the processor always runs at fmax
// while there is pending work (the "EDF, no DVS" row of the paper's Table 2).
type NoDVS struct{}

// NewNoDVS returns the no-DVS baseline.
func NewNoDVS() NoDVS { return NoDVS{} }

// Name implements Algorithm.
func (NoDVS) Name() string { return "noDVS" }

// SelectFrequency implements Algorithm.
func (NoDVS) SelectFrequency(now, fmax float64, instances []InstanceView) float64 {
	if len(instances) == 0 {
		return 0
	}
	return fmax
}

// Static runs at a fixed utilisation-derived frequency: fref = U * fmax with
// U the static worst-case utilisation of the released instances' graphs. It
// corresponds to the classic "static voltage scaling" RT-DVS variant and is
// useful as an additional baseline in ablations.
type Static struct{}

// NewStatic returns the static-scaling baseline.
func NewStatic() Static { return Static{} }

// Name implements Algorithm.
func (Static) Name() string { return "staticEDF" }

// SelectFrequency implements Algorithm.
func (Static) SelectFrequency(now, fmax float64, instances []InstanceView) float64 {
	if len(instances) == 0 || fmax <= 0 {
		return 0
	}
	var u float64
	for _, in := range instances {
		if in.Period > 0 {
			u += in.TotalWCET / (fmax * in.Period)
		}
	}
	return clampFrequency(u*fmax, fmax)
}

// CCEDF is the cycle-conserving EDF DVS algorithm of Pillai and Shin,
// extended to task graphs (the paper's Algorithm 1): the utilisation is the
// sum over released graphs of WC_i/D_i where WC_i counts completed nodes at
// their actual cycles and pending nodes at their worst case; fref = U * fmax.
type CCEDF struct{}

// NewCCEDF returns the cycle-conserving EDF frequency setter.
func NewCCEDF() CCEDF { return CCEDF{} }

// Name implements Algorithm.
func (CCEDF) Name() string { return "ccEDF" }

// SelectFrequency implements Algorithm.
func (CCEDF) SelectFrequency(now, fmax float64, instances []InstanceView) float64 {
	if len(instances) == 0 || fmax <= 0 {
		return 0
	}
	var u float64
	for _, in := range instances {
		if in.Period > 0 {
			u += in.AdjustedWCET / (fmax * in.Period)
		}
	}
	return clampFrequency(u*fmax, fmax)
}

// LAEDF is the look-ahead EDF DVS algorithm of Pillai and Shin extended to
// task graphs: it estimates the minimum amount of work that must be completed
// before the earliest deadline so that all later deadlines can still be met
// at full speed, and runs just fast enough to finish that work in time. It is
// more aggressive than CCEDF (runs slower earlier) while still guaranteeing
// all deadlines.
type LAEDF struct{}

// NewLAEDF returns the look-ahead EDF frequency setter.
func NewLAEDF() LAEDF { return LAEDF{} }

// Name implements Algorithm.
func (LAEDF) Name() string { return "laEDF" }

// SelectFrequency implements Algorithm.
func (LAEDF) SelectFrequency(now, fmax float64, instances []InstanceView) float64 {
	if len(instances) == 0 || fmax <= 0 {
		return 0
	}
	inst := sortEDF(instances)
	dn := inst[0].AbsoluteDeadline
	if dn <= now {
		// The earliest deadline is (numerically) immediate: run flat out.
		return fmax
	}
	// Work in normalised "seconds at fmax" units.
	var u float64
	for _, in := range inst {
		if in.Period > 0 {
			u += in.TotalWCET / (fmax * in.Period)
		}
	}
	s := 0.0
	// Latest deadline first.
	for i := len(inst) - 1; i >= 0; i-- {
		in := inst[i]
		cLeft := in.RemainingWorstCase / fmax
		if in.Period > 0 {
			u -= in.TotalWCET / (fmax * in.Period)
		}
		slack := in.AbsoluteDeadline - dn
		var x float64
		if slack <= 0 {
			// The instance with the earliest deadline: all of its remaining
			// work must be done before dn.
			x = cLeft
		} else {
			x = cLeft - (1-u)*slack
			if x < 0 {
				x = 0
			}
			u += (cLeft - x) / slack
		}
		s += x
	}
	return clampFrequency(s/(dn-now)*fmax, fmax)
}
