package experiments

import (
	"battsched/internal/runner"
	"battsched/internal/stats"
)

// RunOptions are the execution knobs shared by every experiment driver. They
// are embedded in each experiment's config, so the zero value (full
// parallelism, no progress reporting, fixed set counts) is always usable.
//
// All experiments enumerate their (set × scheme × sweep-point) grid as
// independent jobs of the internal/runner harness. Jobs stream back in
// deterministic job order (runner.RunStream) and the drivers fold them into
// stats.Accumulators as they arrive, so no driver materialises its result
// grid and every experiment is byte-identical at any Parallel value.
type RunOptions struct {
	// Parallel is the worker-pool size; <= 0 selects runtime.GOMAXPROCS(0)
	// and 1 forces sequential execution.
	Parallel int
	// Progress, when non-nil, is called after each completed job with the
	// completed and total job counts. It must be fast and is called from
	// worker goroutines (serialised). Under adaptive stopping the callback
	// restarts from zero for each batch of sets.
	Progress func(done, total int)
	// TargetCI enables adaptive set counts: the driver runs batches of sets
	// (each the size of the configured set count) until the relative
	// Student-t CI95 half-width of its key metric falls below TargetCI for
	// every reported row, or MaxSets is reached. <= 0 disables adaptive
	// stopping, running exactly the configured set count. Deterministic
	// experiments without stochastic sets (the battery curve) ignore it.
	TargetCI float64
	// MaxSets is the hard cap on the adaptively grown set count; 0 selects
	// 8× the configured count. It never shrinks below the configured count.
	MaxSets int
}

// runnerOptions translates the experiment knobs for the runner harness.
func (o RunOptions) runnerOptions() runner.Options {
	return runner.Options{Parallelism: o.Parallel, Progress: o.Progress}
}

// adaptiveMax resolves the hard set-count cap for an initial (configured)
// count.
func (o RunOptions) adaptiveMax(initial int) int {
	if o.TargetCI <= 0 {
		return initial
	}
	if o.MaxSets > initial {
		return o.MaxSets
	}
	if o.MaxSets > 0 {
		return initial
	}
	return 8 * initial
}

// runAdaptiveSets runs batches of set indices until convergence: runBatch
// executes sets [lo, hi) (hi-lo is at most the configured initial count), and
// conv inspects the caller's accumulators after each batch. With adaptive
// stopping disabled exactly one batch of the initial count runs, so fixed-set
// results are unchanged. Returns the total number of sets run.
//
// Convergence is all-rows-or-nothing by design: every row of a sweep keeps
// averaging over the same absolute set indices, so rows stay directly
// comparable (the paper's tables compare columns over identical workloads)
// and an adaptive run that stops at N sets reports the same samples a fixed
// N-set run averages. (Drivers that fold sets one by one match such a fixed
// run bit-for-bit; the chunked scenario grid matches up to floating-point
// reassociation of its Welford merge when a chunk straddles a batch
// boundary — see ScenarioGridConfig.SetsPerJob.) The cost is that converged
// rows re-run alongside unconverged ones; per-row batching would save that
// work but make row sample counts diverge.
func runAdaptiveSets(o RunOptions, initial int, runBatch func(lo, hi int) error, conv func() bool) (int, error) {
	max := o.adaptiveMax(initial)
	total := 0
	for total < max {
		hi := total + initial
		if hi > max {
			hi = max
		}
		if err := runBatch(total, hi); err != nil {
			return total, err
		}
		total = hi
		if o.TargetCI <= 0 || conv() {
			break
		}
	}
	return total, nil
}

// converged reports whether every accumulator's relative CI95 half-width is
// at or below target (accumulators with fewer than two observations never
// converge).
func converged(target float64, accs ...*stats.Accumulator) bool {
	for _, a := range accs {
		if a.N() < 2 || a.RelCI95() > target {
			return false
		}
	}
	return true
}
