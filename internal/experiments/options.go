package experiments

import "battsched/internal/runner"

// RunOptions are the execution knobs shared by every experiment driver. They
// are embedded in each experiment's config, so the zero value (full
// parallelism, no progress reporting) is always usable.
//
// All experiments enumerate their (set × scheme × sweep-point) grid as
// independent jobs of the internal/runner harness. Each job derives its own
// random stream from the experiment seed and its grid coordinates, and the
// per-job results are folded in job order, so every experiment is
// byte-identical at any Parallel value.
type RunOptions struct {
	// Parallel is the worker-pool size; <= 0 selects runtime.GOMAXPROCS(0)
	// and 1 forces sequential execution.
	Parallel int
	// Progress, when non-nil, is called after each completed job with the
	// completed and total job counts. It must be fast and is called from
	// worker goroutines (serialised).
	Progress func(done, total int)
}

// runnerOptions translates the experiment knobs for the runner harness.
func (o RunOptions) runnerOptions() runner.Options {
	return runner.Options{Parallelism: o.Parallel, Progress: o.Progress}
}
