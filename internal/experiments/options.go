package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"battsched/internal/runner"
	"battsched/internal/stats"
)

// RunOptions are the execution knobs shared by every experiment driver. They
// are embedded in each experiment's config, so the zero value (full
// parallelism, no progress reporting, fixed set counts) is always usable.
//
// All experiments enumerate their (set × scheme × sweep-point) grid as
// independent jobs of the internal/runner harness. Jobs stream back in
// deterministic job order (runner.RunStream) and the drivers fold them into
// stats.Accumulators as they arrive, so no driver materialises its result
// grid and every experiment is byte-identical at any Parallel value.
type RunOptions struct {
	// Parallel is the worker-pool size; <= 0 selects runtime.GOMAXPROCS(0)
	// and 1 forces sequential execution.
	Parallel int
	// Progress, when non-nil, is called after each completed job with the
	// completed and total job counts. It must be fast and is called from
	// worker goroutines (serialised). Under adaptive stopping the callback
	// restarts from zero for each batch of sets.
	Progress func(done, total int)
	// TargetCI enables adaptive set counts: the driver runs batches of sets
	// (each the size of the configured set count) until the relative
	// Student-t CI95 half-width of its key metric falls below TargetCI for
	// every reported row, or MaxSets is reached. <= 0 disables adaptive
	// stopping, running exactly the configured set count. Deterministic
	// experiments without stochastic sets (the battery curve) ignore it.
	TargetCI float64
	// MaxSets is the hard cap on the adaptively grown set count; 0 selects
	// 8× the configured count. It never shrinks below the configured count.
	MaxSets int
	// Shard restricts the run to one shard of a multi-process partition of
	// the absolute set indices (the zero value runs everything). The driver
	// then emits a partial Report that MergeReports combines with the other
	// shards' partials into the complete run.
	Shard Shard
}

// Shard selects shard Index of Count contiguous partitions of every batch's
// absolute set-index range. Set seeds key on the absolute index, so the
// shards of a run are exact partitions of the unsharded run's samples:
// merging all partials reproduces the single-process tables. Under adaptive
// stopping (TargetCI) the batch grid stays aligned to absolute indices and
// each shard executes its slice of every batch, but convergence is judged on
// the shard's own samples — shards therefore reproduce the unsharded
// adaptive run exactly when they stop after the same number of batches
// (always true when MaxSets caps the run, the recommended mode for sharded
// sweeps; see EXPERIMENTS.md).
type Shard struct {
	// Index is the shard number in [0, Count).
	Index int
	// Count is the total number of shards; 0 or 1 disables sharding.
	Count int
}

// Enabled reports whether the shard actually restricts the run.
func (s Shard) Enabled() bool { return s.Count > 1 }

// validate checks the index range.
func (s Shard) validate() error {
	if s.Count < 0 || (s.Count > 0 && (s.Index < 0 || s.Index >= s.Count)) {
		return fmt.Errorf("%w: shard %d/%d", ErrBadConfig, s.Index, s.Count)
	}
	return nil
}

// String renders the CLI form ("1/4"; "" when unsharded).
func (s Shard) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// slice returns the shard's contiguous sub-range of the absolute set range
// [lo, hi). The Count slices of a range are an exact partition; a shard's
// slice may be empty when the range has fewer sets than shards.
func (s Shard) slice(lo, hi int) (int, int) {
	if !s.Enabled() {
		return lo, hi
	}
	n := hi - lo
	return lo + s.Index*n/s.Count, lo + (s.Index+1)*n/s.Count
}

// ParseShard parses the CLI form "i/n" (e.g. "0/4"); the empty string is the
// unsharded zero value.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("%w: shard %q (want i/n, e.g. 0/4)", ErrBadConfig, s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(count)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("%w: shard %q (want i/n, e.g. 0/4)", ErrBadConfig, s)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.validate(); err != nil {
		return Shard{}, err
	}
	if sh.Count == 0 && sh.Index != 0 {
		return Shard{}, fmt.Errorf("%w: shard %q", ErrBadConfig, s)
	}
	return sh, nil
}

// runnerOptions translates the experiment knobs for the runner harness.
func (o RunOptions) runnerOptions() runner.Options {
	return runner.Options{Parallelism: o.Parallel, Progress: o.Progress}
}

// adaptiveMax resolves the hard set-count cap for an initial (configured)
// count.
func (o RunOptions) adaptiveMax(initial int) int {
	if o.TargetCI <= 0 {
		return initial
	}
	if o.MaxSets > initial {
		return o.MaxSets
	}
	if o.MaxSets > 0 {
		return initial
	}
	return 8 * initial
}

// runAdaptiveSets runs batches of set indices until convergence: runBatch
// executes sets [lo, hi) (hi-lo is at most the configured initial count), and
// conv inspects the caller's accumulators after each batch. With adaptive
// stopping disabled exactly one batch of the initial count runs, so fixed-set
// results are unchanged. With RunOptions.Shard set, every batch is restricted
// to the shard's contiguous slice of its absolute range — the batch grid
// itself never moves, so the shards of a run partition exactly the set
// indices the unsharded run executes. Returns the total number of absolute
// set indices covered (across all shards).
//
// Convergence is all-rows-or-nothing by design: every row of a sweep keeps
// averaging over the same absolute set indices, so rows stay directly
// comparable (the paper's tables compare columns over identical workloads)
// and an adaptive run that stops at N sets reports the same samples a fixed
// N-set run averages. (Drivers that fold sets one by one match such a fixed
// run bit-for-bit; the chunked scenario grid matches up to floating-point
// reassociation of its Welford merge when a chunk straddles a batch
// boundary — see ScenarioGridConfig.SetsPerJob.) The cost is that converged
// rows re-run alongside unconverged ones; per-row batching would save that
// work but make row sample counts diverge.
func runAdaptiveSets(o RunOptions, initial int, runBatch func(lo, hi int) error, conv func() bool) (int, error) {
	if err := o.Shard.validate(); err != nil {
		return 0, err
	}
	max := o.adaptiveMax(initial)
	total := 0
	for total < max {
		hi := total + initial
		if hi > max {
			hi = max
		}
		sLo, sHi := o.Shard.slice(total, hi)
		if err := runBatch(sLo, sHi); err != nil {
			return total, err
		}
		total = hi
		if o.TargetCI <= 0 || conv() {
			break
		}
	}
	return total, nil
}

// converged reports whether every accumulator's relative CI95 half-width is
// at or below target (accumulators with fewer than two observations never
// converge).
func converged(target float64, accs ...*stats.Accumulator) bool {
	for _, a := range accs {
		if a.N() < 2 || a.RelCI95() > target {
			return false
		}
	}
	return true
}
