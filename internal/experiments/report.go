package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"sort"
	"strings"

	"battsched/internal/stats"
)

// ReportVersion is the schema version stamped into every Report and artifact.
// Readers reject other versions instead of misinterpreting the payload.
const ReportVersion = 1

// Report is the structured result every experiment driver returns: named rows
// of metric cells backed by serialisable accumulator state. The plain-text
// tables of the paper are rendered from it (FormatReport) byte-identically to
// the historical Format* output, it marshals to the versioned JSON artifact
// cmd/experiments writes with -o, and shard partials of the same run merge
// with MergeReports.
type Report struct {
	// Version is the report schema version (ReportVersion).
	Version int `json:"version"`
	// Experiment is the registry name of the experiment that produced the
	// report ("table1", "figure6", "table2", "curve", "ablation", "grid").
	Experiment string `json:"experiment"`
	// Meta records the configuration fingerprint of the run: everything the
	// renderer needs beyond the rows (battery model, utilisation, ...) plus
	// the knobs that must agree for shard partials to be mergeable (seed,
	// configured set counts, ...). Values are canonical strings; floats use
	// strconv.FormatFloat(v, 'g', -1, 64) so they round-trip exactly.
	Meta map[string]string `json:"meta,omitempty"`
	// Shard identifies the partial's shard; nil for a complete run.
	Shard *ShardInfo `json:"shard,omitempty"`
	// Rows are the report rows in render order.
	Rows []ReportRow `json:"rows"`
}

// ShardInfo identifies one shard of a sharded run.
type ShardInfo struct {
	// Index is the shard number in [0, Count).
	Index int `json:"index"`
	// Count is the total number of shards of the run.
	Count int `json:"count"`
}

// ReportRow is one named row of a Report.
type ReportRow struct {
	// Key identifies the row within its experiment (a scheme name, a task
	// count, a "model@current" curve point, ...). Merging matches rows by Key.
	Key string `json:"key"`
	// Labels carry the row's descriptive columns (DVS algorithm, priority
	// function, battery model, ...). They must agree across shard partials.
	Labels map[string]string `json:"labels,omitempty"`
	// Cells map metric names to their accumulated state.
	Cells map[string]Cell `json:"cells"`
	// Counts carry additive integer side-channels (incomplete searches,
	// deadline misses); merging sums them.
	Counts map[string]int `json:"counts,omitempty"`
}

// Cell is one metric cell: exported accumulator state, optionally backed by
// the retained per-set samples. When every shard partial retains its samples,
// MergeReports replays them in absolute set order, reproducing the
// single-process accumulator bit-for-bit; without samples (the scenario
// grid's chunk-merged cells) it falls back to the Welford state combination,
// which reassociates the floating-point reduction and may differ from the
// single-process values by a few ulps (never visibly at table precision).
type Cell struct {
	stats.State
	// Sets and Samples are parallel: Samples[i] is the key-metric observation
	// of absolute set index Sets[i], in fold order (ascending Sets). Empty
	// when samples are not retained.
	Sets    []int     `json:"sets,omitempty"`
	Samples []float64 `json:"samples,omitempty"`
}

// metricAcc builds one report cell: an online Welford accumulator plus the
// retained (absolute set index, value) samples that make shard merging exact.
// The per-set drivers feed it exactly like the plain accumulators they used
// before, so the accumulated state — and therefore every golden value — is
// unchanged.
type metricAcc struct {
	acc     stats.Accumulator
	sets    []int
	samples []float64
}

// Add incorporates the observation of one absolute set index.
func (m *metricAcc) Add(set int, x float64) {
	m.acc.Add(x)
	m.sets = append(m.sets, set)
	m.samples = append(m.samples, x)
}

// Cell exports the accumulated cell.
func (m *metricAcc) Cell() Cell {
	return Cell{State: m.acc.State(), Sets: m.sets, Samples: m.samples}
}

// stateCell exports an accumulator as a sample-free cell (used by the
// scenario grid, whose cells are already chunk merges).
func stateCell(a *stats.Accumulator) Cell { return Cell{State: a.State()} }

// replayable reports whether the cell retains one sample per observation.
func (c Cell) replayable() bool { return len(c.Samples) == c.N && len(c.Sets) == c.N }

// mergeCells combines the shard partials of one metric cell, given in shard
// order. When every partial retains its samples the merge re-folds them in
// absolute set order — bit-for-bit the single-process accumulator; otherwise
// it falls back to the Welford state combination (see Cell).
func mergeCells(parts []Cell) (Cell, error) {
	exact := true
	total := 0
	for _, p := range parts {
		if !p.replayable() {
			exact = false
		}
		total += p.N
	}
	if exact {
		type obs struct {
			set int
			x   float64
		}
		all := make([]obs, 0, total)
		for _, p := range parts {
			for i, set := range p.Sets {
				all = append(all, obs{set, p.Samples[i]})
			}
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].set < all[j].set })
		merged := metricAcc{sets: make([]int, 0, total), samples: make([]float64, 0, total)}
		for i, o := range all {
			if i > 0 && o.set == all[i-1].set {
				return Cell{}, fmt.Errorf("experiments: duplicate sample for set %d across shards", o.set)
			}
			merged.Add(o.set, o.x)
		}
		return merged.Cell(), nil
	}
	var acc stats.Accumulator
	for _, p := range parts {
		acc.Merge(stats.FromState(p.State))
	}
	return Cell{State: acc.State()}, nil
}

// ValidateShardCoverage checks that parts are the complete, non-overlapping
// shard partition of exactly one experiment run: every part is a partial of
// the same experiment and schema version, all partials agree on the shard
// count n, and each shard index 0..n-1 is supplied exactly once. Missing and
// duplicated shards are reported by name — a forgotten partial must fail
// loudly here, because merging an incomplete partition would silently average
// over a subset of the run's set indices and emit wrong tables.
func ValidateShardCoverage(parts []*Report) error {
	if len(parts) == 0 {
		return fmt.Errorf("experiments: no reports to merge")
	}
	first := parts[0]
	for _, p := range parts {
		if p.Version != ReportVersion {
			return fmt.Errorf("experiments: report version %d, want %d", p.Version, ReportVersion)
		}
		if p.Experiment != first.Experiment {
			return fmt.Errorf("experiments: cannot merge %q with %q", p.Experiment, first.Experiment)
		}
		if p.Shard == nil {
			return fmt.Errorf("experiments: %q report is not a shard partial (complete runs do not merge)", p.Experiment)
		}
	}
	count := first.Shard.Count
	seen := make(map[int]int)
	for _, p := range parts {
		if p.Shard.Count != count {
			return fmt.Errorf("experiments: %q mixes partials of different runs (shard %d/%d vs %d/%d)",
				first.Experiment, p.Shard.Index, p.Shard.Count, first.Shard.Index, count)
		}
		if p.Shard.Index < 0 || p.Shard.Index >= count {
			return fmt.Errorf("experiments: %q has corrupt shard %d/%d", first.Experiment, p.Shard.Index, count)
		}
		seen[p.Shard.Index]++
	}
	var missing, dup []string
	for i := 0; i < count; i++ {
		switch {
		case seen[i] == 0:
			missing = append(missing, fmt.Sprintf("%d/%d", i, count))
		case seen[i] > 1:
			dup = append(dup, fmt.Sprintf("%d/%d (x%d)", i, count, seen[i]))
		}
	}
	if len(dup) > 0 {
		return fmt.Errorf("experiments: %q has overlapping shard partials: %s supplied more than once",
			first.Experiment, strings.Join(dup, ", "))
	}
	if len(missing) > 0 {
		return fmt.Errorf("experiments: %q shard coverage is incomplete: missing partial(s) %s",
			first.Experiment, strings.Join(missing, ", "))
	}
	return nil
}

// MergeReports combines the shard partials of one experiment run (in any
// order) into the report of the complete run. Every shard 0..Count-1 must be
// present exactly once (ValidateShardCoverage) and the partials must agree on
// experiment, version, configuration fingerprint (Meta) and row structure.
// Per-set cells merge exactly (sample replay); state-only cells merge with
// the documented Welford reassociation bound; counts sum.
func MergeReports(parts []*Report) (*Report, error) {
	if err := ValidateShardCoverage(parts); err != nil {
		return nil, err
	}
	sorted := make([]*Report, len(parts))
	copy(sorted, parts)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Shard.Index < sorted[j].Shard.Index
	})
	first := sorted[0]
	for _, p := range sorted {
		if !maps.Equal(p.Meta, first.Meta) {
			return nil, fmt.Errorf("experiments: %q shard %d was run with a different configuration (meta %v vs %v)",
				p.Experiment, p.Shard.Index, p.Meta, first.Meta)
		}
		if len(p.Rows) != len(first.Rows) {
			return nil, fmt.Errorf("experiments: %q shard %d has %d rows, want %d",
				p.Experiment, p.Shard.Index, len(p.Rows), len(first.Rows))
		}
	}

	merged := &Report{
		Version:    ReportVersion,
		Experiment: first.Experiment,
		Meta:       maps.Clone(first.Meta),
		Rows:       make([]ReportRow, len(first.Rows)),
	}
	for ri, row := range first.Rows {
		out := ReportRow{
			Key:    row.Key,
			Labels: maps.Clone(row.Labels),
			Cells:  make(map[string]Cell, len(row.Cells)),
		}
		for _, p := range sorted {
			pr := p.Rows[ri]
			if pr.Key != row.Key || !maps.Equal(pr.Labels, row.Labels) {
				return nil, fmt.Errorf("experiments: %q row %d differs across shards (%q vs %q)",
					first.Experiment, ri, pr.Key, row.Key)
			}
			for name, n := range pr.Counts {
				if out.Counts == nil {
					out.Counts = make(map[string]int)
				}
				out.Counts[name] += n
			}
		}
		for name := range row.Cells {
			cells := make([]Cell, len(sorted))
			for pi, p := range sorted {
				c, ok := p.Rows[ri].Cells[name]
				if !ok {
					return nil, fmt.Errorf("experiments: %q row %q misses cell %q in shard %d",
						first.Experiment, row.Key, name, pi)
				}
				cells[pi] = c
			}
			c, err := mergeCells(cells)
			if err != nil {
				return nil, fmt.Errorf("%s row %q cell %q: %w", first.Experiment, row.Key, name, err)
			}
			out.Cells[name] = c
		}
		merged.Rows[ri] = out
	}
	return merged, nil
}

// artifact is the on-disk JSON envelope: a version plus the reports of one
// cmd/experiments invocation.
type artifact struct {
	Version int       `json:"version"`
	Reports []*Report `json:"reports"`
}

// WriteArtifact writes reports as an indented, versioned JSON artifact.
func WriteArtifact(w io.Writer, reports []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(artifact{Version: ReportVersion, Reports: reports})
}

// ReadArtifact reads an artifact written by WriteArtifact, validating the
// schema version of the envelope and of every report.
func ReadArtifact(r io.Reader) ([]*Report, error) {
	var a artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("experiments: decoding report artifact: %w", err)
	}
	if a.Version != ReportVersion {
		return nil, fmt.Errorf("experiments: report artifact version %d, want %d", a.Version, ReportVersion)
	}
	for _, rep := range a.Reports {
		if rep == nil {
			return nil, fmt.Errorf("experiments: report artifact contains a null report")
		}
		if rep.Version != ReportVersion {
			return nil, fmt.Errorf("experiments: report version %d, want %d", rep.Version, ReportVersion)
		}
	}
	return a.Reports, nil
}
