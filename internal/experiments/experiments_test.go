package experiments

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestNamedBatteryFactory(t *testing.T) {
	for _, name := range []string{"", "stochastic", "kibam", "diffusion", "peukert"} {
		f, err := NamedBatteryFactory(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		m := f()
		if m == nil || m.MaxCapacity() <= 0 {
			t.Fatalf("%q: bad model", name)
		}
		// Factories must return fresh instances.
		if f() == m {
			t.Fatalf("%q: factory returned a shared instance", name)
		}
	}
	if _, err := NamedBatteryFactory("bogus"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown model err = %v", err)
	}
}

func TestRunTable1Quick(t *testing.T) {
	cfg := QuickTable1Config()
	rows, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.TaskCounts) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.TaskCounts))
	}
	for _, r := range rows {
		if r.Samples != cfg.GraphsPerCount {
			t.Fatalf("row %d: samples = %d", r.Tasks, r.Samples)
		}
		// All normalised energies are at least 1 (the optimum normalises).
		for name, v := range map[string]float64{"random": r.Random, "ltf": r.LTF, "pubs": r.PUBS} {
			if v < 0.999 {
				t.Fatalf("row %d: %s = %v < 1", r.Tasks, name, v)
			}
		}
		// The paper's qualitative shape: pUBS is the closest to optimal.
		if r.PUBS > r.Random+1e-9 {
			t.Fatalf("row %d: pUBS (%v) worse than random (%v)", r.Tasks, r.PUBS, r.Random)
		}
		if r.PUBS > r.LTF+1e-9 {
			t.Fatalf("row %d: pUBS (%v) worse than LTF (%v)", r.Tasks, r.PUBS, r.LTF)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "pUBS") || !strings.Contains(out, "Table 1") {
		t.Fatalf("FormatTable1 output unexpected:\n%s", out)
	}
}

func TestRunTable1Validation(t *testing.T) {
	if _, err := RunTable1(context.Background(), Table1Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunFigure6Quick(t *testing.T) {
	cfg := QuickFigure6Config()
	cfg.UseCCEDF = true // the ordering-scheme separation is robust with ccEDF
	rows, err := RunFigure6(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.GraphCounts) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.GraphCounts))
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Fatalf("row %d: no samples", r.Graphs)
		}
		for name, v := range map[string]float64{
			"random": r.Random, "ltf": r.LTF, "pubs-imminent": r.PUBSImminent, "pubs-all": r.PUBSAllReleased,
		} {
			if v <= 0.5 || v > 10 {
				t.Fatalf("row %d: %s = %v implausible", r.Graphs, name, v)
			}
		}
		// pUBS over all released graphs should track the near-optimal most
		// closely (allow a small tolerance for the quick configuration).
		if r.PUBSAllReleased > r.Random*1.05 {
			t.Fatalf("row %d: pUBS-all (%v) much worse than random (%v)", r.Graphs, r.PUBSAllReleased, r.Random)
		}
	}
	out := FormatFigure6(rows)
	if !strings.Contains(out, "Figure 6") {
		t.Fatalf("FormatFigure6 output unexpected:\n%s", out)
	}
}

func TestRunFigure6Validation(t *testing.T) {
	if _, err := RunFigure6(context.Background(), Figure6Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTable2Quick(t *testing.T) {
	cfg := QuickTable2Config()
	cfg.Battery = nil
	cfg.BatteryName = "kibam"
	rows, err := RunTable2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.Sets != cfg.Sets {
			t.Fatalf("%s: sets = %d", r.Scheme, r.Sets)
		}
		if r.ChargeDeliveredMAh <= 0 || r.ChargeDeliveredMAh > 2000 {
			t.Fatalf("%s: charge = %v", r.Scheme, r.ChargeDeliveredMAh)
		}
		if r.BatteryLifeMin <= 0 {
			t.Fatalf("%s: lifetime = %v", r.Scheme, r.BatteryLifeMin)
		}
	}
	edf := byName["EDF"]
	cc := byName["Cycle Conserving"]
	bas2 := byName["BAS-2"]
	// The headline qualitative results: any DVS beats no-DVS on lifetime and
	// energy, and the full BAS-2 methodology beats plain EDF on both charge
	// delivered and lifetime.
	if cc.BatteryLifeMin <= edf.BatteryLifeMin {
		t.Fatalf("ccEDF lifetime %v not above EDF lifetime %v", cc.BatteryLifeMin, edf.BatteryLifeMin)
	}
	if bas2.BatteryLifeMin <= edf.BatteryLifeMin {
		t.Fatalf("BAS-2 lifetime %v not above EDF lifetime %v", bas2.BatteryLifeMin, edf.BatteryLifeMin)
	}
	if bas2.ChargeDeliveredMAh < edf.ChargeDeliveredMAh {
		t.Fatalf("BAS-2 charge %v below EDF charge %v", bas2.ChargeDeliveredMAh, edf.ChargeDeliveredMAh)
	}
	if edf.EnergyPerHyperperiodJ <= bas2.EnergyPerHyperperiodJ {
		t.Fatalf("EDF energy %v not above BAS-2 energy %v", edf.EnergyPerHyperperiodJ, bas2.EnergyPerHyperperiodJ)
	}
	out := FormatTable2(rows, "kibam", cfg.Utilization)
	if !strings.Contains(out, "BAS-2") || !strings.Contains(out, "Table 2") {
		t.Fatalf("FormatTable2 output unexpected:\n%s", out)
	}
}

func TestRunTable2Validation(t *testing.T) {
	if _, err := RunTable2(context.Background(), Table2Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	bad := DefaultTable2Config()
	bad.Sets = 1
	bad.BatteryName = "bogus"
	if _, err := RunTable2(context.Background(), bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bogus battery err = %v", err)
	}
}

func TestRunLoadCapacityCurve(t *testing.T) {
	series, err := RunLoadCapacityCurve(context.Background(), QuickCurveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: points = %d", s.Model, len(s.Points))
		}
		// Rate-capacity effect: delivered capacity non-increasing in load.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].DeliveredMAh > s.Points[i-1].DeliveredMAh+1 {
				t.Fatalf("%s: capacity increases with load: %+v", s.Model, s.Points)
			}
		}
	}
	out := FormatCurve(series)
	if !strings.Contains(out, "kibam") {
		t.Fatalf("FormatCurve output unexpected:\n%s", out)
	}
	if FormatCurve(nil) == "" {
		t.Fatal("FormatCurve(nil) empty")
	}
}

func TestRunEstimateAblation(t *testing.T) {
	rows, err := RunEstimateAblation(context.Background(), QuickEstimateAblationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	oracle, history, pessimistic := rows[0], rows[1], rows[2]
	if oracle.Samples == 0 {
		t.Fatal("no samples")
	}
	// With perfect estimates the pUBS ordering must beat random ordering; the
	// paper's qualitative claim is that worse estimates push it back toward a
	// random schedule, so the oracle variant should be at least as good as the
	// pessimistic one.
	if oracle.EnergyVsRandom > 1.02 {
		t.Fatalf("oracle pUBS worse than random: %v", oracle.EnergyVsRandom)
	}
	if oracle.EnergyVsRandom > pessimistic.EnergyVsRandom+0.05 {
		t.Fatalf("oracle (%v) much worse than pessimistic estimates (%v)", oracle.EnergyVsRandom, pessimistic.EnergyVsRandom)
	}
	if history.EnergyVsRandom <= 0 || pessimistic.EnergyVsRandom <= 0 {
		t.Fatal("non-positive normalised energies")
	}
	out := FormatEstimateAblation(rows)
	if !strings.Contains(out, "oracle") || !strings.Contains(out, "ablation") {
		t.Fatalf("FormatEstimateAblation output unexpected:\n%s", out)
	}
}

func TestRunEstimateAblationValidation(t *testing.T) {
	if _, err := RunEstimateAblation(context.Background(), EstimateAblationConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunLoadCapacityCurveValidation(t *testing.T) {
	if _, err := RunLoadCapacityCurve(context.Background(), CurveConfig{Currents: []float64{-1}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunLoadCapacityCurve(context.Background(), CurveConfig{Models: []string{"bogus"}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	// Empty config gets defaults applied; just check it does not error when
	// restricted to one cheap model and current.
	if _, err := RunLoadCapacityCurve(context.Background(), CurveConfig{Models: []string{"peukert"}, Currents: []float64{1}}); err != nil {
		t.Fatalf("defaults err = %v", err)
	}
}

// TestTable1ParallelDeterminism is the harness's core guarantee: the same
// seed produces identical Table 1 rows at any worker count.
func TestTable1ParallelDeterminism(t *testing.T) {
	cfg := QuickTable1Config()
	cfg.Parallel = 1
	seq, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 8
	par, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("rows differ across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	if FormatTable1(seq) != FormatTable1(par) {
		t.Fatal("formatted tables differ across worker counts")
	}
}

// TestTable2ParallelDeterminism checks byte-identical Table 2 output at
// -parallel 1 and -parallel 8.
func TestTable2ParallelDeterminism(t *testing.T) {
	cfg := QuickTable2Config()
	cfg.BatteryName = "kibam"
	cfg.Parallel = 1
	seq, err := RunTable2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Battery = nil // force the factory to be re-resolved in a fresh config
	cfg.Parallel = 8
	par, err := RunTable2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("rows differ across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	if FormatTable2(seq, "kibam", cfg.Utilization) != FormatTable2(par, "kibam", cfg.Utilization) {
		t.Fatal("formatted tables differ across worker counts")
	}
}

// TestFigure6AndAblationParallelDeterminism checks Figure 6 and the ablation
// across worker counts.
func TestFigure6AndAblationParallelDeterminism(t *testing.T) {
	fcfg := QuickFigure6Config()
	fcfg.Parallel = 1
	seq, err := RunFigure6(context.Background(), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg.Parallel = 8
	par, err := RunFigure6(context.Background(), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("figure 6 rows differ across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}

	acfg := QuickEstimateAblationConfig()
	acfg.Parallel = 1
	aseq, err := RunEstimateAblation(context.Background(), acfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg.Parallel = 8
	apar, err := RunEstimateAblation(context.Background(), acfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aseq, apar) {
		t.Fatalf("ablation rows differ across worker counts:\nseq: %+v\npar: %+v", aseq, apar)
	}
}

// TestExperimentProgressAndCancellation exercises the runner wiring: progress
// callbacks fire once per job and a cancelled context aborts the sweep.
func TestExperimentProgressAndCancellation(t *testing.T) {
	cfg := QuickCurveConfig()
	var last, calls int
	cfg.Progress = func(done, total int) {
		last = done
		calls++
		// One job per current: each job batch-evaluates the whole model axis.
		if total != len(cfg.Currents) {
			t.Errorf("total = %d", total)
		}
	}
	if _, err := RunLoadCapacityCurve(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Currents); calls != want || last != want {
		t.Fatalf("progress calls = %d last = %d, want %d", calls, last, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunTable2(ctx, QuickTable2Config()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx err = %v", err)
	}
}

// TestRunScenarioGrid checks the scenario-grid sweep: shape, comparability of
// the schemes, and independence from both worker count and chunk size (the
// latter exercises stats.Accumulator.Merge on real partials).
func TestRunScenarioGrid(t *testing.T) {
	cfg := QuickScenarioGridConfig()
	cfg.SetsPerJob = 1
	cfg.Parallel = 8
	rows, err := RunScenarioGrid(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Utilizations)*len(cfg.Batteries)*len(cfg.Schemes) {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := map[string]ScenarioGridRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if r.Charge.N != cfg.Sets {
			t.Fatalf("%s: sets = %d, want %d", r.Scheme, r.Charge.N, cfg.Sets)
		}
		if r.Charge.Mean <= 0 || r.Life.Mean <= 0 {
			t.Fatalf("%s: non-positive cell %+v", r.Scheme, r)
		}
		if r.DeadlineMisses != 0 {
			t.Fatalf("%s: %d deadline misses at utilisation %.2f", r.Scheme, r.DeadlineMisses, r.Utilization)
		}
	}
	if byScheme["BAS-2"].Life.Mean <= byScheme["EDF"].Life.Mean {
		t.Fatalf("BAS-2 lifetime %v not above EDF lifetime %v", byScheme["BAS-2"].Life.Mean, byScheme["EDF"].Life.Mean)
	}

	// Same chunking, sequential execution: byte-identical rows.
	cfg2 := cfg
	cfg2.Parallel = 1
	rows2, err := RunScenarioGrid(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, rows2) {
		t.Fatalf("rows differ across worker counts:\n%+v\n%+v", rows, rows2)
	}
	// Different chunking reassociates the Welford merge: equal up to
	// floating-point rounding.
	cfg3 := cfg
	cfg3.SetsPerJob = 3
	rows3, err := RunScenarioGrid(context.Background(), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		a, b := rows[i], rows3[i]
		if a.Charge.N != b.Charge.N ||
			math.Abs(a.Charge.Mean-b.Charge.Mean) > 1e-9*a.Charge.Mean ||
			math.Abs(a.Life.Mean-b.Life.Mean) > 1e-9*a.Life.Mean {
			t.Fatalf("row %d differs beyond rounding across chunking:\n%+v\n%+v", i, a, b)
		}
	}
	out := FormatScenarioGrid(rows)
	if !strings.Contains(out, "Scenario grid") || !strings.Contains(out, "BAS-2") {
		t.Fatalf("FormatScenarioGrid output unexpected:\n%s", out)
	}
}

// TestRunScenarioGridValidation covers the config validation paths.
func TestRunScenarioGridValidation(t *testing.T) {
	if _, err := RunScenarioGrid(context.Background(), ScenarioGridConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	bad := QuickScenarioGridConfig()
	bad.Utilizations = []float64{1.5}
	if _, err := RunScenarioGrid(context.Background(), bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("utilisation err = %v", err)
	}
	bad = QuickScenarioGridConfig()
	bad.Schemes = []string{"bogus"}
	if _, err := RunScenarioGrid(context.Background(), bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("scheme err = %v", err)
	}
	bad = QuickScenarioGridConfig()
	bad.Batteries = []string{"bogus"}
	if _, err := RunScenarioGrid(context.Background(), bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("battery err = %v", err)
	}
}
