package experiments

import (
	"fmt"

	"battsched/internal/battery"
)

// CurveConfig parameterises the load versus delivered-capacity battery
// characterisation sweep referenced in Section 5 of the paper (the curve
// whose extrapolations define the maximum capacity at zero load and the
// available charge at very large loads).
type CurveConfig struct {
	// Models lists the battery model names to sweep ("stochastic", "kibam",
	// "diffusion", "peukert"); empty selects all four.
	Models []string
	// Currents are the constant loads in amperes; empty selects a default
	// sweep from 50 mA to 4 A.
	Currents []float64
	// MaxHours caps each constant-load simulation.
	MaxHours float64
}

// DefaultCurveConfig returns the default sweep.
func DefaultCurveConfig() CurveConfig {
	return CurveConfig{
		Models:   []string{"stochastic", "kibam", "diffusion", "peukert"},
		Currents: []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0},
		MaxHours: 60,
	}
}

// QuickCurveConfig returns a reduced sweep for fast benchmark runs.
func QuickCurveConfig() CurveConfig {
	return CurveConfig{
		Models:   []string{"kibam", "stochastic"},
		Currents: []float64{0.2, 1.0, 2.0},
		MaxHours: 60,
	}
}

// CurveSeries is the delivered-capacity curve of one battery model.
type CurveSeries struct {
	Model  string
	Points []battery.CurvePoint
}

// RunLoadCapacityCurve sweeps constant loads for each requested battery model.
func RunLoadCapacityCurve(cfg CurveConfig) ([]CurveSeries, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = DefaultCurveConfig().Models
	}
	if len(cfg.Currents) == 0 {
		cfg.Currents = DefaultCurveConfig().Currents
	}
	if cfg.MaxHours <= 0 {
		cfg.MaxHours = 60
	}
	for _, c := range cfg.Currents {
		if c <= 0 {
			return nil, fmt.Errorf("%w: non-positive current %v", ErrBadConfig, c)
		}
	}
	out := make([]CurveSeries, 0, len(cfg.Models))
	for _, name := range cfg.Models {
		factory, err := NamedBatteryFactory(name)
		if err != nil {
			return nil, err
		}
		points, err := battery.DeliveredCapacityCurve(factory(), cfg.Currents, cfg.MaxHours*3600)
		if err != nil {
			return nil, err
		}
		out = append(out, CurveSeries{Model: name, Points: points})
	}
	return out, nil
}
