package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"battsched/internal/battery"
	"battsched/internal/profile"
	"battsched/internal/runner"
	"battsched/internal/stats"
)

// CurveConfig parameterises the load versus delivered-capacity battery
// characterisation sweep referenced in Section 5 of the paper (the curve
// whose extrapolations define the maximum capacity at zero load and the
// available charge at very large loads).
type CurveConfig struct {
	// Models lists the battery model names to sweep ("stochastic", "kibam",
	// "diffusion", "peukert"); empty selects all four.
	Models []string
	// Currents are the constant loads in amperes; empty selects a default
	// sweep from 50 mA to 4 A.
	Currents []float64
	// MaxHours caps each constant-load simulation.
	MaxHours float64
	// MaxStep, when positive, forces the uniform-stepping simulation path
	// with this substep; zero selects the analytic fast path for models that
	// support it (battery.SimulateOptions.MaxStep).
	MaxStep float64
	// RunOptions tune the parallel execution of the (model × current) grid.
	RunOptions
}

// DefaultCurveConfig returns the default sweep.
func DefaultCurveConfig() CurveConfig {
	return CurveConfig{
		Models:   []string{"stochastic", "kibam", "diffusion", "peukert"},
		Currents: []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0},
		MaxHours: 60,
	}
}

// QuickCurveConfig returns a reduced sweep for fast benchmark runs.
func QuickCurveConfig() CurveConfig {
	return CurveConfig{
		Models:   []string{"kibam", "stochastic"},
		Currents: []float64{0.2, 1.0, 2.0},
		MaxHours: 60,
	}
}

// CurveSeries is the delivered-capacity curve of one battery model.
type CurveSeries struct {
	Model  string
	Points []battery.CurvePoint
}

func init() {
	mustRegister(Definition{
		Name:      "curve",
		Title:     "Load vs delivered-capacity battery characterisation curve",
		Paper:     "Section 5 (the curve whose extrapolations define maximum capacity and available charge)",
		Shardable: false,
		Run: func(ctx context.Context, spec Spec) (*Report, error) {
			cfg := DefaultCurveConfig()
			if spec.Quick {
				cfg = QuickCurveConfig()
			}
			if spec.Battery != "" {
				cfg.Models = []string{spec.Battery}
			}
			cfg.MaxStep = spec.MaxStep
			cfg.RunOptions = spec.RunOptions
			return runLoadCapacityCurveReport(ctx, cfg)
		},
	})
}

// runLoadCapacityCurveReport sweeps constant loads for each requested battery
// model. Each current is one job of the runner harness: one batch pass
// (battery.SimulateBatch) drives every model's instance to exhaustion at that
// constant load. Points stream directly into the output series. The sweep is
// deterministic (no stochastic sets), so RunOptions.TargetCI has no effect
// and the experiment does not shard.
func runLoadCapacityCurveReport(ctx context.Context, cfg CurveConfig) (*Report, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = DefaultCurveConfig().Models
	}
	if len(cfg.Currents) == 0 {
		cfg.Currents = DefaultCurveConfig().Currents
	}
	if cfg.MaxHours <= 0 {
		cfg.MaxHours = 60
	}
	for _, c := range cfg.Currents {
		if c <= 0 {
			return nil, fmt.Errorf("%w: non-positive current %v", ErrBadConfig, c)
		}
	}
	factories, err := resolveBatteryFactories(cfg.Models)
	if err != nil {
		return nil, err
	}

	out := make([]CurveSeries, len(cfg.Models))
	for mi, name := range cfg.Models {
		out[mi] = CurveSeries{Model: name, Points: make([]battery.CurvePoint, len(cfg.Currents))}
	}
	err = runner.RunStream(ctx, len(cfg.Currents), cfg.runnerOptions(), func(_ context.Context, ci int) ([]battery.CurvePoint, error) {
		current := cfg.Currents[ci]
		// Jobs run in parallel, so each builds its own instances; within the
		// job the whole model axis is one batch pass over the constant-load
		// profile.
		models := make([]battery.Model, len(factories))
		for mi, factory := range factories {
			models[mi] = factory()
		}
		p := profile.Constant(current, cfg.MaxHours*3600)
		rs, err := battery.SimulateBatch(models, p,
			battery.SimulateOptions{MaxTime: cfg.MaxHours * 3600, MaxStep: cfg.MaxStep})
		if err != nil {
			return nil, err
		}
		points := make([]battery.CurvePoint, len(rs))
		for mi, r := range rs {
			points[mi] = battery.CurvePoint{
				Current:         current,
				DeliveredMAh:    r.DeliveredMAh(),
				LifetimeMinutes: r.LifetimeMinutes(),
			}
		}
		return points, nil
	}, func(ci int, points []battery.CurvePoint) error {
		for mi, p := range points {
			out[mi].Points[ci] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Version:    ReportVersion,
		Experiment: "curve",
		Meta: map[string]string{
			"max_hours": formatFloat(cfg.MaxHours),
			"max_step":  formatFloat(cfg.MaxStep),
			"models":    strings.Join(cfg.Models, ","),
		},
	}
	// One row per (model, current) point; the single observation is stored as
	// an n=1 accumulator state so the curve shares the generic cell shape.
	point := func(v float64) Cell {
		var a stats.Accumulator
		a.Add(v)
		return Cell{State: a.State()}
	}
	for mi, s := range out {
		for _, p := range s.Points {
			current := formatFloat(p.Current)
			rep.Rows = append(rep.Rows, ReportRow{
				Key:    s.Model + "@" + current,
				Labels: map[string]string{"model": s.Model, "current": current, "model_index": strconv.Itoa(mi)},
				Cells: map[string]Cell{
					"delivered_mah": point(p.DeliveredMAh),
					"life_min":      point(p.LifetimeMinutes),
				},
			})
		}
	}
	return rep, nil
}

// curveSeriesFromReport reconstructs the per-model series from a Report.
func curveSeriesFromReport(r *Report) []CurveSeries {
	var out []CurveSeries
	last := ""
	for _, row := range r.Rows {
		if idx := row.Labels["model_index"]; len(out) == 0 || idx != last {
			out = append(out, CurveSeries{Model: row.Labels["model"]})
			last = idx
		}
		s := &out[len(out)-1]
		current, _ := strconv.ParseFloat(row.Labels["current"], 64)
		s.Points = append(s.Points, battery.CurvePoint{
			Current:         current,
			DeliveredMAh:    row.Cells["delivered_mah"].Mean,
			LifetimeMinutes: row.Cells["life_min"].Mean,
		})
	}
	return out
}

// RunLoadCapacityCurve sweeps constant loads for each requested battery model
// and returns the per-model series (see runLoadCapacityCurveReport; the
// registry path returns the Report directly).
func RunLoadCapacityCurve(ctx context.Context, cfg CurveConfig) ([]CurveSeries, error) {
	rep, err := runLoadCapacityCurveReport(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return curveSeriesFromReport(rep), nil
}
