package experiments

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"strings"

	"battsched/internal/stats"
)

// ErrDuplicateShard reports an Add of a shard index the merger has already
// folded. Callers distributing speculative duplicates (the federation
// coordinator re-dispatches straggler units, first completion wins) check for
// it and discard the late copy — shard partials are content-addressed and
// bit-exact, so the duplicate carries no new information.
var ErrDuplicateShard = errors.New("experiments: shard partial already merged")

// ReportMerger folds the shard partials of one experiment run into the
// complete run's Report one partial at a time, in any arrival order — the
// incremental counterpart of MergeReports for consumers that receive partials
// as they finish (the federation coordinator) rather than all at once.
//
// The result is arrival-order independent and matches MergeReports: cells
// whose partials all retain their samples re-fold them in absolute set order
// (bit-for-bit the single MergeReports call, and therefore the single-process
// run); sample-free cells (the scenario grid's chunk merges) combine Welford
// state as partials arrive, which reassociates the floating-point reduction —
// the same documented bound MergeReports carries for those cells.
//
// Construct with NewReportMerger, Add each partial, and call Report once
// Complete. The merger holds only the folded state plus the retained samples,
// not the partials themselves.
type ReportMerger struct {
	count    int
	seen     map[int]bool
	template *Report // meta + row structure from the first partial
	rows     []mergedRow
}

// mergedRow accumulates one report row across partials.
type mergedRow struct {
	cells  map[string]*mergedCell
	counts map[string]int
}

// mergedCell accumulates one metric cell. While exact, the sorted
// (set, sample) pairs of every partial so far are retained and the final fold
// happens in Report (ascending set order, bit-for-bit MergeReports); once any
// partial arrives sample-free the cell degrades to running Welford state.
type mergedCell struct {
	exact   bool
	sets    []int
	samples []float64
	acc     stats.Accumulator
}

// NewReportMerger returns a merger expecting the partials of a count-way
// sharded run (count >= 1; count 1 accepts the single 0/1-style partial of a
// degenerate split, though complete runs need no merger).
func NewReportMerger(count int) (*ReportMerger, error) {
	if count < 1 {
		return nil, fmt.Errorf("%w: report merger needs a positive shard count, got %d", ErrBadConfig, count)
	}
	return &ReportMerger{count: count, seen: make(map[int]bool)}, nil
}

// Seen reports whether the shard index has already been folded.
func (m *ReportMerger) Seen(index int) bool { return m.seen[index] }

// Added returns the number of distinct partials folded so far.
func (m *ReportMerger) Added() int { return len(m.seen) }

// Complete reports whether every shard 0..count-1 has been folded.
func (m *ReportMerger) Complete() bool { return len(m.seen) == m.count }

// Add folds one shard partial. A partial whose index was already folded
// returns ErrDuplicateShard and changes nothing; a partial that disagrees
// with the ones folded so far (experiment, shard count, meta, row structure)
// fails like MergeReports would.
func (m *ReportMerger) Add(p *Report) error {
	if err := m.validate(p); err != nil {
		return err
	}
	if m.template == nil {
		m.template = &Report{
			Version:    ReportVersion,
			Experiment: p.Experiment,
			Meta:       maps.Clone(p.Meta),
		}
		m.rows = make([]mergedRow, len(p.Rows))
		for ri, row := range p.Rows {
			m.template.Rows = append(m.template.Rows, ReportRow{Key: row.Key, Labels: maps.Clone(row.Labels)})
			cells := make(map[string]*mergedCell, len(row.Cells))
			for name := range row.Cells {
				cells[name] = &mergedCell{exact: true}
			}
			m.rows[ri] = mergedRow{cells: cells}
		}
	}
	for ri, row := range p.Rows {
		mr := &m.rows[ri]
		for name, n := range row.Counts {
			if mr.counts == nil {
				mr.counts = make(map[string]int)
			}
			mr.counts[name] += n
		}
		for name, c := range row.Cells {
			if err := mr.cells[name].add(c); err != nil {
				return fmt.Errorf("%s row %q cell %q: %w", p.Experiment, row.Key, name, err)
			}
		}
	}
	m.seen[p.Shard.Index] = true
	return nil
}

// validate checks one incoming partial against the merger's expectations and
// the partials folded so far, mirroring ValidateShardCoverage/MergeReports.
func (m *ReportMerger) validate(p *Report) error {
	if p == nil {
		return fmt.Errorf("experiments: nil report")
	}
	if p.Version != ReportVersion {
		return fmt.Errorf("experiments: report version %d, want %d", p.Version, ReportVersion)
	}
	if p.Shard == nil {
		return fmt.Errorf("experiments: %q report is not a shard partial (complete runs do not merge)", p.Experiment)
	}
	if p.Shard.Count != m.count {
		return fmt.Errorf("experiments: %q partial is shard %d/%d, want a %d-way split",
			p.Experiment, p.Shard.Index, p.Shard.Count, m.count)
	}
	if p.Shard.Index < 0 || p.Shard.Index >= m.count {
		return fmt.Errorf("experiments: %q has corrupt shard %d/%d", p.Experiment, p.Shard.Index, m.count)
	}
	if m.seen[p.Shard.Index] {
		return fmt.Errorf("%w: %q shard %d/%d", ErrDuplicateShard, p.Experiment, p.Shard.Index, m.count)
	}
	if m.template == nil {
		return nil
	}
	if p.Experiment != m.template.Experiment {
		return fmt.Errorf("experiments: cannot merge %q with %q", p.Experiment, m.template.Experiment)
	}
	if !maps.Equal(p.Meta, m.template.Meta) {
		return fmt.Errorf("experiments: %q shard %d was run with a different configuration (meta %v vs %v)",
			p.Experiment, p.Shard.Index, p.Meta, m.template.Meta)
	}
	if len(p.Rows) != len(m.template.Rows) {
		return fmt.Errorf("experiments: %q shard %d has %d rows, want %d",
			p.Experiment, p.Shard.Index, len(p.Rows), len(m.template.Rows))
	}
	for ri, row := range p.Rows {
		want := m.template.Rows[ri]
		if row.Key != want.Key || !maps.Equal(row.Labels, want.Labels) {
			return fmt.Errorf("experiments: %q row %d differs across shards (%q vs %q)",
				p.Experiment, ri, row.Key, want.Key)
		}
		for name := range m.rows[ri].cells {
			if _, ok := row.Cells[name]; !ok {
				return fmt.Errorf("experiments: %q row %q misses cell %q in shard %d",
					p.Experiment, row.Key, name, p.Shard.Index)
			}
		}
		for name := range row.Cells {
			if _, ok := m.rows[ri].cells[name]; !ok {
				return fmt.Errorf("experiments: %q row %q has unexpected cell %q in shard %d",
					p.Experiment, row.Key, name, p.Shard.Index)
			}
		}
	}
	return nil
}

// add folds one partial's cell.
func (c *mergedCell) add(p Cell) error {
	switch {
	case c.exact && p.replayable():
		// Merge-insert the partial's (set, sample) pairs, keeping the retained
		// run sorted by absolute set index. Partials retain samples in fold
		// order (ascending sets), so this is a linear two-way merge.
		merged := make([]int, 0, len(c.sets)+len(p.Sets))
		samples := make([]float64, 0, len(c.sets)+len(p.Sets))
		i, j := 0, 0
		for i < len(c.sets) || j < len(p.Sets) {
			switch {
			case j >= len(p.Sets) || (i < len(c.sets) && c.sets[i] < p.Sets[j]):
				merged = append(merged, c.sets[i])
				samples = append(samples, c.samples[i])
				i++
			case i >= len(c.sets) || p.Sets[j] < c.sets[i]:
				merged = append(merged, p.Sets[j])
				samples = append(samples, p.Samples[j])
				j++
			default:
				return fmt.Errorf("experiments: duplicate sample for set %d across shards", p.Sets[j])
			}
		}
		// Guard against an unsorted partial (never produced by the drivers).
		if !sort.IntsAreSorted(merged) {
			sort.Sort(&cellOrder{merged, samples})
		}
		c.sets, c.samples = merged, samples
	case c.exact:
		// A sample-free partial arrived: degrade to Welford state. The samples
		// folded so far collapse to their accumulator state first (ascending
		// set order), then every later partial merges state — within the
		// documented reassociation bound of MergeReports' state path.
		var acc stats.Accumulator
		for _, x := range c.samples {
			acc.Add(x)
		}
		acc.Merge(stats.FromState(p.State))
		c.acc = acc
		c.exact = false
		c.sets, c.samples = nil, nil
	default:
		c.acc.Merge(stats.FromState(p.State))
	}
	return nil
}

// cellOrder sorts parallel (sets, samples) slices by set index.
type cellOrder struct {
	sets    []int
	samples []float64
}

func (o *cellOrder) Len() int           { return len(o.sets) }
func (o *cellOrder) Less(i, j int) bool { return o.sets[i] < o.sets[j] }
func (o *cellOrder) Swap(i, j int) {
	o.sets[i], o.sets[j] = o.sets[j], o.sets[i]
	o.samples[i], o.samples[j] = o.samples[j], o.samples[i]
}

// Report returns the complete run's merged report. It fails with the missing
// shards named, like ValidateShardCoverage, while coverage is incomplete.
func (m *ReportMerger) Report() (*Report, error) {
	if !m.Complete() {
		var missing []string
		for i := 0; i < m.count; i++ {
			if !m.seen[i] {
				missing = append(missing, fmt.Sprintf("%d/%d", i, m.count))
			}
		}
		exp := "run"
		if m.template != nil {
			exp = fmt.Sprintf("%q", m.template.Experiment)
		}
		return nil, fmt.Errorf("experiments: %s shard coverage is incomplete: missing partial(s) %s",
			exp, strings.Join(missing, ", "))
	}
	out := &Report{
		Version:    ReportVersion,
		Experiment: m.template.Experiment,
		Meta:       maps.Clone(m.template.Meta),
		Rows:       make([]ReportRow, len(m.template.Rows)),
	}
	for ri, row := range m.template.Rows {
		or := ReportRow{
			Key:    row.Key,
			Labels: maps.Clone(row.Labels),
			Cells:  make(map[string]Cell, len(m.rows[ri].cells)),
		}
		if len(m.rows[ri].counts) > 0 {
			or.Counts = maps.Clone(m.rows[ri].counts)
		}
		for name, c := range m.rows[ri].cells {
			if c.exact {
				// The final fold over the sorted retained samples is exactly
				// MergeReports' exact path: a fresh accumulator fed in
				// ascending set order.
				acc := metricAcc{sets: make([]int, 0, len(c.sets)), samples: make([]float64, 0, len(c.samples))}
				for i, set := range c.sets {
					acc.Add(set, c.samples[i])
				}
				or.Cells[name] = acc.Cell()
			} else {
				or.Cells[name] = Cell{State: c.acc.State()}
			}
		}
		out.Rows[ri] = or
	}
	return out, nil
}
