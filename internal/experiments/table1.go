// Package experiments regenerates the tables and figures of the paper's
// evaluation section: Table 1 (ordering heuristics versus the optimal order
// on single task graphs), Figure 6 (ordering schemes versus a near-optimal
// baseline as the number of task graphs grows), Table 2 (charge delivered and
// battery lifetime of the five scheduling schemes), the load versus
// delivered-capacity battery characterisation curve, and a scenario-grid
// sweep (utilisation × battery model × scheme) beyond the paper. Every
// experiment is seeded and deterministic, has a "quick" variant used by the
// benchmark harness, and renders to plain-text tables via the Format*
// helpers.
//
// All experiments run on the internal/runner job-grid harness: the
// (set × scheme × sweep-point) grid is enumerated as independent jobs, each
// job owns a random stream derived from the experiment seed and its grid
// coordinates, and per-job results stream back in job order
// (runner.RunStream) and fold directly into stats.Accumulators — so results
// are byte-identical at any RunOptions.Parallel value and no driver holds
// its full result grid in memory. With RunOptions.TargetCI set, the
// stochastic sweeps adaptively run additional batches of task-graph sets
// until the Student-t CI95 half-width of their key metric is tight enough
// (relative to the mean), bounded by RunOptions.MaxSets.
//
// The package's public surface is the experiment registry: every driver
// registers a Definition under its name and is dispatched through Run with a
// declarative Spec, returning a structured Report — named rows of metric
// cells backed by serialisable accumulator state — from which FormatReport
// renders the historical plain-text tables byte-identically and which
// marshals to the versioned JSON artifact of cmd/experiments -o. Because set
// seeds key on absolute set indices, RunOptions.Shard partitions a run
// exactly across processes; MergeReports recombines the partial Reports
// (sample replay for the per-set drivers — bit-for-bit; Welford state
// combination for the scenario grid's chunk-merged cells — exact up to
// floating-point reassociation). The typed Run*/Format* pairs remain as
// convenience wrappers over the same aggregation.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"battsched/internal/optimal"
	"battsched/internal/priority"
	"battsched/internal/runner"
	"battsched/internal/tgff"
)

// Table1Config parameterises the Table 1 experiment: single DAGs with a
// common deadline, executed with the greedy speed-rescaling model; each
// ordering heuristic's energy is normalised by the exhaustive optimum.
type Table1Config struct {
	// TaskCounts are the node counts to sweep (the paper uses 5..15).
	TaskCounts []int
	// GraphsPerCount is the number of random DAGs averaged per node count.
	GraphsPerCount int
	// Utilization is the worst-case load of the DAG against its deadline
	// (work / (fmax*deadline)); the paper keeps system utilisation at 0.7.
	Utilization float64
	// ActualMin and ActualMax bound the uniform actual/WCET ratio (paper:
	// 0.2 and 1.0).
	ActualMin float64
	ActualMax float64
	// FMax is the maximum processor frequency in Hz.
	FMax float64
	// EdgeProbability is the probability of a precedence edge between
	// adjacent layers of the generated DAGs.
	EdgeProbability float64
	// MaxExpansions caps the exhaustive search per DAG (0 = default).
	MaxExpansions int
	// Seed makes the experiment reproducible.
	Seed int64
	// RunOptions tune the parallel execution of the (count × graph) grid.
	RunOptions
}

// DefaultTable1Config returns the paper's configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		TaskCounts:      []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		GraphsPerCount:  20,
		Utilization:     0.7,
		ActualMin:       0.2,
		ActualMax:       1.0,
		FMax:            1e9,
		EdgeProbability: 0.4,
		MaxExpansions:   2_000_000,
		Seed:            1,
	}
}

// QuickTable1Config returns a reduced configuration for fast benchmark runs.
func QuickTable1Config() Table1Config {
	c := DefaultTable1Config()
	c.TaskCounts = []int{5, 7, 9}
	c.GraphsPerCount = 5
	c.MaxExpansions = 200_000
	return c
}

// Table1Row is one row of Table 1: mean energy of each ordering policy
// normalised with respect to the exhaustive optimal schedule.
type Table1Row struct {
	Tasks   int
	Random  float64
	LTF     float64
	PUBS    float64
	Samples int
	// IncompleteSearches counts DAGs whose exhaustive search hit the
	// expansion budget (their best-found order still normalises the row).
	IncompleteSearches int
}

// ErrBadConfig is returned for invalid experiment configurations.
var ErrBadConfig = errors.New("experiments: invalid configuration")

// table1Sample is the result of one (task count, graph) job.
type table1Sample struct {
	random, ltf, pubs float64
	ok                bool
	incomplete        bool
}

// table1Job evaluates one (task count, graph index) cell.
func table1Job(cfg Table1Config, gen tgff.Config, n, s int) (table1Sample, error) {
	rng := runner.RNG(cfg.Seed, int64(n), int64(s))
	g, err := tgff.GenerateWithNodes(gen, fmt.Sprintf("t1-%d-%d", n, s), n, rng)
	if err != nil {
		return table1Sample{}, err
	}
	// Deadline chosen so the DAG's worst-case load is cfg.Utilization.
	deadline := g.TotalWCET() / (cfg.FMax * cfg.Utilization)
	actuals := make([]float64, n)
	for i := range actuals {
		frac := cfg.ActualMin + rng.Float64()*(cfg.ActualMax-cfg.ActualMin)
		actuals[i] = frac * g.Nodes[i].WCET
	}
	params := optimal.Params{Deadline: deadline, FMax: cfg.FMax, Actuals: actuals}

	var sample table1Sample
	opt, err := optimal.OptimalOrder(g, params, cfg.MaxExpansions)
	if err != nil {
		if !errors.Is(err, optimal.ErrSearchBudget) {
			return table1Sample{}, err
		}
		sample.incomplete = true
	}
	randEv, err := optimal.RandomOrder(g, params, rng)
	if err != nil {
		return table1Sample{}, err
	}
	ltfEv, err := optimal.GreedyOrder(g, priority.NewLTF(), params, nil, nil)
	if err != nil {
		return table1Sample{}, err
	}
	pubsEv, err := optimal.GreedyOrder(g, priority.NewPUBS(), params, actuals, nil)
	if err != nil {
		return table1Sample{}, err
	}
	// Guard against an incomplete search being beaten by a heuristic:
	// normalise by the best schedule seen.
	best := opt.Best.Energy
	for _, e := range []float64{randEv.Energy, ltfEv.Energy, pubsEv.Energy} {
		if e < best {
			best = e
		}
	}
	if best <= 0 {
		return sample, nil
	}
	sample.ok = true
	sample.random = randEv.Energy / best
	sample.ltf = ltfEv.Energy / best
	sample.pubs = pubsEv.Energy / best
	return sample, nil
}

// table1Acc accumulates one row of Table 1 from streamed samples.
type table1Acc struct {
	random, ltf, pubs metricAcc
	incomplete        int
}

func init() {
	mustRegister(Definition{
		Name:      "table1",
		Title:     "Table 1 — ordering heuristics vs the exhaustive optimal order on single DAGs",
		Paper:     "Table 1 (Section 3)",
		Shardable: true,
		Run: func(ctx context.Context, spec Spec) (*Report, error) {
			cfg := DefaultTable1Config()
			if spec.Quick {
				cfg = QuickTable1Config()
			}
			if spec.Seed != 0 {
				cfg.Seed = spec.Seed
			}
			if spec.Sets > 0 {
				cfg.GraphsPerCount = spec.Sets
			}
			if spec.Utilization > 0 {
				cfg.Utilization = spec.Utilization
			}
			cfg.RunOptions = spec.RunOptions
			return runTable1Report(ctx, cfg)
		},
	})
}

// runTable1Report regenerates Table 1. The (task count × graph) grid runs as
// independent jobs; each job derives its generator from (Seed, task count,
// graph index), so rows are identical at any parallelism. Samples stream
// back in job order and fold directly into per-row accumulators; with
// RunOptions.TargetCI set, additional batches of DAGs are generated per task
// count until the relative CI95 of every normalised-energy column (the key
// metric) converges or MaxSets DAGs per count were used.
func runTable1Report(ctx context.Context, cfg Table1Config) (*Report, error) {
	if len(cfg.TaskCounts) == 0 || cfg.GraphsPerCount <= 0 || cfg.FMax <= 0 ||
		cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	gen := tgff.DefaultConfig()
	gen.EdgeProbability = cfg.EdgeProbability

	accs := make([]table1Acc, len(cfg.TaskCounts))
	_, err := runAdaptiveSets(cfg.RunOptions, cfg.GraphsPerCount, func(lo, hi int) error {
		grid := runner.NewGrid(len(cfg.TaskCounts), hi-lo)
		return runner.RunStream(ctx, grid.Size(), cfg.runnerOptions(), func(_ context.Context, idx int) (table1Sample, error) {
			c := grid.Coords(idx)
			// The graph index is absolute (lo+c[1]), so a sample's random
			// stream does not depend on the batch layout.
			return table1Job(cfg, gen, cfg.TaskCounts[c[0]], lo+c[1])
		}, func(idx int, sample table1Sample) error {
			c := grid.Coords(idx)
			a := &accs[c[0]]
			if sample.incomplete {
				a.incomplete++
			}
			if sample.ok {
				graph := lo + c[1]
				a.random.Add(graph, sample.random)
				a.ltf.Add(graph, sample.ltf)
				a.pubs.Add(graph, sample.pubs)
			}
			return nil
		})
	}, func() bool {
		for i := range accs {
			if !converged(cfg.TargetCI, &accs[i].random.acc, &accs[i].ltf.acc, &accs[i].pubs.acc) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Version:    ReportVersion,
		Experiment: "table1",
		Meta: map[string]string{
			"seed":             strconv.FormatInt(cfg.Seed, 10),
			"graphs_per_count": strconv.Itoa(cfg.GraphsPerCount),
			"utilization":      formatFloat(cfg.Utilization),
			"edge_probability": formatFloat(cfg.EdgeProbability),
			"max_expansions":   strconv.Itoa(cfg.MaxExpansions),
			// Adaptive-stopping knobs: shards run with different settings
			// cover different sets and must refuse to merge.
			"target_ci": formatFloat(cfg.TargetCI),
			"max_sets":  strconv.Itoa(cfg.MaxSets),
		},
		Shard: shardInfo(cfg.Shard),
	}
	for ci, n := range cfg.TaskCounts {
		a := &accs[ci]
		row := ReportRow{
			Key: strconv.Itoa(n),
			Cells: map[string]Cell{
				"random": a.random.Cell(),
				"ltf":    a.ltf.Cell(),
				"pubs":   a.pubs.Cell(),
			},
		}
		if a.incomplete > 0 {
			row.Counts = map[string]int{"incomplete_searches": a.incomplete}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// table1RowsFromReport reconstructs the typed rows from a Report.
func table1RowsFromReport(r *Report) []Table1Row {
	rows := make([]Table1Row, 0, len(r.Rows))
	for _, row := range r.Rows {
		tasks, _ := strconv.Atoi(row.Key)
		rows = append(rows, Table1Row{
			Tasks:              tasks,
			Random:             row.Cells["random"].Mean,
			LTF:                row.Cells["ltf"].Mean,
			PUBS:               row.Cells["pubs"].Mean,
			Samples:            row.Cells["random"].N,
			IncompleteSearches: row.Counts["incomplete_searches"],
		})
	}
	return rows
}

// RunTable1 regenerates Table 1 and returns its typed rows (see
// runTable1Report; the registry path returns the Report directly).
func RunTable1(ctx context.Context, cfg Table1Config) ([]Table1Row, error) {
	rep, err := runTable1Report(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return table1RowsFromReport(rep), nil
}
