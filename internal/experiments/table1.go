// Package experiments regenerates the tables and figures of the paper's
// evaluation section: Table 1 (ordering heuristics versus the optimal order
// on single task graphs), Figure 6 (ordering schemes versus a near-optimal
// baseline as the number of task graphs grows), Table 2 (charge delivered and
// battery lifetime of the five scheduling schemes) and the load versus
// delivered-capacity battery characterisation curve. Every experiment is
// seeded and deterministic, has a "quick" variant used by the benchmark
// harness, and renders to plain-text tables via the Format* helpers.
package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"battsched/internal/optimal"
	"battsched/internal/priority"
	"battsched/internal/stats"
	"battsched/internal/tgff"
)

// Table1Config parameterises the Table 1 experiment: single DAGs with a
// common deadline, executed with the greedy speed-rescaling model; each
// ordering heuristic's energy is normalised by the exhaustive optimum.
type Table1Config struct {
	// TaskCounts are the node counts to sweep (the paper uses 5..15).
	TaskCounts []int
	// GraphsPerCount is the number of random DAGs averaged per node count.
	GraphsPerCount int
	// Utilization is the worst-case load of the DAG against its deadline
	// (work / (fmax*deadline)); the paper keeps system utilisation at 0.7.
	Utilization float64
	// ActualMin and ActualMax bound the uniform actual/WCET ratio (paper:
	// 0.2 and 1.0).
	ActualMin float64
	ActualMax float64
	// FMax is the maximum processor frequency in Hz.
	FMax float64
	// EdgeProbability is the probability of a precedence edge between
	// adjacent layers of the generated DAGs.
	EdgeProbability float64
	// MaxExpansions caps the exhaustive search per DAG (0 = default).
	MaxExpansions int
	// Seed makes the experiment reproducible.
	Seed int64
}

// DefaultTable1Config returns the paper's configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		TaskCounts:      []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		GraphsPerCount:  20,
		Utilization:     0.7,
		ActualMin:       0.2,
		ActualMax:       1.0,
		FMax:            1e9,
		EdgeProbability: 0.4,
		MaxExpansions:   2_000_000,
		Seed:            1,
	}
}

// QuickTable1Config returns a reduced configuration for fast benchmark runs.
func QuickTable1Config() Table1Config {
	c := DefaultTable1Config()
	c.TaskCounts = []int{5, 7, 9}
	c.GraphsPerCount = 5
	c.MaxExpansions = 200_000
	return c
}

// Table1Row is one row of Table 1: mean energy of each ordering policy
// normalised with respect to the exhaustive optimal schedule.
type Table1Row struct {
	Tasks   int
	Random  float64
	LTF     float64
	PUBS    float64
	Samples int
	// IncompleteSearches counts DAGs whose exhaustive search hit the
	// expansion budget (their best-found order still normalises the row).
	IncompleteSearches int
}

// ErrBadConfig is returned for invalid experiment configurations.
var ErrBadConfig = errors.New("experiments: invalid configuration")

// RunTable1 regenerates Table 1.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if len(cfg.TaskCounts) == 0 || cfg.GraphsPerCount <= 0 || cfg.FMax <= 0 ||
		cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := tgff.DefaultConfig()
	gen.EdgeProbability = cfg.EdgeProbability
	rows := make([]Table1Row, 0, len(cfg.TaskCounts))

	for _, n := range cfg.TaskCounts {
		var randAcc, ltfAcc, pubsAcc stats.Accumulator
		incomplete := 0
		for s := 0; s < cfg.GraphsPerCount; s++ {
			g, err := tgff.GenerateWithNodes(gen, fmt.Sprintf("t1-%d-%d", n, s), n, rng)
			if err != nil {
				return nil, err
			}
			// Deadline chosen so the DAG's worst-case load is cfg.Utilization.
			deadline := g.TotalWCET() / (cfg.FMax * cfg.Utilization)
			actuals := make([]float64, n)
			for i := range actuals {
				frac := cfg.ActualMin + rng.Float64()*(cfg.ActualMax-cfg.ActualMin)
				actuals[i] = frac * g.Nodes[i].WCET
			}
			params := optimal.Params{Deadline: deadline, FMax: cfg.FMax, Actuals: actuals}

			opt, err := optimal.OptimalOrder(g, params, cfg.MaxExpansions)
			if err != nil {
				if !errors.Is(err, optimal.ErrSearchBudget) {
					return nil, err
				}
				incomplete++
			}
			randEv, err := optimal.RandomOrder(g, params, rng)
			if err != nil {
				return nil, err
			}
			ltfEv, err := optimal.GreedyOrder(g, priority.NewLTF(), params, nil, nil)
			if err != nil {
				return nil, err
			}
			pubsEv, err := optimal.GreedyOrder(g, priority.NewPUBS(), params, actuals, nil)
			if err != nil {
				return nil, err
			}
			// Guard against an incomplete search being beaten by a heuristic:
			// normalise by the best schedule seen.
			best := opt.Best.Energy
			for _, e := range []float64{randEv.Energy, ltfEv.Energy, pubsEv.Energy} {
				if e < best {
					best = e
				}
			}
			if best <= 0 {
				continue
			}
			randAcc.Add(randEv.Energy / best)
			ltfAcc.Add(ltfEv.Energy / best)
			pubsAcc.Add(pubsEv.Energy / best)
		}
		rows = append(rows, Table1Row{
			Tasks:              n,
			Random:             randAcc.Mean(),
			LTF:                ltfAcc.Mean(),
			PUBS:               pubsAcc.Mean(),
			Samples:            randAcc.N(),
			IncompleteSearches: incomplete,
		})
	}
	return rows, nil
}
