// Package experiments regenerates the tables and figures of the paper's
// evaluation section: Table 1 (ordering heuristics versus the optimal order
// on single task graphs), Figure 6 (ordering schemes versus a near-optimal
// baseline as the number of task graphs grows), Table 2 (charge delivered and
// battery lifetime of the five scheduling schemes), the load versus
// delivered-capacity battery characterisation curve, and a scenario-grid
// sweep (utilisation × battery model × scheme) beyond the paper. Every
// experiment is seeded and deterministic, has a "quick" variant used by the
// benchmark harness, and renders to plain-text tables via the Format*
// helpers.
//
// All experiments run on the internal/runner job-grid harness: the
// (set × scheme × sweep-point) grid is enumerated as independent jobs, each
// job owns a random stream derived from the experiment seed and its grid
// coordinates, and per-job results stream back in job order
// (runner.RunStream) and fold directly into stats.Accumulators — so results
// are byte-identical at any RunOptions.Parallel value and no driver holds
// its full result grid in memory. With RunOptions.TargetCI set, the
// stochastic sweeps adaptively run additional batches of task-graph sets
// until the Student-t CI95 half-width of their key metric is tight enough
// (relative to the mean), bounded by RunOptions.MaxSets.
package experiments

import (
	"context"
	"errors"
	"fmt"

	"battsched/internal/optimal"
	"battsched/internal/priority"
	"battsched/internal/runner"
	"battsched/internal/stats"
	"battsched/internal/tgff"
)

// Table1Config parameterises the Table 1 experiment: single DAGs with a
// common deadline, executed with the greedy speed-rescaling model; each
// ordering heuristic's energy is normalised by the exhaustive optimum.
type Table1Config struct {
	// TaskCounts are the node counts to sweep (the paper uses 5..15).
	TaskCounts []int
	// GraphsPerCount is the number of random DAGs averaged per node count.
	GraphsPerCount int
	// Utilization is the worst-case load of the DAG against its deadline
	// (work / (fmax*deadline)); the paper keeps system utilisation at 0.7.
	Utilization float64
	// ActualMin and ActualMax bound the uniform actual/WCET ratio (paper:
	// 0.2 and 1.0).
	ActualMin float64
	ActualMax float64
	// FMax is the maximum processor frequency in Hz.
	FMax float64
	// EdgeProbability is the probability of a precedence edge between
	// adjacent layers of the generated DAGs.
	EdgeProbability float64
	// MaxExpansions caps the exhaustive search per DAG (0 = default).
	MaxExpansions int
	// Seed makes the experiment reproducible.
	Seed int64
	// RunOptions tune the parallel execution of the (count × graph) grid.
	RunOptions
}

// DefaultTable1Config returns the paper's configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		TaskCounts:      []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		GraphsPerCount:  20,
		Utilization:     0.7,
		ActualMin:       0.2,
		ActualMax:       1.0,
		FMax:            1e9,
		EdgeProbability: 0.4,
		MaxExpansions:   2_000_000,
		Seed:            1,
	}
}

// QuickTable1Config returns a reduced configuration for fast benchmark runs.
func QuickTable1Config() Table1Config {
	c := DefaultTable1Config()
	c.TaskCounts = []int{5, 7, 9}
	c.GraphsPerCount = 5
	c.MaxExpansions = 200_000
	return c
}

// Table1Row is one row of Table 1: mean energy of each ordering policy
// normalised with respect to the exhaustive optimal schedule.
type Table1Row struct {
	Tasks   int
	Random  float64
	LTF     float64
	PUBS    float64
	Samples int
	// IncompleteSearches counts DAGs whose exhaustive search hit the
	// expansion budget (their best-found order still normalises the row).
	IncompleteSearches int
}

// ErrBadConfig is returned for invalid experiment configurations.
var ErrBadConfig = errors.New("experiments: invalid configuration")

// table1Sample is the result of one (task count, graph) job.
type table1Sample struct {
	random, ltf, pubs float64
	ok                bool
	incomplete        bool
}

// table1Job evaluates one (task count, graph index) cell.
func table1Job(cfg Table1Config, gen tgff.Config, n, s int) (table1Sample, error) {
	rng := runner.RNG(cfg.Seed, int64(n), int64(s))
	g, err := tgff.GenerateWithNodes(gen, fmt.Sprintf("t1-%d-%d", n, s), n, rng)
	if err != nil {
		return table1Sample{}, err
	}
	// Deadline chosen so the DAG's worst-case load is cfg.Utilization.
	deadline := g.TotalWCET() / (cfg.FMax * cfg.Utilization)
	actuals := make([]float64, n)
	for i := range actuals {
		frac := cfg.ActualMin + rng.Float64()*(cfg.ActualMax-cfg.ActualMin)
		actuals[i] = frac * g.Nodes[i].WCET
	}
	params := optimal.Params{Deadline: deadline, FMax: cfg.FMax, Actuals: actuals}

	var sample table1Sample
	opt, err := optimal.OptimalOrder(g, params, cfg.MaxExpansions)
	if err != nil {
		if !errors.Is(err, optimal.ErrSearchBudget) {
			return table1Sample{}, err
		}
		sample.incomplete = true
	}
	randEv, err := optimal.RandomOrder(g, params, rng)
	if err != nil {
		return table1Sample{}, err
	}
	ltfEv, err := optimal.GreedyOrder(g, priority.NewLTF(), params, nil, nil)
	if err != nil {
		return table1Sample{}, err
	}
	pubsEv, err := optimal.GreedyOrder(g, priority.NewPUBS(), params, actuals, nil)
	if err != nil {
		return table1Sample{}, err
	}
	// Guard against an incomplete search being beaten by a heuristic:
	// normalise by the best schedule seen.
	best := opt.Best.Energy
	for _, e := range []float64{randEv.Energy, ltfEv.Energy, pubsEv.Energy} {
		if e < best {
			best = e
		}
	}
	if best <= 0 {
		return sample, nil
	}
	sample.ok = true
	sample.random = randEv.Energy / best
	sample.ltf = ltfEv.Energy / best
	sample.pubs = pubsEv.Energy / best
	return sample, nil
}

// table1Acc accumulates one row of Table 1 from streamed samples.
type table1Acc struct {
	random, ltf, pubs stats.Accumulator
	incomplete        int
}

// RunTable1 regenerates Table 1. The (task count × graph) grid runs as
// independent jobs; each job derives its generator from (Seed, task count,
// graph index), so rows are identical at any parallelism. Samples stream
// back in job order and fold directly into per-row accumulators; with
// RunOptions.TargetCI set, additional batches of DAGs are generated per task
// count until the relative CI95 of every normalised-energy column (the key
// metric) converges or MaxSets DAGs per count were used.
func RunTable1(ctx context.Context, cfg Table1Config) ([]Table1Row, error) {
	if len(cfg.TaskCounts) == 0 || cfg.GraphsPerCount <= 0 || cfg.FMax <= 0 ||
		cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	gen := tgff.DefaultConfig()
	gen.EdgeProbability = cfg.EdgeProbability

	accs := make([]table1Acc, len(cfg.TaskCounts))
	_, err := runAdaptiveSets(cfg.RunOptions, cfg.GraphsPerCount, func(lo, hi int) error {
		grid := runner.NewGrid(len(cfg.TaskCounts), hi-lo)
		return runner.RunStream(ctx, grid.Size(), cfg.runnerOptions(), func(_ context.Context, idx int) (table1Sample, error) {
			c := grid.Coords(idx)
			// The graph index is absolute (lo+c[1]), so a sample's random
			// stream does not depend on the batch layout.
			return table1Job(cfg, gen, cfg.TaskCounts[c[0]], lo+c[1])
		}, func(idx int, sample table1Sample) error {
			a := &accs[grid.Coords(idx)[0]]
			if sample.incomplete {
				a.incomplete++
			}
			if sample.ok {
				a.random.Add(sample.random)
				a.ltf.Add(sample.ltf)
				a.pubs.Add(sample.pubs)
			}
			return nil
		})
	}, func() bool {
		for i := range accs {
			if !converged(cfg.TargetCI, &accs[i].random, &accs[i].ltf, &accs[i].pubs) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	rows := make([]Table1Row, 0, len(cfg.TaskCounts))
	for ci, n := range cfg.TaskCounts {
		a := &accs[ci]
		rows = append(rows, Table1Row{
			Tasks:              n,
			Random:             a.random.Mean(),
			LTF:                a.ltf.Mean(),
			PUBS:               a.pubs.Mean(),
			Samples:            a.random.N(),
			IncompleteSearches: a.incomplete,
		})
	}
	return rows, nil
}
