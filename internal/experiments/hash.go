package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// ResultsVersion identifies the numeric behaviour of the experiment drivers
// and the simulation stack beneath them. Bump it whenever a change alters any
// driver's report bytes for an unchanged Spec — i.e. whenever golden outputs
// are regenerated (as PR 3's analytic battery fast path did, and PR 6's
// stochastic fast path: closed-form geometric-recovery sums replace the
// iterated 1 s expected-value recursion, shifting stochastic results by
// ~1e-12 relative) — so that artifacts a persistent daemon cache stored under
// the old behaviour stop matching new submissions instead of being served
// stale. Schema-only changes are covered separately by ReportVersion.
const ResultsVersion = 2

// CanonicalSpec returns the canonical, stable field-ordered encoding of one
// (experiment, Spec) pair: a fixed sequence of key=value lines covering
// exactly the inputs that determine the experiment's Report bytes. Two
// submissions with equal canonical encodings compute byte-identical complete
// reports, which is what makes the encoding (through SpecHash) usable as a
// content-address for cached report artifacts.
//
// Execution-only knobs are excluded on purpose: Parallel and Progress never
// change the output (every driver is byte-identical at any worker count), and
// Shard selects a slice of the run rather than a different run — the hash
// identifies the complete (merged) result, so a sharded and an unsharded
// submission of the same spec share one address. Default-equivalent values
// are normalised where the drivers define them: Seed 0 encodes as the default
// seed 1, and MaxSets encodes as 0 when TargetCI is unset (adaptive stopping
// disabled makes the cap inert). The encoding also pins ReportVersion (the
// artifact schema) and ResultsVersion (the numeric behaviour), so a schema
// bump or a golden-changing code change invalidates every previously cached
// artifact.
//
// The normalisation is deliberately conservative: distinct encodings may
// still compute identical reports (Utilization 0 selects each driver's
// default, for example), which costs a cache miss, never a wrong hit.
func CanonicalSpec(experiment string, spec Spec) string {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	maxSets := spec.MaxSets
	if spec.TargetCI <= 0 {
		maxSets = 0
	}
	var b strings.Builder
	fmt.Fprintf(&b, "report_version=%d\n", ReportVersion)
	fmt.Fprintf(&b, "results_version=%d\n", ResultsVersion)
	fmt.Fprintf(&b, "experiment=%q\n", experiment)
	fmt.Fprintf(&b, "quick=%t\n", spec.Quick)
	fmt.Fprintf(&b, "seed=%d\n", seed)
	fmt.Fprintf(&b, "sets=%d\n", spec.Sets)
	fmt.Fprintf(&b, "utilization=%s\n", formatFloat(spec.Utilization))
	fmt.Fprintf(&b, "battery=%q\n", spec.Battery)
	fmt.Fprintf(&b, "oracle=%t\n", spec.Oracle)
	fmt.Fprintf(&b, "ccedf=%t\n", spec.CCEDF)
	fmt.Fprintf(&b, "maxstep=%s\n", formatFloat(spec.MaxStep))
	fmt.Fprintf(&b, "target_ci=%s\n", formatFloat(spec.TargetCI))
	fmt.Fprintf(&b, "max_sets=%s\n", strconv.Itoa(maxSets))
	return b.String()
}

// SpecHash returns the hex-encoded SHA-256 of CanonicalSpec(experiment, spec):
// the deterministic content address of the complete run's report artifact.
// See CanonicalSpec for exactly which fields participate and how defaults are
// normalised.
func SpecHash(experiment string, spec Spec) string {
	sum := sha256.Sum256([]byte(CanonicalSpec(experiment, spec)))
	return hex.EncodeToString(sum[:])
}

// ShardSpecHash returns the content address of one shard partial of the run:
// the canonical encoding extended with the shard line, hashed. Shard partials
// are bit-exact functions of (spec, shard) — the set-index partition is
// deterministic — so the address is safe to cache and deduplicate against: a
// speculatively re-dispatched unit recomputes the identical partial bytes.
// A disabled shard returns SpecHash (the complete run's address).
func ShardSpecHash(experiment string, spec Spec, shard Shard) string {
	if !shard.Enabled() {
		return SpecHash(experiment, spec)
	}
	enc := CanonicalSpec(experiment, spec) + fmt.Sprintf("shard=%d/%d\n", shard.Index, shard.Count)
	sum := sha256.Sum256([]byte(enc))
	return hex.EncodeToString(sum[:])
}
