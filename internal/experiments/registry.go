package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is the uniform declarative input of every registered experiment: one
// struct in, one Report out, for all six drivers. Zero values select each
// driver's defaults, so Spec{} runs the paper configuration and Spec{Quick:
// true} the reduced benchmark one. cmd/experiments builds a Spec from its
// flags and dispatches through Run; custom sweeps can do the same via the
// battsched facade.
type Spec struct {
	// Quick selects the reduced (benchmark) configuration.
	Quick bool
	// Seed overrides the experiment seed; 0 keeps the default (1).
	Seed int64
	// Sets overrides the per-row set/graph count of the stochastic
	// experiments (Table 2 sets, Table 1 DAGs per count, Figure 6 sets per
	// point, ablation sets, grid sets per cell); 0 keeps the default.
	Sets int
	// Utilization overrides the worst-case utilisation where the driver has
	// a single utilisation knob; 0 keeps the default. The scenario grid
	// sweeps a list of utilisations and ignores it.
	Utilization float64
	// Battery selects the battery model by registry name for the drivers
	// that evaluate batteries (Table 2, the scenario grid, the curve); ""
	// keeps each driver's default. Unknown names fail with the registry
	// error listing the valid names.
	Battery string
	// Oracle feeds pUBS the true actual requirements (Table 2, grid).
	Oracle bool
	// CCEDF selects ccEDF instead of laEDF for Figure 6 frequency setting.
	CCEDF bool
	// MaxStep forces the uniform-stepping battery simulation path with this
	// substep for the curve; 0 selects the analytic fast path.
	MaxStep float64
	// RunOptions tune parallelism, progress, adaptive stopping and sharding.
	RunOptions
}

// Definition describes one registered experiment.
type Definition struct {
	// Name is the registry key ("table1", "figure6", "table2", "curve",
	// "ablation", "grid").
	Name string
	// Title is a one-line summary shown by the CLI's list command.
	Title string
	// Paper records the experiment's provenance in the source paper.
	Paper string
	// Shardable reports whether the experiment averages over stochastic
	// task-graph sets and therefore supports -shard (the deterministic curve
	// does not).
	Shardable bool
	// Run executes the experiment.
	Run func(ctx context.Context, spec Spec) (*Report, error)
}

var registry = map[string]Definition{}

// mustRegister adds an experiment definition; drivers call it from init.
func mustRegister(d Definition) {
	if d.Name == "" || d.Run == nil {
		panic(fmt.Sprintf("experiments: invalid registration %+v", d))
	}
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("experiments: Register(%q) called twice", d.Name))
	}
	registry[d.Name] = d
}

// Names returns the registered experiment names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PaperExperiments returns the names of the paper's own evaluation artifacts
// in the paper's order — what "run all" and the legacy -all flag expand to.
func PaperExperiments() []string { return []string{"table1", "figure6", "table2", "curve"} }

// Lookup resolves an experiment name; unknown names return an error listing
// the registered names.
func Lookup(name string) (Definition, error) {
	d, ok := registry[name]
	if !ok {
		return Definition{}, fmt.Errorf("%w: unknown experiment %q (registered: %s)",
			ErrBadConfig, name, strings.Join(Names(), ", "))
	}
	return d, nil
}

// Run executes the named experiment with the given spec and returns its
// Report — the single entry point the CLI and the battsched facade dispatch
// through.
func Run(ctx context.Context, name string, spec Spec) (*Report, error) {
	d, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := spec.Shard.validate(); err != nil {
		return nil, err
	}
	if spec.Shard.Enabled() && !d.Shardable {
		return nil, fmt.Errorf("%w: experiment %q is deterministic and does not shard", ErrBadConfig, name)
	}
	return d.Run(ctx, spec)
}

// formatFloat renders a float for Meta, labels and keys with the shortest
// representation that parses back to the identical bits.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// metaFloat parses a float Meta entry written by formatFloat.
func metaFloat(meta map[string]string, key string) float64 {
	v, _ := strconv.ParseFloat(meta[key], 64)
	return v
}

// metaInt parses an integer Meta entry.
func metaInt(meta map[string]string, key string) int {
	v, _ := strconv.Atoi(meta[key])
	return v
}

// shardInfo converts a Shard into the Report field (nil when unsharded).
func shardInfo(s Shard) *ShardInfo {
	if !s.Enabled() {
		return nil
	}
	return &ShardInfo{Index: s.Index, Count: s.Count}
}
