package experiments

import (
	"fmt"
	"strings"
	"time"
)

// FormatReport renders a Report as the experiment's plain-text table. The
// output is byte-identical to the historical Format* helpers: the report
// carries the full accumulator state and row labels, so the typed rows are
// reconstructed and formatted by the same code path.
func FormatReport(r *Report) (string, error) {
	switch r.Experiment {
	case "table1":
		return FormatTable1(table1RowsFromReport(r)), nil
	case "figure6":
		return FormatFigure6(figure6RowsFromReport(r)), nil
	case "table2":
		return FormatTable2(table2RowsFromReport(r), r.Meta["battery"], metaFloat(r.Meta, "utilization")), nil
	case "curve":
		return FormatCurve(curveSeriesFromReport(r)), nil
	case "ablation":
		return FormatEstimateAblation(estimateAblationRowsFromReport(r)), nil
	case "grid":
		return FormatScenarioGrid(scenarioGridRowsFromReport(r)), nil
	}
	return "", fmt.Errorf("%w: no renderer for experiment %q", ErrBadConfig, r.Experiment)
}

// Footer renders the per-experiment summary line cmd/experiments prints after
// each table (sample counts and wall-clock time), reproducing the historical
// output byte-for-byte. Unknown experiments get a generic timing line.
func Footer(r *Report, elapsed time.Duration) string {
	secs := elapsed.Seconds()
	n := func(cell string) int {
		if len(r.Rows) == 0 {
			return 0
		}
		return r.Rows[0].Cells[cell].N
	}
	switch r.Experiment {
	case "table1":
		return fmt.Sprintf("(%d DAGs per row, %.1fs)\n\n", n("random"), secs)
	case "figure6":
		return fmt.Sprintf("(%d sets per point, %s frequency setting, utilisation %.2f, %.1fs)\n\n",
			n("random"), r.Meta["alg"], metaFloat(r.Meta, "utilization"), secs)
	case "table2":
		return fmt.Sprintf("(%d task-graph sets, %.1fs)\n\n", n("charge_mah"), secs)
	case "curve":
		return fmt.Sprintf("(%.1fs)\n", secs)
	case "ablation":
		return fmt.Sprintf("(%d sets, %.1fs)\n", n("energy_vs_random"), secs)
	case "grid":
		return fmt.Sprintf("(%d sets per cell, %.1fs)\n", n("charge_mah"), secs)
	}
	return fmt.Sprintf("(%.1fs)\n", secs)
}

// FormatTable1 renders Table 1 rows as a plain-text table matching the
// paper's layout (energy normalised with respect to the optimal schedule).
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: energy consumption normalised w.r.t. the optimal schedule")
	fmt.Fprintln(&b, "# of tasks |  Random  |   LTF    |   pUBS   | samples")
	fmt.Fprintln(&b, "-----------+----------+----------+----------+--------")
	for _, r := range rows {
		note := ""
		if r.IncompleteSearches > 0 {
			note = fmt.Sprintf("  (%d incomplete searches)", r.IncompleteSearches)
		}
		fmt.Fprintf(&b, "%10d | %8.2f | %8.2f | %8.2f | %6d%s\n",
			r.Tasks, r.Random, r.LTF, r.PUBS, r.Samples, note)
	}
	return b.String()
}

// FormatFigure6 renders Figure 6 rows as a plain-text series table (energy
// normalised with respect to the precedence-free near-optimal schedule).
func FormatFigure6(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 6: energy of ordering schemes normalised w.r.t. near-optimal")
	fmt.Fprintln(&b, "# graphs |  Random  |   LTF    | pUBS(imminent) | pUBS(all released) | samples")
	fmt.Fprintln(&b, "---------+----------+----------+----------------+--------------------+--------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d | %8.3f | %8.3f | %14.3f | %18.3f | %6d\n",
			r.Graphs, r.Random, r.LTF, r.PUBSImminent, r.PUBSAllReleased, r.Samples)
	}
	return b.String()
}

// FormatTable2 renders Table 2 rows as a plain-text table matching the
// paper's layout.
func FormatTable2(rows []Table2Row, batteryName string, utilization float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: scheduling schemes at %.0f%% utilisation (battery model: %s)\n", utilization*100, batteryName)
	fmt.Fprintln(&b, "Scheme            | DVS Algo | Priority | Ready list    | Charge (mAh) | Life (min) | Energy/hp (J) | Avg I (A)")
	fmt.Fprintln(&b, "------------------+----------+----------+---------------+--------------+------------+---------------+----------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-17s | %-8s | %-8s | %-13s | %12.0f | %10.1f | %13.3f | %8.3f\n",
			r.Scheme, r.DVS, r.Priority, r.ReadyList, r.ChargeDeliveredMAh, r.BatteryLifeMin, r.EnergyPerHyperperiodJ, r.AverageCurrentA)
	}
	return b.String()
}

// FormatCurve renders the load versus delivered-capacity curves as a
// plain-text table with one column per battery model.
func FormatCurve(series []CurveSeries) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Load vs delivered capacity (mAh)")
	header := "current (A)"
	for _, s := range series {
		header += fmt.Sprintf(" | %12s", s.Model)
	}
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, strings.Repeat("-", len(header)))
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		line := fmt.Sprintf("%11.3f", series[0].Points[i].Current)
		for _, s := range series {
			if i < len(s.Points) {
				line += fmt.Sprintf(" | %12.0f", s.Points[i].DeliveredMAh)
			} else {
				line += fmt.Sprintf(" | %12s", "-")
			}
		}
		fmt.Fprintln(&b, line)
	}
	return b.String()
}
