package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"battsched/internal/battery"
	"battsched/internal/core"
	"battsched/internal/runner"
	"battsched/internal/stats"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// ScenarioGridConfig parameterises the scenario-grid sweep: the cross product
// of utilisations × battery models × scheduling schemes, each cell averaged
// over Sets random task-graph sets. It generalises Table 2 (which is the
// single cell utilisation 0.7 × stochastic × all schemes) into the entry
// point new workloads plug into.
type ScenarioGridConfig struct {
	// Utilizations are the worst-case utilisation points to sweep.
	Utilizations []float64
	// Batteries are the battery model names to sweep (NamedBatteryFactory
	// names); empty selects the paper's stochastic model only.
	Batteries []string
	// Schemes are the scheme names to sweep (a subset of the paper's Table 2
	// scheme names); empty selects all five.
	Schemes []string
	// Sets is the number of random task-graph sets averaged per cell.
	Sets int
	// SetsPerJob chunks the sets of one cell into jobs: each job simulates a
	// chunk sequentially and returns mergeable accumulators (0 selects a
	// default chunk size). For a fixed SetsPerJob results are byte-identical
	// at any Parallel value; changing SetsPerJob reassociates the
	// floating-point reduction and may shift results by rounding error only.
	SetsPerJob int
	// GraphsPerSet is the number of task graphs per set.
	GraphsPerSet int
	// Hyperperiods simulated per set.
	Hyperperiods int
	// MaxBatteryHours caps each battery lifetime simulation.
	MaxBatteryHours float64
	// OracleEstimates feeds pUBS the true actual requirements.
	OracleEstimates bool
	// Seed makes the sweep reproducible.
	Seed int64
	// RunOptions tune the parallel execution of the scenario grid.
	RunOptions
}

// DefaultScenarioGridConfig returns a moderate three-utilisation sweep over
// two battery models and all five schemes.
func DefaultScenarioGridConfig() ScenarioGridConfig {
	return ScenarioGridConfig{
		Utilizations:    []float64{0.5, 0.7, 0.9},
		Batteries:       []string{"stochastic", "kibam"},
		Sets:            10,
		GraphsPerSet:    5,
		Hyperperiods:    2,
		MaxBatteryHours: 72,
		Seed:            1,
	}
}

// QuickScenarioGridConfig returns a reduced sweep for tests and benchmarks.
func QuickScenarioGridConfig() ScenarioGridConfig {
	return ScenarioGridConfig{
		Utilizations:    []float64{0.7},
		Batteries:       []string{"kibam"},
		Schemes:         []string{"EDF", "BAS-2"},
		Sets:            3,
		GraphsPerSet:    3,
		Hyperperiods:    2,
		MaxBatteryHours: 72,
		Seed:            1,
	}
}

// ScenarioGridRow is one cell of the scenario grid.
type ScenarioGridRow struct {
	// Utilization, Battery and Scheme identify the cell.
	Utilization float64
	Battery     string
	Scheme      string
	// Charge and Life summarise delivered charge (mAh) and battery lifetime
	// (minutes) over the cell's task-graph sets.
	Charge stats.Summary
	Life   stats.Summary
	// DeadlineMisses is the total deadline misses across the cell's
	// simulations (always 0 for the paper's schemes at feasible utilisations;
	// reported instead of failing so exploratory sweeps can chart the edge).
	DeadlineMisses int
}

// scenarioPartial is the mergeable result of one set-chunk job:
// charge/lifetime accumulators indexed [scheme][battery] plus per-scheme
// deadline misses. Neither schemes nor battery models are a job dimension —
// the workload seed is scheme-independent (the comparability contract), so
// each job generates every task set once, runs all schemes on one reused
// engine replaying the recorded execution realisation, and evaluates every
// battery against each scheme's load profile.
type scenarioPartial struct {
	charge, life [][]stats.Accumulator // [si][bi]
	misses       []int                 // [si]
}

// schemesByName resolves scheme names against the paper's Table 2 schemes;
// empty names selects all of them.
func schemesByName(names []string) ([]table2Scheme, error) {
	all := paperSchemes()
	if len(names) == 0 {
		return all, nil
	}
	out := make([]table2Scheme, 0, len(names))
	for _, name := range names {
		found := false
		for _, s := range all {
			if s.name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, s := range all {
				known[i] = s.name
			}
			return nil, fmt.Errorf("%w: unknown scheme %q (known: %s)", ErrBadConfig, name, strings.Join(known, ", "))
		}
	}
	return out, nil
}

func init() {
	mustRegister(Definition{
		Name:      "grid",
		Title:     "Scenario grid — utilisation × battery model × scheme sweep (beyond the paper)",
		Paper:     "not in the paper (generalises Table 2 into the sweep new workloads plug into)",
		Shardable: true,
		Run: func(ctx context.Context, spec Spec) (*Report, error) {
			cfg := DefaultScenarioGridConfig()
			if spec.Quick {
				cfg = QuickScenarioGridConfig()
			}
			if spec.Seed != 0 {
				cfg.Seed = spec.Seed
			}
			if spec.Sets > 0 {
				cfg.Sets = spec.Sets
			}
			if spec.Battery != "" {
				cfg.Batteries = []string{spec.Battery}
			}
			cfg.OracleEstimates = spec.Oracle
			cfg.RunOptions = spec.RunOptions
			return runScenarioGridReport(ctx, cfg)
		},
	})
}

// runScenarioGridReport sweeps the (utilisation × battery × scheme) grid.
// Jobs are (utilisation × set-chunk) cells covering every scheme: a job
// generates each task set of its chunk once, runs all schemes on one reused
// engine (replaying the recorded execution realisation, which is
// scheme-independent), and evaluates every battery model against each
// scheme's load profile (the profile does not depend on the battery, so
// batteries share the scheduling work). Chunk partials stream back in job
// order and merge into per-cell accumulators (stats.Accumulator.Merge), so
// the sweep is deterministic at any parallelism and never materialises the
// full grid. With RunOptions.TargetCI set, additional batches of sets run
// until the relative CI95 of every cell's battery lifetime (the key metric)
// converges or MaxSets is reached.
//
// Within one utilisation point, every (battery, scheme) cell replays the same
// task-graph sets and actual execution requirements — the set seed depends
// only on (Seed, utilisation index, set) — so cells are directly comparable
// across schemes and battery models.
//
// Because the grid's cells are chunk merges rather than per-set folds, its
// Report cells carry accumulator state only: merging shard partials
// reassociates the Welford reduction and can shift means by a few ulps
// relative to the unsharded run (never visibly at the table's precision);
// the per-set drivers merge exactly instead.
func runScenarioGridReport(ctx context.Context, cfg ScenarioGridConfig) (*Report, error) {
	if len(cfg.Utilizations) == 0 || cfg.Sets <= 0 || cfg.GraphsPerSet <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	for _, u := range cfg.Utilizations {
		if u <= 0 || u > 1 {
			return nil, fmt.Errorf("%w: utilisation %v", ErrBadConfig, u)
		}
	}
	if cfg.Hyperperiods <= 0 {
		cfg.Hyperperiods = 1
	}
	if cfg.MaxBatteryHours <= 0 {
		cfg.MaxBatteryHours = 72
	}
	if cfg.SetsPerJob <= 0 {
		cfg.SetsPerJob = 4
	}
	if len(cfg.Batteries) == 0 {
		cfg.Batteries = []string{"stochastic"}
	}
	schemes, err := schemesByName(cfg.Schemes)
	if err != nil {
		return nil, err
	}
	factories, err := resolveBatteryFactories(cfg.Batteries)
	if err != nil {
		return nil, err
	}
	proc := defaultProcessor()

	// chunkJob simulates sets [setLo, setHi) of one utilisation point across
	// every scheme and returns mergeable accumulators. Each task set is
	// generated once; scheme 0 records the execution realisation (the draw
	// order is scheme-independent, see taskgraph.RecordedExecution) and the
	// remaining schemes replay it on the same reused engine, so the per-cell
	// numbers are bit-identical to scheduling each (scheme, set) from scratch
	// with the shared workload seed.
	chunkJob := func(ui, setLo, setHi int) (scenarioPartial, error) {
		util := cfg.Utilizations[ui]
		part := scenarioPartial{
			charge: make([][]stats.Accumulator, len(schemes)),
			life:   make([][]stats.Accumulator, len(schemes)),
			misses: make([]int, len(schemes)),
		}
		for si := range schemes {
			part.charge[si] = make([]stats.Accumulator, len(factories))
			part.life[si] = make([]stats.Accumulator, len(factories))
		}
		// One model instance per battery for the whole chunk: every
		// simulation Resets its models, so the instances are reused across
		// sets instead of reallocated per (set, battery) evaluation. The
		// engine, profile recorder and execution model are likewise reused
		// across every (set, scheme) run of the chunk.
		models := make([]battery.Model, len(factories))
		for bi, factory := range factories {
			models[bi] = factory()
		}
		eng := core.NewEngine()
		rec := core.NewProfileRecorder()
		uni := taskgraph.NewUniformExecution(0.2, 1.0, 0)
		exec := taskgraph.NewRecordedExecution(uni)
		for set := setLo; set < setHi; set++ {
			// The workload seed is shared by every (battery, scheme) cell of
			// this utilisation point so cells stay comparable.
			seed := runner.SeedFor(cfg.Seed, int64(ui), int64(set))
			sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), cfg.GraphsPerSet, util, proc.FMax(), runner.RNG(cfg.Seed, int64(ui), int64(set)))
			if err != nil {
				return scenarioPartial{}, err
			}
			uni.Reseed(seed)
			exec.Restart(uni)
			for si, scheme := range schemes {
				if si > 0 {
					exec.Replay()
				}
				rec.Reset()
				if err := eng.Reset(core.Config{
					System:          sys,
					Processor:       proc,
					DVS:             scheme.alg(),
					Priority:        scheme.prio(),
					ReadyPolicy:     scheme.policy,
					FrequencyMode:   core.DiscreteFrequency,
					OracleEstimates: cfg.OracleEstimates,
					Execution:       exec,
					Hyperperiods:    cfg.Hyperperiods,
					Seed:            seed,
					// The battery models need only the load profile; the trace
					// is never recorded.
					Observer: rec,
				}); err != nil {
					return scenarioPartial{}, err
				}
				res, err := eng.Run()
				if err != nil {
					return scenarioPartial{}, err
				}
				part.misses[si] += res.DeadlineMisses
				// The load profile is battery-independent; one batch pass over
				// it evaluates the whole battery axis (zero MaxStep selects
				// each model's analytic fast path) instead of re-scheduling —
				// or even re-replaying the profile — per model.
				brs, err := battery.SimulateBatch(models, res.Profile, battery.SimulateOptions{
					MaxTime: cfg.MaxBatteryHours * 3600,
				})
				if err != nil {
					return scenarioPartial{}, err
				}
				for bi, br := range brs {
					part.charge[si][bi].Add(br.DeliveredMAh())
					part.life[si][bi].Add(br.LifetimeMinutes())
				}
			}
		}
		return part, nil
	}

	// cellAgg folds the streamed chunk partials of one (utilisation, battery,
	// scheme) cell; chunks arrive in deterministic order, so the merges
	// reassociate identically at any parallelism.
	type cellAgg struct {
		charge, life stats.Accumulator
		misses       int
	}
	aggs := make([][][]cellAgg, len(cfg.Utilizations)) // [ui][si][bi]
	for ui := range aggs {
		aggs[ui] = make([][]cellAgg, len(schemes))
		for si := range aggs[ui] {
			aggs[ui][si] = make([]cellAgg, len(factories))
		}
	}

	_, err = runAdaptiveSets(cfg.RunOptions, cfg.Sets, func(lo, hi int) error {
		// Chunk boundaries are aligned to absolute set-index multiples of
		// SetsPerJob, not to the batch start, so the chunk layout — and
		// hence the Welford merge association — does not depend on how the
		// adaptive loop sliced the set range into batches. (A chunk that
		// straddles a batch boundary is still split; see SetsPerJob's doc
		// for the rounding-error-only consequence.)
		kLo, kHi := lo/cfg.SetsPerJob, (hi+cfg.SetsPerJob-1)/cfg.SetsPerJob
		if kLo == kHi {
			// An empty batch: a shard count larger than the set range leaves
			// some shards with no sets. Their partials carry empty cells and
			// merge as identity, matching the per-set drivers' behaviour.
			return nil
		}
		grid := runner.NewGrid(len(cfg.Utilizations), kHi-kLo)
		return runner.RunStream(ctx, grid.Size(), cfg.runnerOptions(), func(_ context.Context, idx int) (scenarioPartial, error) {
			c := grid.Coords(idx)
			setLo := max((kLo+c[1])*cfg.SetsPerJob, lo)
			setHi := min((kLo+c[1]+1)*cfg.SetsPerJob, hi)
			return chunkJob(c[0], setLo, setHi)
		}, func(idx int, part scenarioPartial) error {
			c := grid.Coords(idx)
			// Each cell still merges its chunks in ascending chunk order —
			// jobs carry the whole scheme axis now, but the per-cell merge
			// sequence (and hence the Welford association) is unchanged.
			for si := range schemes {
				for bi := range factories {
					a := &aggs[c[0]][si][bi]
					a.charge.Merge(part.charge[si][bi])
					a.life.Merge(part.life[si][bi])
					// The scheduling simulations are shared across batteries,
					// so every battery row of a (utilisation, scheme) cell
					// reports the misses of the same underlying runs.
					a.misses += part.misses[si]
				}
			}
			return nil
		})
	}, func() bool {
		for ui := range aggs {
			for si := range aggs[ui] {
				for bi := range aggs[ui][si] {
					if !converged(cfg.TargetCI, &aggs[ui][si][bi].life) {
						return false
					}
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Version:    ReportVersion,
		Experiment: "grid",
		Meta: map[string]string{
			"seed":           strconv.FormatInt(cfg.Seed, 10),
			"sets":           strconv.Itoa(cfg.Sets),
			"sets_per_job":   strconv.Itoa(cfg.SetsPerJob),
			"graphs_per_set": strconv.Itoa(cfg.GraphsPerSet),
			"hyperperiods":   strconv.Itoa(cfg.Hyperperiods),
			"utilizations":   joinFloats(cfg.Utilizations),
			"batteries":      strings.Join(cfg.Batteries, ","),
			"oracle":         strconv.FormatBool(cfg.OracleEstimates),
			// Adaptive-stopping knobs: shards run with different settings
			// cover different sets and must refuse to merge.
			"target_ci": formatFloat(cfg.TargetCI),
			"max_sets":  strconv.Itoa(cfg.MaxSets),
		},
		Shard: shardInfo(cfg.Shard),
	}
	for ui, util := range cfg.Utilizations {
		for bi, bat := range cfg.Batteries {
			for si, scheme := range schemes {
				a := &aggs[ui][si][bi]
				u := formatFloat(util)
				rep.Rows = append(rep.Rows, ReportRow{
					Key:    u + "|" + bat + "|" + scheme.name,
					Labels: map[string]string{"utilization": u, "battery": bat, "scheme": scheme.name},
					Cells: map[string]Cell{
						"charge_mah": stateCell(&a.charge),
						"life_min":   stateCell(&a.life),
					},
					Counts: map[string]int{"deadline_misses": a.misses},
				})
			}
		}
	}
	return rep, nil
}

// joinFloats renders a float list for Meta with exact round-trip formatting.
func joinFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = formatFloat(v)
	}
	return strings.Join(parts, ",")
}

// scenarioGridRowsFromReport reconstructs the typed rows from a Report.
func scenarioGridRowsFromReport(r *Report) []ScenarioGridRow {
	rows := make([]ScenarioGridRow, 0, len(r.Rows))
	for _, row := range r.Rows {
		util, _ := strconv.ParseFloat(row.Labels["utilization"], 64)
		charge := stats.FromState(row.Cells["charge_mah"].State)
		life := stats.FromState(row.Cells["life_min"].State)
		rows = append(rows, ScenarioGridRow{
			Utilization:    util,
			Battery:        row.Labels["battery"],
			Scheme:         row.Labels["scheme"],
			Charge:         charge.Summary(),
			Life:           life.Summary(),
			DeadlineMisses: row.Counts["deadline_misses"],
		})
	}
	return rows
}

// RunScenarioGrid sweeps the (utilisation × battery × scheme) grid and
// returns its typed rows (see runScenarioGridReport; the registry path
// returns the Report directly).
func RunScenarioGrid(ctx context.Context, cfg ScenarioGridConfig) ([]ScenarioGridRow, error) {
	rep, err := runScenarioGridReport(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return scenarioGridRowsFromReport(rep), nil
}

// FormatScenarioGrid renders the scenario-grid rows as a plain-text table.
func FormatScenarioGrid(rows []ScenarioGridRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Scenario grid: utilisation x battery model x scheme")
	fmt.Fprintln(&b, "Util | Battery    | Scheme            | Charge (mAh) ±CI95 | Life (min) ±CI95 | sets | misses")
	fmt.Fprintln(&b, "-----+------------+-------------------+--------------------+------------------+------+-------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4.2f | %-10s | %-17s | %12.0f ±%4.0f | %10.1f ±%4.1f | %4d | %6d\n",
			r.Utilization, r.Battery, r.Scheme, r.Charge.Mean, r.Charge.CI95, r.Life.Mean, r.Life.CI95, r.Charge.N, r.DeadlineMisses)
	}
	return b.String()
}
