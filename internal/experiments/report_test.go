package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestRegistryNamesAndLookup checks that all six drivers self-register and
// that unknown names fail with an error listing the registered names.
func TestRegistryNamesAndLookup(t *testing.T) {
	want := []string{"ablation", "curve", "figure6", "grid", "table1", "table2"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name || d.Title == "" || d.Paper == "" || d.Run == nil {
			t.Fatalf("incomplete definition %+v", d)
		}
	}
	_, err := Lookup("bogus")
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Lookup(bogus) err = %v", err)
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("lookup error %q does not list %q", err, name)
		}
	}
	for _, name := range PaperExperiments() {
		if _, err := Lookup(name); err != nil {
			t.Fatalf("paper experiment %q not registered: %v", name, err)
		}
	}
}

// TestRegistryRunMatchesLegacyFormat is the render byte-identity contract:
// for every experiment, Run(spec) + FormatReport emits exactly the bytes the
// historical Run*+Format* pairing emits (both paths share one aggregation, so
// this pins that the Report carries everything rendering needs).
func TestRegistryRunMatchesLegacyFormat(t *testing.T) {
	ctx := context.Background()
	spec := Spec{Quick: true, Battery: "kibam"}
	legacy := map[string]func() (string, error){
		"table1": func() (string, error) {
			rows, err := RunTable1(ctx, QuickTable1Config())
			return FormatTable1(rows), err
		},
		"figure6": func() (string, error) {
			rows, err := RunFigure6(ctx, QuickFigure6Config())
			return FormatFigure6(rows), err
		},
		"table2": func() (string, error) {
			cfg := QuickTable2Config()
			cfg.BatteryName = "kibam"
			rows, err := RunTable2(ctx, cfg)
			return FormatTable2(rows, cfg.BatteryName, cfg.Utilization), err
		},
		"curve": func() (string, error) {
			cfg := QuickCurveConfig()
			cfg.Models = []string{"kibam"}
			series, err := RunLoadCapacityCurve(ctx, cfg)
			return FormatCurve(series), err
		},
		"ablation": func() (string, error) {
			rows, err := RunEstimateAblation(ctx, QuickEstimateAblationConfig())
			return FormatEstimateAblation(rows), err
		},
		"grid": func() (string, error) {
			rows, err := RunScenarioGrid(ctx, QuickScenarioGridConfig())
			return FormatScenarioGrid(rows), err
		},
	}
	for _, name := range Names() {
		rep, err := Run(ctx, name, spec)
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if rep.Version != ReportVersion || rep.Experiment != name || len(rep.Rows) == 0 || rep.Shard != nil {
			t.Fatalf("Run(%s) report header = %+v", name, rep)
		}
		got, err := FormatReport(rep)
		if err != nil {
			t.Fatalf("FormatReport(%s): %v", name, err)
		}
		want, err := legacy[name]()
		if err != nil {
			t.Fatalf("legacy %s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: FormatReport differs from legacy formatting:\n--- report ---\n%s\n--- legacy ---\n%s", name, got, want)
		}
	}
	if _, err := FormatReport(&Report{Experiment: "bogus"}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("FormatReport(bogus) err = %v", err)
	}
}

// TestArtifactRoundTrip checks that a Report survives the JSON artifact
// bit-for-bit: every accumulator state, sample list, label and count.
func TestArtifactRoundTrip(t *testing.T) {
	ctx := context.Background()
	var reports []*Report
	for _, name := range []string{"table2", "grid"} {
		rep, err := Run(ctx, name, Spec{Quick: true, Battery: "kibam"})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, reports); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, reports) {
		t.Fatalf("artifact round-trip changed the reports:\n%+v\n%+v", back, reports)
	}
	if _, err := ReadArtifact(strings.NewReader(`{"version":99,"reports":[]}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := ReadArtifact(strings.NewReader(`{`)); err == nil {
		t.Fatal("expected decode error")
	}
}

// TestMergeReportsValidation covers the merge error paths: wrong shard
// counts, duplicate shards, unsharded inputs and configuration mismatches.
func TestMergeReportsValidation(t *testing.T) {
	ctx := context.Background()
	shard := func(i, n int, spec Spec) *Report {
		spec.Shard = Shard{Index: i, Count: n}
		rep, err := Run(ctx, "table2", spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	spec := Spec{Quick: true, Battery: "kibam"}
	s0, s1 := shard(0, 2, spec), shard(1, 2, spec)

	if _, err := MergeReports(nil); err == nil {
		t.Fatal("expected error for empty merge")
	}
	if _, err := MergeReports([]*Report{s0}); err == nil {
		t.Fatal("expected error for missing shard")
	}
	if _, err := MergeReports([]*Report{s0, s0}); err == nil {
		t.Fatal("expected error for duplicate shard")
	}
	full, err := Run(ctx, "table2", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeReports([]*Report{full, s1}); err == nil {
		t.Fatal("expected error for unsharded partial")
	}
	otherSeed := spec
	otherSeed.Seed = 99
	if _, err := MergeReports([]*Report{s0, shard(1, 2, otherSeed)}); err == nil {
		t.Fatal("expected error for configuration mismatch")
	}
	// Adaptive-stopping settings decide which sets a shard executes, so they
	// are part of the merge fingerprint too.
	otherCI := spec
	otherCI.TargetCI = 1000
	if _, err := MergeReports([]*Report{s0, shard(1, 2, otherCI)}); err == nil {
		t.Fatal("expected error for adaptive-stopping mismatch")
	}
	gridShard, err := Run(ctx, "grid", Spec{Quick: true, RunOptions: RunOptions{Shard: Shard{Index: 1, Count: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeReports([]*Report{s0, gridShard}); err == nil {
		t.Fatal("expected error for mixed experiments")
	}
	// Order independence: merging [s1, s0] equals merging [s0, s1].
	a, err := MergeReports([]*Report{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MergeReports([]*Report{s1, s0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("merge is order-dependent")
	}
}

// TestCurveDoesNotShard pins the deterministic curve's shard rejection.
func TestCurveDoesNotShard(t *testing.T) {
	_, err := Run(context.Background(), "curve", Spec{Quick: true, RunOptions: RunOptions{Shard: Shard{Index: 0, Count: 2}}})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if _, err := Run(context.Background(), "table2", Spec{Quick: true, RunOptions: RunOptions{Shard: Shard{Index: 5, Count: 2}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad shard err = %v", err)
	}
}
