package experiments

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestShardSliceAndParse pins the shard arithmetic: the Count slices of any
// range are an exact partition, and the CLI form parses symmetrically.
func TestShardSliceAndParse(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, size := range []int{0, 1, 3, 4, 7, 100} {
			covered := 0
			prevHi := 10 // range [10, 10+size)
			for i := 0; i < n; i++ {
				lo, hi := (Shard{Index: i, Count: n}).slice(10, 10+size)
				if lo != prevHi {
					t.Fatalf("shard %d/%d of %d sets: gap at %d (lo=%d)", i, n, size, prevHi, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != size || prevHi != 10+size {
				t.Fatalf("%d shards of %d sets cover %d", n, size, covered)
			}
		}
	}
	for s, want := range map[string]Shard{"": {}, "0/4": {0, 4}, "3/4": {3, 4}} {
		got, err := ParseShard(s)
		if err != nil || got != want {
			t.Fatalf("ParseShard(%q) = %+v, %v", s, got, err)
		}
	}
	for _, bad := range []string{"4/4", "-1/4", "x/4", "1/x", "1", "1/2/3"} {
		if _, err := ParseShard(bad); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("ParseShard(%q) err = %v, want ErrBadConfig", bad, err)
		}
	}
	if (Shard{1, 4}).String() != "1/4" || (Shard{}).String() != "" {
		t.Fatal("Shard.String mismatch")
	}
}

// runShards runs every shard of name and merges the partials.
func runShards(t *testing.T, name string, spec Spec, count int) *Report {
	t.Helper()
	parts := make([]*Report, count)
	for i := 0; i < count; i++ {
		s := spec
		s.Shard = Shard{Index: i, Count: count}
		rep, err := Run(context.Background(), name, s)
		if err != nil {
			t.Fatalf("%s shard %d/%d: %v", name, i, count, err)
		}
		if rep.Shard == nil || rep.Shard.Index != i || rep.Shard.Count != count {
			t.Fatalf("%s shard %d/%d: report shard = %+v", name, i, count, rep.Shard)
		}
		parts[i] = rep
	}
	merged, err := MergeReports(parts)
	if err != nil {
		t.Fatalf("%s merge: %v", name, err)
	}
	return merged
}

// formatted renders a report, failing the test on error.
func formatted(t *testing.T, r *Report) string {
	t.Helper()
	out, err := FormatReport(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTable2ShardMergeExact is the shard/merge exactness golden for the
// per-set drivers: sharding the quick Table 2 run two ways and merging the
// partials reproduces the unsharded report bit-for-bit — identical
// accumulator state, identical samples, byte-identical formatted table —
// because the per-set cells retain their samples and the merge replays them
// in absolute set order.
func TestTable2ShardMergeExact(t *testing.T) {
	spec := Spec{Quick: true, Battery: "kibam"}
	full, err := Run(context.Background(), "table2", spec)
	if err != nil {
		t.Fatal(err)
	}
	merged := runShards(t, "table2", spec, 2)
	if !reflect.DeepEqual(merged, full) {
		t.Fatalf("merged shards differ from unsharded run:\n%+v\n%+v", merged, full)
	}
	if formatted(t, merged) != formatted(t, full) {
		t.Fatal("formatted output differs")
	}
	// Uneven partitions (more shards than divide the set count evenly, and
	// more shards than sets) must still merge exactly.
	for _, n := range []int{3, 7} {
		if got := runShards(t, "table2", spec, n); !reflect.DeepEqual(got, full) {
			t.Fatalf("%d-way shard merge differs from unsharded run", n)
		}
	}
}

// TestTable2ShardMergeAdaptive covers shard/merge under -ci adaptive set
// counts: with an unattainable target capped by MaxSets, the unsharded run
// and every shard execute the same absolute batch grid to the cap, so the
// merge again reproduces the unsharded adaptive run bit-for-bit. (Each
// shard's slices of consecutive batches are non-contiguous — sets {0,1},
// {4,5} for shard 0 of 2 with batches of 4 — which exercises the
// absolute-order sample replay.)
func TestTable2ShardMergeAdaptive(t *testing.T) {
	spec := Spec{Quick: true, Battery: "kibam", RunOptions: RunOptions{TargetCI: 1e-12, MaxSets: 8}}
	full, err := Run(context.Background(), "table2", spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := full.Rows[0].Cells["life_min"].N; n != 8 {
		t.Fatalf("adaptive run covered %d sets, want the 8-set cap", n)
	}
	merged := runShards(t, "table2", spec, 2)
	if !reflect.DeepEqual(merged, full) {
		t.Fatalf("adaptive merged shards differ from unsharded run:\n%+v\n%+v", merged, full)
	}
	if formatted(t, merged) != formatted(t, full) {
		t.Fatal("formatted output differs")
	}
}

// TestPerSetDriversShardMergeExact extends the exactness guarantee to the
// remaining per-set drivers (Table 1, Figure 6, the ablation).
func TestPerSetDriversShardMergeExact(t *testing.T) {
	for _, name := range []string{"table1", "figure6", "ablation"} {
		spec := Spec{Quick: true}
		full, err := Run(context.Background(), name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		merged := runShards(t, name, spec, 2)
		if !reflect.DeepEqual(merged, full) {
			t.Fatalf("%s: merged shards differ from unsharded run:\n%+v\n%+v", name, merged, full)
		}
		if formatted(t, merged) != formatted(t, full) {
			t.Fatalf("%s: formatted output differs", name)
		}
	}
}

// TestGridShardMergeWithinWelfordBound checks the scenario grid's documented
// contract: its cells are chunk merges (state only, no samples), so a shard
// merge reassociates the Welford reduction — means agree with the unsharded
// run within rounding error and the formatted table (which rounds far more
// coarsely) stays byte-identical.
func TestGridShardMergeWithinWelfordBound(t *testing.T) {
	spec := Spec{Quick: true}
	full, err := Run(context.Background(), "grid", spec)
	if err != nil {
		t.Fatal(err)
	}
	merged := runShards(t, "grid", spec, 2)
	if formatted(t, merged) != formatted(t, full) {
		t.Fatal("formatted grid output differs beyond the Welford bound")
	}
	for ri, row := range full.Rows {
		mrow := merged.Rows[ri]
		if mrow.Key != row.Key || mrow.Counts["deadline_misses"] != row.Counts["deadline_misses"] {
			t.Fatalf("row %d identity differs: %+v vs %+v", ri, mrow, row)
		}
		for name, cell := range row.Cells {
			m := mrow.Cells[name]
			if m.N != cell.N {
				t.Fatalf("row %q cell %q: n = %d, want %d", row.Key, name, m.N, cell.N)
			}
			if math.Abs(m.Mean-cell.Mean) > 1e-9*math.Abs(cell.Mean) {
				t.Fatalf("row %q cell %q: mean %v vs %v beyond reassociation bound", row.Key, name, m.Mean, cell.Mean)
			}
		}
	}
}
