package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"battsched/internal/core"
	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/runner"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// EstimateAblationConfig parameterises the estimate-quality ablation: the
// paper notes that pUBS is near optimal when the X_k estimates are accurate
// and degrades toward a random schedule when they are not. This experiment
// quantifies that by running the BAS-2 scheme with different estimators and
// comparing the energy against the random-ordering baseline.
type EstimateAblationConfig struct {
	// Sets is the number of random task-graph sets averaged.
	Sets int
	// GraphsPerSet is the number of task graphs per set.
	GraphsPerSet int
	// Utilization is the worst-case utilisation of each set.
	Utilization float64
	// Hyperperiods simulated per set (more hyperperiods give the history
	// estimator more instances to learn from).
	Hyperperiods int
	// Seed makes the experiment reproducible.
	Seed int64
	// RunOptions tune the parallel execution of the per-set jobs.
	RunOptions
}

// DefaultEstimateAblationConfig returns the default ablation configuration.
func DefaultEstimateAblationConfig() EstimateAblationConfig {
	return EstimateAblationConfig{Sets: 20, GraphsPerSet: 4, Utilization: 0.7, Hyperperiods: 4, Seed: 1}
}

// QuickEstimateAblationConfig returns a reduced configuration for benchmarks.
func QuickEstimateAblationConfig() EstimateAblationConfig {
	return EstimateAblationConfig{Sets: 4, GraphsPerSet: 3, Utilization: 0.7, Hyperperiods: 2, Seed: 1}
}

// EstimateAblationRow reports one estimator variant.
type EstimateAblationRow struct {
	// Estimator is the variant label.
	Estimator string
	// EnergyVsRandom is the mean battery energy normalised by the
	// random-ordering baseline on the same workload (< 1 means the pUBS
	// ordering with this estimator beats random ordering).
	EnergyVsRandom float64
	// Samples is the number of task-graph sets averaged.
	Samples int
}

// ablationSample is the result of one per-set job: the estimator variants'
// energies (in variant order) normalised by the random-ordering baseline.
type ablationSample struct {
	normalised []float64
	ok         bool
}

func init() {
	mustRegister(Definition{
		Name:      "ablation",
		Title:     "Estimate-quality ablation — pUBS benefit vs X_k estimator accuracy (beyond the paper)",
		Paper:     "not in the paper (quantifies the Section 4 estimate-accuracy discussion)",
		Shardable: true,
		Run: func(ctx context.Context, spec Spec) (*Report, error) {
			cfg := DefaultEstimateAblationConfig()
			if spec.Quick {
				cfg = QuickEstimateAblationConfig()
			}
			if spec.Seed != 0 {
				cfg.Seed = spec.Seed
			}
			if spec.Sets > 0 {
				cfg.Sets = spec.Sets
			}
			if spec.Utilization > 0 {
				cfg.Utilization = spec.Utilization
			}
			cfg.RunOptions = spec.RunOptions
			return runEstimateAblationReport(ctx, cfg)
		},
	})
}

// runEstimateAblationReport runs the estimate-quality ablation: BAS-2 (ccEDF
// + pUBS over all released graphs, the configuration in which ordering
// effects are fully visible) with a perfect oracle, a history estimator and a
// pessimistic fixed estimator, each normalised by random ordering on the same
// workload. Each task-graph set runs as one job of the runner harness;
// samples stream back in set order and fold into per-variant accumulators.
// With RunOptions.TargetCI set, additional batches of sets run until the
// relative CI95 of every variant's normalised energy (the key metric)
// converges or MaxSets is reached.
func runEstimateAblationReport(ctx context.Context, cfg EstimateAblationConfig) (*Report, error) {
	if cfg.Sets <= 0 || cfg.GraphsPerSet <= 0 || cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.Hyperperiods <= 0 {
		cfg.Hyperperiods = 1
	}
	proc := defaultProcessor()

	type variant struct {
		name      string
		oracle    bool
		estimator func() priority.Estimator
	}
	variants := []variant{
		{"oracle (exact actuals)", true, nil},
		{"history (EWMA of past instances)", false, func() priority.Estimator { return priority.NewHistoryEstimator(0.5) }},
		{"pessimistic (X_k = WCET)", false, func() priority.Estimator { return priority.OracleEstimator{Fraction: 1} }},
	}

	// Each job shares one reused engine and one execution realisation across
	// the baseline and every estimator variant: the baseline records the
	// draws and the variants replay them (the engine's draw order does not
	// depend on the priority function or estimator), exactly the values the
	// previous per-run models seeded with the shared seed drew.
	job := func(set int) (ablationSample, error) {
		seed := runner.SeedFor(cfg.Seed, int64(set))
		rng := runner.RNG(cfg.Seed, int64(set))
		sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), cfg.GraphsPerSet, cfg.Utilization, proc.FMax(), rng)
		if err != nil {
			return ablationSample{}, err
		}
		eng := core.NewEngine()
		exec := taskgraph.NewRecordedExecution(taskgraph.NewUniformExecution(0.2, 1.0, seed))
		runOne := func(prio priority.Function, oracle bool, est priority.Estimator) (*core.Result, error) {
			if err := eng.Reset(core.Config{
				System:          sys,
				Processor:       proc,
				DVS:             dvs.NewCCEDF(),
				Priority:        prio,
				ReadyPolicy:     core.AllReleased,
				FrequencyMode:   core.ContinuousFrequency,
				OracleEstimates: oracle,
				Estimator:       est,
				Execution:       exec,
				Hyperperiods:    cfg.Hyperperiods,
				Seed:            seed,
				// Only energies are compared; skip profile/trace recording.
				Observer: core.Discard,
			}); err != nil {
				return nil, err
			}
			return eng.Run()
		}
		baseline, err := runOne(priority.NewRandom(), false, nil)
		if err != nil {
			return ablationSample{}, err
		}
		if baseline.EnergyBattery <= 0 {
			return ablationSample{}, nil
		}
		sample := ablationSample{normalised: make([]float64, len(variants)), ok: true}
		for i, v := range variants {
			var est priority.Estimator
			if v.estimator != nil {
				est = v.estimator()
			}
			exec.Replay()
			res, err := runOne(priority.NewPUBS(), v.oracle, est)
			if err != nil {
				return ablationSample{}, err
			}
			if res.DeadlineMisses > 0 {
				return ablationSample{}, fmt.Errorf("experiments: ablation variant %q missed %d deadlines", v.name, res.DeadlineMisses)
			}
			sample.normalised[i] = res.EnergyBattery / baseline.EnergyBattery
		}
		return sample, nil
	}

	accs := make([]metricAcc, len(variants))
	_, err := runAdaptiveSets(cfg.RunOptions, cfg.Sets, func(lo, hi int) error {
		return runner.RunStream(ctx, hi-lo, cfg.runnerOptions(), func(_ context.Context, i int) (ablationSample, error) {
			return job(lo + i) // absolute set index: seeds are batch- and shard-independent
		}, func(i int, sample ablationSample) error {
			if !sample.ok {
				return nil
			}
			set := lo + i
			for vi, v := range sample.normalised {
				accs[vi].Add(set, v)
			}
			return nil
		})
	}, func() bool {
		for i := range accs {
			if !converged(cfg.TargetCI, &accs[i].acc) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Version:    ReportVersion,
		Experiment: "ablation",
		Meta: map[string]string{
			"seed":           strconv.FormatInt(cfg.Seed, 10),
			"sets":           strconv.Itoa(cfg.Sets),
			"graphs_per_set": strconv.Itoa(cfg.GraphsPerSet),
			"utilization":    formatFloat(cfg.Utilization),
			"hyperperiods":   strconv.Itoa(cfg.Hyperperiods),
			// Adaptive-stopping knobs: shards run with different settings
			// cover different sets and must refuse to merge.
			"target_ci": formatFloat(cfg.TargetCI),
			"max_sets":  strconv.Itoa(cfg.MaxSets),
		},
		Shard: shardInfo(cfg.Shard),
	}
	for i, v := range variants {
		rep.Rows = append(rep.Rows, ReportRow{
			Key:   v.name,
			Cells: map[string]Cell{"energy_vs_random": accs[i].Cell()},
		})
	}
	return rep, nil
}

// estimateAblationRowsFromReport reconstructs the typed rows from a Report.
func estimateAblationRowsFromReport(r *Report) []EstimateAblationRow {
	rows := make([]EstimateAblationRow, 0, len(r.Rows))
	for _, row := range r.Rows {
		cell := row.Cells["energy_vs_random"]
		rows = append(rows, EstimateAblationRow{Estimator: row.Key, EnergyVsRandom: cell.Mean, Samples: cell.N})
	}
	return rows
}

// RunEstimateAblation runs the estimate-quality ablation and returns its
// typed rows (see runEstimateAblationReport; the registry path returns the
// Report directly).
func RunEstimateAblation(ctx context.Context, cfg EstimateAblationConfig) ([]EstimateAblationRow, error) {
	rep, err := runEstimateAblationReport(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return estimateAblationRowsFromReport(rep), nil
}

// FormatEstimateAblation renders the ablation rows as a plain-text table.
func FormatEstimateAblation(rows []EstimateAblationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Estimate-quality ablation: BAS-2 energy normalised by random ordering")
	fmt.Fprintln(&b, "Estimator                         | Energy vs random | samples")
	fmt.Fprintln(&b, "----------------------------------+------------------+--------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-33s | %16.3f | %6d\n", r.Estimator, r.EnergyVsRandom, r.Samples)
	}
	return b.String()
}
