package experiments

import (
	"strings"
	"testing"
)

// fakePartial builds a minimal shard partial for coverage validation tests
// (coverage is checked before any cell is touched, so empty rows suffice).
func fakePartial(experiment string, index, count int) *Report {
	return &Report{
		Version:    ReportVersion,
		Experiment: experiment,
		Shard:      &ShardInfo{Index: index, Count: count},
	}
}

// TestValidateShardCoverageGap pins the forgotten-shard failure mode: a
// merge missing one partial of the partition must error naming the missing
// shard instead of silently averaging a subset of the run.
func TestValidateShardCoverageGap(t *testing.T) {
	err := ValidateShardCoverage([]*Report{
		fakePartial("table2", 0, 3),
		fakePartial("table2", 2, 3),
	})
	if err == nil {
		t.Fatal("expected error for missing shard 1/3")
	}
	if !strings.Contains(err.Error(), "missing partial(s) 1/3") {
		t.Fatalf("gap error should name the missing shard, got %v", err)
	}
}

// TestValidateShardCoverageDuplicate pins the overlap failure mode: the same
// shard supplied twice must error naming the duplicated shard.
func TestValidateShardCoverageDuplicate(t *testing.T) {
	err := ValidateShardCoverage([]*Report{
		fakePartial("table2", 0, 2),
		fakePartial("table2", 0, 2),
	})
	if err == nil {
		t.Fatal("expected error for duplicated shard 0/2")
	}
	if !strings.Contains(err.Error(), "overlapping") || !strings.Contains(err.Error(), "0/2") {
		t.Fatalf("duplicate error should name the overlapping shard, got %v", err)
	}
	// A duplicate that also leaves a gap reports the overlap (the stronger
	// signal that two fleets' artifacts were mixed up).
	err = ValidateShardCoverage([]*Report{
		fakePartial("table2", 1, 2),
		fakePartial("table2", 1, 2),
	})
	if err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("expected overlap error, got %v", err)
	}
}

// TestValidateShardCoverageMixedRuns covers partials from runs with different
// shard counts and complete (unsharded) reports.
func TestValidateShardCoverageMixedRuns(t *testing.T) {
	if err := ValidateShardCoverage([]*Report{
		fakePartial("table2", 0, 2),
		fakePartial("table2", 1, 3),
	}); err == nil || !strings.Contains(err.Error(), "different runs") {
		t.Fatalf("expected mixed-count error, got %v", err)
	}
	complete := &Report{Version: ReportVersion, Experiment: "table2"}
	if err := ValidateShardCoverage([]*Report{complete}); err == nil ||
		!strings.Contains(err.Error(), "not a shard partial") {
		t.Fatalf("expected non-partial error, got %v", err)
	}
	if err := ValidateShardCoverage(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if err := ValidateShardCoverage([]*Report{
		fakePartial("table2", 0, 2),
		fakePartial("table2", 1, 2),
	}); err != nil {
		t.Fatalf("complete partition rejected: %v", err)
	}
}
