package experiments

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the file
// when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenTable1 pins the quick Table 1 output: the formatted table plus
// every row value at round-trip float precision.
func TestGoldenTable1(t *testing.T) {
	cfg := QuickTable1Config()
	rows, err := RunTable1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(FormatTable1(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "raw %d %.17g %.17g %.17g %d %d\n", r.Tasks, r.Random, r.LTF, r.PUBS, r.Samples, r.IncompleteSearches)
	}
	checkGolden(t, "table1_quick", b.String())
}

// TestGoldenTable2 pins the quick Table 2 output for the kibam battery (all
// five schemes in discrete-frequency mode).
func TestGoldenTable2(t *testing.T) {
	cfg := QuickTable2Config()
	cfg.BatteryName = "kibam"
	rows, err := RunTable2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(FormatTable2(rows, cfg.BatteryName, cfg.Utilization))
	for _, r := range rows {
		fmt.Fprintf(&b, "raw %s %.17g %.17g %.17g %.17g %d\n",
			r.Scheme, r.ChargeDeliveredMAh, r.BatteryLifeMin, r.EnergyPerHyperperiodJ, r.AverageCurrentA, r.Sets)
	}
	checkGolden(t, "table2_quick", b.String())
}

// TestGoldenFigure6 pins the quick Figure 6 output (continuous-frequency
// energy comparison of the four ordering schemes).
func TestGoldenFigure6(t *testing.T) {
	cfg := QuickFigure6Config()
	rows, err := RunFigure6(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(FormatFigure6(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "raw %d %.17g %.17g %.17g %.17g %d\n",
			r.Graphs, r.Random, r.LTF, r.PUBSImminent, r.PUBSAllReleased, r.Samples)
	}
	checkGolden(t, "figure6_quick", b.String())
}

// TestGoldenAblation pins the quick estimate-quality ablation output.
func TestGoldenAblation(t *testing.T) {
	cfg := QuickEstimateAblationConfig()
	rows, err := RunEstimateAblation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(FormatEstimateAblation(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "raw %s %.17g %d\n", r.Estimator, r.EnergyVsRandom, r.Samples)
	}
	checkGolden(t, "ablation_quick", b.String())
}

// TestGoldenScenarioGrid pins the quick scenario-grid output (including the
// Student-t CI95 columns).
func TestGoldenScenarioGrid(t *testing.T) {
	cfg := QuickScenarioGridConfig()
	rows, err := RunScenarioGrid(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(FormatScenarioGrid(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "raw %.17g %s %s charge=%.17g±%.17g life=%.17g±%.17g n=%d misses=%d\n",
			r.Utilization, r.Battery, r.Scheme, r.Charge.Mean, r.Charge.CI95, r.Life.Mean, r.Life.CI95, r.Charge.N, r.DeadlineMisses)
	}
	checkGolden(t, "grid_quick", b.String())
}

// TestGoldenCurve pins the quick battery characterisation curve output (the
// deterministic sweep; no stochastic sets).
func TestGoldenCurve(t *testing.T) {
	cfg := QuickCurveConfig()
	series, err := RunLoadCapacityCurve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(FormatCurve(series))
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "raw %s %.17g %.17g %.17g\n", s.Model, p.Current, p.DeliveredMAh, p.LifetimeMinutes)
		}
	}
	checkGolden(t, "curve_quick", b.String())
}
