package experiments

import (
	"strings"
	"testing"
)

// TestCanonicalSpecNormalisation pins the default-equivalence rules: seed 0
// and the default seed 1 share an encoding, the MaxSets cap is inert without
// TargetCI, and execution-only knobs never change the address.
func TestCanonicalSpecNormalisation(t *testing.T) {
	base := Spec{Quick: true, Battery: "kibam"}
	same := []Spec{
		{Quick: true, Battery: "kibam", Seed: 1},
		{Quick: true, Battery: "kibam", RunOptions: RunOptions{MaxSets: 40}},
		{Quick: true, Battery: "kibam", RunOptions: RunOptions{Parallel: 7}},
		{Quick: true, Battery: "kibam", RunOptions: RunOptions{Progress: func(int, int) {}}},
		{Quick: true, Battery: "kibam", RunOptions: RunOptions{Shard: Shard{Index: 1, Count: 4}}},
	}
	want := SpecHash("table2", base)
	for i, s := range same {
		if got := SpecHash("table2", s); got != want {
			t.Fatalf("spec %d: hash %s differs from base %s\nbase:\n%s\nspec:\n%s",
				i, got, want, CanonicalSpec("table2", base), CanonicalSpec("table2", s))
		}
	}
}

// TestSpecHashDistinguishesOutputs checks that every output-affecting field
// (and the experiment name) moves the hash.
func TestSpecHashDistinguishesOutputs(t *testing.T) {
	base := Spec{Quick: true, Battery: "kibam"}
	seen := map[string]string{"base": SpecHash("table2", base)}
	variants := map[string]Spec{
		"quick=false":  {Battery: "kibam"},
		"seed":         {Quick: true, Battery: "kibam", Seed: 7},
		"sets":         {Quick: true, Battery: "kibam", Sets: 9},
		"utilization":  {Quick: true, Battery: "kibam", Utilization: 0.5},
		"battery":      {Quick: true, Battery: "peukert"},
		"oracle":       {Quick: true, Battery: "kibam", Oracle: true},
		"ccedf":        {Quick: true, Battery: "kibam", CCEDF: true},
		"maxstep":      {Quick: true, Battery: "kibam", MaxStep: 2},
		"target_ci":    {Quick: true, Battery: "kibam", RunOptions: RunOptions{TargetCI: 0.01}},
		"ci+max_sets":  {Quick: true, Battery: "kibam", RunOptions: RunOptions{TargetCI: 0.01, MaxSets: 40}},
		"other driver": base, // hashed under a different experiment name below
	}
	for label, s := range variants {
		name := "table2"
		if label == "other driver" {
			name = "grid"
		}
		h := SpecHash(name, s)
		if len(h) != 64 || strings.Trim(h, "0123456789abcdef") != "" {
			t.Fatalf("%s: hash %q is not lowercase sha256 hex", label, h)
		}
		for prev, ph := range seen {
			if ph == h {
				t.Fatalf("%s collides with %s (%s)", label, prev, h)
			}
		}
		seen[label] = h
	}
}
