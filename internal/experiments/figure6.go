package experiments

import (
	"context"
	"fmt"
	"strconv"

	"battsched/internal/core"
	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/processor"
	"battsched/internal/runner"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
)

// Figure6Config parameterises the Figure 6 experiment: energy consumption of
// the ordering schemes, normalised with respect to the near-optimal schedule
// obtained by removing precedence constraints, as the number of released task
// graphs grows.
type Figure6Config struct {
	// GraphCounts is the x axis: numbers of task graphs scheduled together.
	GraphCounts []int
	// SetsPerCount is the number of random task-graph sets averaged per point.
	SetsPerCount int
	// Utilization is the worst-case utilisation of each set (paper: 0.7).
	Utilization float64
	// UseCCEDF selects ccEDF instead of the paper's laEDF for frequency
	// setting (the ordering-scheme separation is larger with ccEDF because
	// its frequency responds immediately to recovered slack; see
	// EXPERIMENTS.md).
	UseCCEDF bool
	// OracleEstimates feeds the pUBS priority the true actual requirements
	// instead of history-based estimates. The paper notes that pUBS is near
	// optimal with accurate estimates and degrades toward a random order with
	// bad ones; the default (true) reproduces the accurate-estimate regime of
	// the paper's figure.
	OracleEstimates bool
	// Hyperperiods simulated per set.
	Hyperperiods int
	// Seed makes the experiment reproducible.
	Seed int64
	// RunOptions tune the parallel execution of the (count × set) grid.
	RunOptions
}

// DefaultFigure6Config returns the paper's configuration (laEDF frequency
// setting, utilisation 0.7, graphs with 5–15 nodes).
func DefaultFigure6Config() Figure6Config {
	return Figure6Config{
		GraphCounts:     []int{1, 2, 3, 4, 5, 6, 7, 8},
		SetsPerCount:    10,
		Utilization:     0.7,
		OracleEstimates: true,
		Hyperperiods:    2,
		Seed:            1,
	}
}

// QuickFigure6Config returns a reduced configuration for fast benchmark runs.
func QuickFigure6Config() Figure6Config {
	c := DefaultFigure6Config()
	c.GraphCounts = []int{1, 3, 5}
	c.SetsPerCount = 3
	c.OracleEstimates = true
	return c
}

// Figure6Row is one point of Figure 6: mean energy of each ordering scheme
// normalised by the precedence-free near-optimal schedule of the same
// workload.
type Figure6Row struct {
	Graphs          int
	Random          float64
	LTF             float64
	PUBSImminent    float64
	PUBSAllReleased float64
	Samples         int
}

// figure6Schemes are the ordering schemes of Figure 6 in column order.
type figure6Scheme struct {
	name   string
	prio   func() priority.Function
	policy core.ReadyPolicy
}

func figure6Schemes() []figure6Scheme {
	random := func() priority.Function { return priority.NewRandom() }
	ltf := func() priority.Function { return priority.NewLTF() }
	pubs := func() priority.Function { return priority.NewPUBS() }
	return []figure6Scheme{
		{"random", random, core.MostImminentOnly},
		{"ltf", ltf, core.MostImminentOnly},
		{"pubs-imminent", pubs, core.MostImminentOnly},
		{"pubs-all", pubs, core.AllReleased},
	}
}

// figure6Sample is the result of one (graph count, set) job: the energies of
// the ordering schemes (indexed like figure6Schemes) normalised by the
// precedence-free near-optimal baseline of the same workload.
type figure6Sample struct {
	normalised []float64
	ok         bool
}

// figure6Job simulates the near-optimal baseline and every ordering scheme on
// the workload of one (graph count, set) cell. All five runs share one reused
// engine and one execution realisation: the baseline records the draws (the
// precedence-stripped system has identical node counts, WCETs and periods, so
// its draw order matches the constrained runs) and the ordering schemes
// replay them — exactly the values a fresh per-run model seeded with the
// shared seed would draw.
func figure6Job(cfg Figure6Config, proc *processor.Model, alg func() dvs.Algorithm, schemes []figure6Scheme, count, set int) (figure6Sample, error) {
	seed := runner.SeedFor(cfg.Seed, int64(count), int64(set))
	rng := runner.RNG(cfg.Seed, int64(count), int64(set))
	sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), count, cfg.Utilization, proc.FMax(), rng)
	if err != nil {
		return figure6Sample{}, err
	}
	eng := core.NewEngine()
	exec := taskgraph.NewRecordedExecution(taskgraph.NewUniformExecution(0.2, 1.0, seed))
	// Near-optimal baseline: same workload with precedence removed,
	// scheduled with pUBS over all released graphs and oracle estimates.
	baseline, err := runScheme(eng, sys, proc, alg(), priority.NewPUBS(), core.AllReleased, true, true, cfg, exec, seed, true)
	if err != nil {
		return figure6Sample{}, err
	}
	if baseline.EnergyBattery <= 0 {
		return figure6Sample{}, nil
	}
	sample := figure6Sample{normalised: make([]float64, len(schemes)), ok: true}
	for i, s := range schemes {
		exec.Replay()
		res, err := runScheme(eng, sys, proc, alg(), s.prio(), s.policy, false, cfg.OracleEstimates, cfg, exec, seed, true)
		if err != nil {
			return figure6Sample{}, err
		}
		if res.DeadlineMisses > 0 {
			return figure6Sample{}, fmt.Errorf("experiments: figure 6 scheme %s missed %d deadlines", s.name, res.DeadlineMisses)
		}
		sample.normalised[i] = res.EnergyBattery / baseline.EnergyBattery
	}
	return sample, nil
}

func init() {
	mustRegister(Definition{
		Name:      "figure6",
		Title:     "Figure 6 — ordering schemes vs a precedence-free near-optimal baseline",
		Paper:     "Figure 6 (Section 4)",
		Shardable: true,
		Run: func(ctx context.Context, spec Spec) (*Report, error) {
			cfg := DefaultFigure6Config()
			if spec.Quick {
				cfg = QuickFigure6Config()
			}
			if spec.Seed != 0 {
				cfg.Seed = spec.Seed
			}
			if spec.Sets > 0 {
				cfg.SetsPerCount = spec.Sets
			}
			if spec.Utilization > 0 {
				cfg.Utilization = spec.Utilization
			}
			cfg.UseCCEDF = spec.CCEDF
			cfg.RunOptions = spec.RunOptions
			return runFigure6Report(ctx, cfg)
		},
	})
}

// runFigure6Report regenerates Figure 6. The (graph count × set) grid runs
// as independent jobs; each job simulates the baseline and the four ordering
// schemes on its own workload. Samples stream back in job order and fold
// into per-(count, scheme) accumulators; with RunOptions.TargetCI set,
// additional batches of sets run per point until the relative CI95 of every
// scheme's normalised energy (the key metric) converges or MaxSets is
// reached.
func runFigure6Report(ctx context.Context, cfg Figure6Config) (*Report, error) {
	if len(cfg.GraphCounts) == 0 || cfg.SetsPerCount <= 0 || cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.Hyperperiods <= 0 {
		cfg.Hyperperiods = 1
	}
	proc := defaultProcessor()
	alg := func() dvs.Algorithm {
		if cfg.UseCCEDF {
			return dvs.NewCCEDF()
		}
		return dvs.NewLAEDF()
	}
	schemes := figure6Schemes()

	accs := make([][]metricAcc, len(cfg.GraphCounts))
	for i := range accs {
		accs[i] = make([]metricAcc, len(schemes))
	}
	_, err := runAdaptiveSets(cfg.RunOptions, cfg.SetsPerCount, func(lo, hi int) error {
		grid := runner.NewGrid(len(cfg.GraphCounts), hi-lo)
		return runner.RunStream(ctx, grid.Size(), cfg.runnerOptions(), func(_ context.Context, idx int) (figure6Sample, error) {
			c := grid.Coords(idx)
			// The set index is absolute (lo+c[1]), so a sample's random
			// stream does not depend on the batch layout or the shard.
			return figure6Job(cfg, proc, alg, schemes, cfg.GraphCounts[c[0]], lo+c[1])
		}, func(idx int, sample figure6Sample) error {
			if !sample.ok {
				return nil
			}
			c := grid.Coords(idx)
			set := lo + c[1]
			for i, v := range sample.normalised {
				accs[c[0]][i].Add(set, v)
			}
			return nil
		})
	}, func() bool {
		for ci := range accs {
			for i := range accs[ci] {
				if !converged(cfg.TargetCI, &accs[ci][i].acc) {
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	alg6 := "laEDF"
	if cfg.UseCCEDF {
		alg6 = "ccEDF"
	}
	rep := &Report{
		Version:    ReportVersion,
		Experiment: "figure6",
		Meta: map[string]string{
			"seed":           strconv.FormatInt(cfg.Seed, 10),
			"sets_per_count": strconv.Itoa(cfg.SetsPerCount),
			"utilization":    formatFloat(cfg.Utilization),
			"alg":            alg6,
			"oracle":         strconv.FormatBool(cfg.OracleEstimates),
			"hyperperiods":   strconv.Itoa(cfg.Hyperperiods),
			// Adaptive-stopping knobs: shards run with different settings
			// cover different sets and must refuse to merge.
			"target_ci": formatFloat(cfg.TargetCI),
			"max_sets":  strconv.Itoa(cfg.MaxSets),
		},
		Shard: shardInfo(cfg.Shard),
	}
	for ci, count := range cfg.GraphCounts {
		rep.Rows = append(rep.Rows, ReportRow{
			Key: strconv.Itoa(count),
			Cells: map[string]Cell{
				"random":        accs[ci][0].Cell(),
				"ltf":           accs[ci][1].Cell(),
				"pubs_imminent": accs[ci][2].Cell(),
				"pubs_all":      accs[ci][3].Cell(),
			},
		})
	}
	return rep, nil
}

// figure6RowsFromReport reconstructs the typed rows from a Report.
func figure6RowsFromReport(r *Report) []Figure6Row {
	rows := make([]Figure6Row, 0, len(r.Rows))
	for _, row := range r.Rows {
		graphs, _ := strconv.Atoi(row.Key)
		rows = append(rows, Figure6Row{
			Graphs:          graphs,
			Random:          row.Cells["random"].Mean,
			LTF:             row.Cells["ltf"].Mean,
			PUBSImminent:    row.Cells["pubs_imminent"].Mean,
			PUBSAllReleased: row.Cells["pubs_all"].Mean,
			Samples:         row.Cells["random"].N,
		})
	}
	return rows
}

// RunFigure6 regenerates Figure 6 and returns its typed rows (see
// runFigure6Report; the registry path returns the Report directly).
func RunFigure6(ctx context.Context, cfg Figure6Config) ([]Figure6Row, error) {
	rep, err := runFigure6Report(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return figure6RowsFromReport(rep), nil
}

// runScheme runs one simulation of the given workload under the given scheme
// on the job's reused engine. stripPrecedence replaces the system with its
// precedence-free version (the near-optimal baseline of Figure 6). oracle
// feeds pUBS the true actual requirements. continuous selects the idealised
// continuous-frequency processor used for energy-only comparisons. exec is
// the job-shared execution model (a RecordedExecution whose record/replay
// state the caller controls).
func runScheme(eng *core.Engine, sys *taskgraph.System, proc *processor.Model, alg dvs.Algorithm, prio priority.Function, policy core.ReadyPolicy,
	stripPrecedence, oracle bool, cfg Figure6Config, exec taskgraph.ExecutionModel, seed int64, continuous bool) (*core.Result, error) {
	if stripPrecedence {
		sys = tgff.StripPrecedence(sys)
	}
	mode := core.DiscreteFrequency
	if continuous {
		mode = core.ContinuousFrequency
	}
	if err := eng.Reset(core.Config{
		System:          sys,
		Processor:       proc,
		DVS:             alg,
		Priority:        prio,
		ReadyPolicy:     policy,
		FrequencyMode:   mode,
		OracleEstimates: oracle,
		Execution:       exec,
		Hyperperiods:    cfg.Hyperperiods,
		Seed:            seed,
		// The figure only compares energies, which the engine accumulates
		// itself: no profile or trace recording is needed.
		Observer: core.Discard,
	}); err != nil {
		return nil, err
	}
	return eng.Run()
}
