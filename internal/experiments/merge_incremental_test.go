package experiments

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// shardPartials runs every shard of name and returns the partials in shard
// order (no merge).
func shardPartials(t *testing.T, name string, spec Spec, count int) []*Report {
	t.Helper()
	parts := make([]*Report, count)
	for i := 0; i < count; i++ {
		s := spec
		s.Shard = Shard{Index: i, Count: count}
		rep, err := Run(context.Background(), name, s)
		if err != nil {
			t.Fatalf("%s shard %d/%d: %v", name, i, count, err)
		}
		parts[i] = rep
	}
	return parts
}

// foldInOrder folds the partials through a ReportMerger in the given arrival
// order and returns the merged report.
func foldInOrder(t *testing.T, parts []*Report, order []int) *Report {
	t.Helper()
	m, err := NewReportMerger(len(parts))
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range order {
		if m.Complete() {
			t.Fatalf("merger complete after %d of %d partials", k, len(parts))
		}
		if err := m.Add(parts[i]); err != nil {
			t.Fatalf("fold shard %d (arrival %d): %v", i, k, err)
		}
	}
	if !m.Complete() {
		t.Fatal("merger incomplete after all partials")
	}
	rep, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// artifactBytes serialises one report exactly like the service does.
func artifactBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalMergeMatchesMergeReports is the incremental-merge property
// pin: folding shard partials into a ReportMerger one at a time, in any
// arrival order, equals the single MergeReports call over all partials —
// bit-for-bit for the per-set drivers (replayable cells re-fold in absolute
// set order), and within Welford reassociation for the scenario grid's
// sample-free cells. The federation coordinator merges incrementally, so this
// is what keeps its served artifacts byte-identical to local run -o.
func TestIncrementalMergeMatchesMergeReports(t *testing.T) {
	const shards = 4
	orders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
		{1, 3, 0, 2},
	}

	t.Run("table2-exact", func(t *testing.T) {
		parts := shardPartials(t, "table2", Spec{Quick: true, Battery: "kibam"}, shards)
		want, err := MergeReports(parts)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := artifactBytes(t, want)
		for _, order := range orders {
			got := foldInOrder(t, parts, order)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("arrival order %v: incremental merge differs from MergeReports", order)
			}
			if !bytes.Equal(artifactBytes(t, got), wantBytes) {
				t.Fatalf("arrival order %v: artifact bytes differ", order)
			}
		}
	})

	t.Run("grid-welford", func(t *testing.T) {
		parts := shardPartials(t, "grid", Spec{Quick: true, Battery: "kibam"}, shards)
		want, err := MergeReports(parts)
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range orders {
			got := foldInOrder(t, parts, order)
			compareWithinReassociation(t, got, want)
		}
	})
}

// compareWithinReassociation checks that two merged reports agree exactly on
// structure, counts, N, min and max, and on mean/M2 within a few ulps of
// floating-point reassociation.
func compareWithinReassociation(t *testing.T, got, want *Report) {
	t.Helper()
	if got.Experiment != want.Experiment || !reflect.DeepEqual(got.Meta, want.Meta) ||
		len(got.Rows) != len(want.Rows) {
		t.Fatalf("report structure differs: %s/%d rows vs %s/%d rows",
			got.Experiment, len(got.Rows), want.Experiment, len(want.Rows))
	}
	const relTol = 1e-9
	approx := func(a, b float64) bool {
		if a == b {
			return true
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= relTol*scale
	}
	for ri, row := range want.Rows {
		gr := got.Rows[ri]
		if gr.Key != row.Key || !reflect.DeepEqual(gr.Counts, row.Counts) {
			t.Fatalf("row %d: key/counts differ (%q vs %q)", ri, gr.Key, row.Key)
		}
		for name, wc := range row.Cells {
			gc, ok := gr.Cells[name]
			if !ok {
				t.Fatalf("row %q misses cell %q", row.Key, name)
			}
			if gc.N != wc.N || gc.Min != wc.Min || gc.Max != wc.Max {
				t.Fatalf("row %q cell %q: n/min/max differ: %+v vs %+v", row.Key, name, gc.State, wc.State)
			}
			if !approx(gc.Mean, wc.Mean) || !approx(gc.M2, wc.M2) {
				t.Fatalf("row %q cell %q: mean/M2 beyond reassociation: %+v vs %+v", row.Key, name, gc.State, wc.State)
			}
		}
	}
}

// TestReportMergerDuplicateAndCoverage pins the coordinator-facing contract:
// a duplicate shard is rejected with ErrDuplicateShard without corrupting the
// fold (speculative re-dispatch, first completion wins), and Report before
// full coverage names the missing shards.
func TestReportMergerDuplicateAndCoverage(t *testing.T) {
	parts := shardPartials(t, "table2", Spec{Quick: true, Battery: "kibam"}, 3)
	want, err := MergeReports(parts)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewReportMerger(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(parts[1]); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(parts[1]); !errors.Is(err, ErrDuplicateShard) {
		t.Fatalf("duplicate add err = %v, want ErrDuplicateShard", err)
	}
	if !m.Seen(1) || m.Seen(0) || m.Added() != 1 {
		t.Fatalf("merger bookkeeping off: seen(1)=%v seen(0)=%v added=%d", m.Seen(1), m.Seen(0), m.Added())
	}
	if _, err := m.Report(); err == nil || !strings.Contains(err.Error(), "0/3") || !strings.Contains(err.Error(), "2/3") {
		t.Fatalf("incomplete Report err = %v, want missing 0/3 and 2/3 named", err)
	}
	if err := m.Add(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(parts[2]); err != nil {
		t.Fatal(err)
	}
	got, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged report differs from MergeReports after a rejected duplicate")
	}

	// A partial from a different split or experiment is rejected up front.
	other := shardPartials(t, "table2", Spec{Quick: true, Battery: "kibam"}, 2)
	m2, _ := NewReportMerger(3)
	if err := m2.Add(other[0]); err == nil {
		t.Fatal("partial of a 2-way split accepted by a 3-way merger")
	}
}

// TestShardSpecHash pins the partial content address: distinct per shard,
// equal for equal (spec, shard), and the disabled shard collapses to the
// complete run's SpecHash.
func TestShardSpecHash(t *testing.T) {
	spec := Spec{Quick: true, Battery: "kibam"}
	full := SpecHash("table2", spec)
	if got := ShardSpecHash("table2", spec, Shard{}); got != full {
		t.Fatalf("unsharded ShardSpecHash = %s, want SpecHash %s", got, full)
	}
	seen := map[string]bool{full: true}
	for i := 0; i < 4; i++ {
		h := ShardSpecHash("table2", spec, Shard{Index: i, Count: 4})
		if seen[h] {
			t.Fatalf("shard %d/4 hash collides", i)
		}
		seen[h] = true
		if h != ShardSpecHash("table2", spec, Shard{Index: i, Count: 4}) {
			t.Fatal("ShardSpecHash not deterministic")
		}
	}
	if ShardSpecHash("table2", spec, Shard{Index: 0, Count: 4}) == ShardSpecHash("table2", spec, Shard{Index: 0, Count: 2}) {
		t.Fatal("shard 0/4 and 0/2 share a hash")
	}
}
