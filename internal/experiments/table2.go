package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"battsched/internal/battery"
	"battsched/internal/core"
	"battsched/internal/dvs"
	"battsched/internal/priority"
	"battsched/internal/processor"
	"battsched/internal/runner"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"

	// The battery model sub-packages self-register with the battery registry
	// from their init functions; blank imports make every paper model
	// resolvable by name for all drivers.
	_ "battsched/internal/battery/diffusion"
	_ "battsched/internal/battery/kibam"
	_ "battsched/internal/battery/peukert"
	_ "battsched/internal/battery/stochastic"
)

// defaultProcessor returns the paper's processor model.
func defaultProcessor() *processor.Model { return processor.Default() }

// BatteryFactory produces a fresh battery model instance (battery models are
// stateful, so each simulation needs its own).
type BatteryFactory func() battery.Model

// NamedBatteryFactory returns the factory for a registered battery model name
// ("" selects "stochastic", the paper's choice). Unknown names return the
// registry error listing every valid name.
func NamedBatteryFactory(name string) (BatteryFactory, error) {
	if name == "" {
		name = "stochastic"
	}
	if _, err := battery.New(name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return func() battery.Model {
		m, err := battery.New(name)
		if err != nil {
			panic(err) // unreachable: the name was validated above
		}
		return m
	}, nil
}

// resolveBatteryFactories resolves a list of battery model names, failing on
// the first unknown name.
func resolveBatteryFactories(names []string) ([]BatteryFactory, error) {
	factories := make([]BatteryFactory, len(names))
	for i, name := range names {
		f, err := NamedBatteryFactory(name)
		if err != nil {
			return nil, err
		}
		factories[i] = f
	}
	return factories, nil
}

// Table2Config parameterises the Table 2 experiment: the five scheduling
// schemes compared on delivered charge and battery lifetime.
type Table2Config struct {
	// Sets is the number of random task-graph sets averaged (paper: 100).
	Sets int
	// SetsPerJob chunks the sets into jobs: each job simulates a chunk of
	// sets sequentially on one reused engine (0 selects a default chunk
	// size). The per-set fold is exact (keyed on absolute set indices), so
	// results are byte-identical for any SetsPerJob at any Parallel value.
	SetsPerJob int
	// GraphsPerSet is the number of task graphs per set.
	GraphsPerSet int
	// Utilization is the worst-case utilisation of each set (paper: 0.70).
	Utilization float64
	// Hyperperiods simulated per set to build the periodic load profile.
	Hyperperiods int
	// Battery produces the battery model evaluated (default: the model
	// registered under BatteryName).
	Battery BatteryFactory
	// BatteryName is the registry name of the battery model ("" selects the
	// paper's stochastic model) and the label reported for it.
	BatteryName string
	// OracleEstimates feeds the pUBS priority of the BAS-1/BAS-2 schemes the
	// true actual requirements instead of history-based estimates (the
	// "accurate estimate" regime the paper's pUBS discussion assumes).
	OracleEstimates bool
	// Seed makes the experiment reproducible.
	Seed int64
	// MaxBatteryHours caps each battery lifetime simulation.
	MaxBatteryHours float64
	// RunOptions tune the parallel execution of the per-set jobs.
	RunOptions
}

// DefaultTable2Config returns the paper's configuration: 100 random task
// graph sets at 70 % utilisation evaluated with the stochastic battery model.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Sets:            100,
		GraphsPerSet:    5,
		Utilization:     0.70,
		Hyperperiods:    4,
		BatteryName:     "stochastic",
		Seed:            1,
		MaxBatteryHours: 72,
	}
}

// QuickTable2Config returns a reduced configuration for fast benchmark runs.
func QuickTable2Config() Table2Config {
	c := DefaultTable2Config()
	c.Sets = 4
	c.Hyperperiods = 2
	c.MaxBatteryHours = 72
	return c
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	// Scheme is the scheduling scheme label.
	Scheme string
	// DVS, Priority and ReadyList describe the scheme (as in the paper's
	// table columns).
	DVS       string
	Priority  string
	ReadyList string
	// ChargeDeliveredMAh is the mean charge delivered before exhaustion.
	ChargeDeliveredMAh float64
	// BatteryLifeMin is the mean battery lifetime in minutes.
	BatteryLifeMin float64
	// EnergyPerHyperperiodJ is the mean battery energy per simulated
	// hyperperiod (not in the paper's table, but useful for analysis).
	EnergyPerHyperperiodJ float64
	// AverageCurrentA is the mean load current of the generated profiles.
	AverageCurrentA float64
	// Sets is the number of task-graph sets averaged.
	Sets int
}

// table2Scheme is one scheduling scheme of Table 2.
type table2Scheme struct {
	name      string
	dvsName   string
	prioName  string
	readyList string
	alg       func() dvs.Algorithm
	prio      func() priority.Function
	policy    core.ReadyPolicy
}

func paperSchemes() []table2Scheme {
	noDVS := func() dvs.Algorithm { return dvs.NewNoDVS() }
	ccEDF := func() dvs.Algorithm { return dvs.NewCCEDF() }
	laEDF := func() dvs.Algorithm { return dvs.NewLAEDF() }
	random := func() priority.Function { return priority.NewRandom() }
	pubs := func() priority.Function { return priority.NewPUBS() }
	return []table2Scheme{
		{"EDF", "None", "Random", "most imminent", noDVS, random, core.MostImminentOnly},
		{"Cycle Conserving", "ccEDF", "Random", "most imminent", ccEDF, random, core.MostImminentOnly},
		{"Look Ahead", "laEDF", "Random", "most imminent", laEDF, random, core.MostImminentOnly},
		{"BAS-1", "laEDF", "pUBS", "most imminent", laEDF, pubs, core.MostImminentOnly},
		{"BAS-2", "laEDF", "pUBS", "all released", laEDF, pubs, core.AllReleased},
	}
}

// table2Cell is the result of one scheme on one task-graph set.
type table2Cell struct {
	charge, life, energy, current float64
}

// table2ChunkJob simulates every scheme on the task-graph sets [setLo, setHi)
// and returns one cell row per set. Each set's workload and actual execution
// requirements derive from its seed and are shared by all schemes, so schemes
// always compare on identical task graphs: the set's system is generated once,
// scheme 0 records the execution realisation and the remaining schemes replay
// it (the engine's draw order is scheme-independent, see
// taskgraph.RecordedExecution). The engine, profile recorder, execution model
// and battery instance are reused across every (set, scheme) run of the
// chunk; only the load profile is recorded (the battery models need it), the
// execution trace is never built.
func table2ChunkJob(cfg Table2Config, proc *processor.Model, schemes []table2Scheme, setLo, setHi int) ([][]table2Cell, error) {
	out := make([][]table2Cell, 0, setHi-setLo)
	models := []battery.Model{cfg.Battery()}
	eng := core.NewEngine()
	rec := core.NewProfileRecorder()
	uni := taskgraph.NewUniformExecution(0.2, 1.0, 0)
	exec := taskgraph.NewRecordedExecution(uni)
	for set := setLo; set < setHi; set++ {
		// The set index is absolute, so the workload seed does not depend on
		// the batch layout, the chunk layout or the shard.
		setSeed := runner.SeedFor(cfg.Seed, int64(set))
		rng := rand.New(rand.NewSource(setSeed))
		sys, err := tgff.GenerateSystem(tgff.DefaultConfig(), cfg.GraphsPerSet, cfg.Utilization, proc.FMax(), rng)
		if err != nil {
			return nil, err
		}
		uni.Reseed(setSeed)
		exec.Restart(uni)
		cells := make([]table2Cell, len(schemes))
		for i, s := range schemes {
			if i > 0 {
				exec.Replay()
			}
			rec.Reset()
			if err := eng.Reset(core.Config{
				System:          sys,
				Processor:       proc,
				DVS:             s.alg(),
				Priority:        s.prio(),
				ReadyPolicy:     s.policy,
				FrequencyMode:   core.DiscreteFrequency,
				OracleEstimates: cfg.OracleEstimates,
				Execution:       exec,
				Hyperperiods:    cfg.Hyperperiods,
				Seed:            setSeed,
				Observer:        rec,
			}); err != nil {
				return nil, err
			}
			res, err := eng.Run()
			if err != nil {
				return nil, err
			}
			if res.DeadlineMisses > 0 {
				return nil, fmt.Errorf("experiments: table 2 scheme %s missed %d deadlines", s.name, res.DeadlineMisses)
			}
			// Zero MaxStep selects the analytic fast path (whole segments +
			// per-repetition transfer operators; since the stochastic fast
			// path, for every registered model).
			brs, err := battery.SimulateBatch(models, res.Profile, battery.SimulateOptions{
				MaxTime: cfg.MaxBatteryHours * 3600,
			})
			if err != nil {
				return nil, err
			}
			cells[i] = table2Cell{
				charge:  brs[0].DeliveredMAh(),
				life:    brs[0].LifetimeMinutes(),
				energy:  res.EnergyBattery / float64(cfg.Hyperperiods),
				current: res.Profile.AverageCurrent(),
			}
		}
		out = append(out, cells)
	}
	return out, nil
}

// table2Agg accumulates one scheme's column of Table 2 from streamed sets.
type table2Agg struct{ charge, life, energy, current metricAcc }

func init() {
	mustRegister(Definition{
		Name:      "table2",
		Title:     "Table 2 — charge delivered and battery lifetime of the five scheduling schemes",
		Paper:     "Table 2 (Section 5)",
		Shardable: true,
		Run: func(ctx context.Context, spec Spec) (*Report, error) {
			cfg := DefaultTable2Config()
			if spec.Quick {
				cfg = QuickTable2Config()
			}
			if spec.Seed != 0 {
				cfg.Seed = spec.Seed
			}
			if spec.Sets > 0 {
				cfg.Sets = spec.Sets
			}
			if spec.Utilization > 0 {
				cfg.Utilization = spec.Utilization
			}
			if spec.Battery != "" {
				cfg.BatteryName = spec.Battery
			}
			cfg.OracleEstimates = spec.Oracle
			cfg.RunOptions = spec.RunOptions
			return runTable2Report(ctx, cfg)
		},
	})
}

// runTable2Report regenerates Table 2 for the configured battery model. Jobs
// are chunks of SetsPerJob task-graph sets, each covering every scheme on one
// reused engine; per-set cells stream back in chunk order and fold into
// per-scheme accumulators keyed on absolute set indices, so the result is
// byte-identical for any SetsPerJob at any parallelism. With
// RunOptions.TargetCI set, additional batches of sets run until the relative
// CI95 of every scheme's battery lifetime (the key metric) converges or
// MaxSets is reached.
func runTable2Report(ctx context.Context, cfg Table2Config) (*Report, error) {
	if cfg.Sets <= 0 || cfg.GraphsPerSet <= 0 || cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.SetsPerJob <= 0 {
		cfg.SetsPerJob = 4
	}
	if cfg.Hyperperiods <= 0 {
		cfg.Hyperperiods = 1
	}
	if cfg.BatteryName == "" {
		cfg.BatteryName = "stochastic"
	}
	if cfg.Battery == nil {
		f, err := NamedBatteryFactory(cfg.BatteryName)
		if err != nil {
			return nil, err
		}
		cfg.Battery = f
	}
	if cfg.MaxBatteryHours <= 0 {
		cfg.MaxBatteryHours = 72
	}
	proc := defaultProcessor()
	schemes := paperSchemes()

	aggs := make([]table2Agg, len(schemes))
	_, err := runAdaptiveSets(cfg.RunOptions, cfg.Sets, func(lo, hi int) error {
		// Chunk boundaries are aligned to absolute set-index multiples of
		// SetsPerJob, not to the batch start, so the chunk layout does not
		// depend on how the adaptive loop sliced the set range into batches.
		kLo, kHi := lo/cfg.SetsPerJob, (hi+cfg.SetsPerJob-1)/cfg.SetsPerJob
		return runner.RunStream(ctx, kHi-kLo, cfg.runnerOptions(), func(_ context.Context, k int) ([][]table2Cell, error) {
			setLo := max((kLo+k)*cfg.SetsPerJob, lo)
			setHi := min((kLo+k+1)*cfg.SetsPerJob, hi)
			return table2ChunkJob(cfg, proc, schemes, setLo, setHi)
		}, func(k int, rows [][]table2Cell) error {
			setLo := max((kLo+k)*cfg.SetsPerJob, lo)
			for off, cells := range rows {
				set := setLo + off
				for si, cell := range cells {
					aggs[si].charge.Add(set, cell.charge)
					aggs[si].life.Add(set, cell.life)
					aggs[si].energy.Add(set, cell.energy)
					aggs[si].current.Add(set, cell.current)
				}
			}
			return nil
		})
	}, func() bool {
		for i := range aggs {
			if !converged(cfg.TargetCI, &aggs[i].life.acc) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Version:    ReportVersion,
		Experiment: "table2",
		Meta: map[string]string{
			"seed":              strconv.FormatInt(cfg.Seed, 10),
			"sets":              strconv.Itoa(cfg.Sets),
			"sets_per_job":      strconv.Itoa(cfg.SetsPerJob),
			"graphs_per_set":    strconv.Itoa(cfg.GraphsPerSet),
			"utilization":       formatFloat(cfg.Utilization),
			"hyperperiods":      strconv.Itoa(cfg.Hyperperiods),
			"battery":           cfg.BatteryName,
			"oracle":            strconv.FormatBool(cfg.OracleEstimates),
			"max_battery_hours": formatFloat(cfg.MaxBatteryHours),
			// The adaptive-stopping knobs decide which absolute set indices a
			// shard executes, so partials run with different settings must
			// refuse to merge (MergeReports compares Meta).
			"target_ci": formatFloat(cfg.TargetCI),
			"max_sets":  strconv.Itoa(cfg.MaxSets),
		},
		Shard: shardInfo(cfg.Shard),
	}
	for i, s := range schemes {
		rep.Rows = append(rep.Rows, ReportRow{
			Key:    s.name,
			Labels: map[string]string{"dvs": s.dvsName, "priority": s.prioName, "ready_list": s.readyList},
			Cells: map[string]Cell{
				"charge_mah":    aggs[i].charge.Cell(),
				"life_min":      aggs[i].life.Cell(),
				"energy_j":      aggs[i].energy.Cell(),
				"avg_current_a": aggs[i].current.Cell(),
			},
		})
	}
	return rep, nil
}

// table2RowsFromReport reconstructs the typed rows from a Report.
func table2RowsFromReport(r *Report) []Table2Row {
	rows := make([]Table2Row, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, Table2Row{
			Scheme:                row.Key,
			DVS:                   row.Labels["dvs"],
			Priority:              row.Labels["priority"],
			ReadyList:             row.Labels["ready_list"],
			ChargeDeliveredMAh:    row.Cells["charge_mah"].Mean,
			BatteryLifeMin:        row.Cells["life_min"].Mean,
			EnergyPerHyperperiodJ: row.Cells["energy_j"].Mean,
			AverageCurrentA:       row.Cells["avg_current_a"].Mean,
			Sets:                  row.Cells["charge_mah"].N,
		})
	}
	return rows
}

// RunTable2 regenerates Table 2 and returns its typed rows (see
// runTable2Report; the registry path returns the Report directly).
func RunTable2(ctx context.Context, cfg Table2Config) ([]Table2Row, error) {
	rep, err := runTable2Report(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return table2RowsFromReport(rep), nil
}
