package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"battsched/internal/stats"
)

func TestRunAdaptiveSetsDisabled(t *testing.T) {
	var batches [][2]int
	total, err := runAdaptiveSets(RunOptions{}, 5, func(lo, hi int) error {
		batches = append(batches, [2]int{lo, hi})
		return nil
	}, func() bool { t.Fatal("conv called with adaptive stopping disabled"); return false })
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 || !reflect.DeepEqual(batches, [][2]int{{0, 5}}) {
		t.Fatalf("total=%d batches=%v, want one batch [0,5)", total, batches)
	}
}

func TestRunAdaptiveSetsGrowsUntilConverged(t *testing.T) {
	var batches [][2]int
	total, err := runAdaptiveSets(RunOptions{TargetCI: 0.1, MaxSets: 100}, 4, func(lo, hi int) error {
		batches = append(batches, [2]int{lo, hi})
		return nil
	}, func() bool { return len(batches) >= 3 })
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 4}, {4, 8}, {8, 12}}
	if total != 12 || !reflect.DeepEqual(batches, want) {
		t.Fatalf("total=%d batches=%v, want %v", total, batches, want)
	}
}

func TestRunAdaptiveSetsHardMax(t *testing.T) {
	var batches [][2]int
	total, err := runAdaptiveSets(RunOptions{TargetCI: 0.001, MaxSets: 10}, 4, func(lo, hi int) error {
		batches = append(batches, [2]int{lo, hi})
		return nil
	}, func() bool { return false }) // never converges
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if total != 10 || !reflect.DeepEqual(batches, want) {
		t.Fatalf("total=%d batches=%v, want %v", total, batches, want)
	}
}

func TestRunAdaptiveSetsDefaultMax(t *testing.T) {
	total, err := runAdaptiveSets(RunOptions{TargetCI: 1e-12}, 3, func(lo, hi int) error { return nil },
		func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if total != 24 { // 8× the configured count
		t.Fatalf("total = %d, want 24", total)
	}
}

func TestRunAdaptiveSetsErrorStops(t *testing.T) {
	wantErr := errors.New("batch failed")
	calls := 0
	_, err := runAdaptiveSets(RunOptions{TargetCI: 0.1}, 4, func(lo, hi int) error {
		calls++
		if calls == 2 {
			return wantErr
		}
		return nil
	}, func() bool { return false })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestConverged(t *testing.T) {
	tight := &stats.Accumulator{}
	for _, x := range []float64{100, 100.1, 99.9, 100, 100.05} {
		tight.Add(x)
	}
	wide := &stats.Accumulator{}
	for _, x := range []float64{1, 100, 3, 80} {
		wide.Add(x)
	}
	if !converged(0.01, tight) {
		t.Fatalf("tight sample not converged at 1%%: relCI=%v", tight.RelCI95())
	}
	if converged(0.01, wide) {
		t.Fatalf("wide sample converged at 1%%: relCI=%v", wide.RelCI95())
	}
	if converged(0.01, tight, wide) {
		t.Fatal("mixed set converged")
	}
	var empty stats.Accumulator
	if converged(0.5, &empty) {
		t.Fatal("empty accumulator converged")
	}
	single := &stats.Accumulator{}
	single.Add(7)
	if converged(0.5, single) {
		t.Fatal("single-observation accumulator converged")
	}
}

// TestAdaptiveTable2StopsEarly checks the end-to-end behaviour: with a loose
// CI target the adaptive run must stop after the first batch (reporting
// exactly the configured set count), and with an impossible target it must
// run to the hard cap.
func TestAdaptiveTable2StopsEarly(t *testing.T) {
	cfg := QuickTable2Config()
	cfg.BatteryName = "kibam"
	cfg.TargetCI = 1000 // always satisfied after one batch
	cfg.MaxSets = 8
	rows, err := RunTable2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sets != cfg.Sets {
		t.Fatalf("Sets = %d, want first-batch count %d", rows[0].Sets, cfg.Sets)
	}

	cfg.TargetCI = 1e-12 // unattainable: must run to MaxSets
	rows, err = RunTable2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sets != cfg.MaxSets {
		t.Fatalf("Sets = %d, want hard cap %d", rows[0].Sets, cfg.MaxSets)
	}
}

// TestAdaptiveFirstBatchMatchesFixed checks that adaptive runs are prefixes
// of fixed runs: the first batch uses the same absolute set indices, so a
// converged adaptive run reports exactly the fixed-run values.
func TestAdaptiveFirstBatchMatchesFixed(t *testing.T) {
	fixed := QuickEstimateAblationConfig()
	adaptive := fixed
	adaptive.TargetCI = 1000
	adaptive.MaxSets = 99
	a, err := RunEstimateAblation(context.Background(), fixed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEstimateAblation(context.Background(), adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("adaptive first batch differs from fixed run:\n%v\n%v", a, b)
	}
}

// TestAdaptiveGridMatchesFixedRun pins the chunk-alignment contract: an
// adaptive scenario-grid run that grows to N sets in multiple batches merges
// exactly the same chunks as a fixed N-set run when N is a multiple of
// SetsPerJob, so the rows (including ±CI) are identical.
func TestAdaptiveGridMatchesFixedRun(t *testing.T) {
	fixed := QuickScenarioGridConfig()
	fixed.Sets = 8
	fixed.SetsPerJob = 4
	adaptive := fixed
	adaptive.Sets = 4         // two adaptive batches of 4
	adaptive.TargetCI = 1e-12 // never converges...
	adaptive.MaxSets = 8      // ...so it runs to the cap
	a, err := RunScenarioGrid(context.Background(), fixed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarioGrid(context.Background(), adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("adaptive 4+4-set grid differs from fixed 8-set grid:\n%v\n%v", a, b)
	}
}
