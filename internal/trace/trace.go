// Package trace records what the scheduler executed: an ordered list of
// execution slices (which node ran, at which frequency, drawing which battery
// current) plus idle gaps. Traces back the paper's Figure 4 and Figure 5
// style execution diagrams and can be rendered as an ASCII Gantt chart.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Slice is one maximal interval during which the processor state was
// constant: either executing a particular node at a particular frequency or
// idling.
type Slice struct {
	// Start is the absolute start time in seconds.
	Start float64
	// Duration in seconds (> 0).
	Duration float64
	// Idle reports whether the processor was idle during the slice.
	Idle bool
	// GraphIndex and Node identify the executing node (valid when !Idle).
	GraphIndex int
	Node       int
	// Label is a human-readable node label ("T1.n3").
	Label string
	// Instance is the index of the task-graph instance (job number).
	Instance int
	// Frequency is the processor frequency in Hz (0 when idle).
	Frequency float64
	// Current is the battery current in amperes during the slice.
	Current float64
}

// End returns the absolute end time of the slice.
func (s Slice) End() float64 { return s.Start + s.Duration }

// Trace is an ordered sequence of slices.
type Trace struct {
	Slices []Slice
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Reset empties the trace while keeping the slice capacity, so a reused trace
// stops allocating once it has grown to its steady-state size. Callers holding
// the old Slices observe them being overwritten by the next Append sequence.
func (t *Trace) Reset() { t.Slices = t.Slices[:0] }

// Append adds a slice, merging it with the previous one when both describe
// the same activity at the same frequency and current and are contiguous.
func (t *Trace) Append(s Slice) {
	if s.Duration <= 0 {
		return
	}
	if n := len(t.Slices); n > 0 {
		p := &t.Slices[n-1]
		contiguous := math.Abs(p.End()-s.Start) <= 1e-9*math.Max(1, math.Abs(s.Start))
		same := p.Idle == s.Idle && p.GraphIndex == s.GraphIndex && p.Node == s.Node &&
			p.Instance == s.Instance && nearly(p.Frequency, s.Frequency) && nearly(p.Current, s.Current)
		if contiguous && same {
			p.Duration += s.Duration
			return
		}
	}
	t.Slices = append(t.Slices, s)
}

func nearly(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// Duration returns the total time covered by the trace (end of last slice
// minus start of first), or 0 for an empty trace.
func (t *Trace) Duration() float64 {
	if len(t.Slices) == 0 {
		return 0
	}
	return t.Slices[len(t.Slices)-1].End() - t.Slices[0].Start
}

// BusyTime returns the total non-idle time.
func (t *Trace) BusyTime() float64 {
	var d float64
	for _, s := range t.Slices {
		if !s.Idle {
			d += s.Duration
		}
	}
	return d
}

// IdleTime returns the total idle time.
func (t *Trace) IdleTime() float64 {
	var d float64
	for _, s := range t.Slices {
		if s.Idle {
			d += s.Duration
		}
	}
	return d
}

// ExecutedCycles returns the total number of cycles executed.
func (t *Trace) ExecutedCycles() float64 {
	var c float64
	for _, s := range t.Slices {
		if !s.Idle {
			c += s.Frequency * s.Duration
		}
	}
	return c
}

// Charge returns the total battery charge of the trace in coulombs.
func (t *Trace) Charge() float64 {
	var q float64
	for _, s := range t.Slices {
		q += s.Current * s.Duration
	}
	return q
}

// SlicesOf returns the slices during which the given graph/node executed.
func (t *Trace) SlicesOf(graphIndex, node int) []Slice {
	var out []Slice
	for _, s := range t.Slices {
		if !s.Idle && s.GraphIndex == graphIndex && s.Node == node {
			out = append(out, s)
		}
	}
	return out
}

// FrequencyIsLocallyNonIncreasing reports whether, within every window of
// length `window` seconds aligned to the trace start, the execution frequency
// never increases from one busy slice to the next (idle slices are ignored).
// This is the scheduler-level statement of battery guideline 1.
func (t *Trace) FrequencyIsLocallyNonIncreasing(window float64) bool {
	if len(t.Slices) == 0 {
		return true
	}
	if window <= 0 {
		window = math.Inf(1)
	}
	start := t.Slices[0].Start
	prev := math.Inf(1)
	windowIdx := -1
	for _, s := range t.Slices {
		if s.Idle {
			continue
		}
		idx := int((s.Start - start) / window)
		if idx != windowIdx {
			windowIdx = idx
			prev = math.Inf(1)
		}
		if s.Frequency > prev+1e-6 {
			return false
		}
		prev = s.Frequency
	}
	return true
}

// GanttOptions control Render.
type GanttOptions struct {
	// Width is the number of character cells representing the full trace
	// duration (default 80).
	Width int
	// ShowFrequency appends a second line per row with the frequency level.
	ShowFrequency bool
}

// Render writes an ASCII Gantt chart of the trace to w, one row per
// (graph, node) pair plus an "idle" row, using '#' marks for execution.
func (t *Trace) Render(w io.Writer, opts GanttOptions) error {
	if opts.Width <= 0 {
		opts.Width = 80
	}
	if len(t.Slices) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	start := t.Slices[0].Start
	total := t.Duration()
	if total <= 0 {
		total = 1
	}
	cell := total / float64(opts.Width)

	type rowKey struct {
		graph, node int
		label       string
	}
	rowsSeen := map[rowKey]bool{}
	var rows []rowKey
	for _, s := range t.Slices {
		if s.Idle {
			continue
		}
		k := rowKey{s.GraphIndex, s.Node, s.Label}
		if !rowsSeen[k] {
			rowsSeen[k] = true
			rows = append(rows, k)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].graph != rows[j].graph {
			return rows[i].graph < rows[j].graph
		}
		return rows[i].node < rows[j].node
	})

	labelWidth := 6
	for _, r := range rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	fill := func(cells []byte, s Slice, mark byte) {
		from := int((s.Start - start) / cell)
		to := int(math.Ceil((s.End() - start) / cell))
		if from < 0 {
			from = 0
		}
		if to > len(cells) {
			to = len(cells)
		}
		for i := from; i < to; i++ {
			cells[i] = mark
		}
	}
	for _, r := range rows {
		cells := repeatByte(' ', opts.Width)
		for _, s := range t.Slices {
			if s.Idle || s.GraphIndex != r.graph || s.Node != r.node {
				continue
			}
			fill(cells, s, '#')
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelWidth, r.label, string(cells)); err != nil {
			return err
		}
	}
	idleCells := repeatByte(' ', opts.Width)
	for _, s := range t.Slices {
		if s.Idle {
			fill(idleCells, s, '.')
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelWidth, "idle", string(idleCells)); err != nil {
		return err
	}
	if opts.ShowFrequency {
		freqCells := repeatByte(' ', opts.Width)
		var fmax float64
		for _, s := range t.Slices {
			if s.Frequency > fmax {
				fmax = s.Frequency
			}
		}
		for _, s := range t.Slices {
			if s.Idle || fmax <= 0 {
				continue
			}
			level := byte('1' + int(math.Min(8, math.Round(s.Frequency/fmax*8))))
			fill(freqCells, s, level)
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|  (1=low .. 9=fmax)\n", labelWidth, "freq", string(freqCells)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*s%.4gs\n", labelWidth, "", opts.Width-1, "", total)
	return err
}

func repeatByte(b byte, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return s
}

// String implements fmt.Stringer with a compact single-line summary.
func (t *Trace) String() string {
	return fmt.Sprintf("Trace(slices=%d busy=%.3gs idle=%.3gs)", len(t.Slices), t.BusyTime(), t.IdleTime())
}

// Describe returns a multi-line textual listing of every slice, useful in
// examples and debugging.
func (t *Trace) Describe() string {
	var b strings.Builder
	for _, s := range t.Slices {
		if s.Idle {
			fmt.Fprintf(&b, "[%8.4f, %8.4f] idle\n", s.Start, s.End())
			continue
		}
		fmt.Fprintf(&b, "[%8.4f, %8.4f] %-12s f=%.3g Hz I=%.3g A (instance %d)\n",
			s.Start, s.End(), s.Label, s.Frequency, s.Current, s.Instance)
	}
	return b.String()
}
