package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := New()
	t.Append(Slice{Start: 0, Duration: 1, GraphIndex: 0, Node: 0, Label: "T1.a", Instance: 0, Frequency: 1e9, Current: 2})
	t.Append(Slice{Start: 1, Duration: 2, GraphIndex: 0, Node: 1, Label: "T1.b", Instance: 0, Frequency: 0.5e9, Current: 0.5})
	t.Append(Slice{Start: 3, Duration: 1, Idle: true, Current: 0.01})
	t.Append(Slice{Start: 4, Duration: 1, GraphIndex: 1, Node: 0, Label: "T2.a", Instance: 0, Frequency: 0.75e9, Current: 1})
	return t
}

func TestAppendMergesContiguousIdenticalSlices(t *testing.T) {
	tr := New()
	tr.Append(Slice{Start: 0, Duration: 1, GraphIndex: 0, Node: 0, Frequency: 1e9, Current: 1})
	tr.Append(Slice{Start: 1, Duration: 1, GraphIndex: 0, Node: 0, Frequency: 1e9, Current: 1})
	if len(tr.Slices) != 1 || tr.Slices[0].Duration != 2 {
		t.Fatalf("merge failed: %+v", tr.Slices)
	}
	// Different node: no merge.
	tr.Append(Slice{Start: 2, Duration: 1, GraphIndex: 0, Node: 1, Frequency: 1e9, Current: 1})
	if len(tr.Slices) != 2 {
		t.Fatalf("unexpected merge: %+v", tr.Slices)
	}
	// Non-contiguous identical slice: no merge.
	tr.Append(Slice{Start: 10, Duration: 1, GraphIndex: 0, Node: 1, Frequency: 1e9, Current: 1})
	if len(tr.Slices) != 3 {
		t.Fatalf("merged across a gap: %+v", tr.Slices)
	}
	// Zero duration ignored.
	tr.Append(Slice{Start: 11, Duration: 0})
	if len(tr.Slices) != 3 {
		t.Fatal("zero-duration slice appended")
	}
}

func TestAccountingHelpers(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Duration(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Duration = %v, want 5", got)
	}
	if got := tr.BusyTime(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("BusyTime = %v, want 4", got)
	}
	if got := tr.IdleTime(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("IdleTime = %v, want 1", got)
	}
	wantCycles := 1e9 + 2*0.5e9 + 0.75e9
	if got := tr.ExecutedCycles(); math.Abs(got-wantCycles) > 1 {
		t.Fatalf("ExecutedCycles = %v, want %v", got, wantCycles)
	}
	wantCharge := 2.0 + 2*0.5 + 0.01 + 1.0
	if got := tr.Charge(); math.Abs(got-wantCharge) > 1e-9 {
		t.Fatalf("Charge = %v, want %v", got, wantCharge)
	}
	if got := tr.SlicesOf(0, 1); len(got) != 1 || got[0].Label != "T1.b" {
		t.Fatalf("SlicesOf = %+v", got)
	}
	if s := tr.Slices[0]; s.End() != 1 {
		t.Fatalf("End = %v", s.End())
	}
	if tr.String() == "" || tr.Describe() == "" {
		t.Fatal("empty String/Describe")
	}
	if New().Duration() != 0 {
		t.Fatal("empty trace duration != 0")
	}
}

func TestFrequencyIsLocallyNonIncreasing(t *testing.T) {
	tr := sampleTrace()
	// Globally: 1e9, 0.5e9, (idle), 0.75e9 -> increases at the last slice.
	if tr.FrequencyIsLocallyNonIncreasing(0) {
		t.Fatal("global check should fail")
	}
	// With a 4-second window the increase falls into the second window.
	if !tr.FrequencyIsLocallyNonIncreasing(4) {
		t.Fatal("windowed check should pass")
	}
	if !New().FrequencyIsLocallyNonIncreasing(1) {
		t.Fatal("empty trace should pass")
	}
}

func TestRenderGantt(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Render(&buf, GanttOptions{Width: 40, ShowFrequency: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T1.a", "T1.b", "T2.a", "idle", "freq", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered Gantt missing %q:\n%s", want, out)
		}
	}
	// Default width and empty trace.
	var buf2 bytes.Buffer
	if err := New().Render(&buf2, GanttOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "empty trace") {
		t.Fatalf("empty trace rendering = %q", buf2.String())
	}
}

func TestRenderDefaultsWidth(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Render(&buf, GanttOptions{Width: 0}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected rendering:\n%s", buf.String())
	}
}

// Property: busy + idle time equals the sum of slice durations, and charge is
// non-negative, for arbitrary appended slices.
func TestTraceAccountingProperty(t *testing.T) {
	f := func(durs []float64, idleMask uint32) bool {
		tr := New()
		start := 0.0
		var want float64
		for i, d := range durs {
			d = math.Abs(math.Mod(d, 10))
			if d == 0 {
				continue
			}
			tr.Append(Slice{
				Start:     start,
				Duration:  d,
				Idle:      idleMask&(1<<(uint(i)%32)) != 0,
				Node:      i % 3,
				Frequency: 1e9,
				Current:   0.5,
			})
			start += d
			want += d
		}
		return math.Abs(tr.BusyTime()+tr.IdleTime()-want) < 1e-6 && tr.Charge() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
