package battery_test

import (
	"errors"
	"testing"

	"battsched/internal/battery"
	_ "battsched/internal/battery/diffusion"
	_ "battsched/internal/battery/kibam"
	_ "battsched/internal/battery/peukert"
	"battsched/internal/battery/stochastic"
	"battsched/internal/profile"
)

// batchTestModels builds a mixed batch: every registered model (analytic and
// stepped paths, staggered death times), a Monte Carlo stochastic instance
// (stepped path by its analytic gate), a slot-exact stochastic instance, and
// a duplicate of the first registered model (duplicates must not interfere).
func batchTestModels(t *testing.T) []battery.Model {
	t.Helper()
	var models []battery.Model
	for _, name := range battery.Names() {
		m, err := battery.New(name)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	mc := stochastic.Default().Params()
	mc.MonteCarlo = true
	mc.Seed = 42
	mcb, err := stochastic.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	models = append(models, mcb)
	se := stochastic.Default().Params()
	se.ExpectedStep = se.SlotDuration
	seb, err := stochastic.New(se)
	if err != nil {
		t.Fatal(err)
	}
	models = append(models, seb)
	first, err := battery.New(battery.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	return append(models, first)
}

// TestSimulateBatchMatchesSequential is the batch equivalence property:
// SimulateBatch is bit-identical to N sequential SimulateUntilExhausted
// calls, across path mixes (analytic + stepped), staggered deaths, horizon
// caps, forced stepping and batch sizes including 1.
func TestSimulateBatchMatchesSequential(t *testing.T) {
	long := profile.New()
	long.Append(33.4, 1.2)
	long.Append(21.7, 0.4)
	long.Append(5.1, 0.01)
	short := profile.New()
	short.Append(0.7, 2.0)
	short.Append(1.3, 0.05)

	cases := []struct {
		name string
		p    *profile.Profile
		opts battery.SimulateOptions
	}{
		{"default", long, battery.SimulateOptions{}},
		{"horizon-survivors", long, battery.SimulateOptions{MaxTime: 1800}},
		{"horizon-mid-segment", long, battery.SimulateOptions{MaxTime: 40}},
		{"forced-stepped", long, battery.SimulateOptions{MaxStep: 2}},
		{"short-profile", short, battery.SimulateOptions{MaxTime: 7200}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			models := batchTestModels(t)
			// Sequential reference first; Reset (run by every simulation)
			// restores each instance, so the same instances then go through
			// the batch and must reproduce the same bits.
			want := make([]battery.Result, len(models))
			for i, m := range models {
				r, err := battery.SimulateUntilExhausted(m, tc.p, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = r
			}
			for _, batch := range [][]battery.Model{models, models[:1], models[2:3], models[len(models)-2 : len(models)-1]} {
				got, err := battery.SimulateBatch(batch, tc.p, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				for i, m := range batch {
					wi := 0
					for j := range models {
						if models[j] == m {
							wi = j
							break
						}
					}
					if got[i] != want[wi] {
						t.Errorf("model %d (%s): batch %+v != sequential %+v", i, m.Name(), got[i], want[wi])
					}
				}
			}
			// Instance reuse: a second batch over the same instances must
			// reproduce the same bits again.
			again, err := battery.SimulateBatch(models, tc.p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range models {
				if again[i] != want[i] {
					t.Errorf("model %d (%s): reused-instance batch %+v != first run %+v", i, models[i].Name(), again[i], want[i])
				}
			}
		})
	}
}

// TestSimulateBatchErrors pins the batch error contract: nil models are
// rejected with their index, bad profiles are rejected, and an alive model
// that under-sustains a shared substep is ErrNoProgress (it would
// desynchronise the shared slot clock), not a silent divergence.
func TestSimulateBatchErrors(t *testing.T) {
	p := profile.Constant(0.5, 2)
	if _, err := battery.SimulateBatch([]battery.Model{nil}, p, battery.SimulateOptions{}); !errors.Is(err, battery.ErrNilModel) {
		t.Fatalf("nil model: err = %v, want ErrNilModel", err)
	}
	m, err := battery.New("kibam")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := battery.SimulateBatch([]battery.Model{m}, profile.New(), battery.SimulateOptions{}); !errors.Is(err, battery.ErrBadProfile) {
		t.Fatalf("empty profile: err = %v, want ErrBadProfile", err)
	}
	q := &quantumModel{quantum: 0.3, capacity: 1e9}
	if _, err := battery.SimulateBatch([]battery.Model{q}, p, battery.SimulateOptions{MaxTime: 10, MaxStep: 1}); !errors.Is(err, battery.ErrNoProgress) {
		t.Fatalf("under-sustaining model: err = %v, want ErrNoProgress", err)
	}
}

// TestSimulateBatchEmpty: a zero-model batch is a valid no-op.
func TestSimulateBatchEmpty(t *testing.T) {
	rs, err := battery.SimulateBatch(nil, profile.Constant(1, 10), battery.SimulateOptions{})
	if err != nil || len(rs) != 0 {
		t.Fatalf("empty batch: got %v, %v", rs, err)
	}
}

// TestSimulateBatchSharedClockNarrows checks the active-set bookkeeping
// around staggered deaths: two capacity-scaled copies of the Monte Carlo
// stochastic model die at different times, and both must report the same
// lifetime and repetition count as their sequential runs even though the
// earlier death narrows the shared pass for the survivor.
func TestSimulateBatchSharedClockNarrows(t *testing.T) {
	mk := func(scale float64) battery.Model {
		ps := stochastic.Default().Params()
		ps.MonteCarlo = true
		ps.Seed = 7
		ps.MaxCoulombs *= scale
		ps.NominalCoulombs *= scale
		b, err := stochastic.New(ps)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	p := profile.Constant(1.5, 30)
	small, big := mk(0.25), mk(1)
	rSmall, err := battery.SimulateUntilExhausted(small, p, battery.SimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := battery.SimulateUntilExhausted(big, p, battery.SimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rSmall.Exhausted || !rBig.Exhausted || rSmall.Lifetime >= rBig.Lifetime {
		t.Fatalf("want staggered deaths, got %+v and %+v", rSmall, rBig)
	}
	got, err := battery.SimulateBatch([]battery.Model{small, big}, p, battery.SimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != rSmall || got[1] != rBig {
		t.Fatalf("batch %+v, want [%+v %+v]", got, rSmall, rBig)
	}
}
