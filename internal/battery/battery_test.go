package battery_test

import (
	"errors"
	"math"
	"testing"

	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/peukert"
	"battsched/internal/battery/stochastic"
	"battsched/internal/profile"
)

func allModels() []battery.Model {
	return []battery.Model{kibam.Default(), diffusion.Default(), stochastic.Default(), peukert.Default()}
}

func TestUnitConversions(t *testing.T) {
	if got := battery.Coulombs(1000); got != 3600 {
		t.Fatalf("Coulombs(1000 mAh) = %v, want 3600", got)
	}
	if got := battery.MAh(3600); got != 1000 {
		t.Fatalf("MAh(3600 C) = %v, want 1000", got)
	}
	if battery.MAh(battery.Coulombs(123.4)) != 123.4 {
		t.Fatal("MAh/Coulombs not inverse")
	}
}

func TestResultAccessors(t *testing.T) {
	r := battery.Result{Lifetime: 600, DeliveredCharge: 7200, Exhausted: true}
	if r.LifetimeMinutes() != 10 {
		t.Fatalf("LifetimeMinutes = %v", r.LifetimeMinutes())
	}
	if r.DeliveredMAh() != 2000 {
		t.Fatalf("DeliveredMAh = %v", r.DeliveredMAh())
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSimulateErrors(t *testing.T) {
	p := profile.Constant(1, 10)
	if _, err := battery.SimulateUntilExhausted(nil, p, battery.SimulateOptions{}); !errors.Is(err, battery.ErrNilModel) {
		t.Fatalf("nil model err = %v", err)
	}
	if _, err := battery.SimulateUntilExhausted(kibam.Default(), profile.New(), battery.SimulateOptions{}); !errors.Is(err, battery.ErrBadProfile) {
		t.Fatalf("empty profile err = %v", err)
	}
	if _, err := battery.ConstantLoadLifetime(kibam.Default(), 1, 0); !errors.Is(err, battery.ErrBadHorizon) {
		t.Fatalf("bad horizon err = %v", err)
	}
}

func TestSimulateHorizonWithoutExhaustion(t *testing.T) {
	b := kibam.Default()
	// A tiny current for a short horizon: the battery must survive.
	r, err := battery.SimulateUntilExhausted(b, profile.Constant(0.001, 10), battery.SimulateOptions{MaxTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exhausted {
		t.Fatal("battery should not be exhausted")
	}
	if math.Abs(r.Lifetime-100) > 1e-6 {
		t.Fatalf("lifetime = %v, want horizon 100", r.Lifetime)
	}
	if r.Repetitions != 10 {
		t.Fatalf("repetitions = %d, want 10", r.Repetitions)
	}
}

func TestSimulateRepeatsProfileUntilDeath(t *testing.T) {
	for _, m := range allModels() {
		p := profile.New()
		p.Append(30, 1.5)
		p.Append(30, 0.2)
		r, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 1e6})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !r.Exhausted {
			t.Fatalf("%s: battery did not die", m.Name())
		}
		if r.Repetitions < 1 {
			t.Fatalf("%s: expected at least one full repetition", m.Name())
		}
		if r.Lifetime < float64(r.Repetitions)*p.Duration()-1e-6 {
			t.Fatalf("%s: lifetime %v inconsistent with %d repetitions", m.Name(), r.Lifetime, r.Repetitions)
		}
		if r.DeliveredCharge <= 0 || r.DeliveredCharge > m.MaxCapacity()+1e-6 {
			t.Fatalf("%s: delivered charge %v out of range", m.Name(), r.DeliveredCharge)
		}
	}
}

func TestDeliveredChargeMatchesModelAccounting(t *testing.T) {
	for _, m := range allModels() {
		r, err := battery.ConstantLoadLifetime(m, 1.0, 1e6)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if math.Abs(r.DeliveredCharge-m.DeliveredCharge()) > 1e-6 {
			t.Fatalf("%s: result delivered %v != model delivered %v", m.Name(), r.DeliveredCharge, m.DeliveredCharge())
		}
	}
}

func TestAllModelsRankLoadsConsistently(t *testing.T) {
	// Every model must exhibit the rate-capacity effect the scheduling
	// guidelines rely on: delivered capacity is non-increasing in the load.
	for _, m := range allModels() {
		points, err := battery.DeliveredCapacityCurve(m, []float64{0.25, 0.5, 1.0, 2.0}, 1e6)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := 1; i < len(points); i++ {
			if points[i].DeliveredMAh > points[i-1].DeliveredMAh+1 {
				t.Fatalf("%s: delivered capacity increases with load: %+v", m.Name(), points)
			}
		}
		for _, pt := range points {
			if pt.LifetimeMinutes <= 0 {
				t.Fatalf("%s: non-positive lifetime in curve: %+v", m.Name(), pt)
			}
		}
	}
}

func TestCurveExtrapolationMatchesPaperCapacities(t *testing.T) {
	// The paper defines the maximum capacity (2000 mAh) as the zero-load
	// extrapolation and quotes a nominal capacity around 1600 mAh. Check the
	// default KiBaM and stochastic cells reproduce those two anchors.
	for _, m := range []battery.Model{kibam.Default(), stochastic.Default()} {
		low, err := battery.ConstantLoadLifetime(m, 0.02, 5e7)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if low.DeliveredMAh() < 1850 {
			t.Fatalf("%s: near-zero-load capacity = %v mAh, want close to 2000", m.Name(), low.DeliveredMAh())
		}
		nominal, err := battery.ConstantLoadLifetime(m, 2.0, 5e7)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if nominal.DeliveredMAh() < 1350 || nominal.DeliveredMAh() > 1850 {
			t.Fatalf("%s: 2A-load capacity = %v mAh, want in [1350, 1850]", m.Name(), nominal.DeliveredMAh())
		}
	}
}
