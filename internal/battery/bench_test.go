package battery_test

import (
	"testing"

	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/peukert"
	"battsched/internal/battery/stochastic"
	"battsched/internal/profile"
)

// benchLifetimeProfile is a representative scheduler-shaped load: a burst, a
// medium plateau and a near-idle tail with durations that are not multiples
// of the 2 s benchmark substep, as in real emitted profiles.
func benchLifetimeProfile() *profile.Profile {
	p := profile.New()
	p.Append(33.4, 1.2)
	p.Append(21.7, 0.4)
	p.Append(5.1, 0.01)
	return p
}

// benchLifetime runs full lifetime simulations of fresh model instances over
// a 72 h horizon under the given options.
func benchLifetime(b *testing.B, model func() battery.Model, opts battery.SimulateOptions) {
	b.Helper()
	p := benchLifetimeProfile()
	opts.MaxTime = 72 * 3600
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := battery.SimulateUntilExhausted(model(), p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Exhausted {
			b.Fatal("battery survived the horizon")
		}
	}
}

// benchLifetimePaths benchmarks the stepped (MaxStep 2, the pre-analytic
// experiment configuration) and analytic paths on the same profile.
func benchLifetimePaths(b *testing.B, model func() battery.Model) {
	b.Helper()
	b.Run("stepped", func(b *testing.B) {
		benchLifetime(b, model, battery.SimulateOptions{MaxStep: 2})
	})
	b.Run("analytic", func(b *testing.B) {
		benchLifetime(b, model, battery.SimulateOptions{})
	})
}

func BenchmarkLifetimeKiBaM(b *testing.B) {
	benchLifetimePaths(b, func() battery.Model { return kibam.Default() })
}

func BenchmarkLifetimeDiffusion(b *testing.B) {
	benchLifetimePaths(b, func() battery.Model { return diffusion.Default() })
}

func BenchmarkLifetimePeukert(b *testing.B) {
	benchLifetimePaths(b, func() battery.Model { return peukert.Default() })
}

// BenchmarkLifetimeStochastic has no analytic variant: the stochastic model
// keeps fine stepping (its recovery probability depends on the evolving depth
// of discharge, so no closed-form segment update exists).
func BenchmarkLifetimeStochastic(b *testing.B) {
	b.Run("stepped", func(b *testing.B) {
		benchLifetime(b, func() battery.Model { return stochastic.Default() }, battery.SimulateOptions{MaxStep: 2})
	})
}
