package battery_test

import (
	"testing"

	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/peukert"
	"battsched/internal/battery/stochastic"
	"battsched/internal/profile"
)

// benchLifetimeProfile is a representative scheduler-shaped load: a burst, a
// medium plateau and a near-idle tail with durations that are not multiples
// of the 2 s benchmark substep, as in real emitted profiles.
func benchLifetimeProfile() *profile.Profile {
	p := profile.New()
	p.Append(33.4, 1.2)
	p.Append(21.7, 0.4)
	p.Append(5.1, 0.01)
	return p
}

// benchLifetime runs full lifetime simulations of fresh model instances over
// a 72 h horizon under the given options.
func benchLifetime(b *testing.B, model func() battery.Model, opts battery.SimulateOptions) {
	b.Helper()
	p := benchLifetimeProfile()
	opts.MaxTime = 72 * 3600
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := battery.SimulateUntilExhausted(model(), p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Exhausted {
			b.Fatal("battery survived the horizon")
		}
	}
}

// benchLifetimePaths benchmarks the stepped (MaxStep 2, the pre-analytic
// experiment configuration) and analytic paths on the same profile.
func benchLifetimePaths(b *testing.B, model func() battery.Model) {
	b.Helper()
	b.Run("stepped", func(b *testing.B) {
		benchLifetime(b, model, battery.SimulateOptions{MaxStep: 2})
	})
	b.Run("analytic", func(b *testing.B) {
		benchLifetime(b, model, battery.SimulateOptions{})
	})
}

func BenchmarkLifetimeKiBaM(b *testing.B) {
	benchLifetimePaths(b, func() battery.Model { return kibam.Default() })
}

func BenchmarkLifetimeDiffusion(b *testing.B) {
	benchLifetimePaths(b, func() battery.Model { return diffusion.Default() })
}

func BenchmarkLifetimePeukert(b *testing.B) {
	benchLifetimePaths(b, func() battery.Model { return peukert.Default() })
}

// BenchmarkLifetimeStochastic compares the paths of the expected-value
// stochastic model: "stepped" is the pre-analytic configuration, "analytic"
// the closed-form geometric-recovery fast path that reproduces the same
// expected recursion.
func BenchmarkLifetimeStochastic(b *testing.B) {
	benchLifetimePaths(b, func() battery.Model { return stochastic.Default() })
}

// BenchmarkLifetimeStochasticFast is the CI-tracked speedup gate of the
// stochastic fast path: the same expected-value lifetime through the default
// analytic dispatch versus the forced 1 s-substep stepping it replaces.
func BenchmarkLifetimeStochasticFast(b *testing.B) {
	b.Run("stepped1s", func(b *testing.B) {
		benchLifetime(b, func() battery.Model { return stochastic.Default() }, battery.SimulateOptions{MaxStep: 1})
	})
	b.Run("fast", func(b *testing.B) {
		benchLifetime(b, func() battery.Model { return stochastic.Default() }, battery.SimulateOptions{})
	})
}

// batchBenchModels builds n models cycling through the four families with
// scaled capacities, so the batch mixes analytic and stepped paths and the
// deaths stagger (the shared pass narrows as batteries die).
func batchBenchModels(b *testing.B, n int) []battery.Model {
	b.Helper()
	names := []string{"kibam", "diffusion", "peukert", "stochastic"}
	models := make([]battery.Model, n)
	for i := range models {
		m, err := battery.New(names[i%len(names)])
		if err != nil {
			b.Fatal(err)
		}
		models[i] = m
	}
	return models
}

// benchLifetimeBatch benchmarks evaluating n models over the bench profile
// three ways: the batch API, n sequential default-dispatch simulations
// (scalar), and n sequential stepped-path simulations (scalar-stepped, the
// pre-analytic configuration — the baseline the batch speedup criterion is
// measured against).
func benchLifetimeBatch(b *testing.B, n int) {
	p := benchLifetimeProfile()
	opts := battery.SimulateOptions{MaxTime: 72 * 3600}
	b.Run("batch", func(b *testing.B) {
		models := batchBenchModels(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := battery.SimulateBatch(models, p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		models := batchBenchModels(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range models {
				if _, err := battery.SimulateUntilExhausted(m, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("scalar-stepped", func(b *testing.B) {
		models := batchBenchModels(b, n)
		stepped := opts
		stepped.MaxStep = 2
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range models {
				if _, err := battery.SimulateUntilExhausted(m, p, stepped); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkLifetimeBatch4(b *testing.B)  { benchLifetimeBatch(b, 4) }
func BenchmarkLifetimeBatch16(b *testing.B) { benchLifetimeBatch(b, 16) }
