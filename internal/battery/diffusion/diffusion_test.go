package diffusion

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

func TestNewRejectsBadParams(t *testing.T) {
	bad := []Params{
		{AlphaCoulombs: 0, BetaSquared: 1e-3},
		{AlphaCoulombs: 100, BetaSquared: 0},
		{AlphaCoulombs: 100, BetaSquared: 1e-3, Terms: -1},
	}
	for i, p := range bad {
		if _, err := New(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: New(%+v) err = %v, want ErrBadParams", i, p, err)
		}
	}
}

func TestDefaultTermsApplied(t *testing.T) {
	b, err := New(Params{AlphaCoulombs: 100, BetaSquared: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Params().Terms != DefaultTerms {
		t.Fatalf("Terms = %d, want %d", b.Params().Terms, DefaultTerms)
	}
}

func TestResetClearsState(t *testing.T) {
	b := Default()
	b.Drain(1, 100)
	if b.Sigma() == 0 {
		t.Fatal("sigma should be positive after a drain")
	}
	b.Reset()
	if b.Sigma() != 0 || b.DeliveredCharge() != 0 || b.UnavailableCharge() != 0 {
		t.Fatalf("state not cleared: sigma=%v delivered=%v unavailable=%v",
			b.Sigma(), b.DeliveredCharge(), b.UnavailableCharge())
	}
}

func TestSigmaAccountsDeliveredPlusUnavailable(t *testing.T) {
	b := Default()
	b.Drain(1.0, 200)
	want := b.DeliveredCharge() + b.UnavailableCharge()
	if math.Abs(b.Sigma()-want) > 1e-9 {
		t.Fatalf("Sigma = %v, want %v", b.Sigma(), want)
	}
	if b.UnavailableCharge() <= 0 {
		t.Fatal("unavailable charge should be positive immediately after a load")
	}
}

func TestRecoveryDuringRest(t *testing.T) {
	b := Default()
	b.Drain(2.0, 300)
	u0 := b.UnavailableCharge()
	d0 := b.DeliveredCharge()
	b.Drain(0, 3000)
	if b.UnavailableCharge() >= u0 {
		t.Fatalf("unavailable charge did not decay during rest: %v -> %v", u0, b.UnavailableCharge())
	}
	if b.DeliveredCharge() != d0 {
		t.Fatalf("rest changed delivered charge: %v -> %v", d0, b.DeliveredCharge())
	}
}

func TestRateCapacityEffect(t *testing.T) {
	loads := []float64{0.2, 0.5, 1.0, 2.0, 4.0}
	prev := math.Inf(1)
	for _, i := range loads {
		b := Default()
		r, err := battery.ConstantLoadLifetime(b, i, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exhausted {
			t.Fatalf("battery did not die at load %v", i)
		}
		if r.DeliveredCharge > prev+1e-6 {
			t.Fatalf("delivered charge increased with load at %v A", i)
		}
		if r.DeliveredCharge > b.MaxCapacity()+1e-6 {
			t.Fatalf("delivered %v exceeds alpha %v", r.DeliveredCharge, b.MaxCapacity())
		}
		prev = r.DeliveredCharge
	}
}

func TestLowLoadApproachesAlpha(t *testing.T) {
	b := Default()
	r, err := battery.ConstantLoadLifetime(b, 0.05, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted {
		t.Fatal("battery did not die under the horizon")
	}
	if frac := r.DeliveredCharge / b.MaxCapacity(); frac < 0.9 {
		t.Fatalf("low-load delivered fraction = %v, want >= 0.9", frac)
	}
}

func TestConstantLoadLifetimeMatchesClosedForm(t *testing.T) {
	// For a constant current I applied from t=0, the model predicts failure
	// when I*(L + 2*sum_m (1-exp(-beta^2 m^2 L))/(beta^2 m^2)) = alpha.
	// Verify the simulated lifetime satisfies this equation.
	b := Default()
	const current = 1.0
	r, err := battery.ConstantLoadLifetime(b, current, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	p := b.Params()
	L := r.Lifetime
	sigma := current * L
	for m := 1; m <= p.Terms; m++ {
		k := p.BetaSquared * float64(m) * float64(m)
		sigma += 2 * current * (1 - math.Exp(-k*L)) / k
	}
	if math.Abs(sigma-p.AlphaCoulombs) > 1e-3*p.AlphaCoulombs {
		t.Fatalf("closed-form sigma at simulated lifetime = %v, want alpha = %v", sigma, p.AlphaCoulombs)
	}
}

func TestDrainAfterDeath(t *testing.T) {
	b := Default()
	for i := 0; i < 1000000; i++ {
		if _, alive := b.Drain(5, 10); !alive {
			break
		}
	}
	if s, alive := b.Drain(1, 1); s != 0 || alive {
		t.Fatalf("Drain after death = (%v,%v), want (0,false)", s, alive)
	}
}

func TestZeroNegativeInputs(t *testing.T) {
	b := Default()
	if s, alive := b.Drain(1, 0); s != 0 || !alive {
		t.Fatalf("Drain(1,0) = (%v,%v)", s, alive)
	}
	if s, alive := b.Drain(-2, 10); s != 10 || !alive {
		t.Fatalf("Drain(-2,10) = (%v,%v)", s, alive)
	}
	if b.DeliveredCharge() != 0 {
		t.Fatalf("negative current delivered charge = %v", b.DeliveredCharge())
	}
}

func TestNameParamsString(t *testing.T) {
	b := Default()
	if b.Name() != "diffusion" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: the intermittent-load lifetime is never shorter than the
// continuous-load lifetime at the same current amplitude (recovery during
// rest can only help).
func TestRestNeverHurtsProperty(t *testing.T) {
	f := func(seed int64) bool {
		amp := 1.0 + math.Abs(float64(seed%300))/100.0 // 1.0 .. 4.0 A
		cont := Default()
		rc, err := battery.ConstantLoadLifetime(cont, amp, 1e6)
		if err != nil || !rc.Exhausted {
			return false
		}
		// 50% duty cycle with 10 s bursts.
		inter := Default()
		var tTotal, active float64
		alive := true
		for alive && tTotal < 1e6 {
			var sustained float64
			sustained, alive = inter.Drain(amp, 10)
			active += sustained
			tTotal += sustained
			if !alive {
				break
			}
			inter.Drain(0, 10)
			tTotal += 10
		}
		// Active time under the intermittent load must be at least the
		// continuous lifetime.
		return active >= rc.Lifetime-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRepetitionOperatorMatchesSegmentStepping checks the diagonal transfer
// operator reproduces segment-by-segment recurrence stepping over many
// profile repetitions.
func TestRepetitionOperatorMatchesSegmentStepping(t *testing.T) {
	p := profile.New()
	p.Append(30, 1.5)
	p.Append(20, 0.1)
	p.Append(10, 0.6)
	viaOperator := Default()
	viaSegments := Default()
	op := viaOperator.RepetitionOperator(p)
	reps := 0
	for reps < 40 && op.CanAdvance() {
		op.Advance()
		reps++
	}
	if reps < 10 {
		t.Fatalf("operator advanced only %d repetitions before its conservative check tripped", reps)
	}
	for r := 0; r < reps; r++ {
		for _, s := range p.Segments {
			if _, alive := viaSegments.DrainSegment(s.Current, s.Duration); !alive {
				t.Fatalf("segment path died at repetition %d", r)
			}
		}
	}
	tol := 1e-9 * viaSegments.MaxCapacity()
	if math.Abs(viaOperator.Sigma()-viaSegments.Sigma()) > tol {
		t.Fatalf("sigma: operator %v vs segments %v", viaOperator.Sigma(), viaSegments.Sigma())
	}
	if math.Abs(viaOperator.DeliveredCharge()-viaSegments.DeliveredCharge()) > tol {
		t.Fatalf("delivered: operator %v vs segments %v", viaOperator.DeliveredCharge(), viaSegments.DeliveredCharge())
	}
}

// TestDecayCacheSemigroup checks the decay-factor buffer keyed by dt does not
// change the recurrence: splitting a constant-current interval into repeated
// equal steps (cache hits) plus a remainder (cache miss) matches one whole
// step.
func TestDecayCacheSemigroup(t *testing.T) {
	split := Default()
	whole := Default()
	split.Drain(1.2, 2)
	split.Drain(1.2, 2)
	split.Drain(1.2, 3)
	whole.Drain(1.2, 7)
	if math.Abs(split.Sigma()-whole.Sigma()) > 1e-9*whole.MaxCapacity() {
		t.Fatalf("sigma: split %v vs whole %v", split.Sigma(), whole.Sigma())
	}
	if math.Abs(split.DeliveredCharge()-whole.DeliveredCharge()) > 1e-9 {
		t.Fatalf("delivered: split %v vs whole %v", split.DeliveredCharge(), whole.DeliveredCharge())
	}
}
