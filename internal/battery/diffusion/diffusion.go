// Package diffusion implements the analytical high-level battery model of
// Rakhmatov and Vrudhula ("Energy management for battery powered embedded
// systems", ACM TECS 2003), the diffusion model the paper's scheduling
// guideline 1 is derived from.
//
// The model tracks the "apparent charge consumed"
//
//	sigma(t) = integral_0^t i(tau) dtau
//	         + 2 * sum_{m=1..inf} integral_0^t i(tau) e^{-beta^2 m^2 (t-tau)} dtau
//
// and declares the battery exhausted when sigma(t) reaches the capacity
// parameter alpha. The first term is the charge actually delivered; the
// series term is the charge temporarily unavailable near the electrode, which
// "recovers" (decays) during low-load periods. For piecewise-constant loads
// each series term admits an exact incremental update, so draining is O(#terms)
// per step with no history kept.
package diffusion

import (
	"errors"
	"fmt"
	"math"

	"battsched/internal/battery"
)

// DefaultTerms is the number of series terms kept by Default. Ten terms keep
// the truncation error far below one part in 1e6 for beta^2 values of
// practical interest.
const DefaultTerms = 10

// Params are the diffusion-model parameters.
type Params struct {
	// AlphaCoulombs is the battery capacity parameter alpha in coulombs: the
	// charge delivered under an infinitesimal load.
	AlphaCoulombs float64
	// BetaSquared is the diffusion rate parameter beta^2 in 1/s. Larger
	// values mean faster recovery (the battery behaves more ideally).
	BetaSquared float64
	// Terms is the number of terms of the infinite series to keep
	// (DefaultTerms when zero).
	Terms int
}

// ErrBadParams is returned by New for invalid parameters.
var ErrBadParams = errors.New("diffusion: invalid parameters")

// Battery is a Rakhmatov–Vrudhula diffusion-model battery.
type Battery struct {
	params Params

	delivered   float64   // integral of i dt (coulombs)
	unavailable []float64 // per-term convolution state A_m(t)
	alive       bool
}

// Default returns a diffusion battery calibrated like the paper's 2000 mAh
// AAA NiMH cell: alpha equals the maximum capacity and beta^2 is set so the
// delivered charge at an ampere-scale load is about 80 % of the maximum,
// matching the quoted nominal capacity (~1600 mAh).
func Default() *Battery {
	b, err := New(Params{
		AlphaCoulombs: battery.Coulombs(2000),
		BetaSquared:   4.0e-3,
		Terms:         DefaultTerms,
	})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return b
}

// New returns a fully charged diffusion battery.
func New(p Params) (*Battery, error) {
	if p.AlphaCoulombs <= 0 || p.BetaSquared <= 0 || p.Terms < 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	if p.Terms == 0 {
		p.Terms = DefaultTerms
	}
	b := &Battery{params: p, unavailable: make([]float64, p.Terms)}
	b.Reset()
	return b, nil
}

// Name implements battery.Model.
func (b *Battery) Name() string { return "diffusion" }

// Params returns the model parameters.
func (b *Battery) Params() Params { return b.params }

// Reset implements battery.Model.
func (b *Battery) Reset() {
	b.delivered = 0
	for i := range b.unavailable {
		b.unavailable[i] = 0
	}
	b.alive = true
}

// MaxCapacity implements battery.Model.
func (b *Battery) MaxCapacity() float64 { return b.params.AlphaCoulombs }

// DeliveredCharge implements battery.Model.
func (b *Battery) DeliveredCharge() float64 { return b.delivered }

// Sigma returns the current value of the apparent charge consumed sigma(t),
// in coulombs.
func (b *Battery) Sigma() float64 {
	s := b.delivered
	for _, a := range b.unavailable {
		s += 2 * a
	}
	return s
}

// UnavailableCharge returns the charge currently unavailable due to the
// diffusion gradient (the series term of sigma), in coulombs. It decays
// toward zero during rest periods — the recovery effect.
func (b *Battery) UnavailableCharge() float64 {
	var s float64
	for _, a := range b.unavailable {
		s += 2 * a
	}
	return s
}

// stepState advances the per-term state for a constant current i over dt and
// accumulates delivered charge. It does not check for exhaustion.
func (b *Battery) stepState(i, dt float64) {
	beta2 := b.params.BetaSquared
	for m := range b.unavailable {
		k := beta2 * float64(m+1) * float64(m+1)
		decay := math.Exp(-k * dt)
		b.unavailable[m] = b.unavailable[m]*decay + i*(1-decay)/k
	}
	b.delivered += i * dt
}

// sigmaAfter returns sigma if a constant current i were applied for dt,
// without modifying state.
func (b *Battery) sigmaAfter(i, dt float64) float64 {
	beta2 := b.params.BetaSquared
	s := b.delivered + i*dt
	for m := range b.unavailable {
		k := beta2 * float64(m+1) * float64(m+1)
		decay := math.Exp(-k * dt)
		s += 2 * (b.unavailable[m]*decay + i*(1-decay)/k)
	}
	return s
}

// Drain implements battery.Model.
func (b *Battery) Drain(current, dt float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	if current < 0 {
		current = 0
	}
	if b.sigmaAfter(current, dt) < b.params.AlphaCoulombs {
		b.stepState(current, dt)
		return dt, true
	}
	// Exhaustion occurs within [0, dt]: sigma is monotone in t for a
	// non-negative constant load, so bisect.
	lo, hi := 0.0, dt
	for iter := 0; iter < 80 && hi-lo > 1e-9*dt; iter++ {
		mid := 0.5 * (lo + hi)
		if b.sigmaAfter(current, mid) < b.params.AlphaCoulombs {
			lo = mid
		} else {
			hi = mid
		}
	}
	tDeath := 0.5 * (lo + hi)
	b.stepState(current, tDeath)
	b.alive = false
	return tDeath, false
}

// String implements fmt.Stringer.
func (b *Battery) String() string {
	return fmt.Sprintf("Diffusion(alpha=%.0fmAh beta2=%.2g/s sigma=%.0fmAh delivered=%.0fmAh)",
		battery.MAh(b.params.AlphaCoulombs), b.params.BetaSquared, battery.MAh(b.Sigma()), battery.MAh(b.delivered))
}

// compile-time interface check
var _ battery.Model = (*Battery)(nil)
