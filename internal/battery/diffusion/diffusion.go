// Package diffusion implements the analytical high-level battery model of
// Rakhmatov and Vrudhula ("Energy management for battery powered embedded
// systems", ACM TECS 2003), the diffusion model the paper's scheduling
// guideline 1 is derived from.
//
// The model tracks the "apparent charge consumed"
//
//	sigma(t) = integral_0^t i(tau) dtau
//	         + 2 * sum_{m=1..inf} integral_0^t i(tau) e^{-beta^2 m^2 (t-tau)} dtau
//
// and declares the battery exhausted when sigma(t) reaches the capacity
// parameter alpha. The first term is the charge actually delivered; the
// series term is the charge temporarily unavailable near the electrode, which
// "recovers" (decays) during low-load periods. For piecewise-constant loads
// each series term admits an exact incremental update, so draining is O(#terms)
// per step with no history kept.
package diffusion

import (
	"errors"
	"fmt"
	"math"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

// DefaultTerms is the number of series terms kept by Default. Ten terms keep
// the truncation error far below one part in 1e6 for beta^2 values of
// practical interest.
const DefaultTerms = 10

// Params are the diffusion-model parameters.
type Params struct {
	// AlphaCoulombs is the battery capacity parameter alpha in coulombs: the
	// charge delivered under an infinitesimal load.
	AlphaCoulombs float64
	// BetaSquared is the diffusion rate parameter beta^2 in 1/s. Larger
	// values mean faster recovery (the battery behaves more ideally).
	BetaSquared float64
	// Terms is the number of terms of the infinite series to keep
	// (DefaultTerms when zero).
	Terms int
}

// ErrBadParams is returned by New for invalid parameters.
var ErrBadParams = errors.New("diffusion: invalid parameters")

// Battery is a Rakhmatov–Vrudhula diffusion-model battery.
type Battery struct {
	params Params

	delivered   float64   // integral of i dt (coulombs)
	unavailable []float64 // per-term convolution state A_m(t)
	alive       bool

	// Decay-factor buffer keyed by the step length it was computed for:
	// uniform stepping and the analytic per-segment recurrence both re-apply
	// the same dt repeatedly, so the per-term exp(-beta^2 m^2 dt) factors are
	// recomputed only when dt changes.
	decayDt  float64
	decayBuf []float64
}

// The model registers itself so battery.New("diffusion") and every -battery
// flag resolve it by name.
func init() { battery.Register("diffusion", func() battery.Model { return Default() }) }

// Default returns a diffusion battery calibrated like the paper's 2000 mAh
// AAA NiMH cell: alpha equals the maximum capacity and beta^2 is set so the
// delivered charge at an ampere-scale load is about 80 % of the maximum,
// matching the quoted nominal capacity (~1600 mAh).
func Default() *Battery {
	b, err := New(Params{
		AlphaCoulombs: battery.Coulombs(2000),
		BetaSquared:   4.0e-3,
		Terms:         DefaultTerms,
	})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return b
}

// New returns a fully charged diffusion battery.
func New(p Params) (*Battery, error) {
	if p.AlphaCoulombs <= 0 || p.BetaSquared <= 0 || p.Terms < 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	if p.Terms == 0 {
		p.Terms = DefaultTerms
	}
	b := &Battery{params: p, unavailable: make([]float64, p.Terms)}
	b.Reset()
	return b, nil
}

// Name implements battery.Model.
func (b *Battery) Name() string { return "diffusion" }

// Params returns the model parameters.
func (b *Battery) Params() Params { return b.params }

// Reset implements battery.Model.
func (b *Battery) Reset() {
	b.delivered = 0
	for i := range b.unavailable {
		b.unavailable[i] = 0
	}
	b.alive = true
}

// MaxCapacity implements battery.Model.
func (b *Battery) MaxCapacity() float64 { return b.params.AlphaCoulombs }

// DeliveredCharge implements battery.Model.
func (b *Battery) DeliveredCharge() float64 { return b.delivered }

// Sigma returns the current value of the apparent charge consumed sigma(t),
// in coulombs.
func (b *Battery) Sigma() float64 {
	s := b.delivered
	for _, a := range b.unavailable {
		s += 2 * a
	}
	return s
}

// UnavailableCharge returns the charge currently unavailable due to the
// diffusion gradient (the series term of sigma), in coulombs. It decays
// toward zero during rest periods — the recovery effect.
func (b *Battery) UnavailableCharge() float64 {
	var s float64
	for _, a := range b.unavailable {
		s += 2 * a
	}
	return s
}

// decays returns the per-term decay factors exp(-beta^2 m^2 dt), recomputing
// the shared buffer only when dt differs from the previous call.
func (b *Battery) decays(dt float64) []float64 {
	if b.decayBuf == nil {
		b.decayBuf = make([]float64, len(b.unavailable))
		b.decayDt = math.NaN()
	}
	if dt != b.decayDt {
		beta2 := b.params.BetaSquared
		for m := range b.decayBuf {
			k := beta2 * float64(m+1) * float64(m+1)
			b.decayBuf[m] = math.Exp(-k * dt)
		}
		b.decayDt = dt
	}
	return b.decayBuf
}

// stepState advances the per-term state for a constant current i over dt and
// accumulates delivered charge. It does not check for exhaustion.
func (b *Battery) stepState(i, dt float64) {
	beta2 := b.params.BetaSquared
	decay := b.decays(dt)
	for m := range b.unavailable {
		k := beta2 * float64(m+1) * float64(m+1)
		b.unavailable[m] = b.unavailable[m]*decay[m] + i*(1-decay[m])/k
	}
	b.delivered += i * dt
}

// sigmaAfter returns sigma if a constant current i were applied for dt,
// without modifying state.
func (b *Battery) sigmaAfter(i, dt float64) float64 {
	beta2 := b.params.BetaSquared
	decay := b.decays(dt)
	s := b.delivered + i*dt
	for m := range b.unavailable {
		k := beta2 * float64(m+1) * float64(m+1)
		s += 2 * (b.unavailable[m]*decay[m] + i*(1-decay[m])/k)
	}
	return s
}

// Drain implements battery.Model. The per-term exponential recurrence is
// exact for any dt, so Drain and DrainSegment coincide.
func (b *Battery) Drain(current, dt float64) (sustained float64, alive bool) {
	return b.DrainSegment(current, dt)
}

// DrainSegment implements battery.SegmentDrainer: the per-term recurrence is
// applied over the whole segment, and when sigma would reach alpha within it
// the exhaustion instant is located by ExhaustionTime.
func (b *Battery) DrainSegment(current, dt float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	if current < 0 {
		current = 0
	}
	if b.sigmaAfter(current, dt) < b.params.AlphaCoulombs {
		b.stepState(current, dt)
		return dt, true
	}
	tDeath := b.ExhaustionTime(current)
	if tDeath > dt {
		tDeath = dt
	}
	b.stepState(current, tDeath)
	b.alive = false
	return tDeath, false
}

// ExhaustionTime implements battery.SegmentDrainer: the root of
// sigma(t) = alpha under a constant current, found by Newton iteration on the
// closed form with a bisection safeguard. During rest sigma only decays, so
// the time is +Inf for a zero load.
func (b *Battery) ExhaustionTime(current float64) float64 {
	if !b.alive {
		return 0
	}
	if current < 0 {
		current = 0
	}
	alpha := b.params.AlphaCoulombs
	margin := alpha - b.Sigma()
	if margin <= 0 {
		return 0
	}
	if current == 0 {
		return math.Inf(1)
	}
	beta2 := b.params.BetaSquared
	guess := margin / (current * float64(1+2*len(b.unavailable)))
	return battery.SolveExhaustion(func(t float64) (float64, float64) {
		v := alpha - b.delivered - current*t
		d := -current
		for m := range b.unavailable {
			k := beta2 * float64(m+1) * float64(m+1)
			e := math.Exp(-k * t)
			v -= 2 * (b.unavailable[m]*e + current*(1-e)/k)
			d -= 2 * (current - k*b.unavailable[m]) * e
		}
		return v, d
	}, guess)
}

// RepetitionOperator implements battery.RepetitionTransferer: the per-term
// recurrence is diagonal, so one full repetition of p reduces to a per-term
// decay factor and affine offset plus the profile charge, applied in O(Terms)
// per repetition.
func (b *Battery) RepetitionOperator(p *profile.Profile) battery.RepetitionOperator {
	n := len(b.unavailable)
	op := &repetitionOperator{b: b, decay: make([]float64, n), offset: make([]float64, n)}
	for m := range op.decay {
		op.decay[m] = 1
	}
	beta2 := b.params.BetaSquared
	for _, seg := range p.Segments {
		var osum float64
		for m := range op.decay {
			k := beta2 * float64(m+1) * float64(m+1)
			e := math.Exp(-k * seg.Duration)
			op.decay[m] *= e
			op.offset[m] = op.offset[m]*e + seg.Current*(1-e)/k
			osum += op.offset[m]
		}
		op.charge += seg.Current * seg.Duration
		// The apparent charge at this segment boundary, entered with state
		// (a, delivered), is delivered + chargeSoFar + sum 2(E_m a_m + o_m)
		// with E_m <= 1 — so chargeSoFar + 2*sum(o_m) bounds the boundary's
		// sigma increase over sigma at the repetition start.
		if h := op.charge + 2*osum; h > op.headroom {
			op.headroom = h
		}
	}
	return op
}

// repetitionOperator is the diagonal affine transfer operator of one profile
// repetition on a diffusion battery.
type repetitionOperator struct {
	b      *Battery
	decay  []float64 // per-term decay over one full repetition
	offset []float64 // per-term affine offset of one full repetition
	charge float64   // delivered charge per repetition
	// headroom conservatively bounds the within-repetition increase of sigma
	// over its value at the repetition start (max over segment boundaries).
	headroom float64
}

// CanAdvance implements battery.RepetitionOperator: sigma at every segment
// boundary of the repetition is bounded by the current sigma plus the
// precomputed headroom, so staying below alpha proves survival.
func (o *repetitionOperator) CanAdvance() bool {
	b := o.b
	if !b.alive {
		return false
	}
	return b.Sigma()+o.headroom < b.params.AlphaCoulombs
}

// Advance implements battery.RepetitionOperator.
func (o *repetitionOperator) Advance() {
	b := o.b
	for m := range b.unavailable {
		b.unavailable[m] = b.unavailable[m]*o.decay[m] + o.offset[m]
	}
	b.delivered += o.charge
}

// String implements fmt.Stringer.
func (b *Battery) String() string {
	return fmt.Sprintf("Diffusion(alpha=%.0fmAh beta2=%.2g/s sigma=%.0fmAh delivered=%.0fmAh)",
		battery.MAh(b.params.AlphaCoulombs), b.params.BetaSquared, battery.MAh(b.Sigma()), battery.MAh(b.delivered))
}

// compile-time interface checks
var (
	_ battery.Model                = (*Battery)(nil)
	_ battery.SegmentDrainer       = (*Battery)(nil)
	_ battery.RepetitionTransferer = (*Battery)(nil)
)
